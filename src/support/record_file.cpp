#include "support/record_file.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "support/fnv.h"

namespace xrl {

// ---------------------------------------------------------------------------
// Byte_writer / Byte_reader
// ---------------------------------------------------------------------------

namespace {

template <class T>
void append_raw(std::string& out, T value)
{
    char buffer[sizeof(T)];
    std::memcpy(buffer, &value, sizeof(T));
    out.append(buffer, sizeof(T));
}

} // namespace

void Byte_writer::u8(std::uint8_t value) { append_raw(out_, value); }
void Byte_writer::u32(std::uint32_t value) { append_raw(out_, value); }
void Byte_writer::u64(std::uint64_t value) { append_raw(out_, value); }
void Byte_writer::i32(std::int32_t value) { append_raw(out_, value); }
void Byte_writer::i64(std::int64_t value) { append_raw(out_, value); }
void Byte_writer::f32(float value) { append_raw(out_, std::bit_cast<std::uint32_t>(value)); }
void Byte_writer::f64(double value) { append_raw(out_, std::bit_cast<std::uint64_t>(value)); }

void Byte_writer::str(std::string_view value)
{
    u64(value.size());
    out_.append(value.data(), value.size());
}

void Byte_reader::take(void* destination, std::size_t size)
{
    if (size > bytes_.size() - pos_)
        throw std::runtime_error("Byte_reader: truncated input (wanted " + std::to_string(size) +
                                 " bytes, " + std::to_string(bytes_.size() - pos_) + " left)");
    std::memcpy(destination, bytes_.data() + pos_, size);
    pos_ += size;
}

std::uint8_t Byte_reader::u8()
{
    std::uint8_t value = 0;
    take(&value, sizeof(value));
    return value;
}

std::uint32_t Byte_reader::u32()
{
    std::uint32_t value = 0;
    take(&value, sizeof(value));
    return value;
}

std::uint64_t Byte_reader::u64()
{
    std::uint64_t value = 0;
    take(&value, sizeof(value));
    return value;
}

std::int32_t Byte_reader::i32()
{
    std::int32_t value = 0;
    take(&value, sizeof(value));
    return value;
}

std::int64_t Byte_reader::i64()
{
    std::int64_t value = 0;
    take(&value, sizeof(value));
    return value;
}

float Byte_reader::f32() { return std::bit_cast<float>(u32()); }
double Byte_reader::f64() { return std::bit_cast<double>(u64()); }

std::string Byte_reader::str()
{
    const std::uint64_t size = u64();
    expect_items(size, 1);
    return raw(static_cast<std::size_t>(size));
}

std::string Byte_reader::raw(std::size_t size)
{
    std::string value(size, '\0');
    take(value.data(), value.size());
    return value;
}

void Byte_reader::expect_items(std::uint64_t count, std::size_t min_bytes_each) const
{
    const std::size_t left = bytes_.size() - pos_;
    if (min_bytes_each == 0) min_bytes_each = 1;
    if (count > left / min_bytes_each)
        throw std::runtime_error("Byte_reader: corrupt count " + std::to_string(count) +
                                 " exceeds remaining input (" + std::to_string(left) + " bytes)");
}

// ---------------------------------------------------------------------------
// Record file
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t record_file_magic = 0x534c5258U; // "XRLS"

std::string encode_body(const Record& record)
{
    Byte_writer body;
    body.u32(record.version);
    body.f64(record.stamp);
    body.str(record.key);
    body.str(record.payload);
    return body.take();
}

std::uint64_t body_checksum(std::string_view body)
{
    return fnv1a_bytes(fnv1a_offset, body);
}

} // namespace

void write_record_file(const std::string& path, const std::vector<Record>& records)
{
    namespace fs = std::filesystem;
    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path()) {
        fs::create_directories(target.parent_path(), ec);
        if (ec)
            throw std::runtime_error("write_record_file: cannot create directory '" +
                                     target.parent_path().string() + "': " + ec.message());
    }

    // Single temp name per target: within a process the state store's lock
    // serialises writers; a concurrent writer from *another* process can at
    // worst race this one into a garbled temp, which the rename then
    // installs — and the per-record checksums downgrade that to skipped
    // records on the next load rather than a poisoned server.
    const std::string temp_path = path + ".tmp";
    {
        std::ofstream os(temp_path, std::ios::binary | std::ios::trunc);
        if (!os.good())
            throw std::runtime_error("write_record_file: cannot open '" + temp_path +
                                     "' for writing");
        Byte_writer header;
        header.u32(record_file_magic);
        header.u32(record_file_version);
        os.write(header.bytes().data(), static_cast<std::streamsize>(header.bytes().size()));
        for (const Record& record : records) {
            const std::string body = encode_body(record);
            Byte_writer frame;
            frame.u64(body.size());
            os.write(frame.bytes().data(), static_cast<std::streamsize>(frame.bytes().size()));
            os.write(body.data(), static_cast<std::streamsize>(body.size()));
            Byte_writer checksum;
            checksum.u64(body_checksum(body));
            os.write(checksum.bytes().data(),
                     static_cast<std::streamsize>(checksum.bytes().size()));
        }
        os.flush();
        if (!os.good()) {
            os.close();
            fs::remove(temp_path, ec);
            throw std::runtime_error("write_record_file: write to '" + temp_path + "' failed");
        }
    }
    fs::rename(temp_path, target, ec);
    if (ec) {
        fs::remove(temp_path, ec);
        throw std::runtime_error("write_record_file: rename to '" + path +
                                 "' failed: " + ec.message());
    }
}

std::vector<Record> read_record_file(const std::string& path, Record_load_report* report)
{
    Record_load_report local;
    Record_load_report& out = report != nullptr ? *report : local;
    out = Record_load_report{};

    std::vector<Record> records;
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
        out.file_missing = true;
        return records;
    }
    std::string contents((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());

    Byte_reader reader(contents);
    try {
        if (reader.u32() != record_file_magic) {
            ++out.skipped_corrupt; // not a record file at all
            return records;
        }
        if (reader.u32() > record_file_version) {
            out.header_version_mismatch = true; // a future writer owns this file
            return records;
        }
    } catch (const std::runtime_error&) {
        ++out.skipped_corrupt; // shorter than a header
        return records;
    }

    while (!reader.at_end()) {
        std::string body;
        std::uint64_t checksum = 0;
        try {
            const std::uint64_t body_size = reader.u64();
            reader.expect_items(body_size, 1);
            body = reader.raw(static_cast<std::size_t>(body_size));
            checksum = reader.u64();
        } catch (const std::runtime_error&) {
            ++out.skipped_corrupt; // truncated tail: nothing after it is framed
            break;
        }
        if (body_checksum(body) != checksum) {
            ++out.skipped_corrupt; // flipped byte; the frame still walks on
            continue;
        }
        try {
            Byte_reader body_reader(body);
            Record record;
            record.version = body_reader.u32();
            if (record.version > record_file_version) {
                ++out.skipped_version;
                continue;
            }
            record.stamp = body_reader.f64();
            record.key = body_reader.str();
            record.payload = body_reader.str();
            records.push_back(std::move(record));
            ++out.loaded;
        } catch (const std::runtime_error&) {
            ++out.skipped_corrupt; // checksum-valid but malformed body
        }
    }
    return records;
}

} // namespace xrl
