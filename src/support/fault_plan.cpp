#include "support/fault_plan.h"

namespace xrl {

const char* to_string(Fault_action action)
{
    switch (action) {
    case Fault_action::none: return "none";
    case Fault_action::fail: return "fail";
    case Fault_action::drop: return "drop";
    case Fault_action::corrupt: return "corrupt";
    case Fault_action::delay: return "delay";
    }
    return "?";
}

void Fault_plan::add(const std::string& site, Fault_rule rule)
{
    const Lock_guard lock(mutex_);
    sites_[site].rules.push_back(rule);
}

void Fault_plan::clear(const std::string& site)
{
    const Lock_guard lock(mutex_);
    const auto it = sites_.find(site);
    if (it != sites_.end()) it->second.rules.clear();
}

Fault_action Fault_plan::next(const std::string& site, double* delay_seconds)
{
    const Lock_guard lock(mutex_);
    Site& state = sites_[site];
    const std::uint64_t index = state.events++;
    for (const Fault_rule& rule : state.rules) {
        if (index < rule.begin || index - rule.begin >= rule.count) continue;
        ++state.injected;
        if (rule.action == Fault_action::delay && delay_seconds != nullptr)
            *delay_seconds = rule.delay_seconds;
        return rule.action;
    }
    return Fault_action::none;
}

std::uint64_t Fault_plan::events(const std::string& site) const
{
    const Lock_guard lock(mutex_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.events;
}

std::uint64_t Fault_plan::injected(const std::string& site) const
{
    const Lock_guard lock(mutex_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.injected;
}

} // namespace xrl
