// Minimal leveled logging to stderr. Intentionally tiny: benches and
// examples print their results to stdout themselves; the log is for
// progress/diagnostic lines only.
#pragma once

#include <sstream>
#include <string>

namespace xrl {

enum class Log_level { debug = 0, info = 1, warn = 2, error = 3 };

/// Global threshold; messages below it are dropped. Default: info.
/// Override with XRLFLOW_LOG=debug|info|warn|error.
Log_level log_threshold();
void set_log_threshold(Log_level level);

void log_message(Log_level level, const std::string& message);

namespace detail {

template <typename... Args>
std::string format_parts(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

template <typename... Args>
void log_debug(Args&&... args)
{
    if (log_threshold() <= Log_level::debug)
        log_message(Log_level::debug, detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args)
{
    if (log_threshold() <= Log_level::info)
        log_message(Log_level::info, detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args)
{
    if (log_threshold() <= Log_level::warn)
        log_message(Log_level::warn, detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args)
{
    if (log_threshold() <= Log_level::error)
        log_message(Log_level::error, detail::format_parts(std::forward<Args>(args)...));
}

} // namespace xrl
