#include "support/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "support/config.h"
#include "support/trace.h"

namespace xrl {

namespace {

Log_level initial_threshold()
{
    const std::string v = env_or("XRLFLOW_LOG", "info");
    if (v == "debug") return Log_level::debug;
    if (v == "warn") return Log_level::warn;
    if (v == "error") return Log_level::error;
    return Log_level::info;
}

Log_level& threshold_ref()
{
    static Log_level level = initial_threshold();
    return level;
}

const char* level_name(Log_level level)
{
    switch (level) {
    case Log_level::debug: return "DEBUG";
    case Log_level::info: return "INFO";
    case Log_level::warn: return "WARN";
    case Log_level::error: return "ERROR";
    }
    return "?";
}

} // namespace

Log_level log_threshold()
{
    return threshold_ref();
}

void set_log_threshold(Log_level level)
{
    threshold_ref() = level;
}

namespace {

/// ISO-8601 UTC with millisecond precision: 2026-08-08T12:34:56.789Z.
std::string utc_timestamp()
{
    using namespace std::chrono;
    const auto now = system_clock::now();
    const std::time_t seconds = system_clock::to_time_t(now);
    const auto millis =
        duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
    std::tm tm{};
    gmtime_r(&seconds, &tm);
    // Sized for the worst case the format string admits (tm fields are int;
    // a corrupt tm must truncate safely, not overflow), not just the 25
    // bytes a sane timestamp needs.
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                  tm.tm_sec, static_cast<int>(millis));
    return buf;
}

} // namespace

void log_message(Log_level level, const std::string& message)
{
    // Structured prefix: timestamp, level, thread ordinal, and — when a
    // trace is in scope on this thread — the job's trace id, so one grep
    // lines a job's log output up with its spans.
    std::ostringstream line;
    line << utc_timestamp() << ' ' << level_name(level) << " [xrlflow t"
         << trace_thread_id();
    if (const Trace_context context = current_trace(); context.trace_id != 0)
        line << " trace=" << std::hex << context.trace_id << std::dec;
    line << "] " << message << '\n';
    // One stream insertion so concurrent threads don't interleave fields.
    std::cerr << line.str();
}

} // namespace xrl

#include <execinfo.h>
namespace xrl {
namespace detail {
void dump_backtrace()
{
    void* frames[40];
    const int n = ::backtrace(frames, 40);
    ::backtrace_symbols_fd(frames, n, 2);
}
} // namespace detail
} // namespace xrl
