#include "support/logging.h"

#include <iostream>

#include "support/config.h"

namespace xrl {

namespace {

Log_level initial_threshold()
{
    const std::string v = env_or("XRLFLOW_LOG", "info");
    if (v == "debug") return Log_level::debug;
    if (v == "warn") return Log_level::warn;
    if (v == "error") return Log_level::error;
    return Log_level::info;
}

Log_level& threshold_ref()
{
    static Log_level level = initial_threshold();
    return level;
}

const char* level_name(Log_level level)
{
    switch (level) {
    case Log_level::debug: return "DEBUG";
    case Log_level::info: return "INFO";
    case Log_level::warn: return "WARN";
    case Log_level::error: return "ERROR";
    }
    return "?";
}

} // namespace

Log_level log_threshold()
{
    return threshold_ref();
}

void set_log_threshold(Log_level level)
{
    threshold_ref() = level;
}

void log_message(Log_level level, const std::string& message)
{
    std::cerr << "[xrlflow " << level_name(level) << "] " << message << '\n';
}

} // namespace xrl

#include <execinfo.h>
namespace xrl {
namespace detail {
void dump_backtrace()
{
    void* frames[40];
    const int n = ::backtrace(frames, 40);
    ::backtrace_symbols_fd(frames, n, 2);
}
} // namespace detail
} // namespace xrl
