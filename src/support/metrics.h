// Metrics_registry: the process-wide metrics plane.
//
// Through PR 7 every subsystem grew its own ad-hoc stats struct —
// Server_stats, Router_stats, Shard_health_snapshot, Daemon_wire_stats —
// each with its own locking, its own snapshot call, and no way for a
// scraper to read the fleet without speaking every struct. This header is
// the uniform series model under all of them: labelled counters, gauges,
// and fixed-bucket histograms registered once and updated lock-free from
// the hot paths, with Prometheus-style text exposition so one scrape
// (`xrlflowctl metrics`, the `metrics` PDU) reads the whole process.
//
// Design points:
//   * Updates are wait-free-ish: counters and bucket increments are relaxed
//     atomic adds; the only lock is the registry mutex, taken at
//     registration and snapshot/exposition time, never per update.
//   * References returned by counter()/gauge()/histogram() are stable for
//     the registry's lifetime (metrics are never erased), so call sites
//     resolve a pointer once and update for free afterwards.
//   * Histograms have *fixed* buckets chosen at registration. Percentiles
//     are estimated by linear interpolation inside the bucket that holds
//     the rank — accuracy is bounded by bucket width (test_observability
//     pins this against exact nearest-rank on known distributions).
//   * Snapshot consistency: a snapshot reads every atomic once under the
//     registry mutex, so no series can be registered or torn mid-read.
//     (Individual histogram counts and sums are read independently; a
//     concurrent observe may land between them, skewing mean() by at most
//     one sample — the documented, accepted tear.)
//
// The global() registry is the process's source of truth; tests that need
// isolation construct their own instance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/sync.h"

namespace xrl {

/// Label set attached to one series: key/value pairs, sorted by key at
/// registration so {a=1,b=2} and {b=2,a=1} name the same series.
using Metric_labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
public:
    void increment(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, breaker state, uptime).
class Gauge {
public:
    void set(double value) { value_.store(value, std::memory_order_relaxed); }
    void add(double delta)
    {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(current, current + delta,
                                             std::memory_order_relaxed))
            ;
    }
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-style buckets in exposition,
/// per-bucket counts internally. Observe is two relaxed atomic adds plus a
/// CAS loop on the sum — cheap enough for per-phase hot-loop timing.
class Histogram {
public:
    /// `upper_bounds` must be strictly increasing; an implicit +Inf bucket
    /// is always appended. Throws std::invalid_argument otherwise.
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double value);

    struct Snapshot {
        std::vector<double> upper_bounds;  ///< Finite bounds (no +Inf entry).
        std::vector<std::uint64_t> counts; ///< Per-bucket; size = bounds + 1.
        std::uint64_t count = 0;
        double sum = 0.0;

        double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

        /// Estimated quantile (q in [0, 1]): linear interpolation inside
        /// the bucket holding the rank; the +Inf bucket answers with its
        /// lower bound (there is no upper edge to interpolate toward).
        double quantile(double q) const;
    };

    Snapshot snapshot() const;

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_; ///< bounds_.size() + 1 slots.
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Bucket presets. Latencies in milliseconds (serving-path spans: 0.1 ms to
/// 60 s) and phase durations in microseconds (search hot loops: 1 µs to
/// 1 s).
std::vector<double> latency_ms_buckets();
std::vector<double> duration_us_buckets();

enum class Metric_kind : std::uint8_t { counter, gauge, histogram };

const char* to_string(Metric_kind kind);

class Metrics_registry {
public:
    Metrics_registry();  ///< Out of line: Family is incomplete here.
    ~Metrics_registry(); ///< Likewise.
    Metrics_registry(const Metrics_registry&) = delete;
    Metrics_registry& operator=(const Metrics_registry&) = delete;

    /// The process-wide registry every subsystem publishes into.
    static Metrics_registry& global();

    /// Find-or-create. The returned reference is valid for the registry's
    /// lifetime. Re-registration with the same (name, labels) returns the
    /// existing series; registering one name as two different kinds (or a
    /// histogram with different buckets) throws std::invalid_argument —
    /// one name, one schema, process-wide.
    Counter& counter(std::string_view name, std::string_view help, Metric_labels labels = {});
    Gauge& gauge(std::string_view name, std::string_view help, Metric_labels labels = {});
    Histogram& histogram(std::string_view name, std::string_view help,
                         std::vector<double> upper_bounds, Metric_labels labels = {});

    /// One series' state at snapshot time.
    struct Series_snapshot {
        Metric_labels labels;
        double value = 0.0; ///< Counter (as double) or gauge value.
        std::optional<Histogram::Snapshot> histogram;
    };

    struct Family_snapshot {
        std::string name;
        std::string help;
        Metric_kind kind = Metric_kind::counter;
        std::vector<Series_snapshot> series; ///< In label order.
    };

    /// Every family, name-ordered, series label-ordered: the one consistent
    /// read the exposition and the benches' JSON both derive from.
    std::vector<Family_snapshot> snapshot() const;

    /// Prometheus text exposition format (# HELP / # TYPE / samples;
    /// histograms expand to cumulative _bucket{le=...}, _sum, _count).
    std::string expose() const;

private:
    struct Series;
    struct Family;

    Family& family_locked(std::string_view name, std::string_view help, Metric_kind kind)
        XRL_REQUIRES(mutex_);

    mutable Mutex mutex_{"metrics_registry", Lock_rank::metrics};
    std::map<std::string, std::unique_ptr<Family>, std::less<>> families_ XRL_GUARDED_BY(mutex_);
};

/// RAII phase timer: observes elapsed microseconds into a histogram at
/// scope exit. The hot-loop instrumentation idiom:
///
///   { Scoped_timer_us t(candidate_phase_histogram("match")); ...match... }
class Scoped_timer_us {
public:
    explicit Scoped_timer_us(Histogram& histogram);
    ~Scoped_timer_us();

    Scoped_timer_us(const Scoped_timer_us&) = delete;
    Scoped_timer_us& operator=(const Scoped_timer_us&) = delete;

private:
    Histogram& histogram_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace xrl
