#include "support/trace.h"

#include "support/config.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ostream>
#include <random>

namespace xrl {

namespace {

std::atomic<bool>& enabled_flag()
{
    static std::atomic<bool> flag{[] {
        const std::string v = env_or("XRLFLOW_TRACE", "");
        return !v.empty() && v != "0";
    }()};
    return flag;
}

/// Process-random high bits for span/trace ids: ids stay unique with high
/// probability even across daemon + client processes writing one trace.
std::uint64_t process_seed()
{
    static const std::uint64_t seed = [] {
        std::random_device rd;
        std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
        return s == 0 ? 0x9e3779b97f4a7c15ull : s;
    }();
    return seed;
}

std::uint64_t next_id()
{
    static std::atomic<std::uint64_t> counter{1};
    // splitmix64 finaliser over seed ^ counter: well-spread, never reuses.
    std::uint64_t x = process_seed() ^ counter.fetch_add(1, std::memory_order_relaxed);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x = x ^ (x >> 31);
    return x == 0 ? 1 : x;
}

thread_local Trace_context tls_context;

} // namespace

bool trace_enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_trace_enabled(bool enabled)
{
    enabled_flag().store(enabled, std::memory_order_relaxed);
}

std::uint64_t new_trace_id() { return next_id(); }

Trace_context current_trace() { return tls_context; }

std::uint64_t trace_thread_id()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint64_t trace_wall_now_us()
{
    using namespace std::chrono;
    // One (steady, system) base pair per process: steady deltas give
    // monotonic timestamps, the system base anchors them to the epoch.
    struct Base {
        steady_clock::time_point steady = steady_clock::now();
        system_clock::time_point system = system_clock::now();
    };
    static const Base base;
    const auto elapsed = steady_clock::now() - base.steady;
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(base.system.time_since_epoch() + elapsed).count());
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

Trace_scope::Trace_scope(std::uint64_t trace_id, std::uint64_t parent_span)
    : saved_(tls_context)
{
    tls_context = Trace_context{trace_id, parent_span};
}

Trace_scope::~Trace_scope() { tls_context = saved_; }

Span_scope::Span_scope(const char* name)
{
    if (!trace_enabled()) return;
    if (tls_context.trace_id == 0) return;
    active_ = true;
    name_ = name;
    saved_ = tls_context;
    span_id_ = next_id();
    tls_context.span_id = span_id_; // Nested spans parent under this one.
    start_us_ = trace_wall_now_us();
}

Span_scope::~Span_scope()
{
    if (!active_) return;
    Trace_span span;
    span.trace_id = saved_.trace_id;
    span.span_id = span_id_;
    span.parent_span = saved_.span_id;
    span.name = name_;
    span.thread_id = trace_thread_id();
    span.start_us = start_us_;
    const std::uint64_t end = trace_wall_now_us();
    span.duration_us = end > start_us_ ? end - start_us_ : 0;
    span.annotations = std::move(annotations_);
    tls_context = saved_;
    Trace_buffer::global().record(std::move(span));
}

void Span_scope::annotate(std::string key, std::string value)
{
    if (!active_) return;
    annotations_.emplace_back(std::move(key), std::move(value));
}

// ---------------------------------------------------------------------------
// Trace_buffer
// ---------------------------------------------------------------------------

Trace_buffer::Trace_buffer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

Trace_buffer& Trace_buffer::global()
{
    static Trace_buffer buffer;
    return buffer;
}

void Trace_buffer::record(Trace_span span)
{
    const Lock_guard lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(span));
        return;
    }
    // Ring full: overwrite the oldest slot.
    wrapped_ = true;
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

std::vector<Trace_span> Trace_buffer::spans() const { return spans_for(0); }

std::vector<Trace_span> Trace_buffer::spans_for(std::uint64_t trace_id) const
{
    const Lock_guard lock(mutex_);
    std::vector<Trace_span> out;
    out.reserve(ring_.size());
    const std::size_t n = ring_.size();
    const std::size_t start = wrapped_ ? head_ : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Trace_span& span = ring_[(start + i) % n];
        if (trace_id == 0 || span.trace_id == trace_id) out.push_back(span);
    }
    return out;
}

std::size_t Trace_buffer::size() const
{
    const Lock_guard lock(mutex_);
    return ring_.size();
}

std::uint64_t Trace_buffer::dropped() const
{
    const Lock_guard lock(mutex_);
    return dropped_;
}

void Trace_buffer::clear()
{
    const Lock_guard lock(mutex_);
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    dropped_ = 0;
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

namespace {

void write_json_string(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Trace_span>& spans)
{
    os << "[\n";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const Trace_span& span = spans[i];
        os << "{\"ph\":\"X\",\"name\":";
        write_json_string(os, span.name);
        os << ",\"cat\":\"xrlflow\",\"pid\":1,\"tid\":" << span.thread_id
           << ",\"ts\":" << span.start_us << ",\"dur\":" << span.duration_us
           << ",\"args\":{\"trace_id\":\"" << span.trace_id << "\",\"span_id\":\""
           << span.span_id << "\",\"parent_span\":\"" << span.parent_span << '"';
        for (const auto& [key, value] : span.annotations) {
            os << ',';
            write_json_string(os, key);
            os << ':';
            write_json_string(os, value);
        }
        os << "}}";
        if (i + 1 < spans.size()) os << ',';
        os << '\n';
    }
    os << "]\n";
}

} // namespace xrl
