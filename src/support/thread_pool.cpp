#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace xrl {

/// One `run` call: a shared index counter plus completion bookkeeping.
/// Heap-allocated and reference-counted so a straggling worker that grabbed
/// the batch but claimed no index can never outlive it.
struct Thread_pool::Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* task = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t finished = 0;           // guarded by the owning pool's mutex
    std::exception_ptr first_error;     // guarded by the owning pool's mutex
    Cond_var done;

    /// Claim and run indices until the counter is exhausted. Returns how
    /// many indices this thread completed.
    std::size_t drain(Mutex& mutex)
    {
        std::size_t ran = 0;
        for (;;) {
            const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
            if (index >= count) return ran;
            try {
                (*task)(index);
            } catch (...) {
                const Lock_guard lock(mutex);
                if (!first_error) first_error = std::current_exception();
            }
            ++ran;
        }
    }
};

Thread_pool::Thread_pool(std::size_t workers)
{
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

Thread_pool::~Thread_pool()
{
    {
        const Lock_guard lock(mutex_);
        shutting_down_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void Thread_pool::worker_loop()
{
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            Unique_lock lock(mutex_);
            work_ready_.wait(lock, [this]() XRL_REQUIRES(mutex_) {
                return shutting_down_ || !pending_.empty() || !detached_.empty();
            });
            if (shutting_down_) return;
            if (pending_.empty()) {
                // No batch blocking a caller — run one detached task.
                std::function<void()> task = std::move(detached_.front());
                detached_.pop_front();
                lock.unlock();
                task();
                continue;
            }
            batch = pending_.back();
            if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
                // Fully claimed already; forget it and look again.
                pending_.pop_back();
                continue;
            }
        }
        const std::size_t ran = batch->drain(mutex_);
        if (ran > 0) {
            const Lock_guard lock(mutex_);
            batch->finished += ran;
            if (batch->finished == batch->count) batch->done.notify_all();
        }
    }
}

void Thread_pool::run(std::size_t count, const std::function<void(std::size_t)>& task)
{
    if (count == 0) return;
    if (threads_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i) task(i);
        return;
    }

    const auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->task = &task;
    {
        const Lock_guard lock(mutex_);
        pending_.push_back(batch);
    }
    work_ready_.notify_all();

    const std::size_t ran = batch->drain(mutex_);
    {
        Unique_lock lock(mutex_);
        batch->finished += ran;
        pending_.erase(std::remove(pending_.begin(), pending_.end(), batch), pending_.end());
        batch->done.wait(lock, [&batch] { return batch->finished == batch->count; });
        if (batch->first_error) std::rethrow_exception(batch->first_error);
    }
}

void Thread_pool::post(std::function<void()> task)
{
    if (threads_.empty()) {
        task(); // serial degradation, mirroring run()
        return;
    }
    {
        const Lock_guard lock(mutex_);
        detached_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

Thread_pool& Thread_pool::shared()
{
    static Thread_pool pool([] {
        // At least two workers even on a single-core host: the serving
        // layer's posted jobs must run off the submitter's thread (a job
        // blocked on its progress gate would otherwise deadlock submit),
        // and batch fan-out still degrades gracefully — the caller drains
        // alongside however many workers the hardware can actually run.
        const unsigned hw = std::thread::hardware_concurrency();
        return std::max<std::size_t>(2, std::min<std::size_t>(hw, 8));
    }());
    return pool;
}

} // namespace xrl
