// A small blocking thread pool for deterministic fan-out — plus detached
// tasks for the serving layer.
//
// The candidate engine fans pattern matching out across rules; results are
// written into per-rule slots so the output order never depends on thread
// scheduling. The pool is intentionally minimal: submit a batch of indexed
// tasks and block until all of them ran. The calling thread participates in
// draining the queue, so a pool with zero workers degrades to a plain
// serial loop (and `run` never deadlocks when workers are scarce).
//
// `post` adds the second mode the Optimization_server needs: fire-and-forget
// tasks executed on pool workers. Both modes share the same threads — one
// process-wide pool serves candidate fan-out *and* serving jobs — and they
// compose: a posted serving job that calls `run` on the same pool drains the
// batch on its own thread, so nesting cannot deadlock even when every worker
// is busy with posted work.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "support/sync.h"

namespace xrl {

class Thread_pool {
public:
    /// Spawn `workers` threads (0 = serial; `run` executes on the caller).
    explicit Thread_pool(std::size_t workers);
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    std::size_t workers() const { return threads_.size(); }

    /// Run `task(0) .. task(count-1)`, blocking until every index finished.
    /// Tasks may run on any worker or on the calling thread; the first
    /// exception (if any) is rethrown on the caller after the batch drains.
    void run(std::size_t count, const std::function<void(std::size_t)>& task);

    /// Detached execution: enqueue `task` to run on some pool worker and
    /// return immediately. Tasks must not throw (a throwing task
    /// terminates). With zero workers the task runs inline on the caller —
    /// the serial degradation mirrors `run`'s, so callers never deadlock
    /// waiting for a thread that does not exist. Tasks still queued when
    /// the pool destructs are dropped, so owners of posted work must drain
    /// their own completion state before releasing the pool.
    void post(std::function<void()> task);

    /// Process-wide pool sized to the hardware (capped), shared by the
    /// candidate engines and the optimization server.
    static Thread_pool& shared();

private:
    struct Batch;

    void worker_loop();

    Mutex mutex_{"thread_pool", Lock_rank::thread_pool};
    Cond_var work_ready_;
    std::vector<std::shared_ptr<Batch>> pending_ XRL_GUARDED_BY(mutex_);
    std::deque<std::function<void()>> detached_ XRL_GUARDED_BY(mutex_);
    std::vector<std::thread> threads_;
    bool shutting_down_ XRL_GUARDED_BY(mutex_) = false;
};

} // namespace xrl
