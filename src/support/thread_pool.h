// A small blocking thread pool for deterministic fan-out.
//
// The candidate engine fans pattern matching out across rules; results are
// written into per-rule slots so the output order never depends on thread
// scheduling. The pool is intentionally minimal: submit a batch of indexed
// tasks and block until all of them ran. The calling thread participates in
// draining the queue, so a pool with zero workers degrades to a plain
// serial loop (and `run` never deadlocks when workers are scarce).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xrl {

class Thread_pool {
public:
    /// Spawn `workers` threads (0 = serial; `run` executes on the caller).
    explicit Thread_pool(std::size_t workers);
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    std::size_t workers() const { return threads_.size(); }

    /// Run `task(0) .. task(count-1)`, blocking until every index finished.
    /// Tasks may run on any worker or on the calling thread; the first
    /// exception (if any) is rethrown on the caller after the batch drains.
    void run(std::size_t count, const std::function<void(std::size_t)>& task);

    /// Process-wide pool sized to the hardware (capped), shared by every
    /// candidate engine that does not request a private width.
    static Thread_pool& shared();

private:
    struct Batch;

    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::vector<std::shared_ptr<Batch>> pending_;
    std::vector<std::thread> threads_;
    bool shutting_down_ = false;
};

} // namespace xrl
