#include "support/rng.h"

#include <cmath>

#include "support/check.h"

namespace xrl {

std::uint64_t splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n)
{
    XRL_EXPECTS(n > 0);
    return static_cast<std::size_t>(next_u64() % n);
}

double Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::vector<float> Rng::uniform_vector(std::size_t n, float lo, float hi)
{
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(uniform(lo, hi));
    return v;
}

std::size_t Rng::sample_weights(const std::vector<double>& weights)
{
    XRL_EXPECTS(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        XRL_EXPECTS(w >= 0.0);
        total += w;
    }
    XRL_EXPECTS(total > 0.0);
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0) return i;
    }
    return weights.size() - 1;
}

Rng Rng::split()
{
    return Rng(next_u64());
}

} // namespace xrl
