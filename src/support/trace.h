// Per-job distributed tracing: spans, propagation, export.
//
// A trace is a tree of spans sharing one nonzero `trace_id`. The client
// stamps a fresh trace id onto each submit/batch PDU; the daemon, router,
// shard, and optimizer each open spans under it, so one `xrlflowctl trace`
// call reconstructs a job's life: client submit → daemon frame → router
// dispatch → shard execute → candidate-engine phases.
//
// Propagation is thread-local: `Trace_scope` installs a (trace_id,
// current-span) context on the executing thread; `Span_scope` records a
// timed span under whatever context is installed, making itself the parent
// of spans opened inside it. Crossing a thread boundary (e.g. server
// worker picking up a queued job) means carrying the ids explicitly —
// `Job` holds `trace_id`/`parent_span` for exactly this hop.
//
// Cost model: tracing is off unless `XRLFLOW_TRACE` is set (or
// `set_trace_enabled(true)` is called). When off, `Span_scope` is one
// relaxed atomic load and two branches — the acceptance bar is ≤ 2%
// `env_steps_per_second` regression with tracing disabled. When on, spans
// land in a bounded in-process ring (`Trace_buffer::global()`); overflow
// evicts the oldest span and counts it in `dropped()` rather than growing
// without bound.
//
// Export: `write_chrome_trace` emits Chrome trace-event JSON — an array of
// "X" (complete) events, one per line — loadable in Perfetto or
// chrome://tracing. Timestamps are wall-clock microseconds derived from a
// (steady, system) clock pair captured once at process start, so spans
// from one process line up on a shared axis without steady-clock skew.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "support/sync.h"

namespace xrl {

/// One completed span. Plain aggregate: the wire codec and the
/// `aggregate_field_count` drift guard both rely on this staying a simple
/// field list.
struct Trace_span {
    std::uint64_t trace_id = 0;    ///< Tree identity; 0 = untraced (never recorded).
    std::uint64_t span_id = 0;     ///< Unique within the process.
    std::uint64_t parent_span = 0; ///< 0 = root of its tree.
    std::string name;              ///< e.g. "router/dispatch", "candidates/match".
    std::uint64_t thread_id = 0;   ///< Small per-process thread ordinal (Perfetto tid).
    std::uint64_t start_us = 0;    ///< Wall-clock microseconds since the Unix epoch.
    std::uint64_t duration_us = 0;
    /// Key/value annotations (job id, backend, candidate counts, ...).
    std::vector<std::pair<std::string, std::string>> annotations;
};

/// Global enable toggle. Initialised once from the `XRLFLOW_TRACE`
/// environment variable ("0"/"" = off, anything else = on);
/// `set_trace_enabled` overrides at runtime. Reading is one relaxed load.
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Fresh nonzero trace id: process-random seed mixed with a counter, so
/// concurrent clients in one process (and across processes, with high
/// probability) never collide.
std::uint64_t new_trace_id();

/// The thread's active trace context: which tree new spans join and which
/// span is their parent. {0, 0} when no trace is in scope.
struct Trace_context {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0; ///< Current innermost span (parent for new spans).
};

Trace_context current_trace();

/// Small stable ordinal for the calling thread (1, 2, 3, ... in first-use
/// order) — readable Perfetto lanes instead of opaque pthread handles.
std::uint64_t trace_thread_id();

/// Wall-clock "now" in microseconds since the Unix epoch, derived from the
/// steady clock against a base pair captured at first use (monotonic
/// within the process, comparable across processes).
std::uint64_t trace_wall_now_us();

/// RAII: installs (trace_id, parent_span) as the thread's context, restores
/// the previous context on destruction. Use when a job hops threads and
/// carries its ids explicitly (server worker, daemon session turn).
class Trace_scope {
public:
    Trace_scope(std::uint64_t trace_id, std::uint64_t parent_span);
    ~Trace_scope();

    Trace_scope(const Trace_scope&) = delete;
    Trace_scope& operator=(const Trace_scope&) = delete;

private:
    Trace_context saved_;
};

/// RAII: times a named span under the thread's current context and records
/// it to `Trace_buffer::global()` on destruction. No-op (and near-free)
/// when tracing is disabled or no trace is in scope. While alive, the span
/// is the thread's current span, so nested Span_scopes parent under it.
class Span_scope {
public:
    explicit Span_scope(const char* name);
    ~Span_scope();

    Span_scope(const Span_scope&) = delete;
    Span_scope& operator=(const Span_scope&) = delete;

    /// Attach a key/value annotation. Ignored when the span is inactive.
    void annotate(std::string key, std::string value);

    bool active() const { return active_; }

private:
    bool active_ = false;
    const char* name_ = nullptr;
    Trace_context saved_;
    std::uint64_t span_id_ = 0;
    std::uint64_t start_us_ = 0;
    std::vector<std::pair<std::string, std::string>> annotations_;
};

/// Bounded in-process span ring. Recording is mutex-guarded (spans are
/// recorded at scope exit, off the per-event hot path); overflow evicts
/// the oldest span and increments `dropped()`.
class Trace_buffer {
public:
    explicit Trace_buffer(std::size_t capacity = 16384);

    /// The process-wide buffer every Span_scope records into.
    static Trace_buffer& global();

    void record(Trace_span span);

    /// All buffered spans, oldest first.
    std::vector<Trace_span> spans() const;
    /// Spans belonging to one trace, oldest first. trace_id 0 = all.
    std::vector<Trace_span> spans_for(std::uint64_t trace_id) const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t dropped() const;

    void clear();

private:
    mutable Mutex mutex_{"trace_buffer", Lock_rank::trace};
    std::size_t capacity_;
    /// Index of the oldest span once the ring wraps.
    std::size_t head_ XRL_GUARDED_BY(mutex_) = 0;
    bool wrapped_ XRL_GUARDED_BY(mutex_) = false;
    std::vector<Trace_span> ring_ XRL_GUARDED_BY(mutex_);
    std::uint64_t dropped_ XRL_GUARDED_BY(mutex_) = 0;
};

/// Chrome trace-event JSON: an array of "X" (complete) events, one per
/// line, with trace/span/parent ids and annotations under "args". Valid
/// JSON, loadable in Perfetto / chrome://tracing.
void write_chrome_trace(std::ostream& os, const std::vector<Trace_span>& spans);

} // namespace xrl
