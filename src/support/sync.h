// Annotated synchronisation primitives: the one place the project touches
// std::mutex / std::shared_mutex / std::condition_variable directly.
//
// Three jobs, one wrapper layer:
//
//  1. Clang Thread Safety Analysis. `Mutex` / `Shared_mutex` are capabilities
//     and the scoped lock types are scoped capabilities, so a clang build
//     with -Werror=thread-safety proves at compile time that every
//     XRL_GUARDED_BY field is only touched under its lock and every
//     XRL_REQUIRES method is only called with the lock held. Under GCC all
//     annotation macros expand to nothing and the wrappers compile down to
//     the plain standard-library types.
//
//  2. Lock-rank deadlock detection. Every Mutex/Shared_mutex carries a name
//     and a rank from the global hierarchy in docs/CONCURRENCY.md. When
//     XRL_SYNC_DEADLOCK_CHECKS is enabled (Debug and TSan builds — see
//     XRLFLOW_SYNC_CHECKS in the top-level CMakeLists), a thread-local
//     held-lock stack checks that every acquisition takes a rank strictly
//     greater than any rank already held by the thread; an out-of-order
//     acquisition aborts immediately, printing both lock names. That turns
//     a latent lock-order inversion — which would deadlock only under the
//     right interleaving — into a deterministic test failure on the first
//     wrong-order acquisition, even single-threaded.
//
//  3. Zero release cost. With checks disabled, lock()/unlock() inline to the
//     underlying std::mutex calls; the only footprint is two pointer-sized
//     fields per mutex for the name/rank. The layout of every type here is
//     identical whether or not checks are enabled, so mixing translation
//     units is ODR-safe; only the out-of-line check calls are conditional,
//     and XRL_SYNC_DEADLOCK_CHECKS is a PUBLIC compile definition on the
//     xrlflow target so every dependent target agrees on it.
//
// Adding a lock? Read the checklist in docs/CONCURRENCY.md first.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros (no-ops outside clang).
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define XRL_TSA(x) __attribute__((x))
#else
#define XRL_TSA(x)
#endif

#define XRL_CAPABILITY(name) XRL_TSA(capability(name))
#define XRL_SCOPED_CAPABILITY XRL_TSA(scoped_lockable)
#define XRL_GUARDED_BY(x) XRL_TSA(guarded_by(x))
#define XRL_PT_GUARDED_BY(x) XRL_TSA(pt_guarded_by(x))
#define XRL_REQUIRES(...) XRL_TSA(requires_capability(__VA_ARGS__))
#define XRL_REQUIRES_SHARED(...) XRL_TSA(requires_shared_capability(__VA_ARGS__))
#define XRL_ACQUIRE(...) XRL_TSA(acquire_capability(__VA_ARGS__))
#define XRL_ACQUIRE_SHARED(...) XRL_TSA(acquire_shared_capability(__VA_ARGS__))
#define XRL_RELEASE(...) XRL_TSA(release_capability(__VA_ARGS__))
#define XRL_RELEASE_SHARED(...) XRL_TSA(release_shared_capability(__VA_ARGS__))
#define XRL_TRY_ACQUIRE(...) XRL_TSA(try_acquire_capability(__VA_ARGS__))
#define XRL_EXCLUDES(...) XRL_TSA(locks_excluded(__VA_ARGS__))
#define XRL_RETURN_CAPABILITY(x) XRL_TSA(lock_returned(x))
#define XRL_NO_THREAD_SAFETY_ANALYSIS XRL_TSA(no_thread_safety_analysis)

#ifndef XRL_SYNC_DEADLOCK_CHECKS
#define XRL_SYNC_DEADLOCK_CHECKS 0
#endif

namespace xrl {

// ---------------------------------------------------------------------------
// The global lock hierarchy. Acquiring a lock requires its rank to be
// strictly greater than every rank the thread already holds; two locks that
// share a rank must therefore never nest (all current same-rank locks are
// per-instance locks of which a thread only ever holds one). Full table with
// the nesting paths that pin each value: docs/CONCURRENCY.md.
// ---------------------------------------------------------------------------
enum class Lock_rank : int {
    daemon_admin = 10,       // Daemon::admin_mutex_ (drain/snapshot gate)
    daemon = 20,             // Daemon::mutex_
    router_membership = 30,  // Optimization_router::membership_mutex_
    server = 40,             // Optimization_server::mutex_
    job = 50,                // Job::mutex
    state_store_writer = 60, // State_store policy/memo writer mutexes
    state_store = 65,        // State_store::mutex_
    service = 70,            // Optimization_service::mutex_
    device_registry = 80,    // Device_registry::mutex_
    simulator_rng = 90,      // E2e_simulator::rng_mutex_
    fault_plan = 95,         // Fault_plan::mutex_
    thread_pool = 100,       // Thread_pool::mutex_
    shard_health = 110,      // Shard_health::mutex_
    telemetry = 120,         // Telemetry::mutex_
    metrics = 130,           // Metrics_registry::mutex_
    trace = 140,             // Trace_buffer::mutex_
    leaf = 1000,             // strictly-leaf locks (tests, tools)
};

namespace sync_detail {
// Out-of-line detector hooks (sync.cpp). `check` runs *before* the blocking
// lock call so an inversion reports instead of deadlocking; `acquired`
// pushes onto the thread-local held stack after the lock is taken;
// `released` pops it (out-of-order release is fine).
void check(const void* mutex, const char* name, int rank);
void acquired(const void* mutex, const char* name, int rank);
void released(const void* mutex);
} // namespace sync_detail

/// True when this build aborts on lock-order inversions.
constexpr bool sync_checks_enabled() { return XRL_SYNC_DEADLOCK_CHECKS != 0; }

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------
class XRL_CAPABILITY("mutex") Mutex {
public:
    Mutex(const char* name, Lock_rank rank) noexcept
        : name_(name), rank_(static_cast<int>(rank)) {}

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() XRL_ACQUIRE() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::check(this, name_, rank_);
#endif
        m_.lock();
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::acquired(this, name_, rank_);
#endif
    }

    void unlock() XRL_RELEASE() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::released(this);
#endif
        m_.unlock();
    }

    /// Rank-exempt: a failed try_lock cannot deadlock, and the admin gate
    /// uses it from below-rank contexts on purpose. A *successful* try still
    /// records the lock so ranks of later acquisitions are checked against
    /// it.
    bool try_lock() XRL_TRY_ACQUIRE(true) {
        if (!m_.try_lock()) return false;
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::acquired(this, name_, rank_);
#endif
        return true;
    }

    const char* name() const { return name_; }
    int rank() const { return static_cast<int>(rank_); }

private:
    friend class Cond_var;
    friend class Unique_lock;

    std::mutex m_;
    const char* name_;
    int rank_;
};

// ---------------------------------------------------------------------------
// Shared_mutex
// ---------------------------------------------------------------------------
class XRL_CAPABILITY("shared_mutex") Shared_mutex {
public:
    Shared_mutex(const char* name, Lock_rank rank) noexcept
        : name_(name), rank_(static_cast<int>(rank)) {}

    Shared_mutex(const Shared_mutex&) = delete;
    Shared_mutex& operator=(const Shared_mutex&) = delete;

    void lock() XRL_ACQUIRE() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::check(this, name_, rank_);
#endif
        m_.lock();
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::acquired(this, name_, rank_);
#endif
    }

    void unlock() XRL_RELEASE() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::released(this);
#endif
        m_.unlock();
    }

    void lock_shared() XRL_ACQUIRE_SHARED() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::check(this, name_, rank_);
#endif
        m_.lock_shared();
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::acquired(this, name_, rank_);
#endif
    }

    void unlock_shared() XRL_RELEASE_SHARED() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::released(this);
#endif
        m_.unlock_shared();
    }

    const char* name() const { return name_; }
    int rank() const { return static_cast<int>(rank_); }

private:
    std::shared_mutex m_;
    const char* name_;
    int rank_;
};

// ---------------------------------------------------------------------------
// Scoped locks
// ---------------------------------------------------------------------------

/// std::lock_guard equivalent.
class XRL_SCOPED_CAPABILITY Lock_guard {
public:
    explicit Lock_guard(Mutex& m) XRL_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~Lock_guard() XRL_RELEASE() { m_.unlock(); }

    Lock_guard(const Lock_guard&) = delete;
    Lock_guard& operator=(const Lock_guard&) = delete;

private:
    Mutex& m_;
};

/// std::unique_lock equivalent: unlockable mid-scope and usable with
/// Cond_var. Always constructed locked (no deferred mode — nothing in the
/// project needs it, and deferred locks defeat the static analysis).
class XRL_SCOPED_CAPABILITY Unique_lock {
public:
    explicit Unique_lock(Mutex& m) XRL_ACQUIRE(m) : mutex_(&m) {
        mutex_->lock();
        inner_ = std::unique_lock<std::mutex>(mutex_->m_, std::adopt_lock);
    }

    ~Unique_lock() XRL_RELEASE() {
        if (inner_.owns_lock()) {
#if XRL_SYNC_DEADLOCK_CHECKS
            sync_detail::released(mutex_);
#endif
            inner_.unlock();
        }
    }

    Unique_lock(const Unique_lock&) = delete;
    Unique_lock& operator=(const Unique_lock&) = delete;

    void lock() XRL_ACQUIRE() {
        mutex_->lock();
        inner_ = std::unique_lock<std::mutex>(mutex_->m_, std::adopt_lock);
    }

    void unlock() XRL_RELEASE() {
#if XRL_SYNC_DEADLOCK_CHECKS
        sync_detail::released(mutex_);
#endif
        inner_.unlock();
    }

    bool owns_lock() const { return inner_.owns_lock(); }

private:
    friend class Cond_var;

    Mutex* mutex_;
    std::unique_lock<std::mutex> inner_;
};

/// Shared (reader) scoped lock on a Shared_mutex.
class XRL_SCOPED_CAPABILITY Shared_lock {
public:
    explicit Shared_lock(Shared_mutex& m) XRL_ACQUIRE_SHARED(m) : m_(m) {
        m_.lock_shared();
    }
    ~Shared_lock() XRL_RELEASE() { m_.unlock_shared(); }

    Shared_lock(const Shared_lock&) = delete;
    Shared_lock& operator=(const Shared_lock&) = delete;

private:
    Shared_mutex& m_;
};

/// Exclusive (writer) scoped lock on a Shared_mutex.
class XRL_SCOPED_CAPABILITY Writer_lock {
public:
    explicit Writer_lock(Shared_mutex& m) XRL_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~Writer_lock() XRL_RELEASE() { m_.unlock(); }

    Writer_lock(const Writer_lock&) = delete;
    Writer_lock& operator=(const Writer_lock&) = delete;

private:
    Shared_mutex& m_;
};

/// Non-blocking try-lock scope. Deliberately carries NO thread-safety
/// annotations: clang's analysis of conditionally-held scoped capabilities
/// is unreliable across versions, and the only user (the daemon's admin
/// gate) guards no fields with its mutex — it is a mutual-exclusion token
/// for drain/snapshot, not a data guard.
class Try_lock {
public:
    explicit Try_lock(Mutex& m) XRL_NO_THREAD_SAFETY_ANALYSIS
        : m_(m), owned_(m.try_lock()) {}
    ~Try_lock() XRL_NO_THREAD_SAFETY_ANALYSIS {
        if (owned_) m_.unlock();
    }

    Try_lock(const Try_lock&) = delete;
    Try_lock& operator=(const Try_lock&) = delete;

    bool owns_lock() const { return owned_; }

private:
    Mutex& m_;
    bool owned_;
};

// ---------------------------------------------------------------------------
// Cond_var
// ---------------------------------------------------------------------------
// Thin wrapper over std::condition_variable operating on the std::mutex
// inside Mutex (not condition_variable_any — no extra inner mutex, no
// overhead). Wait methods are excluded from thread-safety analysis: the
// unlock/relock inside wait would otherwise confuse the lock-set tracking.
// Predicates passed to the wait overloads read guarded state, so annotate
// them XRL_REQUIRES(the_mutex) — clang analyses lambdas as functions, and
// wait always invokes the predicate with the lock held.
//
// The deadlock detector deliberately does no bookkeeping across the
// internal unlock/relock: the thread is blocked for that window and cannot
// acquire anything, so the held-stack staying populated is harmless — and
// on wake the lock really is held again.
class Cond_var {
public:
    Cond_var() = default;
    Cond_var(const Cond_var&) = delete;
    Cond_var& operator=(const Cond_var&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    void wait(Unique_lock& lock) XRL_NO_THREAD_SAFETY_ANALYSIS {
        cv_.wait(lock.inner_);
    }

    template <typename Predicate>
    void wait(Unique_lock& lock, Predicate pred) XRL_NO_THREAD_SAFETY_ANALYSIS {
        while (!pred()) cv_.wait(lock.inner_);
    }

    template <typename Rep, typename Period, typename Predicate>
    bool wait_for(Unique_lock& lock, const std::chrono::duration<Rep, Period>& dur,
                  Predicate pred) XRL_NO_THREAD_SAFETY_ANALYSIS {
        return cv_.wait_for(lock.inner_, dur, pred);
    }

    template <typename Clock, typename Duration, typename Predicate>
    bool wait_until(Unique_lock& lock,
                    const std::chrono::time_point<Clock, Duration>& deadline,
                    Predicate pred) XRL_NO_THREAD_SAFETY_ANALYSIS {
        return cv_.wait_until(lock.inner_, deadline, pred);
    }

private:
    std::condition_variable cv_;
};

} // namespace xrl
