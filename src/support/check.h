// Precondition / postcondition / invariant checks, in the spirit of the
// GSL Expects()/Ensures() placeholders recommended by the C++ Core
// Guidelines (I.6, I.8). Violations throw so tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xrl {

/// Thrown when a contract (precondition, postcondition, invariant) fails.
class Contract_violation : public std::logic_error {
public:
    explicit Contract_violation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

#ifdef XRL_BACKTRACE_ON_CONTRACT_FAIL
void dump_backtrace();
#endif

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line)
{
#ifdef XRL_BACKTRACE_ON_CONTRACT_FAIL
    dump_backtrace();
#endif
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << file << ":" << line;
    throw Contract_violation(os.str());
}

} // namespace detail

} // namespace xrl

#define XRL_EXPECTS(cond)                                                        \
    do {                                                                         \
        if (!(cond)) ::xrl::detail::contract_fail("Expects", #cond, __FILE__, __LINE__); \
    } while (false)

#define XRL_ENSURES(cond)                                                        \
    do {                                                                         \
        if (!(cond)) ::xrl::detail::contract_fail("Ensures", #cond, __FILE__, __LINE__); \
    } while (false)

#define XRL_ASSERT(cond)                                                         \
    do {                                                                         \
        if (!(cond)) ::xrl::detail::contract_fail("Assert", #cond, __FILE__, __LINE__); \
    } while (false)
