// Compile-time aggregate field counting — the drift guard for hand-written
// serialisers.
//
// A serialiser with an explicit field list silently rots when its struct
// grows a field: the new member simply never reaches disk. Pairing the
// field list with
//
//   static_assert(aggregate_field_count<Optimize_result> == 11,
//                 "update serialise_result / deserialise_result");
//
// turns that silent data loss into a compile error at the serialiser —
// whoever adds the field is pointed at exactly the code that must learn
// about it.
//
// The count is derived from aggregate initialisation: `T{a1, ..., aN}` is
// well-formed for an aggregate exactly when N does not exceed its number
// of direct members (probing with a type convertible to anything), so the
// largest accepted N *is* the member count. Works for plain aggregates —
// no base classes, no user-provided constructors — which is what every
// serialised struct here is.
#pragma once

#include <cstddef>

namespace xrl {

namespace detail {

/// Probe convertible to any member type. Only named in unevaluated
/// contexts, so the conversion operator needs no definition.
struct Any_field {
    template <class T>
    constexpr operator T() const noexcept;
};

template <class T, class... Probes>
constexpr std::size_t count_aggregate_fields()
{
    if constexpr (requires { T{Probes{}..., Any_field{}}; })
        return count_aggregate_fields<T, Probes..., Any_field>();
    else
        return sizeof...(Probes);
}

} // namespace detail

/// Number of direct members of aggregate `T`.
template <class T>
inline constexpr std::size_t aggregate_field_count = detail::count_aggregate_fields<T>();

} // namespace xrl
