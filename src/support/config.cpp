#include "support/config.h"

#include <cstdlib>

namespace xrl {

std::string env_or(const std::string& name, const std::string& fallback)
{
    const char* v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0') return fallback;
    return std::string(v);
}

std::int64_t env_or_int(const std::string& name, std::int64_t fallback)
{
    const std::string v = env_or(name, "");
    if (v.empty()) return fallback;
    char* end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') return fallback;
    return parsed;
}

Scale scale_from_env()
{
    return env_or("XRLFLOW_SCALE", "smoke") == "paper" ? Scale::paper : Scale::smoke;
}

std::uint64_t seed_from_env()
{
    return static_cast<std::uint64_t>(env_or_int("XRLFLOW_SEED", 7));
}

int episodes_from_env()
{
    return static_cast<int>(env_or_int("XRLFLOW_EPISODES", 0));
}

} // namespace xrl
