// Process-wide experiment configuration, read once from environment
// variables. Keeps benchmark binaries scriptable without argv plumbing.
#pragma once

#include <cstdint>
#include <string>

namespace xrl {

/// Experiment scale. `smoke` (default) shrinks model depth and RL episode
/// counts so the whole bench suite completes in minutes on a laptop CPU;
/// `paper` runs full-size models and longer training.
enum class Scale { smoke, paper };

/// Read an environment variable, returning `fallback` when unset/empty.
std::string env_or(const std::string& name, const std::string& fallback);

/// Read an integer environment variable, returning `fallback` when
/// unset/invalid.
std::int64_t env_or_int(const std::string& name, std::int64_t fallback);

/// XRLFLOW_SCALE=smoke|paper (default smoke).
Scale scale_from_env();

/// XRLFLOW_SEED (default 7).
std::uint64_t seed_from_env();

/// XRLFLOW_EPISODES override for RL training benches (0 = use scale default).
int episodes_from_env();

} // namespace xrl
