// Deterministic fault injection for the fleet resilience layer.
//
// The record_file and protocol tests already prove the byte-level failure
// paths (flipped bytes, truncation, future versions) with hand-built
// damage; a Fault_plan lifts the same idea to *component* level so fleet
// failure paths — a shard that starts failing every job, a daemon that
// drops a reply frame, a stalled send — are driven by seeded, reproducible
// plans instead of luck.
//
// A plan is a set of rules keyed by *site*: a short string naming an
// injection point ("shard/0", "daemon/send", "client/send"). Components
// that opt in call next(site) once per event they are about to perform
// (one executed job, one sent frame); the plan counts the event and
// answers with the action to inject, matched by the event's index against
// the rules registered for that site:
//
//   plan.add("daemon/send", {.begin = 1, .count = 1, .action = drop});
//     // the daemon's second sent frame vanishes in flight
//   plan.add("shard/0", {.begin = 3, .action = fail});
//     // shard 0 fails every job from its 4th on, until clear()ed
//
// Everything is deterministic: same plan + same event order = same faults.
// clear(site) "heals" a site (removes its rules); its event counter keeps
// counting so later rules can still be indexed absolutely. Thread-safe —
// sites are consulted from shard workers and session turns concurrently.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "support/sync.h"

namespace xrl {

enum class Fault_action : std::uint8_t {
    none = 0, ///< No rule matched; proceed normally.
    fail,     ///< Throw / fail the operation (a crashed or sick component).
    drop,     ///< Swallow the bytes silently (a frame lost in flight).
    corrupt,  ///< Flip a payload byte before sending (damage in transit).
    delay,    ///< Sleep delay_seconds first (a stall / heartbeat gap), then proceed.
};

const char* to_string(Fault_action action);

/// One injection rule: events [begin, begin + count) at the rule's site
/// get `action`. Defaults cover the common cases — "fail from event N on"
/// is {.begin = N}, "drop exactly event N" is {.begin = N, .count = 1,
/// .action = drop}.
struct Fault_rule {
    std::uint64_t begin = 0;
    std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
    Fault_action action = Fault_action::fail;
    double delay_seconds = 0.0; ///< Only meaningful for `delay`.
};

class Fault_plan {
public:
    /// Register a rule at `site`. Rules are consulted in registration
    /// order; the first match wins.
    void add(const std::string& site, Fault_rule rule);

    /// Heal a site: remove its rules. The event counter keeps counting, so
    /// rule indices stay absolute across a heal.
    void clear(const std::string& site);

    /// Consume one event at `site` and return the action to inject (none
    /// when no rule matches). For `delay`, `*delay_seconds` receives the
    /// rule's sleep. Sites spring into existence on first use.
    Fault_action next(const std::string& site, double* delay_seconds = nullptr);

    /// Events consumed at `site` so far.
    std::uint64_t events(const std::string& site) const;

    /// Events at `site` that matched a rule (faults actually injected).
    std::uint64_t injected(const std::string& site) const;

private:
    struct Site {
        std::uint64_t events = 0;
        std::uint64_t injected = 0;
        std::vector<Fault_rule> rules;
    };

    mutable Mutex mutex_{"fault_plan", Lock_rank::fault_plan};
    std::map<std::string, Site> sites_ XRL_GUARDED_BY(mutex_);
};

} // namespace xrl
