// Arena and pool allocation for the search hot loop.
//
// Every optimisation step copies the host graph tens of times (one copy per
// materialised candidate), and each copy used to pay one heap allocation per
// node for the inputs vector, the name string, and the params — churn that
// dominated the candidate pass once the algorithmic costs were cut. Two
// building blocks remove it:
//
//   - Arena: a chunked monotonic byte allocator. reset() recycles every
//     chunk without returning memory to the heap, so a steady-state step
//     allocates from warm regions. High-water statistics feed the bench
//     artifacts (BENCH_candidates.json "arena" section).
//
//   - Pool<T>: recycled object slots placed in an Arena. acquire() reuses a
//     released slot when one exists; for container-heavy types (Graph: one
//     nodes_ vector whose Nodes own inputs/params/name buffers), assigning
//     into a recycled slot reuses every nested allocation via element-wise
//     copy-assignment. The candidate engine keeps one Pool<Graph> and
//     releases the whole step's slots before generating the next step — the
//     "reusable region reset per step".
//
// Neither type is thread-safe: an Arena or Pool has exactly one owner (the
// candidate engine instance, which is itself single-owner in step mode —
// see docs/CONCURRENCY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "support/check.h"

namespace xrl {

/// Allocation statistics, exposed for tests and the bench artifacts.
struct Arena_stats {
    std::size_t chunks = 0;            ///< Chunks currently owned.
    std::size_t reserved_bytes = 0;    ///< Sum of chunk capacities.
    std::size_t live_bytes = 0;        ///< Bytes handed out since the last reset.
    std::size_t high_water_bytes = 0;  ///< Max live_bytes ever observed.
    std::uint64_t allocations = 0;     ///< allocate() calls over the lifetime.
    std::uint64_t resets = 0;          ///< reset() calls over the lifetime.
};

/// Chunked monotonic byte allocator. allocate() bumps a pointer; reset()
/// makes every chunk reusable without freeing it. Individual deallocation
/// is a no-op (Arena_allocator::deallocate exists only to satisfy the
/// allocator interface).
class Arena {
public:
    static constexpr std::size_t default_chunk_bytes = 64 * 1024;

    explicit Arena(std::size_t chunk_bytes = default_chunk_bytes) : chunk_bytes_(chunk_bytes)
    {
        XRL_EXPECTS(chunk_bytes_ > 0);
    }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        XRL_EXPECTS(align > 0 && (align & (align - 1)) == 0);
        if (bytes == 0) bytes = 1;
        while (current_ < chunks_.size()) {
            Chunk& chunk = chunks_[current_];
            const std::size_t aligned = (chunk.used + align - 1) & ~(align - 1);
            if (aligned + bytes <= chunk.capacity) {
                chunk.used = aligned + bytes;
                bump_live(bytes);
                return chunk.data.get() + aligned;
            }
            ++current_;
        }
        // No chunk fits: grow by one chunk sized for the request.
        const std::size_t capacity = bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
        chunks_.push_back({std::make_unique<std::byte[]>(capacity), capacity, 0});
        stats_.chunks = chunks_.size();
        stats_.reserved_bytes += capacity;
        Chunk& chunk = chunks_.back();
        chunk.used = bytes; // new[] storage is max-aligned, so offset 0 satisfies `align`
        bump_live(bytes);
        return chunk.data.get();
    }

    /// Make every chunk reusable. Nothing is returned to the heap, so the
    /// next cycle allocates from warm memory.
    void reset()
    {
        for (Chunk& chunk : chunks_) chunk.used = 0;
        current_ = 0;
        stats_.live_bytes = 0;
        ++stats_.resets;
    }

    const Arena_stats& stats() const { return stats_; }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    void bump_live(std::size_t bytes)
    {
        ++stats_.allocations;
        stats_.live_bytes += bytes;
        if (stats_.live_bytes > stats_.high_water_bytes)
            stats_.high_water_bytes = stats_.live_bytes;
    }

    std::size_t chunk_bytes_;
    std::vector<Chunk> chunks_;
    std::size_t current_ = 0;
    Arena_stats stats_;
};

/// Minimal allocator adapter over an Arena, for containers whose lifetime
/// is bounded by the arena's reset cycle. deallocate is a no-op.
template <typename T>
class Arena_allocator {
public:
    using value_type = T;

    explicit Arena_allocator(Arena& arena) : arena_(&arena) {}
    template <typename U>
    Arena_allocator(const Arena_allocator<U>& other) : arena_(other.arena())
    {
    }

    T* allocate(std::size_t n)
    {
        return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    void deallocate(T*, std::size_t) {} // monotonic: freed at reset()

    Arena* arena() const { return arena_; }

    template <typename U>
    bool operator==(const Arena_allocator<U>& other) const
    {
        return arena_ == other.arena();
    }

private:
    Arena* arena_;
};

/// Pool usage statistics, exposed for tests and the bench artifacts.
struct Pool_stats {
    std::size_t slots = 0;            ///< Slots ever constructed.
    std::size_t in_use = 0;           ///< Currently acquired.
    std::size_t high_water_slots = 0; ///< Max simultaneously acquired.
    std::uint64_t acquires = 0;       ///< acquire() calls.
    std::uint64_t reuses = 0;         ///< Acquires served from the free list.
};

/// Recycled slots of T placed in an Arena. Slots are constructed at most
/// `slots` times over the pool's lifetime; release() returns a slot to the
/// free list with its internal buffers intact, so assigning a new value
/// into a reacquired slot reuses them (vector/string copy-assignment).
/// Destructors run when the pool is destroyed.
template <typename T>
class Pool {
public:
    explicit Pool(std::size_t arena_chunk_bytes = Arena::default_chunk_bytes)
        : arena_(arena_chunk_bytes)
    {
    }

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    ~Pool()
    {
        for (T* slot : all_) slot->~T();
    }

    /// A slot holding a default-constructed-or-recycled T. The caller
    /// typically copy-assigns its payload so the slot's buffers are reused.
    T* acquire()
    {
        ++stats_.acquires;
        T* slot = nullptr;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            ++stats_.reuses;
        } else {
            slot = new (arena_.allocate(sizeof(T), alignof(T))) T();
            all_.push_back(slot);
            stats_.slots = all_.size();
        }
        ++stats_.in_use;
        if (stats_.in_use > stats_.high_water_slots) stats_.high_water_slots = stats_.in_use;
        return slot;
    }

    /// Return a slot; its buffers stay allocated for the next acquire().
    void release(T* slot)
    {
        XRL_EXPECTS(slot != nullptr);
        XRL_EXPECTS(stats_.in_use > 0);
        --stats_.in_use;
        free_.push_back(slot);
    }

    const Pool_stats& stats() const { return stats_; }
    const Arena_stats& arena_stats() const { return arena_.stats(); }

private:
    Arena arena_;
    std::vector<T*> all_;  ///< Every slot ever constructed (for destruction).
    std::vector<T*> free_; ///< Released slots awaiting reuse.
    Pool_stats stats_;
};

} // namespace xrl
