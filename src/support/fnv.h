// FNV-1a hashing helpers, shared by the device-profile fingerprint and the
// router's shard-spread hash so the magic constants live in one place.
#pragma once

#include <cstdint>
#include <string_view>

namespace xrl {

inline constexpr std::uint64_t fnv1a_offset = 1469598103934665603ULL;
inline constexpr std::uint64_t fnv1a_prime = 1099511628211ULL;

/// Fold one 64-bit value into the running hash.
inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t value)
{
    h ^= value;
    return h * fnv1a_prime;
}

/// Hash `bytes` byte-by-byte into `h` (pass fnv1a_offset, or a prior hash
/// to chain).
inline std::uint64_t fnv1a_bytes(std::uint64_t h, std::string_view bytes)
{
    for (const char c : bytes) h = fnv1a_mix(h, static_cast<unsigned char>(c));
    return h;
}

} // namespace xrl
