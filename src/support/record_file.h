// Versioned, checksummed, crash-safe record files — the on-disk format
// behind the serving layer's warm-start state (serve/state_store.h).
//
// A record file is a header (magic + format version) followed by a flat
// sequence of records. Every record is length-framed, carries its own
// format version and a timestamp, and is protected by a per-record FNV-1a
// checksum, so a reader can:
//
//   * skip a corrupt record (flipped byte, truncated tail) and keep
//     loading the rest,
//   * skip a record written by a *future* format version without having to
//     understand its body (the length frame walks over it),
//   * refuse a whole file from a future header version,
//
// all without throwing — damage is reported through Record_load_report
// counters, never as a crash, because warm-start state is an optimisation
// and a cold start must always remain available.
//
// Writes are atomic: the new contents go to `<path>.tmp` which is then
// renamed over `path`, so a writer dying mid-snapshot leaves the previous
// snapshot intact (the stale temp file is ignored by readers and replaced
// by the next successful write). Byte order is the host's: this is
// same-machine persistence (a server restarting), not a wire format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xrl {

// ---------------------------------------------------------------------------
// Byte composition helpers
// ---------------------------------------------------------------------------

/// Appends fixed-width scalars and length-prefixed strings to a byte
/// string. Floating-point values are written by bit pattern, so payloads
/// round-trip bit-exactly (the warm-start parity guarantee rides on this).
class Byte_writer {
public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    void i32(std::int32_t value);
    void i64(std::int64_t value);
    void f32(float value);
    void f64(double value);
    void str(std::string_view value); ///< u64 length + raw bytes.

    const std::string& bytes() const { return out_; }
    std::string take() { return std::move(out_); }

private:
    std::string out_;
};

/// Bounds-checked reader over a byte string. Any read past the end throws
/// std::runtime_error — deserialisers fail loudly and their callers (the
/// state store) catch, count, and skip.
class Byte_reader {
public:
    explicit Byte_reader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    std::int64_t i64();
    float f32();
    double f64();
    std::string str();
    std::string raw(std::size_t size); ///< Exactly `size` unframed bytes.

    /// Guard a just-read element count against a corrupt length field:
    /// throws unless `count` items of at least `min_bytes_each` could still
    /// fit in the remaining input (stops giant bogus reserves before they
    /// allocate).
    void expect_items(std::uint64_t count, std::size_t min_bytes_each) const;

    bool at_end() const { return pos_ == bytes_.size(); }
    std::size_t remaining() const { return bytes_.size() - pos_; }

private:
    void take(void* destination, std::size_t size);

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// The record file
// ---------------------------------------------------------------------------

/// Format version written to new files and records; readers accept
/// anything up to it and skip-count anything beyond it.
inline constexpr std::uint32_t record_file_version = 1;

struct Record {
    /// Per-record format version. Defaults to current; tests (and future
    /// writers) can stamp records with a newer version to exercise the
    /// reader's skip path.
    std::uint32_t version = record_file_version;

    /// Caller-defined timestamp in seconds since the Unix epoch; the state
    /// store uses it for age-based eviction.
    double stamp = 0.0;

    std::string key;
    std::string payload; ///< Opaque bytes; the reader never interprets them.
};

/// What a read found, damage included. Counters are additive across the
/// file; a clean load has everything but `loaded` at zero/false.
struct Record_load_report {
    bool file_missing = false;            ///< No file at `path` (a cold start).
    bool header_version_mismatch = false; ///< Future header: whole file skipped.
    std::size_t loaded = 0;
    std::size_t skipped_corrupt = 0; ///< Bad checksum, bad frame, or truncation.
    std::size_t skipped_version = 0; ///< Record from a future format version.
};

/// Atomically replace `path` with the given records: writes `<path>.tmp`
/// and renames it over `path` (creating parent directories on demand).
/// Throws std::runtime_error when the filesystem refuses — persistence
/// failures are loud, load failures are soft.
void write_record_file(const std::string& path, const std::vector<Record>& records);

/// Load every intact record from `path`. Never throws on file *content* —
/// corrupt or future-versioned records are skipped and counted in
/// `report` (optional) — and a missing file is an empty result, not an
/// error.
std::vector<Record> read_record_file(const std::string& path,
                                     Record_load_report* report = nullptr);

} // namespace xrl
