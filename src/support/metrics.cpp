#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xrl {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds))
{
    for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
        if (!(bounds_[i] < bounds_[i + 1]))
            throw std::invalid_argument("Histogram bounds must be strictly increasing");
    for (double bound : bounds_)
        if (!std::isfinite(bound))
            throw std::invalid_argument("Histogram bounds must be finite (+Inf is implicit)");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double value)
{
    // First bucket whose upper bound admits the value; past-the-end = +Inf.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed))
        ;
}

Histogram::Snapshot Histogram::snapshot() const
{
    Snapshot out;
    out.upper_bounds = bounds_;
    out.counts.resize(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        out.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    return out;
}

double Histogram::Snapshot::quantile(double q) const
{
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank index into the cumulative distribution, then linear
    // interpolation between the holding bucket's edges.
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::uint64_t next = cumulative + counts[i];
        if (next >= target) {
            const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
            if (i == upper_bounds.size()) return lower; // +Inf bucket: no upper edge.
            const double upper = upper_bounds[i];
            const double within =
                counts[i] == 0
                    ? 0.0
                    : static_cast<double>(target - cumulative) / static_cast<double>(counts[i]);
            return lower + (upper - lower) * within;
        }
        cumulative = next;
    }
    return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

std::vector<double> latency_ms_buckets()
{
    return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 60000};
}

std::vector<double> duration_us_buckets()
{
    return {1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
            100000, 250000, 1000000};
}

const char* to_string(Metric_kind kind)
{
    switch (kind) {
    case Metric_kind::counter: return "counter";
    case Metric_kind::gauge: return "gauge";
    case Metric_kind::histogram: return "histogram";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Metrics_registry::Series {
    Metric_labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

struct Metrics_registry::Family {
    std::string help;
    Metric_kind kind = Metric_kind::counter;
    std::vector<double> bounds; ///< Histogram families: the one schema.
    /// Keyed by the canonical label string; values never erased, so the
    /// Counter/Gauge/Histogram references handed out stay valid.
    std::map<std::string, Series> series;
};

Metrics_registry::Metrics_registry() = default;
Metrics_registry::~Metrics_registry() = default;

namespace {

/// Canonical series key and exposition body: `key1="v1",key2="v2"` with
/// keys sorted and values escaped (\\, \", \n — the Prometheus text rules).
std::string format_labels(const Metric_labels& labels)
{
    std::string out;
    for (const auto& [key, value] : labels) {
        if (!out.empty()) out += ',';
        out += key;
        out += "=\"";
        for (char c : value) {
            if (c == '\\') out += "\\\\";
            else if (c == '"') out += "\\\"";
            else if (c == '\n') out += "\\n";
            else out += c;
        }
        out += '"';
    }
    return out;
}

Metric_labels sorted(Metric_labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

/// Prometheus floats: integral values print without exponent noise.
std::string format_value(double value)
{
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::abs(value) < 1e15)
        return std::to_string(static_cast<long long>(value));
    std::ostringstream os;
    os << value;
    return os.str();
}

} // namespace

Metrics_registry& Metrics_registry::global()
{
    static Metrics_registry registry;
    return registry;
}

Metrics_registry::Family& Metrics_registry::family_locked(std::string_view name,
                                                          std::string_view help,
                                                          Metric_kind kind)
{
    auto it = families_.find(name);
    if (it == families_.end()) {
        auto family = std::make_unique<Family>();
        family->help = std::string(help);
        family->kind = kind;
        it = families_.emplace(std::string(name), std::move(family)).first;
    } else if (it->second->kind != kind) {
        throw std::invalid_argument("metric '" + std::string(name) + "' already registered as " +
                                    to_string(it->second->kind) + ", requested " +
                                    to_string(kind));
    }
    return *it->second;
}

Counter& Metrics_registry::counter(std::string_view name, std::string_view help,
                                   Metric_labels labels)
{
    const Lock_guard lock(mutex_);
    Family& family = family_locked(name, help, Metric_kind::counter);
    labels = sorted(std::move(labels));
    Series& series = family.series[format_labels(labels)];
    if (series.counter == nullptr) {
        series.labels = std::move(labels);
        series.counter = std::make_unique<Counter>();
    }
    return *series.counter;
}

Gauge& Metrics_registry::gauge(std::string_view name, std::string_view help, Metric_labels labels)
{
    const Lock_guard lock(mutex_);
    Family& family = family_locked(name, help, Metric_kind::gauge);
    labels = sorted(std::move(labels));
    Series& series = family.series[format_labels(labels)];
    if (series.gauge == nullptr) {
        series.labels = std::move(labels);
        series.gauge = std::make_unique<Gauge>();
    }
    return *series.gauge;
}

Histogram& Metrics_registry::histogram(std::string_view name, std::string_view help,
                                       std::vector<double> upper_bounds, Metric_labels labels)
{
    const Lock_guard lock(mutex_);
    Family& family = family_locked(name, help, Metric_kind::histogram);
    if (family.series.empty()) {
        family.bounds = upper_bounds;
    } else if (family.bounds != upper_bounds) {
        throw std::invalid_argument("histogram '" + std::string(name) +
                                    "' already registered with different buckets");
    }
    labels = sorted(std::move(labels));
    Series& series = family.series[format_labels(labels)];
    if (series.histogram == nullptr) {
        series.labels = std::move(labels);
        series.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    }
    return *series.histogram;
}

std::vector<Metrics_registry::Family_snapshot> Metrics_registry::snapshot() const
{
    const Lock_guard lock(mutex_);
    std::vector<Family_snapshot> out;
    out.reserve(families_.size());
    for (const auto& [name, family] : families_) {
        Family_snapshot snap;
        snap.name = name;
        snap.help = family->help;
        snap.kind = family->kind;
        for (const auto& [key, series] : family->series) {
            Series_snapshot s;
            s.labels = series.labels;
            if (series.counter != nullptr)
                s.value = static_cast<double>(series.counter->value());
            else if (series.gauge != nullptr)
                s.value = series.gauge->value();
            else if (series.histogram != nullptr)
                s.histogram = series.histogram->snapshot();
            snap.series.push_back(std::move(s));
        }
        out.push_back(std::move(snap));
    }
    return out;
}

std::string Metrics_registry::expose() const
{
    const std::vector<Family_snapshot> families = snapshot();
    std::ostringstream os;
    for (const Family_snapshot& family : families) {
        if (!family.help.empty()) os << "# HELP " << family.name << ' ' << family.help << '\n';
        os << "# TYPE " << family.name << ' ' << to_string(family.kind) << '\n';
        for (const Series_snapshot& series : family.series) {
            const std::string labels = format_labels(series.labels);
            if (!series.histogram.has_value()) {
                os << family.name;
                if (!labels.empty()) os << '{' << labels << '}';
                os << ' ' << format_value(series.value) << '\n';
                continue;
            }
            const Histogram::Snapshot& h = *series.histogram;
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i <= h.upper_bounds.size(); ++i) {
                cumulative += h.counts[i];
                os << family.name << "_bucket{" << labels << (labels.empty() ? "" : ",")
                   << "le=\""
                   << (i == h.upper_bounds.size() ? "+Inf" : format_value(h.upper_bounds[i]))
                   << "\"} " << cumulative << '\n';
            }
            os << family.name << "_sum";
            if (!labels.empty()) os << '{' << labels << '}';
            os << ' ' << format_value(h.sum) << '\n';
            os << family.name << "_count";
            if (!labels.empty()) os << '{' << labels << '}';
            os << ' ' << h.count << '\n';
        }
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Scoped_timer_us
// ---------------------------------------------------------------------------

Scoped_timer_us::Scoped_timer_us(Histogram& histogram)
    : histogram_(histogram), start_(std::chrono::steady_clock::now())
{
}

Scoped_timer_us::~Scoped_timer_us()
{
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.observe(std::chrono::duration<double, std::micro>(elapsed).count());
}

} // namespace xrl
