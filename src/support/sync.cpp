// Lock-rank deadlock detector: the out-of-line guts behind the hooks in
// sync.h. Compiled unconditionally (it is tiny); the hooks are only *called*
// when XRL_SYNC_DEADLOCK_CHECKS is on, so release builds pay nothing.
//
// Model: a thread-local stack of the locks this thread currently holds.
// Acquiring is legal only when the new lock's rank is strictly greater than
// every rank already held — the classic total-order discipline that makes
// cross-thread deadlock impossible. A violation aborts immediately with
// both lock names, turning an inversion that would deadlock one run in a
// thousand into a deterministic failure on its first wrong-order
// acquisition, even on a single thread.
#include "support/sync.h"

#include <cstdio>
#include <cstdlib>

namespace xrl::sync_detail {
namespace {

struct Held {
    const void* mutex;
    const char* name;
    int rank;
};

// Fixed-capacity stack: no allocation on the lock path, and 32 simultaneous
// locks per thread is an order of magnitude beyond the deepest real nesting
// (admin -> membership -> server -> job -> telemetry -> metrics is six).
constexpr int max_held = 32;

thread_local Held held[max_held];
thread_local int held_count = 0;

[[noreturn]] void die(const char* fmt, const char* a, int ar, const char* b,
                      int br) {
    std::fprintf(stderr, fmt, a, ar, b, br);
    std::fflush(stderr);
    std::abort();
}

} // namespace

void check(const void* mutex, const char* name, int rank) {
    for (int i = 0; i < held_count; ++i) {
        if (held[i].mutex == mutex) {
            die("xrl::sync lock-order violation: recursive acquisition of "
                "\"%s\" (rank %d) while already holding \"%s\" (rank %d)\n",
                name, rank, held[i].name, held[i].rank);
        }
        if (held[i].rank >= rank) {
            die("xrl::sync lock-order violation: acquiring \"%s\" (rank %d) "
                "while holding \"%s\" (rank %d); ranks must be strictly "
                "increasing — see docs/CONCURRENCY.md\n",
                name, rank, held[i].name, held[i].rank);
        }
    }
}

void acquired(const void* mutex, const char* name, int rank) {
    if (held_count >= max_held) {
        std::fprintf(stderr,
                     "xrl::sync: more than %d locks held by one thread "
                     "(acquiring \"%s\", rank %d); raise max_held or fix the "
                     "caller\n",
                     max_held, name, rank);
        std::fflush(stderr);
        std::abort();
    }
    held[held_count++] = Held{mutex, name, rank};
}

void released(const void* mutex) {
    // Locks are almost always released LIFO; scan from the top so the common
    // case is one comparison. Out-of-order release (e.g. Unique_lock on an
    // outer scope outliving an inner Lock_guard release) is still handled.
    for (int i = held_count - 1; i >= 0; --i) {
        if (held[i].mutex == mutex) {
            for (int j = i; j + 1 < held_count; ++j) held[j] = held[j + 1];
            --held_count;
            return;
        }
    }
    // Releasing a lock we never saw acquired: only possible via API misuse
    // (e.g. unlocking twice). Abort loudly rather than corrupt the stack.
    std::fprintf(stderr,
                 "xrl::sync: release of a lock this thread does not hold\n");
    std::fflush(stderr);
    std::abort();
}

} // namespace xrl::sync_detail
