// Deterministic, seedable random number generation (xoshiro256**).
//
// All stochastic components of the system (rule-generator fingerprints,
// latency measurement noise, PPO sampling, weight init) draw from explicit
// Rng instances so experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace xrl {

/// Counter-free splitmix64; used to expand a single seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Small, fast, and good enough for simulation and
/// initialisation purposes (not cryptographic).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double uniform();

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n). Requires n > 0.
    std::size_t uniform_index(std::size_t n);

    /// Standard normal via Box-Muller.
    double normal();

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Vector of iid uniform floats in [lo, hi).
    std::vector<float> uniform_vector(std::size_t n, float lo, float hi);

    /// Sample an index from an (unnormalised, non-negative) weight vector.
    std::size_t sample_weights(const std::vector<double>& weights);

    /// Split off an independently-seeded child generator.
    Rng split();

private:
    std::uint64_t s_[4];
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace xrl
