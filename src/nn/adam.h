// Adam optimiser with optional global-norm gradient clipping.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/autograd.h"

namespace xrl {

struct Adam_config {
    double learning_rate = 5e-4;  ///< Paper Table 4.
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double max_grad_norm = 0.5;   ///< <= 0 disables clipping.
};

class Adam {
public:
    explicit Adam(std::vector<Parameter*> parameters, Adam_config config = {});

    /// Apply one update from the accumulated gradients, then zero them.
    void step();

    /// Zero gradients without stepping.
    void zero_grad();

    std::int64_t steps_taken() const { return steps_; }

private:
    struct Moment {
        Tensor m;
        Tensor v;
    };

    std::vector<Parameter*> parameters_;
    std::vector<Moment> moments_;
    Adam_config config_;
    std::int64_t steps_ = 0;
};

} // namespace xrl
