// Layers: Linear and Mlp over the autograd tape.
#pragma once

#include <vector>

#include "nn/autograd.h"
#include "support/rng.h"

namespace xrl {

/// Dense layer y = x W + b with Xavier-uniform initialisation.
class Linear {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

    Var operator()(Tape& tape, Var x);

    std::vector<Parameter*> parameters();

    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }

private:
    Parameter weight_;
    Parameter bias_;
};

/// Multi-layer perceptron with ReLU between layers and a linear final layer
/// (the paper's policy/value heads are two-layer MLPs, Table 4:
/// hidden sizes [256, 64]).
class Mlp {
public:
    Mlp(std::int64_t in_features, std::vector<std::int64_t> hidden, std::int64_t out_features,
        Rng& rng);

    Var operator()(Tape& tape, Var x);

    std::vector<Parameter*> parameters();

private:
    std::vector<Linear> layers_;
};

} // namespace xrl
