// Tape-based reverse-mode automatic differentiation.
//
// Substitutes for the paper's JAX stack: every op records a backward
// closure on a per-forward-pass tape; Tape::backward() sweeps the tape in
// reverse. Parameters live outside the tape and accumulate gradients
// across calls, so one optimiser step can consume several forward passes
// (PPO minibatches).
//
// The op set is exactly what the GNN encoder (Eqs. 6-8) and the PPO losses
// (Eqs. 3-5) need: dense matmul, broadcasted elementwise arithmetic, row
// gather / segment reductions for message passing, and a segment softmax
// for GAT attention.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace xrl {

/// A trainable tensor with a persistent gradient accumulator.
struct Parameter {
    Tensor value;
    Tensor grad;

    explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
    void zero_grad() { std::fill(grad.values().begin(), grad.values().end(), 0.0F); }
};

class Tape;

/// Handle to a tape entry (cheap to copy; valid while the tape lives).
struct Var {
    int index = -1;

    bool valid() const { return index >= 0; }
};

class Tape {
public:
    // -- leaves ---------------------------------------------------------------

    /// Constant input (no gradient).
    Var constant(Tensor value);

    /// Trainable parameter; backward() accumulates into `p.grad`.
    Var param(Parameter& p);

    // -- arithmetic -----------------------------------------------------------

    Var add(Var a, Var b);       ///< Elementwise; b may broadcast (bias row/col/scalar).
    Var sub(Var a, Var b);       ///< Same-shape elementwise.
    Var mul(Var a, Var b);       ///< Elementwise; b may broadcast.
    Var scale(Var a, float factor);
    Var neg(Var a) { return scale(a, -1.0F); }

    Var matmul(Var a, Var b);    ///< 2-D matrix product.

    Var relu(Var a);
    Var leaky_relu(Var a, float slope);
    Var tanh(Var a);
    Var exp(Var a);
    Var log(Var a);              ///< Requires positive values.
    Var square(Var a) { return mul(a, a); }

    /// Elementwise min of two same-shape vars (gradient follows the winner).
    Var minimum(Var a, Var b);

    /// Clamp with zero gradient outside [lo, hi].
    Var clamp(Var a, float lo, float hi);

    // -- structure ------------------------------------------------------------

    /// Concatenate two 2-D vars along columns.
    Var concat_cols(Var a, Var b);

    /// Concatenate two 2-D vars along rows (either side may have 0 rows).
    Var concat_rows(Var a, Var b);

    /// out[r] = a[rows[r]] for a 2-D var; backward scatter-adds.
    Var gather_rows(Var a, std::vector<std::int64_t> rows);

    /// out[s] = sum of rows r with segments[r] == s (2-D); `num_segments`
    /// rows in the result.
    Var segment_sum(Var a, std::vector<std::int64_t> segments, std::int64_t num_segments);

    /// Softmax over each segment of a column vector (E x 1): rows sharing a
    /// segment id compete. Numerically stabilised per segment.
    Var segment_softmax(Var scores, std::vector<std::int64_t> segments, std::int64_t num_segments);

    /// Sum every element to a 1x1 scalar.
    Var sum_all(Var a);

    /// Mean of every element (1x1).
    Var mean_all(Var a);

    /// Pick a single element as a 1x1 scalar.
    Var pick(Var a, std::int64_t flat_index);

    // -- access ---------------------------------------------------------------

    const Tensor& value(Var v) const;
    const Tensor& grad(Var v) const;
    std::size_t size() const { return nodes_.size(); }

    /// Reverse sweep from a scalar (1x1) loss; accumulates into parameters.
    void backward(Var loss);

private:
    struct Node {
        Tensor value;
        Tensor grad;
        std::function<void()> backprop; // may be empty (leaves)
        Parameter* parameter = nullptr;
    };

    Var push(Tensor value, std::function<void()> backprop = {}, Parameter* parameter = nullptr);
    Node& node(Var v);
    const Node& node(Var v) const;

    std::vector<Node> nodes_;
};

} // namespace xrl
