#include "nn/adam.h"

#include <cmath>

#include "support/check.h"

namespace xrl {

Adam::Adam(std::vector<Parameter*> parameters, Adam_config config)
    : parameters_(std::move(parameters)), config_(config)
{
    moments_.reserve(parameters_.size());
    for (const Parameter* p : parameters_)
        moments_.push_back({Tensor(p->value.shape()), Tensor(p->value.shape())});
}

void Adam::step()
{
    ++steps_;

    if (config_.max_grad_norm > 0.0) {
        double total_sq = 0.0;
        for (const Parameter* p : parameters_)
            for (std::int64_t i = 0; i < p->grad.volume(); ++i)
                total_sq += static_cast<double>(p->grad.at(i)) * p->grad.at(i);
        const double norm = std::sqrt(total_sq);
        if (norm > config_.max_grad_norm) {
            const auto factor = static_cast<float>(config_.max_grad_norm / norm);
            for (Parameter* p : parameters_)
                for (std::int64_t i = 0; i < p->grad.volume(); ++i) p->grad.at(i) *= factor;
        }
    }

    const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
    const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(steps_));
    for (std::size_t k = 0; k < parameters_.size(); ++k) {
        Parameter& p = *parameters_[k];
        Moment& mo = moments_[k];
        for (std::int64_t i = 0; i < p.value.volume(); ++i) {
            const float g = p.grad.at(i);
            mo.m.at(i) = static_cast<float>(config_.beta1) * mo.m.at(i) +
                         (1.0F - static_cast<float>(config_.beta1)) * g;
            mo.v.at(i) = static_cast<float>(config_.beta2) * mo.v.at(i) +
                         (1.0F - static_cast<float>(config_.beta2)) * g * g;
            const double m_hat = mo.m.at(i) / bias1;
            const double v_hat = mo.v.at(i) / bias2;
            p.value.at(i) -= static_cast<float>(config_.learning_rate * m_hat /
                                                (std::sqrt(v_hat) + config_.epsilon));
        }
        p.zero_grad();
    }
}

void Adam::zero_grad()
{
    for (Parameter* p : parameters_) p->zero_grad();
}

} // namespace xrl
