#include "nn/layers.h"

#include <cmath>

#include "support/check.h"

namespace xrl {

namespace {

Tensor xavier_uniform(std::int64_t in_features, std::int64_t out_features, Rng& rng)
{
    const float bound = std::sqrt(6.0F / static_cast<float>(in_features + out_features));
    return Tensor::random_uniform({in_features, out_features}, rng, -bound, bound);
}

} // namespace

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : weight_(xavier_uniform(in_features, out_features, rng)),
      bias_(Tensor(Shape{1, out_features}))
{
}

Var Linear::operator()(Tape& tape, Var x)
{
    return tape.add(tape.matmul(x, tape.param(weight_)), tape.param(bias_));
}

std::vector<Parameter*> Linear::parameters()
{
    return {&weight_, &bias_};
}

Mlp::Mlp(std::int64_t in_features, std::vector<std::int64_t> hidden, std::int64_t out_features,
         Rng& rng)
{
    std::int64_t width = in_features;
    for (const std::int64_t h : hidden) {
        layers_.emplace_back(width, h, rng);
        width = h;
    }
    layers_.emplace_back(width, out_features, rng);
}

Var Mlp::operator()(Tape& tape, Var x)
{
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        x = layers_[i](tape, x);
        if (i + 1 < layers_.size()) x = tape.relu(x);
    }
    return x;
}

std::vector<Parameter*> Mlp::parameters()
{
    std::vector<Parameter*> out;
    for (Linear& layer : layers_)
        for (Parameter* p : layer.parameters()) out.push_back(p);
    return out;
}

} // namespace xrl
