#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"
#include "tensor/kernels.h"

namespace xrl {

namespace {

/// Sum `grad` down to `shape` (inverse of NumPy broadcasting).
Tensor reduce_to_shape(const Tensor& grad, const Shape& shape)
{
    if (grad.shape() == shape) return grad;
    Tensor current = grad;
    // Collapse extra leading axes.
    while (current.rank() > static_cast<std::int64_t>(shape.size()))
        current = reduce_sum(current, 0, /*keep_dim=*/false);
    // Sum axes broadcast from extent 1.
    for (std::int64_t axis = 0; axis < current.rank(); ++axis) {
        if (shape[static_cast<std::size_t>(axis)] == 1 && current.dim(axis) != 1)
            current = reduce_sum(current, axis, /*keep_dim=*/true);
    }
    XRL_ENSURES(current.shape() == shape);
    return current;
}

void accumulate(Tensor& into, const Tensor& delta)
{
    XRL_EXPECTS(into.shape() == delta.shape());
    float* dst = into.data();
    const float* src = delta.data();
    for (std::int64_t i = 0; i < into.volume(); ++i) dst[i] += src[i];
}

} // namespace

Var Tape::push(Tensor value, std::function<void()> backprop, Parameter* parameter)
{
    Node n;
    n.grad = Tensor(value.shape());
    n.value = std::move(value);
    n.backprop = std::move(backprop);
    n.parameter = parameter;
    nodes_.push_back(std::move(n));
    return Var{static_cast<int>(nodes_.size() - 1)};
}

Tape::Node& Tape::node(Var v)
{
    XRL_EXPECTS(v.valid() && v.index < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<std::size_t>(v.index)];
}

const Tape::Node& Tape::node(Var v) const
{
    XRL_EXPECTS(v.valid() && v.index < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<std::size_t>(v.index)];
}

const Tensor& Tape::value(Var v) const
{
    return node(v).value;
}

const Tensor& Tape::grad(Var v) const
{
    return node(v).grad;
}

Var Tape::constant(Tensor value)
{
    return push(std::move(value));
}

Var Tape::param(Parameter& p)
{
    const Var v = push(p.value);
    const int i = v.index;
    node(v).parameter = &p;
    node(v).backprop = [this, i, &p] {
        accumulate(p.grad, nodes_[static_cast<std::size_t>(i)].grad);
    };
    return v;
}

Var Tape::add(Var a, Var b)
{
    const Var out = push(xrl::add(value(a), value(b)));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad,
                   reduce_to_shape(g, nodes_[static_cast<std::size_t>(ia)].value.shape()));
        accumulate(nodes_[static_cast<std::size_t>(ib)].grad,
                   reduce_to_shape(g, nodes_[static_cast<std::size_t>(ib)].value.shape()));
    };
    return out;
}

Var Tape::sub(Var a, Var b)
{
    const Var out = push(xrl::sub(value(a), value(b)));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad,
                   reduce_to_shape(g, nodes_[static_cast<std::size_t>(ia)].value.shape()));
        accumulate(nodes_[static_cast<std::size_t>(ib)].grad,
                   reduce_to_shape(xrl::scale(g, -1.0F), nodes_[static_cast<std::size_t>(ib)].value.shape()));
    };
    return out;
}

Var Tape::mul(Var a, Var b)
{
    const Var out = push(xrl::mul(value(a), value(b)));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va = nodes_[static_cast<std::size_t>(ia)].value;
        const Tensor& vb = nodes_[static_cast<std::size_t>(ib)].value;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad,
                   reduce_to_shape(xrl::mul(g, vb), va.shape()));
        accumulate(nodes_[static_cast<std::size_t>(ib)].grad,
                   reduce_to_shape(xrl::mul(g, va), vb.shape()));
    };
    return out;
}

Var Tape::scale(Var a, float factor)
{
    const Var out = push(xrl::scale(value(a), factor));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, factor] {
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad,
                   xrl::scale(nodes_[static_cast<std::size_t>(io)].grad, factor));
    };
    return out;
}

Var Tape::matmul(Var a, Var b)
{
    XRL_EXPECTS(value(a).rank() == 2 && value(b).rank() == 2);
    const Var out = push(xrl::matmul(value(a), value(b)));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va = nodes_[static_cast<std::size_t>(ia)].value;
        const Tensor& vb = nodes_[static_cast<std::size_t>(ib)].value;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, xrl::matmul(g, transpose_last2(vb)));
        accumulate(nodes_[static_cast<std::size_t>(ib)].grad, xrl::matmul(transpose_last2(va), g));
    };
    return out;
}

Var Tape::relu(Var a)
{
    const Var out = push(xrl::relu(value(a)));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va = nodes_[static_cast<std::size_t>(ia)].value;
        Tensor delta(va.shape());
        for (std::int64_t i = 0; i < va.volume(); ++i)
            delta.at(i) = va.at(i) > 0.0F ? g.at(i) : 0.0F;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, delta);
    };
    return out;
}

Var Tape::leaky_relu(Var a, float slope)
{
    const Var out = push(xrl::leaky_relu(value(a), slope));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, slope] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va = nodes_[static_cast<std::size_t>(ia)].value;
        Tensor delta(va.shape());
        for (std::int64_t i = 0; i < va.volume(); ++i)
            delta.at(i) = va.at(i) > 0.0F ? g.at(i) : slope * g.at(i);
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, delta);
    };
    return out;
}

Var Tape::tanh(Var a)
{
    const Var out = push(tanh_op(value(a)));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& y = nodes_[static_cast<std::size_t>(io)].value;
        Tensor delta(y.shape());
        for (std::int64_t i = 0; i < y.volume(); ++i)
            delta.at(i) = g.at(i) * (1.0F - y.at(i) * y.at(i));
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, delta);
    };
    return out;
}

Var Tape::exp(Var a)
{
    const Var out = push(exp_op(value(a)));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& y = nodes_[static_cast<std::size_t>(io)].value;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, xrl::mul(g, y));
    };
    return out;
}

Var Tape::log(Var a)
{
    const Tensor& va = value(a);
    Tensor out_value(va.shape());
    for (std::int64_t i = 0; i < va.volume(); ++i) {
        XRL_EXPECTS(va.at(i) > 0.0F);
        out_value.at(i) = std::log(va.at(i));
    }
    const Var out = push(std::move(out_value));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va2 = nodes_[static_cast<std::size_t>(ia)].value;
        Tensor delta(va2.shape());
        for (std::int64_t i = 0; i < va2.volume(); ++i) delta.at(i) = g.at(i) / va2.at(i);
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, delta);
    };
    return out;
}

Var Tape::minimum(Var a, Var b)
{
    const Tensor& va = value(a);
    const Tensor& vb = value(b);
    XRL_EXPECTS(va.shape() == vb.shape());
    Tensor out_value(va.shape());
    for (std::int64_t i = 0; i < va.volume(); ++i) out_value.at(i) = std::min(va.at(i), vb.at(i));
    const Var out = push(std::move(out_value));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va2 = nodes_[static_cast<std::size_t>(ia)].value;
        const Tensor& vb2 = nodes_[static_cast<std::size_t>(ib)].value;
        Tensor da(va2.shape());
        Tensor db(vb2.shape());
        for (std::int64_t i = 0; i < va2.volume(); ++i) {
            if (va2.at(i) <= vb2.at(i))
                da.at(i) = g.at(i);
            else
                db.at(i) = g.at(i);
        }
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, da);
        accumulate(nodes_[static_cast<std::size_t>(ib)].grad, db);
    };
    return out;
}

Var Tape::clamp(Var a, float lo, float hi)
{
    const Tensor& va = value(a);
    Tensor out_value(va.shape());
    for (std::int64_t i = 0; i < va.volume(); ++i)
        out_value.at(i) = std::clamp(va.at(i), lo, hi);
    const Var out = push(std::move(out_value));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, lo, hi] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& va2 = nodes_[static_cast<std::size_t>(ia)].value;
        Tensor delta(va2.shape());
        for (std::int64_t i = 0; i < va2.volume(); ++i)
            delta.at(i) = (va2.at(i) >= lo && va2.at(i) <= hi) ? g.at(i) : 0.0F;
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, delta);
    };
    return out;
}

Var Tape::concat_cols(Var a, Var b)
{
    const Tensor& va = value(a);
    const Tensor& vb = value(b);
    XRL_EXPECTS(va.rank() == 2 && vb.rank() == 2 && va.dim(0) == vb.dim(0));
    // Sizes must be read before push(): pushing may reallocate the node
    // storage and invalidate va/vb.
    const std::int64_t ca = va.dim(1);
    const std::int64_t cb = vb.dim(1);
    const Var out = push(concat({va, vb}, 1));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io, ca, cb] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const auto parts = split(g, 1, {ca, cb});
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, parts[0]);
        accumulate(nodes_[static_cast<std::size_t>(ib)].grad, parts[1]);
    };
    return out;
}

Var Tape::concat_rows(Var a, Var b)
{
    const Tensor& va = value(a);
    const Tensor& vb = value(b);
    XRL_EXPECTS(va.rank() == 2 && vb.rank() == 2 && va.dim(1) == vb.dim(1));
    // Read sizes before push() (reallocation invalidates va/vb).
    const std::int64_t ra = va.dim(0);
    const std::int64_t rb = vb.dim(0);
    const Var out = push(concat({va, vb}, 0));
    const int ia = a.index;
    const int ib = b.index;
    const int io = out.index;
    node(out).backprop = [this, ia, ib, io, ra, rb] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const auto parts = split(g, 0, {ra, rb});
        if (ra > 0) accumulate(nodes_[static_cast<std::size_t>(ia)].grad, parts[0]);
        if (rb > 0) accumulate(nodes_[static_cast<std::size_t>(ib)].grad, parts[1]);
    };
    return out;
}

Var Tape::gather_rows(Var a, std::vector<std::int64_t> rows)
{
    const Tensor& va = value(a);
    XRL_EXPECTS(va.rank() == 2);
    const std::int64_t width = va.dim(1);
    Tensor out_value(Shape{static_cast<std::int64_t>(rows.size()), width});
    for (std::size_t r = 0; r < rows.size(); ++r) {
        XRL_EXPECTS(rows[r] >= 0 && rows[r] < va.dim(0));
        std::copy(va.data() + rows[r] * width, va.data() + (rows[r] + 1) * width,
                  out_value.data() + static_cast<std::int64_t>(r) * width);
    }
    const Var out = push(std::move(out_value));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, rows = std::move(rows), width] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        Tensor& ga = nodes_[static_cast<std::size_t>(ia)].grad;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const float* src = g.data() + static_cast<std::int64_t>(r) * width;
            float* dst = ga.data() + rows[r] * width;
            for (std::int64_t c = 0; c < width; ++c) dst[c] += src[c];
        }
    };
    return out;
}

Var Tape::segment_sum(Var a, std::vector<std::int64_t> segments, std::int64_t num_segments)
{
    const Tensor& va = value(a);
    XRL_EXPECTS(va.rank() == 2);
    XRL_EXPECTS(static_cast<std::int64_t>(segments.size()) == va.dim(0));
    const std::int64_t width = va.dim(1);
    Tensor out_value(Shape{num_segments, width});
    for (std::size_t r = 0; r < segments.size(); ++r) {
        XRL_EXPECTS(segments[r] >= 0 && segments[r] < num_segments);
        const float* src = va.data() + static_cast<std::int64_t>(r) * width;
        float* dst = out_value.data() + segments[r] * width;
        for (std::int64_t c = 0; c < width; ++c) dst[c] += src[c];
    }
    const Var out = push(std::move(out_value));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, segments = std::move(segments), width] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        Tensor& ga = nodes_[static_cast<std::size_t>(ia)].grad;
        for (std::size_t r = 0; r < segments.size(); ++r) {
            const float* src = g.data() + segments[r] * width;
            float* dst = ga.data() + static_cast<std::int64_t>(r) * width;
            for (std::int64_t c = 0; c < width; ++c) dst[c] += src[c];
        }
    };
    return out;
}

Var Tape::segment_softmax(Var scores, std::vector<std::int64_t> segments, std::int64_t num_segments)
{
    const Tensor& vs = value(scores);
    XRL_EXPECTS(vs.rank() == 2 && vs.dim(1) == 1);
    XRL_EXPECTS(static_cast<std::int64_t>(segments.size()) == vs.dim(0));

    std::vector<float> seg_max(static_cast<std::size_t>(num_segments),
                               -std::numeric_limits<float>::infinity());
    for (std::size_t r = 0; r < segments.size(); ++r)
        seg_max[static_cast<std::size_t>(segments[r])] =
            std::max(seg_max[static_cast<std::size_t>(segments[r])], vs.at(static_cast<std::int64_t>(r)));

    Tensor out_value(vs.shape());
    std::vector<float> seg_sum(static_cast<std::size_t>(num_segments), 0.0F);
    for (std::size_t r = 0; r < segments.size(); ++r) {
        const float e = std::exp(vs.at(static_cast<std::int64_t>(r)) -
                                 seg_max[static_cast<std::size_t>(segments[r])]);
        out_value.at(static_cast<std::int64_t>(r)) = e;
        seg_sum[static_cast<std::size_t>(segments[r])] += e;
    }
    for (std::size_t r = 0; r < segments.size(); ++r)
        out_value.at(static_cast<std::int64_t>(r)) /= seg_sum[static_cast<std::size_t>(segments[r])];

    const Var out = push(std::move(out_value));
    const int ia = scores.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, segments = std::move(segments), num_segments] {
        const Tensor& g = nodes_[static_cast<std::size_t>(io)].grad;
        const Tensor& y = nodes_[static_cast<std::size_t>(io)].value;
        // grad_x = y * (g - sum_seg(g*y))
        std::vector<float> seg_dot(static_cast<std::size_t>(num_segments), 0.0F);
        for (std::size_t r = 0; r < segments.size(); ++r)
            seg_dot[static_cast<std::size_t>(segments[r])] +=
                g.at(static_cast<std::int64_t>(r)) * y.at(static_cast<std::int64_t>(r));
        Tensor delta(y.shape());
        for (std::size_t r = 0; r < segments.size(); ++r)
            delta.at(static_cast<std::int64_t>(r)) =
                y.at(static_cast<std::int64_t>(r)) *
                (g.at(static_cast<std::int64_t>(r)) - seg_dot[static_cast<std::size_t>(segments[r])]);
        accumulate(nodes_[static_cast<std::size_t>(ia)].grad, delta);
    };
    return out;
}

Var Tape::sum_all(Var a)
{
    const Tensor& va = value(a);
    float total = 0.0F;
    for (std::int64_t i = 0; i < va.volume(); ++i) total += va.at(i);
    const Var out = push(Tensor(Shape{1, 1}, {total}));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io] {
        const float g = nodes_[static_cast<std::size_t>(io)].grad.at(0);
        Tensor& ga = nodes_[static_cast<std::size_t>(ia)].grad;
        for (std::int64_t i = 0; i < ga.volume(); ++i) ga.at(i) += g;
    };
    return out;
}

Var Tape::mean_all(Var a)
{
    const auto n = static_cast<float>(value(a).volume());
    return scale(sum_all(a), 1.0F / n);
}

Var Tape::pick(Var a, std::int64_t flat_index)
{
    const Tensor& va = value(a);
    XRL_EXPECTS(flat_index >= 0 && flat_index < va.volume());
    const Var out = push(Tensor(Shape{1, 1}, {va.at(flat_index)}));
    const int ia = a.index;
    const int io = out.index;
    node(out).backprop = [this, ia, io, flat_index] {
        nodes_[static_cast<std::size_t>(ia)].grad.at(flat_index) +=
            nodes_[static_cast<std::size_t>(io)].grad.at(0);
    };
    return out;
}

void Tape::backward(Var loss)
{
    Node& l = node(loss);
    XRL_EXPECTS(l.value.volume() == 1);
    l.grad.at(0) = 1.0F;
    for (int i = loss.index; i >= 0; --i) {
        auto& n = nodes_[static_cast<std::size_t>(i)];
        if (n.backprop) n.backprop();
    }
}

} // namespace xrl
