#include "ir/builder.h"

#include "ir/shape_inference.h"
#include "support/check.h"

namespace xrl {

Edge Graph_builder::input(Shape shape, std::string name)
{
    const Node_id id = graph_.add_node(Op_kind::input, {}, {}, std::move(name));
    graph_.node_mut(id).output_shapes = {std::move(shape)};
    return {id, 0};
}

Edge Graph_builder::weight(Shape shape, std::string name)
{
    const Node_id id = graph_.add_node(Op_kind::weight, {}, {}, std::move(name));
    graph_.node_mut(id).output_shapes = {std::move(shape)};
    return {id, 0};
}

Edge Graph_builder::constant(Tensor value, std::string name)
{
    const Node_id id = graph_.add_constant(std::move(value), std::move(name));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::unary(Op_kind kind, Edge x, Op_params params)
{
    const Node_id id = graph_.add_node(kind, {x}, std::move(params));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::binary(Op_kind kind, Edge a, Edge b)
{
    const Node_id id = graph_.add_node(kind, {a, b});
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::matmul(Edge a, Edge b, Activation activation)
{
    Op_params p;
    p.activation = activation;
    const Node_id id = graph_.add_node(Op_kind::matmul, {a, b}, std::move(p));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::conv2d(Edge x, Edge w, std::int64_t stride, std::int64_t padding,
                           Activation activation, std::int64_t groups)
{
    Op_params p;
    p.stride_h = stride;
    p.stride_w = stride;
    p.pad_h = padding;
    p.pad_w = padding;
    p.activation = activation;
    p.groups = groups;
    const Node_id id = graph_.add_node(Op_kind::conv2d, {x, w}, std::move(p));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::relu(Edge x) { return unary(Op_kind::relu, x); }

Edge Graph_builder::leaky_relu(Edge x, float slope)
{
    Op_params p;
    p.scalar = slope;
    return unary(Op_kind::leaky_relu, x, std::move(p));
}

Edge Graph_builder::gelu(Edge x) { return unary(Op_kind::gelu, x); }
Edge Graph_builder::sigmoid(Edge x) { return unary(Op_kind::sigmoid, x); }
Edge Graph_builder::tanh(Edge x) { return unary(Op_kind::tanh, x); }
Edge Graph_builder::exp(Edge x) { return unary(Op_kind::exp, x); }
Edge Graph_builder::sqrt(Edge x) { return unary(Op_kind::sqrt, x); }
Edge Graph_builder::erf(Edge x) { return unary(Op_kind::erf, x); }
Edge Graph_builder::identity(Edge x) { return unary(Op_kind::identity, x); }
Edge Graph_builder::dropout(Edge x) { return unary(Op_kind::dropout, x); }

Edge Graph_builder::scale(Edge x, float factor)
{
    Op_params p;
    p.scalar = factor;
    return unary(Op_kind::scale, x, std::move(p));
}

Edge Graph_builder::add(Edge a, Edge b) { return binary(Op_kind::add, a, b); }
Edge Graph_builder::sub(Edge a, Edge b) { return binary(Op_kind::sub, a, b); }
Edge Graph_builder::mul(Edge a, Edge b) { return binary(Op_kind::mul, a, b); }
Edge Graph_builder::div(Edge a, Edge b) { return binary(Op_kind::div, a, b); }

Edge Graph_builder::max_pool2d(Edge x, std::int64_t kernel, std::int64_t stride, std::int64_t padding)
{
    Op_params p;
    p.kernel_h = kernel;
    p.kernel_w = kernel;
    p.stride_h = stride;
    p.stride_w = stride;
    p.pad_h = padding;
    p.pad_w = padding;
    return unary(Op_kind::max_pool2d, x, std::move(p));
}

Edge Graph_builder::avg_pool2d(Edge x, std::int64_t kernel, std::int64_t stride, std::int64_t padding)
{
    Op_params p;
    p.kernel_h = kernel;
    p.kernel_w = kernel;
    p.stride_h = stride;
    p.stride_w = stride;
    p.pad_h = padding;
    p.pad_w = padding;
    return unary(Op_kind::avg_pool2d, x, std::move(p));
}

Edge Graph_builder::global_avg_pool(Edge x) { return unary(Op_kind::global_avg_pool, x); }

Edge Graph_builder::batch_norm(Edge x, Edge gamma, Edge beta, Edge mean, Edge variance, float epsilon)
{
    Op_params p;
    p.epsilon = epsilon;
    const Node_id id = graph_.add_node(Op_kind::batch_norm, {x, gamma, beta, mean, variance}, std::move(p));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::batch_norm(Edge x, std::int64_t channels)
{
    const Edge gamma = weight({channels});
    const Edge beta = weight({channels});
    const Edge mean = weight({channels});
    const Edge variance = weight({channels});
    return batch_norm(x, gamma, beta, mean, variance);
}

Edge Graph_builder::layer_norm(Edge x, Edge gamma, Edge beta, float epsilon)
{
    Op_params p;
    p.epsilon = epsilon;
    const Node_id id = graph_.add_node(Op_kind::layer_norm, {x, gamma, beta}, std::move(p));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

Edge Graph_builder::layer_norm(Edge x, std::int64_t width)
{
    const Edge gamma = weight({width});
    const Edge beta = weight({width});
    return layer_norm(x, gamma, beta);
}

Edge Graph_builder::softmax(Edge x) { return unary(Op_kind::softmax, x); }

Edge Graph_builder::concat(std::int64_t axis, std::vector<Edge> parts)
{
    XRL_EXPECTS(!parts.empty());
    Op_params p;
    p.axis = axis;
    const Node_id id = graph_.add_node(Op_kind::concat, std::move(parts), std::move(p));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    return {id, 0};
}

std::vector<Edge> Graph_builder::split(Edge x, std::int64_t axis, std::vector<std::int64_t> sizes)
{
    Op_params p;
    p.axis = axis;
    p.split_sizes = std::move(sizes);
    const auto pieces = static_cast<std::int32_t>(p.split_sizes.size());
    const Node_id id = graph_.add_node(Op_kind::split, {x}, std::move(p));
    graph_.node_mut(id).output_shapes = infer_output_shapes(graph_, id);
    std::vector<Edge> out;
    out.reserve(static_cast<std::size_t>(pieces));
    for (std::int32_t port = 0; port < pieces; ++port) out.push_back({id, port});
    return out;
}

Edge Graph_builder::slice(Edge x, std::int64_t axis, std::int64_t begin, std::int64_t end)
{
    Op_params p;
    p.axis = axis;
    p.begin = begin;
    p.end = end;
    return unary(Op_kind::slice, x, std::move(p));
}

Edge Graph_builder::reshape(Edge x, Shape target)
{
    Op_params p;
    p.target_shape = std::move(target);
    return unary(Op_kind::reshape, x, std::move(p));
}

Edge Graph_builder::transpose(Edge x, std::vector<std::int64_t> perm)
{
    Op_params p;
    p.perm = std::move(perm);
    return unary(Op_kind::transpose, x, std::move(p));
}

Edge Graph_builder::pad(Edge x, std::vector<std::int64_t> before, std::vector<std::int64_t> after)
{
    Op_params p;
    p.pads_before = std::move(before);
    p.pads_after = std::move(after);
    return unary(Op_kind::pad, x, std::move(p));
}

Edge Graph_builder::reduce_sum(Edge x, std::int64_t axis, bool keep_dim)
{
    Op_params p;
    p.axis = axis;
    p.keep_dim = keep_dim;
    return unary(Op_kind::reduce_sum, x, std::move(p));
}

Edge Graph_builder::reduce_mean(Edge x, std::int64_t axis, bool keep_dim)
{
    Op_params p;
    p.axis = axis;
    p.keep_dim = keep_dim;
    return unary(Op_kind::reduce_mean, x, std::move(p));
}

Edge Graph_builder::embedding(Edge ids, Edge table) { return binary(Op_kind::embedding, ids, table); }

Edge Graph_builder::enlarge(Edge w, std::int64_t target_r, std::int64_t target_s)
{
    Op_params p;
    p.target_r = target_r;
    p.target_s = target_s;
    return unary(Op_kind::enlarge, w, std::move(p));
}

Edge Graph_builder::apply_unary(Op_kind kind, Edge x)
{
    return unary(kind, x);
}

Shape Graph_builder::shape_of(Edge e) const
{
    return graph_.shape_of(e);
}

Graph Graph_builder::finish(std::vector<Edge> outputs)
{
    graph_.set_outputs(std::move(outputs));
    graph_.infer_shapes();
    graph_.validate();
    return std::move(graph_);
}

} // namespace xrl
