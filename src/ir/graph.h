// Computation-graph IR: a DAG of tensor operators.
//
// The same representation TASO exposes (§3.1 of the paper): operators are
// nodes, tensors are edges. Graphs have value semantics — the environment
// generates candidate graphs by copying and transforming them, exactly as
// the paper's candidate cache does.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/op.h"
#include "tensor/tensor.h"

namespace xrl {

class Byte_writer; // support/record_file.h
class Byte_reader;

using Node_id = std::int32_t;
constexpr Node_id invalid_node = -1;

/// A tensor value: output `port` of node `node`.
struct Edge {
    Node_id node = invalid_node;
    std::int32_t port = 0;

    bool operator==(const Edge&) const = default;
};

/// One use of a value: input slot `input_index` of node `user`.
struct Edge_use {
    Node_id user = invalid_node;
    std::int32_t input_index = 0;

    bool operator==(const Edge_use&) const = default;
};

/// Immutable, structurally-shared list of a node's output shapes. Shape
/// inference replaces a node's shapes wholesale and never mutates them in
/// place, so graph copies share one allocation per node — which makes the
/// full-graph copy behind every candidate materialisation cheap (the hot
/// path of candidate generation).
class Shape_list {
public:
    Shape_list() = default;
    Shape_list(std::vector<Shape> shapes)
        : shapes_(shapes.empty()
                      ? nullptr
                      : std::make_shared<const std::vector<Shape>>(std::move(shapes)))
    {
    }
    Shape_list(std::initializer_list<Shape> shapes)
        : Shape_list(std::vector<Shape>(shapes))
    {
    }

    bool empty() const { return shapes_ == nullptr || shapes_->empty(); }
    std::size_t size() const { return shapes_ == nullptr ? 0 : shapes_->size(); }
    const Shape& front() const { return items().front(); }
    const Shape& operator[](std::size_t i) const { return items()[i]; }
    auto begin() const { return items().begin(); }
    auto end() const { return items().end(); }
    std::vector<Shape> to_vector() const { return items(); }

    /// Value equality against a freshly inferred shape vector — the
    /// keep-if-equal guard shape inference uses to preserve structural
    /// sharing across re-inference.
    bool equals(const std::vector<Shape>& other) const
    {
        return items() == other;
    }

    /// True when both lists share one allocation (not merely equal values).
    bool shares_storage_with(const Shape_list& other) const
    {
        return shapes_ != nullptr && shapes_ == other.shapes_;
    }

    /// Graphs referencing this list's allocation (0 for the empty list).
    long use_count() const { return shapes_ == nullptr ? 0 : shapes_.use_count(); }

private:
    const std::vector<Shape>& items() const
    {
        static const std::vector<Shape> none;
        return shapes_ == nullptr ? none : *shapes_;
    }

    std::shared_ptr<const std::vector<Shape>> shapes_;
};

/// An operator instance.
struct Node {
    Op_kind kind = Op_kind::input;
    Op_params params;
    std::vector<Edge> inputs;
    Shape_list output_shapes;               ///< Filled by Graph::infer_shapes().
    std::shared_ptr<const Tensor> payload;  ///< Literal value for `constant` nodes.
    std::string name;                       ///< Optional debug label.
};

/// Number of output ports an op kind produces (split: one per piece).
std::int32_t num_outputs(const Node& node);

/// Directed acyclic graph of operators with value semantics.
///
/// Node ids are stable: erasing leaves a tombstone so surviving ids keep
/// meaning across transformations (important for binding executor inputs
/// before/after a substitution).
class Graph {
public:
    // -- construction -------------------------------------------------------

    /// Pre-allocate node storage (rewrites know how many nodes they add).
    void reserve(std::size_t capacity);

    /// Append a node; inputs must reference alive nodes. Returns its id.
    Node_id add_node(Op_kind kind, std::vector<Edge> inputs, Op_params params = {},
                     std::string name = "");

    /// Append a `constant` node carrying `value`.
    Node_id add_constant(Tensor value, std::string name = "");

    /// Declare the graph outputs (order is significant).
    void set_outputs(std::vector<Edge> outputs);
    const std::vector<Edge>& outputs() const { return outputs_; }

    // -- access -------------------------------------------------------------

    const Node& node(Node_id id) const;
    Node& node_mut(Node_id id);
    bool is_alive(Node_id id) const;

    /// Total id slots ever allocated (alive + tombstones).
    std::size_t capacity() const { return nodes_.size(); }

    /// Number of alive nodes.
    std::size_t size() const { return alive_count_; }

    /// Ids of all alive nodes, ascending.
    std::vector<Node_id> node_ids() const;

    /// Shape of the tensor carried by an edge (requires inferred shapes).
    const Shape& shape_of(Edge edge) const;

    /// Uses of every node's outputs: users()[id] lists (user, input_index).
    std::vector<std::vector<Edge_use>> build_users() const;

    /// Buffer-reusing variant: fills `users` in place (inner lists keep
    /// their capacity), for callers that rebuild use lists per step.
    void build_users(std::vector<std::vector<Edge_use>>& users) const;

    // -- structure queries ---------------------------------------------------

    /// Alive nodes in topological order; throws if the graph has a cycle.
    std::vector<Node_id> topo_order() const;

    bool is_acyclic() const;

    /// Structural hash of the sub-DAG reachable from the outputs. Two graphs
    /// with equal hashes are treated as the same candidate by the
    /// environment's dedup cache.
    std::uint64_t canonical_hash() const;

    /// canonical_hash extended with the tensor shapes of every input and
    /// weight the outputs reach. canonical_hash is deliberately shape-blind
    /// — rewrite dedup happens within one host graph, where the sources are
    /// invariant — but caches keyed across *different* models (the
    /// optimization service's memo cache, the server's coalesce keys) must
    /// not collide a network with a structurally identical one at different
    /// widths. Equal canonical hashes plus equal source shapes imply equal
    /// model hashes, so canonically identical graphs never split keys.
    std::uint64_t model_hash() const;

    /// Per-id flags: reachable from the outputs through input edges (the
    /// sub-DAG canonical_hash / model_hash / DCE are defined over).
    std::vector<std::uint8_t> reachable_mask() const;

    // -- mutation ------------------------------------------------------------

    /// Redirect every use of `from` (including graph outputs) to `to`.
    void replace_all_uses(Edge from, Edge to);

    /// Remove a node. Precondition: nothing uses its outputs.
    void erase_node(Node_id id);

    /// Drop nodes unreachable from the outputs; returns how many were
    /// removed. Source nodes (inputs) are kept even when unused so the
    /// external interface of the graph never changes.
    int eliminate_dead_nodes();

    /// Run shape inference over the whole graph in topological order.
    void infer_shapes();

    /// Incremental shape inference over the alive nodes with id >=
    /// `first_new`, in ascending id order. Correct for nodes appended after
    /// a copy (append order is topological among the new nodes). Returns
    /// false — leaving the graph unchanged for ids it did not reach — when
    /// some input's shape is missing, in which case the caller must fall
    /// back to the full pass.
    bool infer_shapes_appended(Node_id first_new);

    /// Check all invariants (edge validity, acyclicity, shapes if inferred);
    /// throws Contract_violation on failure. The rewrite epilogue passes
    /// `check_acyclic = false` because its own cycle check already ran.
    void validate(bool check_acyclic = true) const;

    /// Graphviz DOT rendering for debugging / documentation.
    std::string to_dot() const;

private:
    /// The bit-exact binary (de)serialiser (ir/graph_io.h) restores the id
    /// space — tombstones included — which no public mutation sequence can
    /// reproduce, so it works on the representation directly.
    friend void serialise_graph_binary(Byte_writer& out, const Graph& graph);
    friend Graph deserialise_graph_binary(Byte_reader& in);

    std::vector<Node> nodes_;
    std::vector<std::uint8_t> alive_;
    std::vector<Edge> outputs_;
    std::size_t alive_count_ = 0;
};

} // namespace xrl
