// Reference graph executor.
//
// Runs a graph through the naive kernels in `tensor/kernels.h`. Used by the
// rewrite-rule verifier and the property-test suite to check that graph
// transformations preserve semantics: a transformed graph executed with the
// same bindings must produce the same outputs.
#pragma once

#include <unordered_map>

#include "ir/graph.h"
#include "tensor/tensor.h"

namespace xrl {

/// Values for graph inputs, keyed by node id.
using Binding_map = std::unordered_map<Node_id, Tensor>;

/// Execute `graph` and return its output tensors (in graph output order).
///
/// * `input` nodes read from `bindings` (required).
/// * `weight` nodes are materialised deterministically from
///   `weight_seed ^ node id`, so the *same* weight node produces the same
///   tensor before and after a transformation (ids are stable).
/// * `constant` nodes use their payload.
std::vector<Tensor> execute(const Graph& graph, const Binding_map& bindings,
                            std::uint64_t weight_seed = 0x5eedULL);

/// Deterministic tensor for a weight node (exposed for tests).
Tensor materialise_weight(const Shape& shape, Node_id id, std::uint64_t weight_seed);

/// Random bindings for every `input` node of the graph.
Binding_map random_bindings(const Graph& graph, Rng& rng, float lo = -1.0F, float hi = 1.0F);

} // namespace xrl
