// Fluent construction API for computation graphs, mirroring TASO's
// programming interface (§3.1: "users can manually define the computation
// graph via TASO's programming interface").
#pragma once

#include <string>
#include <vector>

#include "ir/graph.h"

namespace xrl {

class Graph_builder {
public:
    Graph_builder() = default;

    // -- sources ------------------------------------------------------------

    Edge input(Shape shape, std::string name = "");
    Edge weight(Shape shape, std::string name = "");
    Edge constant(Tensor value, std::string name = "");

    // -- dense --------------------------------------------------------------

    Edge matmul(Edge a, Edge b, Activation activation = Activation::none);
    Edge conv2d(Edge x, Edge w, std::int64_t stride = 1, std::int64_t padding = 0,
                Activation activation = Activation::none, std::int64_t groups = 1);

    // -- elementwise ---------------------------------------------------------

    Edge relu(Edge x);
    Edge leaky_relu(Edge x, float slope = 0.01F);
    Edge gelu(Edge x);
    Edge sigmoid(Edge x);
    Edge tanh(Edge x);
    Edge exp(Edge x);
    Edge sqrt(Edge x);
    Edge erf(Edge x);
    Edge identity(Edge x);
    Edge dropout(Edge x);
    Edge scale(Edge x, float factor);
    Edge add(Edge a, Edge b);
    Edge sub(Edge a, Edge b);
    Edge mul(Edge a, Edge b);
    Edge div(Edge a, Edge b);

    // -- pooling / normalisation ---------------------------------------------

    Edge max_pool2d(Edge x, std::int64_t kernel, std::int64_t stride, std::int64_t padding = 0);
    Edge avg_pool2d(Edge x, std::int64_t kernel, std::int64_t stride, std::int64_t padding = 0);
    Edge global_avg_pool(Edge x);
    Edge batch_norm(Edge x, Edge gamma, Edge beta, Edge mean, Edge variance, float epsilon = 1e-5F);

    /// Batch norm with freshly created per-channel weights (convenience for
    /// the model zoo).
    Edge batch_norm(Edge x, std::int64_t channels);

    Edge layer_norm(Edge x, Edge gamma, Edge beta, float epsilon = 1e-5F);
    Edge layer_norm(Edge x, std::int64_t width);
    Edge softmax(Edge x);

    // -- shape ---------------------------------------------------------------

    Edge concat(std::int64_t axis, std::vector<Edge> parts);
    std::vector<Edge> split(Edge x, std::int64_t axis, std::vector<std::int64_t> sizes);
    Edge slice(Edge x, std::int64_t axis, std::int64_t begin, std::int64_t end);
    Edge reshape(Edge x, Shape target);
    Edge transpose(Edge x, std::vector<std::int64_t> perm = {});
    Edge pad(Edge x, std::vector<std::int64_t> before, std::vector<std::int64_t> after);
    Edge reduce_sum(Edge x, std::int64_t axis, bool keep_dim = true);
    Edge reduce_mean(Edge x, std::int64_t axis, bool keep_dim = true);
    Edge embedding(Edge ids, Edge table);
    Edge enlarge(Edge w, std::int64_t target_r, std::int64_t target_s);

    /// Generic single-input op constructor with default parameters (used by
    /// pattern definitions and tests that iterate over op kinds).
    Edge apply_unary(Op_kind kind, Edge x);

    /// Shape of an edge built so far (runs incremental inference).
    Shape shape_of(Edge e) const;

    /// Finalise: set outputs, infer shapes, validate, and return the graph.
    Graph finish(std::vector<Edge> outputs);

    /// Access to the graph under construction (used by tests).
    const Graph& graph() const { return graph_; }

private:
    Edge unary(Op_kind kind, Edge x, Op_params params = {});
    Edge binary(Op_kind kind, Edge a, Edge b);

    Graph graph_;
};

} // namespace xrl
