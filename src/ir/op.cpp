#include "ir/op.h"

#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace xrl {

namespace {

struct Kind_entry {
    Op_kind kind;
    const char* name;
};

constexpr Kind_entry kind_table[] = {
    {Op_kind::input, "input"},
    {Op_kind::weight, "weight"},
    {Op_kind::constant, "constant"},
    {Op_kind::matmul, "matmul"},
    {Op_kind::conv2d, "conv2d"},
    {Op_kind::relu, "relu"},
    {Op_kind::leaky_relu, "leaky_relu"},
    {Op_kind::gelu, "gelu"},
    {Op_kind::sigmoid, "sigmoid"},
    {Op_kind::tanh, "tanh"},
    {Op_kind::exp, "exp"},
    {Op_kind::sqrt, "sqrt"},
    {Op_kind::erf, "erf"},
    {Op_kind::identity, "identity"},
    {Op_kind::dropout, "dropout"},
    {Op_kind::scale, "scale"},
    {Op_kind::add, "add"},
    {Op_kind::sub, "sub"},
    {Op_kind::mul, "mul"},
    {Op_kind::div, "div"},
    {Op_kind::max_pool2d, "max_pool2d"},
    {Op_kind::avg_pool2d, "avg_pool2d"},
    {Op_kind::global_avg_pool, "global_avg_pool"},
    {Op_kind::batch_norm, "batch_norm"},
    {Op_kind::layer_norm, "layer_norm"},
    {Op_kind::softmax, "softmax"},
    {Op_kind::concat, "concat"},
    {Op_kind::split, "split"},
    {Op_kind::slice, "slice"},
    {Op_kind::reshape, "reshape"},
    {Op_kind::transpose, "transpose"},
    {Op_kind::pad, "pad"},
    {Op_kind::reduce_sum, "reduce_sum"},
    {Op_kind::reduce_mean, "reduce_mean"},
    {Op_kind::embedding, "embedding"},
    {Op_kind::enlarge, "enlarge"},
};

static_assert(sizeof(kind_table) / sizeof(kind_table[0]) == static_cast<std::size_t>(Op_kind::count_),
              "kind_table must cover every Op_kind");

constexpr const char* activation_table[] = {"none", "relu", "gelu", "tanh", "sigmoid"};

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value)
{
    // Boost-style mix with a 64-bit golden-ratio constant.
    return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

std::uint64_t hash_i64(std::int64_t v)
{
    auto x = static_cast<std::uint64_t>(v);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

std::uint64_t hash_vector(const std::vector<std::int64_t>& v)
{
    std::uint64_t h = 0x1234abcdULL;
    for (const std::int64_t x : v) h = hash_combine(h, hash_i64(x));
    return hash_combine(h, v.size());
}

} // namespace

const char* op_kind_name(Op_kind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    XRL_EXPECTS(index < static_cast<std::size_t>(Op_kind::count_));
    return kind_table[index].name;
}

const char* activation_name(Activation activation)
{
    return activation_table[static_cast<std::size_t>(activation)];
}

Op_kind op_kind_from_name(const std::string& name)
{
    static const std::unordered_map<std::string, Op_kind> lookup = [] {
        std::unordered_map<std::string, Op_kind> m;
        for (const auto& e : kind_table) m.emplace(e.name, e.kind);
        return m;
    }();
    const auto it = lookup.find(name);
    XRL_EXPECTS(it != lookup.end());
    return it->second;
}

Activation activation_from_name(const std::string& name)
{
    for (std::size_t i = 0; i < sizeof(activation_table) / sizeof(activation_table[0]); ++i)
        if (name == activation_table[i]) return static_cast<Activation>(i);
    XRL_EXPECTS(false && "unknown activation name");
    return Activation::none;
}

bool is_commutative(Op_kind kind)
{
    return kind == Op_kind::add || kind == Op_kind::mul;
}

bool is_elementwise_unary(Op_kind kind)
{
    switch (kind) {
    case Op_kind::relu:
    case Op_kind::leaky_relu:
    case Op_kind::gelu:
    case Op_kind::sigmoid:
    case Op_kind::tanh:
    case Op_kind::exp:
    case Op_kind::sqrt:
    case Op_kind::erf:
    case Op_kind::identity:
    case Op_kind::dropout:
    case Op_kind::scale:
        return true;
    default:
        return false;
    }
}

bool is_elementwise_binary(Op_kind kind)
{
    switch (kind) {
    case Op_kind::add:
    case Op_kind::sub:
    case Op_kind::mul:
    case Op_kind::div:
        return true;
    default:
        return false;
    }
}

bool is_source(Op_kind kind)
{
    return kind == Op_kind::input || kind == Op_kind::weight || kind == Op_kind::constant;
}

std::uint64_t hash_params(const Op_params& p)
{
    std::uint64_t h = 0x5bd1e995ULL;
    h = hash_combine(h, static_cast<std::uint64_t>(p.activation));
    h = hash_combine(h, hash_i64(p.stride_h));
    h = hash_combine(h, hash_i64(p.stride_w));
    h = hash_combine(h, hash_i64(p.pad_h));
    h = hash_combine(h, hash_i64(p.pad_w));
    h = hash_combine(h, hash_i64(p.groups));
    h = hash_combine(h, hash_i64(p.kernel_h));
    h = hash_combine(h, hash_i64(p.kernel_w));
    h = hash_combine(h, hash_i64(p.axis));
    h = hash_combine(h, hash_vector(p.split_sizes));
    h = hash_combine(h, hash_i64(p.begin));
    h = hash_combine(h, hash_i64(p.end));
    h = hash_combine(h, hash_vector(p.perm));
    h = hash_combine(h, hash_vector(p.target_shape));
    h = hash_combine(h, hash_vector(p.pads_before));
    h = hash_combine(h, hash_vector(p.pads_after));
    h = hash_combine(h, hash_i64(p.target_r));
    h = hash_combine(h, hash_i64(p.target_s));
    h = hash_combine(h, hash_i64(static_cast<std::int64_t>(p.epsilon * 1e9F)));
    h = hash_combine(h, hash_i64(static_cast<std::int64_t>(p.scalar * 1e6F)));
    h = hash_combine(h, p.keep_dim ? 1ULL : 0ULL);
    return h;
}

std::string params_to_string(const Op_params& p)
{
    static const Op_params defaults;
    std::ostringstream os;
    auto emit = [&os, first = true](const std::string& text) mutable {
        if (!first) os << ' ';
        os << text;
        first = false;
    };
    auto vec = [](const std::vector<std::int64_t>& v) {
        std::ostringstream s;
        for (std::size_t i = 0; i < v.size(); ++i) s << (i > 0 ? "," : "") << v[i];
        return s.str();
    };
    if (p.activation != defaults.activation) emit(std::string("act=") + activation_name(p.activation));
    if (p.stride_h != defaults.stride_h) emit("stride_h=" + std::to_string(p.stride_h));
    if (p.stride_w != defaults.stride_w) emit("stride_w=" + std::to_string(p.stride_w));
    if (p.pad_h != defaults.pad_h) emit("pad_h=" + std::to_string(p.pad_h));
    if (p.pad_w != defaults.pad_w) emit("pad_w=" + std::to_string(p.pad_w));
    if (p.groups != defaults.groups) emit("groups=" + std::to_string(p.groups));
    if (p.kernel_h != defaults.kernel_h) emit("kernel_h=" + std::to_string(p.kernel_h));
    if (p.kernel_w != defaults.kernel_w) emit("kernel_w=" + std::to_string(p.kernel_w));
    if (p.axis != defaults.axis) emit("axis=" + std::to_string(p.axis));
    if (!p.split_sizes.empty()) emit("split=" + vec(p.split_sizes));
    if (p.begin != defaults.begin) emit("begin=" + std::to_string(p.begin));
    if (p.end != defaults.end) emit("end=" + std::to_string(p.end));
    if (!p.perm.empty()) emit("perm=" + vec(p.perm));
    if (!p.target_shape.empty()) emit("shape=" + vec(p.target_shape));
    if (!p.pads_before.empty()) emit("pads_before=" + vec(p.pads_before));
    if (!p.pads_after.empty()) emit("pads_after=" + vec(p.pads_after));
    if (p.target_r != defaults.target_r) emit("target_r=" + std::to_string(p.target_r));
    if (p.target_s != defaults.target_s) emit("target_s=" + std::to_string(p.target_s));
    if (p.scalar != defaults.scalar) emit("scalar=" + std::to_string(p.scalar));
    if (p.epsilon != defaults.epsilon) emit("eps=" + std::to_string(p.epsilon));
    if (p.keep_dim != defaults.keep_dim) emit("keep_dim=0");
    return os.str();
}

Op_params params_from_string(const std::string& text)
{
    Op_params p;
    std::istringstream is(text);
    std::string token;
    auto parse_vec = [](const std::string& csv) {
        std::vector<std::int64_t> v;
        std::istringstream vs(csv);
        std::string part;
        while (std::getline(vs, part, ',')) v.push_back(std::stoll(part));
        return v;
    };
    while (is >> token) {
        const std::size_t eq = token.find('=');
        XRL_EXPECTS(eq != std::string::npos);
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "act") p.activation = activation_from_name(value);
        else if (key == "stride_h") p.stride_h = std::stoll(value);
        else if (key == "stride_w") p.stride_w = std::stoll(value);
        else if (key == "pad_h") p.pad_h = std::stoll(value);
        else if (key == "pad_w") p.pad_w = std::stoll(value);
        else if (key == "groups") p.groups = std::stoll(value);
        else if (key == "kernel_h") p.kernel_h = std::stoll(value);
        else if (key == "kernel_w") p.kernel_w = std::stoll(value);
        else if (key == "axis") p.axis = std::stoll(value);
        else if (key == "split") p.split_sizes = parse_vec(value);
        else if (key == "begin") p.begin = std::stoll(value);
        else if (key == "end") p.end = std::stoll(value);
        else if (key == "perm") p.perm = parse_vec(value);
        else if (key == "shape") p.target_shape = parse_vec(value);
        else if (key == "pads_before") p.pads_before = parse_vec(value);
        else if (key == "pads_after") p.pads_after = parse_vec(value);
        else if (key == "target_r") p.target_r = std::stoll(value);
        else if (key == "target_s") p.target_s = std::stoll(value);
        else if (key == "scalar") p.scalar = std::stof(value);
        else if (key == "eps") p.epsilon = std::stof(value);
        else if (key == "keep_dim") p.keep_dim = value != "0";
        else XRL_EXPECTS(false && "unknown param key");
    }
    return p;
}

} // namespace xrl
