#include "ir/graph_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "support/check.h"
#include "support/reflect.h"

namespace xrl {

namespace {

Edge parse_edge_token(const std::string& token)
{
    const std::size_t colon = token.find(':');
    XRL_EXPECTS(colon != std::string::npos);
    return Edge{static_cast<Node_id>(std::stoi(token.substr(0, colon))),
                static_cast<std::int32_t>(std::stoi(token.substr(colon + 1)))};
}

} // namespace

void serialise_graph_text(std::ostream& os, const Graph& graph)
{
    // Canonical form: ids are renumbered to topological positions, so
    // serialise(load(serialise(g))) == serialise(g) regardless of how the
    // in-memory graph's id space looks after transformations.
    std::unordered_map<Node_id, Node_id> renumber;
    const auto order = graph.topo_order();
    for (std::size_t position = 0; position < order.size(); ++position)
        renumber.emplace(order[position], static_cast<Node_id>(position));

    os << "xrlflow-graph v1\n";
    for (const Node_id id : order) {
        const Node& n = graph.node(id);
        if (n.kind == Op_kind::constant) {
            XRL_EXPECTS(n.payload != nullptr);
            const Tensor& t = *n.payload;
            os << "const " << renumber.at(id) << " shape " << t.shape().size();
            for (const std::int64_t dim : t.shape()) os << ' ' << dim;
            os << " values " << t.volume();
            for (std::int64_t i = 0; i < t.volume(); ++i) os << ' ' << t.at(i);
            os << "\n";
            continue;
        }
        os << "node " << renumber.at(id) << ' ' << op_kind_name(n.kind) << " inputs "
           << n.inputs.size();
        for (const Edge& e : n.inputs) os << ' ' << renumber.at(e.node) << ':' << e.port;
        // Names must be single tokens in this line-oriented format.
        XRL_EXPECTS(n.name.find_first_of(" \t\n") == std::string::npos);
        os << " name " << (n.name.empty() ? "-" : n.name);
        const Shape shape = n.output_shapes.empty() ? Shape{} : n.output_shapes.front();
        os << " shape " << shape.size();
        for (const std::int64_t dim : shape) os << ' ' << dim;
        os << " { " << params_to_string(n.params) << " }\n";
    }
    os << "outputs " << graph.outputs().size();
    for (const Edge& e : graph.outputs()) os << ' ' << renumber.at(e.node) << ':' << e.port;
    os << "\n";
}

Graph deserialise_graph_text(std::istream& is)
{
    std::string header;
    std::string version;
    is >> header >> version;
    XRL_EXPECTS(header == "xrlflow-graph" && version == "v1");

    Graph graph;
    std::unordered_map<Node_id, Node_id> id_map;
    std::string token;
    while (is >> token) {
        if (token == "node") {
            Node_id file_id = 0;
            std::string kind_name;
            std::string marker;
            std::size_t num_inputs = 0;
            is >> file_id >> kind_name >> marker >> num_inputs;
            XRL_EXPECTS(marker == "inputs");
            std::vector<Edge> inputs;
            inputs.reserve(num_inputs);
            for (std::size_t i = 0; i < num_inputs; ++i) {
                std::string edge_token;
                is >> edge_token;
                const Edge e = parse_edge_token(edge_token);
                inputs.push_back(Edge{id_map.at(e.node), e.port});
            }
            is >> marker;
            XRL_EXPECTS(marker == "name");
            std::string name;
            is >> name;
            if (name == "-") name.clear();
            is >> marker;
            XRL_EXPECTS(marker == "shape");
            std::size_t rank = 0;
            is >> rank;
            Shape shape(rank);
            for (auto& dim : shape) is >> dim;
            is >> marker;
            XRL_EXPECTS(marker == "{");
            std::string params_text;
            std::string word;
            while (is >> word && word != "}") {
                if (!params_text.empty()) params_text += ' ';
                params_text += word;
            }
            const Op_kind kind = op_kind_from_name(kind_name);
            const Node_id id =
                graph.add_node(kind, std::move(inputs), params_from_string(params_text), name);
            if (is_source(kind)) graph.node_mut(id).output_shapes = {shape};
            id_map.emplace(file_id, id);
        } else if (token == "const") {
            Node_id file_id = 0;
            std::string marker;
            is >> file_id >> marker;
            XRL_EXPECTS(marker == "shape");
            std::size_t rank = 0;
            is >> rank;
            Shape shape(rank);
            for (auto& dim : shape) is >> dim;
            is >> marker;
            XRL_EXPECTS(marker == "values");
            std::int64_t count = 0;
            is >> count;
            XRL_EXPECTS(count == shape_volume(shape));
            std::vector<float> values(static_cast<std::size_t>(count));
            for (auto& v : values) is >> v;
            const Node_id id = graph.add_constant(Tensor(std::move(shape), std::move(values)));
            id_map.emplace(file_id, id);
        } else if (token == "outputs") {
            std::size_t num_outputs = 0;
            is >> num_outputs;
            std::vector<Edge> outputs;
            outputs.reserve(num_outputs);
            for (std::size_t i = 0; i < num_outputs; ++i) {
                std::string edge_token;
                is >> edge_token;
                const Edge e = parse_edge_token(edge_token);
                outputs.push_back(Edge{id_map.at(e.node), e.port});
            }
            graph.set_outputs(std::move(outputs));
            graph.infer_shapes();
            graph.validate();
            return graph;
        } else {
            XRL_EXPECTS(false && "unexpected token in graph file");
        }
    }
    XRL_EXPECTS(false && "graph file missing outputs record");
    return graph;
}

// ---------------------------------------------------------------------------
// Binary (bit-exact) form
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t graph_binary_version = 1;

// The serialisers below spell out every field; these asserts break the
// build when Node / Op_params grow one they do not cover.
static_assert(aggregate_field_count<Op_params> == 21,
              "Op_params changed: update write_params / read_params (and this count)");
static_assert(aggregate_field_count<Node> == 6,
              "Node changed: update serialise_graph_binary / deserialise_graph_binary "
              "(and this count)");

void write_i64_list(Byte_writer& out, const std::vector<std::int64_t>& values)
{
    out.u32(static_cast<std::uint32_t>(values.size()));
    for (const std::int64_t v : values) out.i64(v);
}

std::vector<std::int64_t> read_i64_list(Byte_reader& in)
{
    const std::uint32_t count = in.u32();
    in.expect_items(count, sizeof(std::int64_t));
    std::vector<std::int64_t> values(count);
    for (auto& v : values) v = in.i64();
    return values;
}

void write_params(Byte_writer& out, const Op_params& params)
{
    out.u8(static_cast<std::uint8_t>(params.activation));
    out.i64(params.stride_h);
    out.i64(params.stride_w);
    out.i64(params.pad_h);
    out.i64(params.pad_w);
    out.i64(params.groups);
    out.i64(params.kernel_h);
    out.i64(params.kernel_w);
    out.i64(params.axis);
    write_i64_list(out, params.split_sizes);
    out.i64(params.begin);
    out.i64(params.end);
    write_i64_list(out, params.perm);
    write_i64_list(out, params.target_shape);
    write_i64_list(out, params.pads_before);
    write_i64_list(out, params.pads_after);
    out.i64(params.target_r);
    out.i64(params.target_s);
    out.f32(params.epsilon);
    out.f32(params.scalar);
    out.u8(params.keep_dim ? 1 : 0);
}

Op_params read_params(Byte_reader& in)
{
    Op_params params;
    params.activation = static_cast<Activation>(in.u8());
    params.stride_h = in.i64();
    params.stride_w = in.i64();
    params.pad_h = in.i64();
    params.pad_w = in.i64();
    params.groups = in.i64();
    params.kernel_h = in.i64();
    params.kernel_w = in.i64();
    params.axis = in.i64();
    params.split_sizes = read_i64_list(in);
    params.begin = in.i64();
    params.end = in.i64();
    params.perm = read_i64_list(in);
    params.target_shape = read_i64_list(in);
    params.pads_before = read_i64_list(in);
    params.pads_after = read_i64_list(in);
    params.target_r = in.i64();
    params.target_s = in.i64();
    params.epsilon = in.f32();
    params.scalar = in.f32();
    params.keep_dim = in.u8() != 0;
    return params;
}

void write_edge_list(Byte_writer& out, const std::vector<Edge>& edges)
{
    out.u32(static_cast<std::uint32_t>(edges.size()));
    for (const Edge& e : edges) {
        out.i32(e.node);
        out.i32(e.port);
    }
}

std::vector<Edge> read_edge_list(Byte_reader& in, std::size_t capacity)
{
    const std::uint32_t count = in.u32();
    in.expect_items(count, 2 * sizeof(std::int32_t));
    std::vector<Edge> edges(count);
    for (Edge& e : edges) {
        e.node = in.i32();
        e.port = in.i32();
        if (e.node < 0 || static_cast<std::size_t>(e.node) >= capacity)
            throw std::runtime_error("graph binary: edge references node " +
                                     std::to_string(e.node) + " outside capacity " +
                                     std::to_string(capacity));
    }
    return edges;
}

} // namespace

void serialise_graph_binary(Byte_writer& out, const Graph& graph)
{
    out.u32(graph_binary_version);
    out.u32(static_cast<std::uint32_t>(graph.nodes_.size()));
    for (std::size_t id = 0; id < graph.nodes_.size(); ++id) {
        const bool alive = graph.alive_[id] != 0;
        out.u8(alive ? 1 : 0);
        // Tombstone slots hold Node{} (erase_node resets them) — the alive
        // flag alone reconstructs them exactly.
        if (!alive) continue;
        const Node& n = graph.nodes_[id];
        out.u8(static_cast<std::uint8_t>(n.kind));
        write_params(out, n.params);
        write_edge_list(out, n.inputs);
        out.u32(static_cast<std::uint32_t>(n.output_shapes.size()));
        for (const Shape& shape : n.output_shapes) write_i64_list(out, shape);
        out.u8(n.payload != nullptr ? 1 : 0);
        if (n.payload != nullptr) {
            write_i64_list(out, n.payload->shape());
            out.u64(static_cast<std::uint64_t>(n.payload->volume()));
            for (std::int64_t i = 0; i < n.payload->volume(); ++i) out.f32(n.payload->at(i));
        }
        out.str(n.name);
    }
    write_edge_list(out, graph.outputs_);
}

Graph deserialise_graph_binary(Byte_reader& in)
{
    const std::uint32_t version = in.u32();
    if (version != graph_binary_version)
        throw std::runtime_error("graph binary: unsupported version " + std::to_string(version));
    const std::uint32_t capacity = in.u32();
    in.expect_items(capacity, 1); // at least the alive byte per slot

    Graph graph;
    graph.nodes_.resize(capacity);
    graph.alive_.assign(capacity, 0);
    for (std::uint32_t id = 0; id < capacity; ++id) {
        if (in.u8() == 0) continue; // tombstone: Node{} stays
        Node& n = graph.nodes_[id];
        const std::uint8_t kind = in.u8();
        if (kind >= static_cast<std::uint8_t>(Op_kind::count_))
            throw std::runtime_error("graph binary: unknown op kind " + std::to_string(kind));
        n.kind = static_cast<Op_kind>(kind);
        n.params = read_params(in);
        n.inputs = read_edge_list(in, capacity);
        const std::uint32_t shape_count = in.u32();
        in.expect_items(shape_count, sizeof(std::uint32_t));
        std::vector<Shape> shapes(shape_count);
        for (Shape& shape : shapes) shape = read_i64_list(in);
        n.output_shapes = Shape_list(std::move(shapes));
        if (in.u8() != 0) {
            Shape shape = read_i64_list(in);
            const std::uint64_t volume = in.u64();
            if (static_cast<std::int64_t>(volume) != shape_volume(shape))
                throw std::runtime_error("graph binary: payload volume mismatch");
            in.expect_items(volume, sizeof(float));
            std::vector<float> values(static_cast<std::size_t>(volume));
            for (auto& v : values) v = in.f32();
            n.payload = std::make_shared<const Tensor>(std::move(shape), std::move(values));
        }
        n.name = in.str();
        graph.alive_[id] = 1;
        ++graph.alive_count_;
    }
    // Edge targets are validated only now: rewrites leave alive nodes
    // whose inputs reference *higher* ids, so aliveness is undecidable
    // until every slot has been read.
    for (std::uint32_t id = 0; id < capacity; ++id) {
        if (graph.alive_[id] == 0) continue;
        for (const Edge& e : graph.nodes_[id].inputs)
            if (graph.alive_[static_cast<std::size_t>(e.node)] == 0)
                throw std::runtime_error("graph binary: input references a dead node");
    }
    graph.outputs_ = read_edge_list(in, capacity);
    for (const Edge& e : graph.outputs_)
        if (graph.alive_[static_cast<std::size_t>(e.node)] == 0)
            throw std::runtime_error("graph binary: output references a dead node");
    return graph;
}

void save_graph(const std::string& path, const Graph& graph)
{
    std::ofstream os(path);
    XRL_EXPECTS(os.good());
    serialise_graph_text(os, graph);
}

Graph load_graph(const std::string& path)
{
    std::ifstream is(path);
    XRL_EXPECTS(is.good());
    return deserialise_graph_text(is);
}

} // namespace xrl
