#include "ir/graph_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace xrl {

namespace {

Edge parse_edge_token(const std::string& token)
{
    const std::size_t colon = token.find(':');
    XRL_EXPECTS(colon != std::string::npos);
    return Edge{static_cast<Node_id>(std::stoi(token.substr(0, colon))),
                static_cast<std::int32_t>(std::stoi(token.substr(colon + 1)))};
}

} // namespace

void serialise_graph_text(std::ostream& os, const Graph& graph)
{
    // Canonical form: ids are renumbered to topological positions, so
    // serialise(load(serialise(g))) == serialise(g) regardless of how the
    // in-memory graph's id space looks after transformations.
    std::unordered_map<Node_id, Node_id> renumber;
    const auto order = graph.topo_order();
    for (std::size_t position = 0; position < order.size(); ++position)
        renumber.emplace(order[position], static_cast<Node_id>(position));

    os << "xrlflow-graph v1\n";
    for (const Node_id id : order) {
        const Node& n = graph.node(id);
        if (n.kind == Op_kind::constant) {
            XRL_EXPECTS(n.payload != nullptr);
            const Tensor& t = *n.payload;
            os << "const " << renumber.at(id) << " shape " << t.shape().size();
            for (const std::int64_t dim : t.shape()) os << ' ' << dim;
            os << " values " << t.volume();
            for (std::int64_t i = 0; i < t.volume(); ++i) os << ' ' << t.at(i);
            os << "\n";
            continue;
        }
        os << "node " << renumber.at(id) << ' ' << op_kind_name(n.kind) << " inputs "
           << n.inputs.size();
        for (const Edge& e : n.inputs) os << ' ' << renumber.at(e.node) << ':' << e.port;
        // Names must be single tokens in this line-oriented format.
        XRL_EXPECTS(n.name.find_first_of(" \t\n") == std::string::npos);
        os << " name " << (n.name.empty() ? "-" : n.name);
        const Shape shape = n.output_shapes.empty() ? Shape{} : n.output_shapes.front();
        os << " shape " << shape.size();
        for (const std::int64_t dim : shape) os << ' ' << dim;
        os << " { " << params_to_string(n.params) << " }\n";
    }
    os << "outputs " << graph.outputs().size();
    for (const Edge& e : graph.outputs()) os << ' ' << renumber.at(e.node) << ':' << e.port;
    os << "\n";
}

Graph deserialise_graph_text(std::istream& is)
{
    std::string header;
    std::string version;
    is >> header >> version;
    XRL_EXPECTS(header == "xrlflow-graph" && version == "v1");

    Graph graph;
    std::unordered_map<Node_id, Node_id> id_map;
    std::string token;
    while (is >> token) {
        if (token == "node") {
            Node_id file_id = 0;
            std::string kind_name;
            std::string marker;
            std::size_t num_inputs = 0;
            is >> file_id >> kind_name >> marker >> num_inputs;
            XRL_EXPECTS(marker == "inputs");
            std::vector<Edge> inputs;
            inputs.reserve(num_inputs);
            for (std::size_t i = 0; i < num_inputs; ++i) {
                std::string edge_token;
                is >> edge_token;
                const Edge e = parse_edge_token(edge_token);
                inputs.push_back(Edge{id_map.at(e.node), e.port});
            }
            is >> marker;
            XRL_EXPECTS(marker == "name");
            std::string name;
            is >> name;
            if (name == "-") name.clear();
            is >> marker;
            XRL_EXPECTS(marker == "shape");
            std::size_t rank = 0;
            is >> rank;
            Shape shape(rank);
            for (auto& dim : shape) is >> dim;
            is >> marker;
            XRL_EXPECTS(marker == "{");
            std::string params_text;
            std::string word;
            while (is >> word && word != "}") {
                if (!params_text.empty()) params_text += ' ';
                params_text += word;
            }
            const Op_kind kind = op_kind_from_name(kind_name);
            const Node_id id =
                graph.add_node(kind, std::move(inputs), params_from_string(params_text), name);
            if (is_source(kind)) graph.node_mut(id).output_shapes = {shape};
            id_map.emplace(file_id, id);
        } else if (token == "const") {
            Node_id file_id = 0;
            std::string marker;
            is >> file_id >> marker;
            XRL_EXPECTS(marker == "shape");
            std::size_t rank = 0;
            is >> rank;
            Shape shape(rank);
            for (auto& dim : shape) is >> dim;
            is >> marker;
            XRL_EXPECTS(marker == "values");
            std::int64_t count = 0;
            is >> count;
            XRL_EXPECTS(count == shape_volume(shape));
            std::vector<float> values(static_cast<std::size_t>(count));
            for (auto& v : values) is >> v;
            const Node_id id = graph.add_constant(Tensor(std::move(shape), std::move(values)));
            id_map.emplace(file_id, id);
        } else if (token == "outputs") {
            std::size_t num_outputs = 0;
            is >> num_outputs;
            std::vector<Edge> outputs;
            outputs.reserve(num_outputs);
            for (std::size_t i = 0; i < num_outputs; ++i) {
                std::string edge_token;
                is >> edge_token;
                const Edge e = parse_edge_token(edge_token);
                outputs.push_back(Edge{id_map.at(e.node), e.port});
            }
            graph.set_outputs(std::move(outputs));
            graph.infer_shapes();
            graph.validate();
            return graph;
        } else {
            XRL_EXPECTS(false && "unexpected token in graph file");
        }
    }
    XRL_EXPECTS(false && "graph file missing outputs record");
    return graph;
}

void save_graph(const std::string& path, const Graph& graph)
{
    std::ofstream os(path);
    XRL_EXPECTS(os.good());
    serialise_graph_text(os, graph);
}

Graph load_graph(const std::string& path)
{
    std::ifstream is(path);
    XRL_EXPECTS(is.good());
    return deserialise_graph_text(is);
}

} // namespace xrl
