#include "ir/shape_inference.h"

#include <algorithm>

#include "support/check.h"
#include "tensor/kernels.h"

namespace xrl {

namespace {

const Shape& in_shape(const Graph& g, const Node& n, std::size_t slot)
{
    XRL_EXPECTS(slot < n.inputs.size());
    return g.shape_of(n.inputs[slot]);
}

std::vector<Shape> infer_matmul(const Graph& g, const Node& n)
{
    XRL_EXPECTS(n.inputs.size() == 2);
    const Shape& a = in_shape(g, n, 0);
    const Shape& b = in_shape(g, n, 1);
    if (a.size() == 2 && b.size() == 2) {
        XRL_EXPECTS(a[1] == b[0]);
        return {Shape{a[0], b[1]}};
    }
    XRL_EXPECTS(a.size() == 3);
    if (b.size() == 3) {
        XRL_EXPECTS(a[0] == b[0] && a[2] == b[1]);
        return {Shape{a[0], a[1], b[2]}};
    }
    XRL_EXPECTS(b.size() == 2 && a[2] == b[0]);
    return {Shape{a[0], a[1], b[1]}};
}

std::vector<Shape> infer_conv2d(const Graph& g, const Node& n)
{
    XRL_EXPECTS(n.inputs.size() == 2);
    const Shape& x = in_shape(g, n, 0);
    const Shape& w = in_shape(g, n, 1);
    XRL_EXPECTS(x.size() == 4 && w.size() == 4);
    const auto& p = n.params;
    XRL_EXPECTS(p.groups >= 1);
    XRL_EXPECTS(x[1] % p.groups == 0);
    XRL_EXPECTS(w[1] == x[1] / p.groups);
    XRL_EXPECTS(w[0] % p.groups == 0);
    const std::int64_t oh = (x[2] + 2 * p.pad_h - w[2]) / p.stride_h + 1;
    const std::int64_t ow = (x[3] + 2 * p.pad_w - w[3]) / p.stride_w + 1;
    XRL_EXPECTS(oh > 0 && ow > 0);
    return {Shape{x[0], w[0], oh, ow}};
}

std::vector<Shape> infer_pool(const Graph& g, const Node& n)
{
    XRL_EXPECTS(n.inputs.size() == 1);
    const Shape& x = in_shape(g, n, 0);
    XRL_EXPECTS(x.size() == 4);
    const auto& p = n.params;
    XRL_EXPECTS(p.kernel_h > 0 && p.kernel_w > 0);
    const std::int64_t oh = (x[2] + 2 * p.pad_h - p.kernel_h) / p.stride_h + 1;
    const std::int64_t ow = (x[3] + 2 * p.pad_w - p.kernel_w) / p.stride_w + 1;
    XRL_EXPECTS(oh > 0 && ow > 0);
    return {Shape{x[0], x[1], oh, ow}};
}

} // namespace

std::vector<Shape> infer_output_shapes(const Graph& g, Node_id id)
{
    const Node& n = g.node(id);
    switch (n.kind) {
    case Op_kind::input:
    case Op_kind::weight:
        // Source shapes are assigned at construction time.
        XRL_EXPECTS(!n.output_shapes.empty());
        return n.output_shapes.to_vector();

    case Op_kind::constant:
        XRL_EXPECTS(n.payload != nullptr);
        return {n.payload->shape()};

    case Op_kind::matmul:
        return infer_matmul(g, n);

    case Op_kind::conv2d:
        return infer_conv2d(g, n);

    case Op_kind::relu:
    case Op_kind::leaky_relu:
    case Op_kind::gelu:
    case Op_kind::sigmoid:
    case Op_kind::tanh:
    case Op_kind::exp:
    case Op_kind::sqrt:
    case Op_kind::erf:
    case Op_kind::identity:
    case Op_kind::dropout:
    case Op_kind::scale:
    case Op_kind::softmax:
        XRL_EXPECTS(n.inputs.size() == 1);
        return {in_shape(g, n, 0)};

    case Op_kind::add:
    case Op_kind::sub:
    case Op_kind::mul:
    case Op_kind::div:
        XRL_EXPECTS(n.inputs.size() == 2);
        return {broadcast_shapes(in_shape(g, n, 0), in_shape(g, n, 1))};

    case Op_kind::max_pool2d:
    case Op_kind::avg_pool2d:
        return infer_pool(g, n);

    case Op_kind::global_avg_pool: {
        XRL_EXPECTS(n.inputs.size() == 1);
        const Shape& x = in_shape(g, n, 0);
        XRL_EXPECTS(x.size() == 4);
        return {Shape{x[0], x[1], 1, 1}};
    }

    case Op_kind::batch_norm: {
        XRL_EXPECTS(n.inputs.size() == 5);
        const Shape& x = in_shape(g, n, 0);
        XRL_EXPECTS(x.size() == 4);
        for (std::size_t slot = 1; slot < 5; ++slot)
            XRL_EXPECTS(shape_volume(in_shape(g, n, slot)) == x[1]);
        return {x};
    }

    case Op_kind::layer_norm: {
        XRL_EXPECTS(n.inputs.size() == 3);
        const Shape& x = in_shape(g, n, 0);
        XRL_EXPECTS(!x.empty());
        const std::int64_t width = x.back();
        XRL_EXPECTS(shape_volume(in_shape(g, n, 1)) == width);
        XRL_EXPECTS(shape_volume(in_shape(g, n, 2)) == width);
        return {x};
    }

    case Op_kind::concat: {
        XRL_EXPECTS(!n.inputs.empty());
        Shape out = in_shape(g, n, 0);
        const std::int64_t axis = n.params.axis;
        XRL_EXPECTS(axis >= 0 && axis < static_cast<std::int64_t>(out.size()));
        for (std::size_t slot = 1; slot < n.inputs.size(); ++slot) {
            const Shape& s = in_shape(g, n, slot);
            XRL_EXPECTS(s.size() == out.size());
            for (std::size_t d = 0; d < s.size(); ++d)
                if (static_cast<std::int64_t>(d) != axis) XRL_EXPECTS(s[d] == out[d]);
            out[static_cast<std::size_t>(axis)] += s[static_cast<std::size_t>(axis)];
        }
        return {out};
    }

    case Op_kind::split: {
        XRL_EXPECTS(n.inputs.size() == 1);
        const Shape& x = in_shape(g, n, 0);
        const std::int64_t axis = n.params.axis;
        XRL_EXPECTS(axis >= 0 && axis < static_cast<std::int64_t>(x.size()));
        XRL_EXPECTS(!n.params.split_sizes.empty());
        std::int64_t total = 0;
        std::vector<Shape> out;
        for (const std::int64_t piece : n.params.split_sizes) {
            XRL_EXPECTS(piece > 0);
            Shape s = x;
            s[static_cast<std::size_t>(axis)] = piece;
            out.push_back(std::move(s));
            total += piece;
        }
        XRL_EXPECTS(total == x[static_cast<std::size_t>(axis)]);
        return out;
    }

    case Op_kind::slice: {
        XRL_EXPECTS(n.inputs.size() == 1);
        Shape x = in_shape(g, n, 0);
        const std::int64_t axis = n.params.axis;
        XRL_EXPECTS(axis >= 0 && axis < static_cast<std::int64_t>(x.size()));
        XRL_EXPECTS(n.params.begin >= 0 && n.params.begin < n.params.end);
        XRL_EXPECTS(n.params.end <= x[static_cast<std::size_t>(axis)]);
        x[static_cast<std::size_t>(axis)] = n.params.end - n.params.begin;
        return {x};
    }

    case Op_kind::reshape: {
        XRL_EXPECTS(n.inputs.size() == 1);
        const Shape& x = in_shape(g, n, 0);
        XRL_EXPECTS(shape_volume(n.params.target_shape) == shape_volume(x));
        return {n.params.target_shape};
    }

    case Op_kind::transpose: {
        XRL_EXPECTS(n.inputs.size() == 1);
        const Shape& x = in_shape(g, n, 0);
        std::vector<std::int64_t> perm = n.params.perm;
        if (perm.empty()) {
            XRL_EXPECTS(x.size() >= 2);
            perm.resize(x.size());
            for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<std::int64_t>(i);
            std::swap(perm[perm.size() - 1], perm[perm.size() - 2]);
        }
        XRL_EXPECTS(perm.size() == x.size());
        Shape out(x.size());
        for (std::size_t i = 0; i < perm.size(); ++i) {
            XRL_EXPECTS(perm[i] >= 0 && perm[i] < static_cast<std::int64_t>(x.size()));
            out[i] = x[static_cast<std::size_t>(perm[i])];
        }
        return {out};
    }

    case Op_kind::pad: {
        XRL_EXPECTS(n.inputs.size() == 1);
        Shape x = in_shape(g, n, 0);
        XRL_EXPECTS(n.params.pads_before.size() == x.size());
        XRL_EXPECTS(n.params.pads_after.size() == x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] += n.params.pads_before[i] + n.params.pads_after[i];
        return {x};
    }

    case Op_kind::reduce_sum:
    case Op_kind::reduce_mean: {
        XRL_EXPECTS(n.inputs.size() == 1);
        const Shape& x = in_shape(g, n, 0);
        const std::int64_t axis = n.params.axis;
        XRL_EXPECTS(axis >= 0 && axis < static_cast<std::int64_t>(x.size()));
        Shape out;
        for (std::size_t d = 0; d < x.size(); ++d) {
            if (static_cast<std::int64_t>(d) == axis) {
                if (n.params.keep_dim) out.push_back(1);
            } else {
                out.push_back(x[d]);
            }
        }
        return {out};
    }

    case Op_kind::embedding: {
        XRL_EXPECTS(n.inputs.size() == 2);
        Shape ids = in_shape(g, n, 0);
        const Shape& table = in_shape(g, n, 1);
        XRL_EXPECTS(table.size() == 2);
        ids.push_back(table[1]);
        return {ids};
    }

    case Op_kind::enlarge: {
        XRL_EXPECTS(n.inputs.size() == 1);
        const Shape& w = in_shape(g, n, 0);
        XRL_EXPECTS(w.size() == 4);
        XRL_EXPECTS(n.params.target_r >= w[2] && n.params.target_s >= w[3]);
        XRL_EXPECTS((n.params.target_r - w[2]) % 2 == 0);
        XRL_EXPECTS((n.params.target_s - w[3]) % 2 == 0);
        return {Shape{w[0], w[1], n.params.target_r, n.params.target_s}};
    }

    case Op_kind::count_:
        break;
    }
    XRL_EXPECTS(false && "unhandled op kind in shape inference");
    return {};
}

} // namespace xrl
