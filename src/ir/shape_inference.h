// Per-operator output shape inference.
#pragma once

#include <vector>

#include "ir/graph.h"

namespace xrl {

/// Compute the output shapes of `id` from its inputs' (already inferred)
/// shapes. Source nodes (input/weight) return their pre-assigned shapes;
/// constants return their payload shape. Throws Contract_violation on
/// malformed operands.
std::vector<Shape> infer_output_shapes(const Graph& graph, Node_id id);

} // namespace xrl
