#include "ir/graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "ir/shape_inference.h"
#include "support/check.h"

namespace xrl {

namespace {

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value)
{
    return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

std::uint64_t hash_payload(const Tensor& t)
{
    std::uint64_t h = 0xfeedULL;
    for (const std::int64_t d : t.shape()) h = hash_combine(h, static_cast<std::uint64_t>(d));
    for (std::int64_t i = 0; i < t.volume(); ++i) {
        // Quantise so that float noise does not defeat dedup of identical
        // constants.
        h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(t.at(i) * 1e6F)));
    }
    return h;
}

} // namespace

std::int32_t num_outputs(const Node& node)
{
    if (node.kind == Op_kind::split)
        return static_cast<std::int32_t>(node.params.split_sizes.size());
    return 1;
}

void Graph::reserve(std::size_t capacity)
{
    nodes_.reserve(capacity);
    alive_.reserve(capacity);
}

Node_id Graph::add_node(Op_kind kind, std::vector<Edge> inputs, Op_params params, std::string name)
{
    for (const Edge& e : inputs) {
        XRL_EXPECTS(is_alive(e.node));
        XRL_EXPECTS(e.port >= 0 && e.port < num_outputs(node(e.node)));
    }
    Node n;
    n.kind = kind;
    n.params = std::move(params);
    n.inputs = std::move(inputs);
    n.name = std::move(name);
    nodes_.push_back(std::move(n));
    alive_.push_back(1);
    ++alive_count_;
    return static_cast<Node_id>(nodes_.size() - 1);
}

Node_id Graph::add_constant(Tensor value, std::string name)
{
    const Node_id id = add_node(Op_kind::constant, {}, {}, std::move(name));
    nodes_[static_cast<std::size_t>(id)].payload = std::make_shared<const Tensor>(std::move(value));
    return id;
}

void Graph::set_outputs(std::vector<Edge> outputs)
{
    for (const Edge& e : outputs) {
        XRL_EXPECTS(is_alive(e.node));
        XRL_EXPECTS(e.port >= 0 && e.port < num_outputs(node(e.node)));
    }
    outputs_ = std::move(outputs);
}

const Node& Graph::node(Node_id id) const
{
    XRL_EXPECTS(is_alive(id));
    return nodes_[static_cast<std::size_t>(id)];
}

Node& Graph::node_mut(Node_id id)
{
    XRL_EXPECTS(is_alive(id));
    return nodes_[static_cast<std::size_t>(id)];
}

bool Graph::is_alive(Node_id id) const
{
    return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() &&
           alive_[static_cast<std::size_t>(id)] != 0;
}

std::vector<Node_id> Graph::node_ids() const
{
    std::vector<Node_id> ids;
    ids.reserve(alive_count_);
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (alive_[i] != 0) ids.push_back(static_cast<Node_id>(i));
    return ids;
}

const Shape& Graph::shape_of(Edge edge) const
{
    const Node& n = node(edge.node);
    XRL_EXPECTS(edge.port >= 0 && static_cast<std::size_t>(edge.port) < n.output_shapes.size());
    return n.output_shapes[static_cast<std::size_t>(edge.port)];
}

std::vector<std::vector<Edge_use>> Graph::build_users() const
{
    std::vector<std::vector<Edge_use>> users;
    build_users(users);
    return users;
}

void Graph::build_users(std::vector<std::vector<Edge_use>>& users) const
{
    users.resize(nodes_.size());
    for (auto& list : users) list.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] == 0) continue;
        const Node& n = nodes_[i];
        for (std::size_t slot = 0; slot < n.inputs.size(); ++slot)
            users[static_cast<std::size_t>(n.inputs[slot].node)].push_back(
                {static_cast<Node_id>(i), static_cast<std::int32_t>(slot)});
    }
}

std::vector<Node_id> Graph::topo_order() const
{
    // Kahn's algorithm over alive nodes.
    std::vector<std::int32_t> pending(nodes_.size(), 0);
    std::vector<Node_id> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] == 0) continue;
        pending[i] = static_cast<std::int32_t>(nodes_[i].inputs.size());
        if (pending[i] == 0) ready.push_back(static_cast<Node_id>(i));
    }
    const auto users = build_users();
    std::vector<Node_id> order;
    order.reserve(alive_count_);
    for (std::size_t head = 0; head < ready.size(); ++head) {
        const Node_id id = ready[head];
        order.push_back(id);
        for (const Edge_use& use : users[static_cast<std::size_t>(id)])
            if (--pending[static_cast<std::size_t>(use.user)] == 0) ready.push_back(use.user);
    }
    XRL_ENSURES(order.size() == alive_count_); // otherwise: cycle
    return order;
}

namespace {

/// Per-thread buffers for the O(V) passes the rewrite epilogue runs once
/// per materialised candidate (cycle check, canonical hash, DCE). No
/// values survive a call — only the capacity is reused — and none of the
/// passes call each other, so sharing one scratch per thread is safe.
struct Traversal_scratch {
    std::vector<std::uint8_t> colour;                     // DFS colouring / memo state
    std::vector<std::pair<Node_id, std::uint32_t>> stack; // DFS frames (node, next slot)
    std::vector<std::uint64_t> node_hash;                 // canonical_hash memo
    std::vector<std::uint8_t> reachable;                  // DCE mask
    std::vector<Node_id> id_stack;                        // DCE worklist
};

Traversal_scratch& traversal_scratch()
{
    thread_local Traversal_scratch scratch;
    return scratch;
}

} // namespace

bool Graph::is_acyclic() const
{
    // Iterative three-colour DFS along input edges. Unlike Kahn's
    // algorithm this needs no use lists, which matters because the rewrite
    // epilogue runs this check once per candidate on the hot path.
    Traversal_scratch& scratch = traversal_scratch();
    std::vector<std::uint8_t>& colour = scratch.colour;
    colour.assign(nodes_.size(), 0); // 0 white, 1 grey, 2 black
    std::vector<std::pair<Node_id, std::uint32_t>>& stack = scratch.stack; // node, next slot
    stack.clear();
    for (std::size_t seed = 0; seed < nodes_.size(); ++seed) {
        if (alive_[seed] == 0 || colour[seed] != 0) continue;
        colour[seed] = 1;
        stack.emplace_back(static_cast<Node_id>(seed), 0);
        while (!stack.empty()) {
            const Node_id id = stack.back().first;
            const Node& n = nodes_[static_cast<std::size_t>(id)];
            std::uint32_t& slot = stack.back().second;
            if (slot == n.inputs.size()) {
                colour[static_cast<std::size_t>(id)] = 2;
                stack.pop_back();
                continue;
            }
            const auto child = static_cast<std::size_t>(n.inputs[slot].node);
            ++slot;
            if (colour[child] == 0) {
                colour[child] = 1;
                stack.emplace_back(static_cast<Node_id>(child), 0);
            } else if (colour[child] == 1) {
                return false; // back edge
            }
        }
    }
    return true;
}

std::uint64_t Graph::canonical_hash() const
{
    // Memoised post-order DFS from the outputs: visits only the sub-DAG
    // the hash is defined over, with no topological sort or use lists.
    // Throws (like the topological sort it replaced) when that sub-DAG
    // contains a cycle.
    Traversal_scratch& scratch = traversal_scratch();
    std::vector<std::uint64_t>& node_hash = scratch.node_hash;
    node_hash.assign(nodes_.size(), 0);
    std::vector<std::uint8_t>& state = scratch.colour;
    state.assign(nodes_.size(), 0); // 0 new, 1 in progress, 2 done
    std::vector<std::pair<Node_id, std::uint32_t>>& stack = scratch.stack; // node, next slot
    stack.clear();
    for (const Edge& out : outputs_) {
        if (state[static_cast<std::size_t>(out.node)] == 2) continue;
        state[static_cast<std::size_t>(out.node)] = 1;
        stack.emplace_back(out.node, 0);
        while (!stack.empty()) {
            const Node_id id = stack.back().first;
            const Node& n = nodes_[static_cast<std::size_t>(id)];
            std::uint32_t& slot = stack.back().second;
            if (slot < n.inputs.size()) {
                const auto child = static_cast<std::size_t>(n.inputs[slot].node);
                ++slot;
                if (state[child] == 0) {
                    state[child] = 1;
                    stack.emplace_back(static_cast<Node_id>(child), 0);
                } else {
                    XRL_ENSURES(state[child] == 2); // in-progress child: cycle
                }
                continue;
            }
            std::uint64_t h = hash_combine(0x51edULL, static_cast<std::uint64_t>(n.kind));
            h = hash_combine(h, hash_params(n.params));
            for (const Edge& e : n.inputs) {
                h = hash_combine(h, node_hash[static_cast<std::size_t>(e.node)]);
                h = hash_combine(h, static_cast<std::uint64_t>(e.port));
            }
            if (n.kind == Op_kind::constant && n.payload != nullptr)
                h = hash_combine(h, hash_payload(*n.payload));
            if (n.kind == Op_kind::input || n.kind == Op_kind::weight) {
                // Source identity matters: two distinct inputs must not collide.
                h = hash_combine(h, static_cast<std::uint64_t>(id));
            }
            node_hash[static_cast<std::size_t>(id)] = h;
            state[static_cast<std::size_t>(id)] = 2;
            stack.pop_back();
        }
    }
    std::uint64_t h = 0xabcdULL;
    for (const Edge& e : outputs_) {
        h = hash_combine(h, node_hash[static_cast<std::size_t>(e.node)]);
        h = hash_combine(h, static_cast<std::uint64_t>(e.port));
    }
    return h;
}

std::uint64_t Graph::model_hash() const
{
    // Source shapes pin down every downstream shape (inference is a pure
    // function of them and the structure), so mixing them into the
    // structural hash is enough to separate width/sequence variants.
    //
    // The sub-DAG mirrors canonical_hash exactly: only sources the outputs
    // reach (an alive-but-unreachable node — pre-DCE clutter — must not
    // split the keys of canonically identical graphs), and only inputs and
    // weights, which canonical_hash identifies by node id; constants are
    // value-identified there and their payload hash already covers shape.
    const std::vector<std::uint8_t> reachable = reachable_mask();

    std::uint64_t h = hash_combine(canonical_hash(), 0x5a4e5ULL);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (reachable[i] == 0) continue;
        const Node& n = nodes_[i];
        if (n.kind != Op_kind::input && n.kind != Op_kind::weight) continue;
        h = hash_combine(h, static_cast<std::uint64_t>(i));
        for (const Shape& shape : n.output_shapes) {
            h = hash_combine(h, 0x51a7eULL);
            for (const std::int64_t dim : shape)
                h = hash_combine(h, static_cast<std::uint64_t>(dim));
        }
    }
    return h;
}

void Graph::replace_all_uses(Edge from, Edge to)
{
    XRL_EXPECTS(is_alive(from.node) && is_alive(to.node));
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] == 0) continue;
        for (Edge& e : nodes_[i].inputs)
            if (e == from) e = to;
    }
    for (Edge& e : outputs_)
        if (e == from) e = to;
}

void Graph::erase_node(Node_id id)
{
    XRL_EXPECTS(is_alive(id));
    const auto users = build_users();
    XRL_EXPECTS(users[static_cast<std::size_t>(id)].empty());
    for (const Edge& e : outputs_) XRL_EXPECTS(e.node != id);
    alive_[static_cast<std::size_t>(id)] = 0;
    nodes_[static_cast<std::size_t>(id)] = Node{};
    --alive_count_;
}

std::vector<std::uint8_t> Graph::reachable_mask() const
{
    std::vector<std::uint8_t> reachable(nodes_.size(), 0);
    std::vector<Node_id> stack;
    for (const Edge& e : outputs_) {
        if (reachable[static_cast<std::size_t>(e.node)] == 0) {
            reachable[static_cast<std::size_t>(e.node)] = 1;
            stack.push_back(e.node);
        }
    }
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : nodes_[static_cast<std::size_t>(id)].inputs) {
            if (reachable[static_cast<std::size_t>(e.node)] == 0) {
                reachable[static_cast<std::size_t>(e.node)] = 1;
                stack.push_back(e.node);
            }
        }
    }
    return reachable;
}

int Graph::eliminate_dead_nodes()
{
    // Same traversal as reachable_mask(), but into per-thread scratch: DCE
    // runs once per materialised candidate, so the mask and worklist must
    // not be fresh allocations.
    Traversal_scratch& scratch = traversal_scratch();
    std::vector<std::uint8_t>& reachable = scratch.reachable;
    reachable.assign(nodes_.size(), 0);
    std::vector<Node_id>& stack = scratch.id_stack;
    stack.clear();
    for (const Edge& e : outputs_) {
        if (reachable[static_cast<std::size_t>(e.node)] == 0) {
            reachable[static_cast<std::size_t>(e.node)] = 1;
            stack.push_back(e.node);
        }
    }
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : nodes_[static_cast<std::size_t>(id)].inputs) {
            if (reachable[static_cast<std::size_t>(e.node)] == 0) {
                reachable[static_cast<std::size_t>(e.node)] = 1;
                stack.push_back(e.node);
            }
        }
    }
    // Tombstone unreachable nodes directly: every user of a dead node is
    // itself dead, so erase_node's per-node "no users" scan is redundant
    // here (it made DCE quadratic on the candidate-generation hot path).
    int removed = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] == 0 || reachable[i] != 0) continue;
        if (nodes_[i].kind == Op_kind::input) continue;
        alive_[i] = 0;
        nodes_[i] = Node{};
        --alive_count_;
        ++removed;
    }
    return removed;
}

namespace {

/// Re-inference preserves structural sharing: sources keep their
/// construction-time shapes, and any node whose inferred shapes equal its
/// current ones keeps its Shape_list allocation (shared with every copy of
/// the graph) instead of replacing it with an equal fresh one.
bool keeps_existing_shapes(const Node& n)
{
    return (n.kind == Op_kind::input || n.kind == Op_kind::weight) && !n.output_shapes.empty();
}

} // namespace

void Graph::infer_shapes()
{
    for (const Node_id id : topo_order()) {
        Node& n = nodes_[static_cast<std::size_t>(id)];
        if (keeps_existing_shapes(n)) continue;
        std::vector<Shape> inferred = infer_output_shapes(*this, id);
        if (!n.output_shapes.equals(inferred)) n.output_shapes = Shape_list(std::move(inferred));
    }
}

bool Graph::infer_shapes_appended(Node_id first_new)
{
    const std::size_t first = first_new > 0 ? static_cast<std::size_t>(first_new) : 0;
    for (std::size_t i = first; i < nodes_.size(); ++i) {
        if (alive_[i] == 0) continue;
        if (keeps_existing_shapes(nodes_[i])) continue;
        for (const Edge& e : nodes_[i].inputs) {
            const Node& producer = nodes_[static_cast<std::size_t>(e.node)];
            if (static_cast<std::size_t>(e.port) >= producer.output_shapes.size()) return false;
        }
        std::vector<Shape> inferred = infer_output_shapes(*this, static_cast<Node_id>(i));
        if (!nodes_[i].output_shapes.equals(inferred))
            nodes_[i].output_shapes = Shape_list(std::move(inferred));
    }
    return true;
}

void Graph::validate(bool check_acyclic) const
{
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] == 0) continue;
        const Node& n = nodes_[i];
        for (const Edge& e : n.inputs) {
            XRL_ENSURES(is_alive(e.node));
            XRL_ENSURES(e.port >= 0 && e.port < num_outputs(node(e.node)));
        }
        if (!n.output_shapes.empty())
            XRL_ENSURES(static_cast<std::int32_t>(n.output_shapes.size()) == num_outputs(n));
    }
    for (const Edge& e : outputs_) {
        XRL_ENSURES(is_alive(e.node));
        XRL_ENSURES(e.port >= 0 && e.port < num_outputs(node(e.node)));
    }
    if (check_acyclic) XRL_ENSURES(is_acyclic());
}

std::string Graph::to_dot() const
{
    std::ostringstream os;
    os << "digraph G {\n  rankdir=TB;\n";
    for (const Node_id id : node_ids()) {
        const Node& n = node(id);
        os << "  n" << id << " [label=\"" << op_kind_name(n.kind);
        if (!n.name.empty()) os << "\\n" << n.name;
        if (!n.output_shapes.empty()) os << "\\n" << shape_to_string(n.output_shapes.front());
        os << "\"];\n";
    }
    for (const Node_id id : node_ids()) {
        const Node& n = node(id);
        for (const Edge& e : n.inputs)
            os << "  n" << e.node << " -> n" << id << " [label=\"" << e.port << "\"];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace xrl
