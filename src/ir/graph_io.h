// Textual (de)serialisation of computation graphs.
//
// Plays the role of the ONNX import/export interface in §3.1: models enter
// the system from a portable description and optimised graphs can be
// exported for deployment. The format is line-oriented and stable:
//
//   xrlflow-graph v1
//   node <id> <kind> inputs <n> <node>:<port>... shape <rank> <dims...> { <params> }
//   const <id> shape <rank> <dims...> values <count> <floats...>
//   outputs <n> <node>:<port>...
#pragma once

#include <iosfwd>
#include <string>

#include "ir/graph.h"

namespace xrl {

void serialise_graph_text(std::ostream& os, const Graph& graph);
Graph deserialise_graph_text(std::istream& is);

void save_graph(const std::string& path, const Graph& graph);
Graph load_graph(const std::string& path);

} // namespace xrl
