// Textual (de)serialisation of computation graphs.
//
// Plays the role of the ONNX import/export interface in §3.1: models enter
// the system from a portable description and optimised graphs can be
// exported for deployment. The format is line-oriented and stable:
//
//   xrlflow-graph v1
//   node <id> <kind> inputs <n> <node>:<port>... shape <rank> <dims...> { <params> }
//   const <id> shape <rank> <dims...> values <count> <floats...>
//   outputs <n> <node>:<port>...
#pragma once

#include <iosfwd>
#include <string>

#include "ir/graph.h"
#include "support/record_file.h"

namespace xrl {

void serialise_graph_text(std::ostream& os, const Graph& graph);
Graph deserialise_graph_text(std::istream& is);

void save_graph(const std::string& path, const Graph& graph);
Graph load_graph(const std::string& path);

/// Bit-exact binary form, used by the warm-start state store (the memo
/// table persists whole Optimize_results, graphs included). Unlike the
/// text format above — which canonicalises ids and prints floats at
/// ostream precision — this preserves the graph's exact representation:
/// the id space with its tombstones, every parameter field, and
/// bit-patterns for all floating-point data, so a deserialised graph
/// re-serialises to identical bytes and compares bit-identical to the
/// original.
void serialise_graph_binary(Byte_writer& out, const Graph& graph);

/// Inverse of serialise_graph_binary. Throws std::runtime_error on
/// malformed or truncated input (the state store catches, counts, and
/// skips); never reads past the input's bounds.
Graph deserialise_graph_binary(Byte_reader& in);

} // namespace xrl
