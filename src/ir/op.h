// Operator vocabulary of the tensor-graph IR.
//
// Mirrors the TASO operator set the paper builds on: roughly forty operator
// kinds (§3.3.2 "around 40 different tensor operators"), with kernel-fusable
// activations expressed as a parameter on matmul/conv2d exactly as TASO's
// fused kernels do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xrl {

enum class Op_kind : std::uint8_t {
    // Sources.
    input,      ///< Graph input (variable in rewrite patterns).
    weight,     ///< Trainable parameter; constant during inference.
    constant,   ///< Literal tensor with payload.

    // Dense linear algebra.
    matmul,     ///< 2-D or batched matrix product; optional fused activation.
    conv2d,     ///< NCHW convolution; optional fused activation; grouped.

    // Elementwise unary.
    relu,
    leaky_relu,
    gelu,
    sigmoid,
    tanh,
    exp,
    sqrt,
    erf,
    identity,
    dropout,    ///< Identity at inference time; kept to mirror ONNX imports.
    scale,      ///< Multiply by a scalar parameter.

    // Elementwise binary.
    add,
    sub,
    mul,
    div,

    // Pooling.
    max_pool2d,
    avg_pool2d,
    global_avg_pool,

    // Normalisation / attention.
    batch_norm,
    layer_norm,
    softmax,

    // Shape manipulation.
    concat,
    split,
    slice,
    reshape,
    transpose,
    pad,

    // Reductions.
    reduce_sum,
    reduce_mean,

    // Misc.
    embedding,  ///< Row gather from a table.
    enlarge,    ///< Pad a conv kernel spatially (TASO's enlarge operator).

    count_      ///< Number of operator kinds (one-hot width for the GNN).
};

/// Fused activation applied by matmul/conv2d kernels.
enum class Activation : std::uint8_t { none, relu, gelu, tanh, sigmoid };

constexpr int op_kind_count()
{
    return static_cast<int>(Op_kind::count_);
}

const char* op_kind_name(Op_kind kind);
const char* activation_name(Activation activation);

/// Inverse of op_kind_name; throws on unknown names (used by the rule
/// deserialiser).
Op_kind op_kind_from_name(const std::string& name);
Activation activation_from_name(const std::string& name);

/// add/mul are commutative in their two inputs; the pattern matcher tries
/// both input orders for these.
bool is_commutative(Op_kind kind);

/// Unary ops that apply the same scalar function to every element.
bool is_elementwise_unary(Op_kind kind);

/// Binary elementwise ops (with broadcasting).
bool is_elementwise_binary(Op_kind kind);

/// True for input/weight/constant (no compute, no inputs).
bool is_source(Op_kind kind);

/// Parameters attached to a node. A single aggregate keeps the IR simple;
/// each op reads only the fields it defines (documented per field).
struct Op_params {
    Activation activation = Activation::none;  ///< matmul, conv2d

    // conv2d / pooling geometry.
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;
    std::int64_t groups = 1;      ///< conv2d
    std::int64_t kernel_h = 0;    ///< pooling
    std::int64_t kernel_w = 0;    ///< pooling

    std::int64_t axis = 0;        ///< concat, split, slice, reduce_*
    std::vector<std::int64_t> split_sizes;   ///< split
    std::int64_t begin = 0;       ///< slice
    std::int64_t end = 0;         ///< slice
    std::vector<std::int64_t> perm;          ///< transpose (empty = swap last two)
    std::vector<std::int64_t> target_shape;  ///< reshape
    std::vector<std::int64_t> pads_before;   ///< pad
    std::vector<std::int64_t> pads_after;    ///< pad
    std::int64_t target_r = 0;    ///< enlarge
    std::int64_t target_s = 0;    ///< enlarge

    float epsilon = 1e-5F;        ///< batch_norm, layer_norm
    float scalar = 1.0F;          ///< scale factor / leaky_relu slope
    bool keep_dim = true;         ///< reduce_*

    bool operator==(const Op_params&) const = default;
};

/// Stable hash of the parameter block (order-sensitive over all fields).
std::uint64_t hash_params(const Op_params& params);

/// Compact "k=v" rendering of the non-default parameter fields.
std::string params_to_string(const Op_params& params);

/// Inverse of params_to_string (used by the rule (de)serialiser). Throws on
/// malformed input.
Op_params params_from_string(const std::string& text);

} // namespace xrl
