#include "ir/executor.h"

#include "support/check.h"
#include "tensor/kernels.h"

namespace xrl {

namespace {

Tensor apply_activation(Tensor t, Activation activation)
{
    switch (activation) {
    case Activation::none: return t;
    case Activation::relu: return relu(t);
    case Activation::gelu: return gelu(t);
    case Activation::tanh: return tanh_op(t);
    case Activation::sigmoid: return sigmoid(t);
    }
    return t;
}

} // namespace

Tensor materialise_weight(const Shape& shape, Node_id id, std::uint64_t weight_seed)
{
    Rng rng(weight_seed ^ (0x9e3779b9ULL * static_cast<std::uint64_t>(id + 1)));
    // Small magnitudes keep deep graphs numerically tame for equivalence
    // checking.
    return Tensor::random_uniform(shape, rng, -0.5F, 0.5F);
}

Binding_map random_bindings(const Graph& graph, Rng& rng, float lo, float hi)
{
    Binding_map bindings;
    for (const Node_id id : graph.node_ids()) {
        const Node& n = graph.node(id);
        if (n.kind != Op_kind::input) continue;
        XRL_EXPECTS(!n.output_shapes.empty());
        bindings.emplace(id, Tensor::random_uniform(n.output_shapes.front(), rng, lo, hi));
    }
    return bindings;
}

std::vector<Tensor> execute(const Graph& graph, const Binding_map& bindings, std::uint64_t weight_seed)
{
    // Values per (node, port).
    std::vector<std::vector<Tensor>> values(graph.capacity());

    auto in = [&](const Node& n, std::size_t slot) -> const Tensor& {
        const Edge& e = n.inputs[slot];
        return values[static_cast<std::size_t>(e.node)][static_cast<std::size_t>(e.port)];
    };

    for (const Node_id id : graph.topo_order()) {
        const Node& n = graph.node(id);
        std::vector<Tensor>& out = values[static_cast<std::size_t>(id)];
        switch (n.kind) {
        case Op_kind::input: {
            const auto it = bindings.find(id);
            XRL_EXPECTS(it != bindings.end());
            XRL_EXPECTS(it->second.shape() == n.output_shapes.front());
            out = {it->second};
            break;
        }
        case Op_kind::weight:
            out = {materialise_weight(n.output_shapes.front(), id, weight_seed)};
            break;
        case Op_kind::constant:
            XRL_EXPECTS(n.payload != nullptr);
            out = {*n.payload};
            break;
        case Op_kind::matmul:
            out = {apply_activation(matmul(in(n, 0), in(n, 1)), n.params.activation)};
            break;
        case Op_kind::conv2d: {
            Conv2d_spec spec;
            spec.stride_h = n.params.stride_h;
            spec.stride_w = n.params.stride_w;
            spec.pad_h = n.params.pad_h;
            spec.pad_w = n.params.pad_w;
            spec.groups = n.params.groups;
            out = {apply_activation(conv2d(in(n, 0), in(n, 1), spec), n.params.activation)};
            break;
        }
        case Op_kind::relu: out = {relu(in(n, 0))}; break;
        case Op_kind::leaky_relu: out = {leaky_relu(in(n, 0), n.params.scalar)}; break;
        case Op_kind::gelu: out = {gelu(in(n, 0))}; break;
        case Op_kind::sigmoid: out = {sigmoid(in(n, 0))}; break;
        case Op_kind::tanh: out = {tanh_op(in(n, 0))}; break;
        case Op_kind::exp: out = {exp_op(in(n, 0))}; break;
        case Op_kind::sqrt: out = {sqrt_op(in(n, 0))}; break;
        case Op_kind::erf: out = {erf_op(in(n, 0))}; break;
        case Op_kind::identity:
        case Op_kind::dropout:
            out = {in(n, 0)};
            break;
        case Op_kind::scale: out = {scale(in(n, 0), n.params.scalar)}; break;
        case Op_kind::add: out = {add(in(n, 0), in(n, 1))}; break;
        case Op_kind::sub: out = {sub(in(n, 0), in(n, 1))}; break;
        case Op_kind::mul: out = {mul(in(n, 0), in(n, 1))}; break;
        case Op_kind::div: out = {div(in(n, 0), in(n, 1))}; break;
        case Op_kind::max_pool2d:
        case Op_kind::avg_pool2d: {
            Pool2d_spec spec;
            spec.kernel_h = n.params.kernel_h;
            spec.kernel_w = n.params.kernel_w;
            spec.stride_h = n.params.stride_h;
            spec.stride_w = n.params.stride_w;
            spec.pad_h = n.params.pad_h;
            spec.pad_w = n.params.pad_w;
            out = {n.kind == Op_kind::max_pool2d ? max_pool2d(in(n, 0), spec)
                                                 : avg_pool2d(in(n, 0), spec)};
            break;
        }
        case Op_kind::global_avg_pool: out = {global_avg_pool(in(n, 0))}; break;
        case Op_kind::batch_norm:
            out = {batch_norm(in(n, 0), in(n, 1), in(n, 2), in(n, 3), in(n, 4), n.params.epsilon)};
            break;
        case Op_kind::layer_norm:
            out = {layer_norm(in(n, 0), in(n, 1), in(n, 2), n.params.epsilon)};
            break;
        case Op_kind::softmax: out = {softmax(in(n, 0))}; break;
        case Op_kind::concat: {
            std::vector<Tensor> parts;
            parts.reserve(n.inputs.size());
            for (std::size_t slot = 0; slot < n.inputs.size(); ++slot) parts.push_back(in(n, slot));
            out = {concat(parts, n.params.axis)};
            break;
        }
        case Op_kind::split:
            out = split(in(n, 0), n.params.axis, n.params.split_sizes);
            break;
        case Op_kind::slice:
            out = {slice(in(n, 0), n.params.axis, n.params.begin, n.params.end)};
            break;
        case Op_kind::reshape: out = {in(n, 0).reshaped(n.params.target_shape)}; break;
        case Op_kind::transpose: {
            if (n.params.perm.empty()) {
                out = {transpose_last2(in(n, 0))};
            } else {
                out = {transpose(in(n, 0), n.params.perm)};
            }
            break;
        }
        case Op_kind::pad: out = {pad(in(n, 0), n.params.pads_before, n.params.pads_after)}; break;
        case Op_kind::reduce_sum: out = {reduce_sum(in(n, 0), n.params.axis, n.params.keep_dim)}; break;
        case Op_kind::reduce_mean: out = {reduce_mean(in(n, 0), n.params.axis, n.params.keep_dim)}; break;
        case Op_kind::embedding: out = {embedding(in(n, 0), in(n, 1))}; break;
        case Op_kind::enlarge:
            out = {enlarge_kernel(in(n, 0), n.params.target_r, n.params.target_s)};
            break;
        case Op_kind::count_:
            XRL_EXPECTS(false);
        }
    }

    std::vector<Tensor> results;
    results.reserve(graph.outputs().size());
    for (const Edge& e : graph.outputs())
        results.push_back(values[static_cast<std::size_t>(e.node)][static_cast<std::size_t>(e.port)]);
    return results;
}

} // namespace xrl
