// PPO-clip training loop (§3.3.4, Eqs. 3-5).
//
// On-policy roll-outs accumulate transitions for `update_every_episodes`
// episodes (Table 4: update frequency 10), then several epochs of
// minibatch updates (Table 4: batch size 16) optimise the combined
// objective J = L_clip + c1 L_vf + c2 L_entropy end-to-end through the GNN
// and both heads with a single backward pass per minibatch.
#pragma once

#include <vector>

#include "core/agent.h"
#include "env/environment.h"
#include "rl/gae.h"

namespace xrl {

struct Ppo_config {
    double clip = 0.2;
    double value_coef = 0.5;    ///< Table 4: c1.
    double entropy_coef = 0.01; ///< Table 4: c2.
    int epochs = 4;
    int minibatch_size = 16;    ///< Table 4.
    Gae_config gae;
    Adam_config adam;           ///< Table 4: learning rate 5e-4.
};

struct Trainer_config {
    int update_every_episodes = 10; ///< Table 4: update frequency.
    Ppo_config ppo;
    std::uint64_t seed = 7;
    bool verbose = false;
};

struct Episode_stats {
    double episode_return = 0.0;
    double final_latency_ms = 0.0;
    double best_latency_ms = 0.0;
    int steps = 0;
    bool ended_with_noop = false;
};

struct Update_stats {
    double mean_policy_loss = 0.0;
    double mean_value_loss = 0.0;
    double mean_entropy = 0.0;
    int minibatches = 0;
};

class Trainer {
public:
    Trainer(Agent& agent, Environment& env, Trainer_config config);

    /// Roll out one episode; when `record`, transitions land in the PPO
    /// buffer. Greedy mode argmaxes instead of sampling (inference).
    Episode_stats run_episode(bool greedy = false, bool record = true);

    /// Train for `episodes` episodes with periodic PPO updates. Returns the
    /// number of updates performed.
    int train(int episodes);

    const std::vector<Episode_stats>& history() const { return history_; }
    const Update_stats& last_update() const { return last_update_; }

private:
    struct Transition {
        Encoded_graph state;
        std::vector<std::uint8_t> mask;
        int action = 0;
        double log_prob = 0.0;
        double value = 0.0;
        double reward = 0.0;
        std::uint8_t done = 0;
    };

    void update();

    Agent* agent_;
    Environment* env_;
    Trainer_config config_;
    Adam adam_;
    Rng rng_;
    std::vector<Transition> buffer_;
    std::vector<Episode_stats> history_;
    Update_stats last_update_;
};

} // namespace xrl
