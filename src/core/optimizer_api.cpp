#include "core/optimizer_api.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/xrlflow.h"
#include "optimizers/pet/pet_optimizer.h"
#include "optimizers/taso/taso_optimizer.h"
#include "optimizers/tensat/tensat_optimizer.h"
#include "support/check.h"

namespace xrl {

// ---------------------------------------------------------------------------
// Request validation
// ---------------------------------------------------------------------------

void validate_request(const Optimize_request& request)
{
    const auto reject = [](const char* field, double value) {
        std::ostringstream os;
        os << "invalid Optimize_request: " << field << " = " << value
           << " (budgets must be finite and non-negative; 0 means unlimited / backend default)";
        throw std::invalid_argument(os.str());
    };
    if (!(request.time_budget_seconds >= 0.0)) // NaN fails this comparison too
        reject("time_budget_seconds", request.time_budget_seconds);
    if (request.time_budget_seconds > 1e18)
        reject("time_budget_seconds", request.time_budget_seconds);
    if (request.iteration_budget < 0)
        reject("iteration_budget", request.iteration_budget);
    if (request.device.profile.has_value()) {
        const Device_profile& p = *request.device.profile;
        // Anonymous inline profiles would route, memoise, and report as
        // the default device's name while computing something else.
        if (p.name.empty())
            throw std::invalid_argument(
                "invalid Optimize_request: inline device profile has an empty name");
        validate_device_profile(p, "invalid Optimize_request: inline");
    }
}

void validate_request(const Optimize_request& request, const Device_registry& devices)
{
    validate_request(request);
    // An inline profile needs no registration; only a *named* target must
    // resolve against the fleet.
    if (!request.device.profile.has_value() && !request.device.name.empty() &&
        !devices.contains(request.device.name)) {
        std::ostringstream os;
        os << "invalid Optimize_request: unknown device '" << request.device.name
           << "'; registered devices:";
        for (const std::string& name : devices.names()) os << ' ' << name;
        throw std::invalid_argument(os.str());
    }
}

// ---------------------------------------------------------------------------
// Optimizer_context
// ---------------------------------------------------------------------------

const Device_profile& Optimizer_context::device_for(const Optimize_request& request) const
{
    XRL_EXPECTS(devices != nullptr);
    return devices->resolve(request.device);
}

const Cost_model& Optimizer_context::cost_for(const Optimize_request& request) const
{
    XRL_EXPECTS(devices != nullptr);
    return devices->cost_model(request.device);
}

std::uint64_t Optimizer_context::device_fingerprint(const Optimize_request& request) const
{
    XRL_EXPECTS(devices != nullptr);
    return devices->fingerprint(request.device);
}

// ---------------------------------------------------------------------------
// Progress_driver
// ---------------------------------------------------------------------------

struct Progress_driver::State {
    std::string backend;
    double time_budget_seconds = 0.0;
    Progress_callback on_progress;
    std::chrono::steady_clock::time_point start;
    bool cancelled = false;

    double elapsed() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    }
};

Progress_driver::Progress_driver(std::string backend, const Optimize_request& request)
    : state_(std::make_shared<State>())
{
    state_->backend = std::move(backend);
    state_->time_budget_seconds = request.time_budget_seconds;
    state_->on_progress = request.on_progress;
    state_->start = std::chrono::steady_clock::now();
}

Search_heartbeat Progress_driver::heartbeat() const
{
    std::shared_ptr<State> state = state_;
    return [state](int step, double best_cost_ms) {
        if (state->cancelled) return false;
        const double elapsed = state->elapsed();
        if (state->time_budget_seconds > 0.0 && elapsed >= state->time_budget_seconds) {
            state->cancelled = true;
            return false;
        }
        if (state->on_progress) {
            Optimize_progress progress;
            progress.backend = state->backend;
            progress.step = step;
            progress.best_ms = best_cost_ms;
            progress.elapsed_seconds = elapsed;
            if (!state->on_progress(progress)) {
                state->cancelled = true;
                return false;
            }
        }
        return true;
    };
}

bool Progress_driver::cancelled() const { return state_->cancelled; }

double Progress_driver::elapsed_seconds() const { return state_->elapsed(); }

// ---------------------------------------------------------------------------
// Optimizer_registry
// ---------------------------------------------------------------------------

void Optimizer_registry::add(std::string name, Factory factory)
{
    XRL_EXPECTS(!name.empty());
    XRL_EXPECTS(factory != nullptr);
    XRL_EXPECTS(!factories_.contains(name));
    factories_.emplace(std::move(name), std::move(factory));
}

bool Optimizer_registry::contains(const std::string& name) const
{
    return factories_.contains(name);
}

std::vector<std::string> Optimizer_registry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
}

std::unique_ptr<Optimizer> Optimizer_registry::create(const std::string& name,
                                                      const Optimizer_context& context) const
{
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::ostringstream os;
        os << "unknown optimizer backend '" << name << "'; registered backends:";
        for (const auto& [known, factory] : factories_) os << ' ' << known;
        throw std::invalid_argument(os.str());
    }
    XRL_EXPECTS(context.rules != nullptr);
    XRL_EXPECTS(context.devices != nullptr);
    return it->second(context);
}

const Optimizer_registry& Optimizer_registry::built_in()
{
    static const Optimizer_registry registry = [] {
        Optimizer_registry r;
        register_taso_backend(r);
        register_pet_backend(r);
        register_tensat_backend(r);
        register_xrlflow_backend(r);
        return r;
    }();
    return registry;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, const Optimizer_context& context)
{
    return Optimizer_registry::built_in().create(name, context);
}

} // namespace xrl
