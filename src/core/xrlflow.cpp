#include "core/xrlflow.h"

#include <chrono>

#include "support/check.h"

namespace xrl {

Xrlflow::Xrlflow(const Rule_set& rules, Xrlflow_config config)
    : rules_(&rules), config_(std::move(config))
{
    // The environment caps candidates at the agent's padded action size.
    config_.env.max_candidates = config_.agent.max_candidates;
    agent_ = std::make_unique<Agent>(config_.agent, config_.seed);
    episode_seed_ = config_.seed;
}

void Xrlflow::train(const Graph& model, int episodes)
{
    E2e_simulator simulator(config_.device, episode_seed_ ^ 0xabcdULL);
    Environment env(model, *rules_, simulator, config_.env);
    Trainer_config trainer_config = config_.trainer;
    trainer_config.seed = episode_seed_;
    Trainer trainer(*agent_, env, trainer_config);
    trainer.train(episodes);
    for (const Episode_stats& s : trainer.history()) history_.push_back(s);
    episode_seed_ = episode_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
}

Optimisation_outcome Xrlflow::optimise(const Graph& model)
{
    const auto start = std::chrono::steady_clock::now();

    E2e_simulator simulator(config_.device, config_.seed ^ 0x7777ULL);

    Optimisation_outcome outcome;
    outcome.initial_ms = simulator.noiseless_ms(model);
    outcome.best_graph = model;
    outcome.final_ms = outcome.initial_ms;
    outcome.rule_counts.assign(rules_->size(), 0);

    Rng rng(config_.seed ^ 0x9999ULL);
    const int rollouts = std::max(config_.inference_rollouts, 1);
    for (int rollout = 0; rollout < rollouts; ++rollout) {
        Environment env(model, *rules_, simulator, config_.env);
        const bool greedy = rollout == 0;
        int steps = 0;
        bool improved = false;
        while (!env.done()) {
            std::vector<const Graph*> candidate_ptrs;
            for (const Candidate& c : env.candidates()) candidate_ptrs.push_back(&c.graph);
            const Encoded_graph state = encode_meta_graph(env.current_graph(), candidate_ptrs);
            const Agent::Decision decision = agent_->act(state, env.action_mask(), rng, greedy);
            env.step(decision.action);
            ++steps;

            const double latency = simulator.noiseless_ms(env.current_graph());
            if (latency < outcome.final_ms) {
                outcome.final_ms = latency;
                outcome.best_graph = env.current_graph();
                improved = true;
            }
        }
        if (improved || rollout == 0) {
            outcome.steps = steps;
            outcome.rule_counts = env.rule_application_counts();
        }
    }

    outcome.optimisation_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return outcome;
}

} // namespace xrl
