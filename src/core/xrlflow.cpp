#include "core/xrlflow.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

#include "core/checkpoint.h"
#include "core/policy_store.h"
#include "support/check.h"

namespace xrl {

Xrlflow::Xrlflow(const Rule_set& rules, Xrlflow_config config)
    : rules_(&rules), config_(std::move(config))
{
    // The environment caps candidates at the agent's padded action size.
    config_.env.max_candidates = config_.agent.max_candidates;
    agent_ = std::make_unique<Agent>(config_.agent, config_.seed);
    episode_seed_ = config_.seed;
}

void Xrlflow::train(const Graph& model, int episodes)
{
    E2e_simulator simulator(config_.device, episode_seed_ ^ 0xabcdULL);
    Environment env(model, *rules_, simulator, config_.env);
    Trainer_config trainer_config = config_.trainer;
    trainer_config.seed = episode_seed_;
    Trainer trainer(*agent_, env, trainer_config);
    trainer.train(episodes);
    for (const Episode_stats& s : trainer.history()) history_.push_back(s);
    episode_seed_ = episode_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
}

Optimisation_outcome Xrlflow::optimise(const Graph& model, const Inference_options& options)
{
    const auto start = std::chrono::steady_clock::now();

    const std::uint64_t seed = options.seed != 0 ? options.seed : config_.seed;
    E2e_simulator simulator(config_.device, seed ^ 0x7777ULL);

    Optimisation_outcome outcome;
    outcome.initial_ms = simulator.noiseless_ms(model);
    outcome.best_graph = model;
    outcome.final_ms = outcome.initial_ms;
    outcome.rule_counts.assign(rules_->size(), 0);

    Rng rng(seed ^ 0x9999ULL);
    int rollouts = options.rollouts > 0 ? options.rollouts : config_.inference_rollouts;
    rollouts = std::max(rollouts, 1);
    if (options.deterministic_only) rollouts = 1;
    int total_steps = 0;
    Meta_encoder encoder;
    std::vector<const Graph*> candidate_ptrs;
    for (int rollout = 0; rollout < rollouts && !outcome.stopped_early; ++rollout) {
        Environment env(model, *rules_, simulator, config_.env);
        const bool greedy = rollout == 0;
        int steps = 0;
        bool improved = false;
        while (!env.done()) {
            if (options.heartbeat && !options.heartbeat(total_steps, outcome.final_ms)) {
                outcome.stopped_early = true;
                break;
            }
            candidate_ptrs.clear();
            for (const Candidate& c : env.candidates()) candidate_ptrs.push_back(c.graph);
            const Encoded_graph& state = encoder.encode(env.current_graph(), candidate_ptrs);
            const Agent::Decision decision = agent_->act(state, env.action_mask(), rng, greedy);
            env.step(decision.action);
            ++steps;
            ++total_steps;

            const double latency = simulator.noiseless_ms(env.current_graph());
            if (latency < outcome.final_ms) {
                outcome.final_ms = latency;
                outcome.best_graph = env.current_graph();
                improved = true;
            }
        }
        if (improved || rollout == 0) {
            outcome.steps = steps;
            outcome.rule_counts = env.rule_application_counts();
        }
    }

    outcome.optimisation_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return outcome;
}

namespace {

class Xrlflow_backend final : public Optimizer {
public:
    explicit Xrlflow_backend(const Optimizer_context& context) : context_(context) {}

    std::string name() const override { return "xrlflow"; }

    Optimize_result optimize(const Graph& graph, const Optimize_request& request) override
    {
        const Progress_driver driver(name(), request);
        const int episodes = static_cast<int>(context_.option_or("xrlflow.episodes", 8));

        // Training runs as one uninterruptible phase (PPO needs whole
        // update windows), but it is inside the request's clock: the
        // callback can cancel before it starts, wall_seconds below
        // includes it, and a time budget it exhausts stops inference at
        // the first step. The budget cannot pre-empt training itself.
        const Device_profile& device = context_.device_for(request);
        if (!driver.heartbeat()(0, 0.0)) {
            Optimize_result cancelled;
            cancelled.backend = name();
            cancelled.device = device.name;
            cancelled.best_graph = graph;
            cancelled.cancelled = true;
            cancelled.wall_seconds = driver.elapsed_seconds();
            return cancelled;
        }
        Xrlflow& system = trained_system(graph, request, episodes, device);
        const double training_seconds = driver.elapsed_seconds();

        Inference_options options;
        options.deterministic_only = request.deterministic;
        options.rollouts = request.iteration_budget > 0
                               ? request.iteration_budget
                               : static_cast<int>(context_.option_or("xrlflow.rollouts", 0));
        options.seed = request.seed;
        options.heartbeat = driver.heartbeat();

        const Optimisation_outcome outcome = system.optimise(graph, options);

        Optimize_result result;
        result.backend = name();
        result.device = device.name;
        result.best_graph = outcome.best_graph;
        result.initial_ms = outcome.initial_ms;
        result.final_ms = outcome.final_ms;
        result.steps = outcome.steps;
        result.wall_seconds = driver.elapsed_seconds(); // training + inference
        result.cancelled = outcome.stopped_early;
        for (std::size_t i = 0; i < outcome.rule_counts.size(); ++i)
            if (outcome.rule_counts[i] > 0)
                result.rule_counts[(*context_.rules)[i]->name()] = outcome.rule_counts[i];
        result.metadata["training_episodes"] = episodes;
        result.metadata["training_seconds"] = training_seconds;
        result.metadata["rollouts"] = options.deterministic_only ? 1.0 : std::max(options.rollouts, 1);
        return result;
    }

private:
    Xrlflow_config adapter_config(std::uint64_t seed, const Device_profile& device) const
    {
        // Smoke-scale defaults (the compare_optimizers configuration);
        // paper-scale runs override via context options.
        Xrlflow_config config;
        config.seed = seed;
        config.device = device;
        const int hidden = static_cast<int>(context_.option_or("xrlflow.hidden_dim", 16));
        config.agent.gnn.hidden_dim = hidden;
        config.agent.gnn.global_dim = hidden;
        config.agent.head_hidden = {64, 32};
        config.agent.max_candidates =
            static_cast<int>(context_.option_or("xrlflow.max_candidates", 31));
        config.env.max_steps = static_cast<int>(context_.option_or("xrlflow.max_steps", 40));
        config.trainer.update_every_episodes = 4;
        config.trainer.ppo.minibatch_size = 8;
        config.trainer.seed = seed;
        return config;
    }

    /// The persistent identity of a trained policy: everything that
    /// changes what training would produce — the model, the device whose
    /// simulator shaped the reward, the seed and episode budget — plus the
    /// agent architecture (a checkpoint only loads into matching shapes).
    /// Human-readable because it surfaces in store files and telemetry.
    std::string policy_key(const Graph& graph, const Optimize_request& request, int episodes,
                           const Device_profile& device) const
    {
        std::ostringstream os;
        os << "policy|model=" << graph.model_hash() << "|device=" << device.fingerprint()
           << "|seed=" << request.seed << "|episodes=" << episodes
           << "|hidden=" << static_cast<int>(context_.option_or("xrlflow.hidden_dim", 16))
           << "|actions=" << static_cast<int>(context_.option_or("xrlflow.max_candidates", 31)) + 1;
        return os.str();
    }

    /// Train-once cache: a policy per (graph, seed, episodes, device).
    /// Keys on model_hash so shape variants of one architecture train
    /// separately, and on the device fingerprint because the reward signal
    /// — the simulator — is device-specific: a policy trained against the
    /// gtx1080 simulator must never answer a100 requests. Keeps repeat
    /// optimisation of the same (model, device) from paying the RL
    /// training cost.
    ///
    /// With a Policy_store on the context, the cache extends across
    /// process restarts: a miss here first asks the store (loading skips
    /// training entirely — the warm start), and every freshly trained
    /// policy is offered back. Loaded parameters are bit-exact, so a
    /// warm-started policy's inference is bit-identical to the trained
    /// one's.
    Xrlflow& trained_system(const Graph& graph, const Optimize_request& request, int episodes,
                            const Device_profile& device)
    {
        const std::uint64_t key = graph.model_hash() ^ (request.seed * 0x9e3779b97f4a7c15ULL) ^
                                  static_cast<std::uint64_t>(episodes) ^
                                  (device.fingerprint() * 0xff51afd7ed558ccdULL);
        const auto it = trained_.find(key);
        if (it != trained_.end()) return *it->second;
        auto system =
            std::make_unique<Xrlflow>(*context_.rules, adapter_config(request.seed, device));
        bool warm = false;
        if (context_.policy_store != nullptr && episodes > 0) {
            std::string blob;
            if (context_.policy_store->fetch_policy(policy_key(graph, request, episodes, device),
                                                    &blob)) {
                std::istringstream is(blob);
                try {
                    load_parameters(is, system->agent().parameters());
                    warm = true;
                } catch (const Contract_violation&) {
                    // A stale checkpoint whose architecture no longer
                    // matches (changed agent defaults) is a miss — but the
                    // failed load already overwrote a prefix of the
                    // parameters, so rebuild the system before retraining:
                    // training must start from the seeded init or the
                    // result loses its determinism per (graph, request).
                    system = std::make_unique<Xrlflow>(*context_.rules,
                                                       adapter_config(request.seed, device));
                }
            }
        }
        if (!warm && episodes > 0) {
            system->train(graph, episodes);
            if (context_.policy_store != nullptr) {
                std::ostringstream os;
                save_parameters(os, system->agent().parameters());
                context_.policy_store->put_policy(policy_key(graph, request, episodes, device),
                                                  os.str());
            }
        }
        return *trained_.emplace(key, std::move(system)).first->second;
    }

    Optimizer_context context_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Xrlflow>> trained_;
};

} // namespace

void register_xrlflow_backend(Optimizer_registry& registry)
{
    registry.add("xrlflow", [](const Optimizer_context& context) -> std::unique_ptr<Optimizer> {
        return std::make_unique<Xrlflow_backend>(context);
    });
}

} // namespace xrl
