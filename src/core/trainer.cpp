#include "core/trainer.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"
#include "support/logging.h"

namespace xrl {

namespace {

const Encoded_graph& encode_state(Meta_encoder& encoder, std::vector<const Graph*>& candidate_ptrs,
                                  const Environment& env)
{
    candidate_ptrs.clear();
    candidate_ptrs.reserve(env.candidates().size());
    for (const Candidate& c : env.candidates()) candidate_ptrs.push_back(c.graph);
    return encoder.encode(env.current_graph(), candidate_ptrs);
}

} // namespace

Trainer::Trainer(Agent& agent, Environment& env, Trainer_config config)
    : agent_(&agent),
      env_(&env),
      config_(std::move(config)),
      adam_(agent.parameters(), config_.ppo.adam),
      rng_(config_.seed)
{
}

Episode_stats Trainer::run_episode(bool greedy, bool record)
{
    env_->reset();
    Episode_stats stats;
    stats.best_latency_ms = env_->initial_latency_ms();

    Meta_encoder encoder;
    std::vector<const Graph*> candidate_ptrs;
    while (!env_->done()) {
        const Encoded_graph& state = encode_state(encoder, candidate_ptrs, *env_);
        const std::vector<std::uint8_t> mask = env_->action_mask();
        const Agent::Decision decision = agent_->act(state, mask, rng_, greedy);
        const Env_step outcome = env_->step(decision.action);

        stats.episode_return += outcome.reward;
        ++stats.steps;
        if (outcome.measured)
            stats.best_latency_ms = std::min(stats.best_latency_ms, outcome.latency_ms);
        if (outcome.done && decision.action == env_->noop_action()) stats.ended_with_noop = true;

        if (record) {
            Transition t;
            t.state = state; // copy: the encoder's buffer is reused next step
            t.mask = mask;
            t.action = decision.action;
            t.log_prob = decision.log_prob;
            t.value = decision.value;
            t.reward = outcome.reward;
            t.done = outcome.done ? 1 : 0;
            buffer_.push_back(std::move(t));
        }
    }
    stats.final_latency_ms = env_->last_latency_ms();
    return stats;
}

int Trainer::train(int episodes)
{
    int updates = 0;
    for (int episode = 0; episode < episodes; ++episode) {
        const Episode_stats stats = run_episode(/*greedy=*/false, /*record=*/true);
        history_.push_back(stats);
        if (config_.verbose) {
            log_info("episode ", episode, ": return=", stats.episode_return,
                     " final_ms=", stats.final_latency_ms, " steps=", stats.steps);
        }
        if ((episode + 1) % config_.update_every_episodes == 0 && !buffer_.empty()) {
            update();
            ++updates;
        }
    }
    if (!buffer_.empty()) {
        update();
        ++updates;
    }
    return updates;
}

void Trainer::update()
{
    const std::size_t n = buffer_.size();
    std::vector<double> rewards(n);
    std::vector<double> values(n);
    std::vector<std::uint8_t> dones(n);
    for (std::size_t i = 0; i < n; ++i) {
        rewards[i] = buffer_[i].reward;
        values[i] = buffer_[i].value;
        dones[i] = buffer_[i].done;
    }
    Gae_result gae = compute_gae(rewards, values, dones, config_.ppo.gae);
    normalise_advantages(gae.advantages);

    Update_stats totals;
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < config_.ppo.epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic rng.
        for (std::size_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng_.uniform_index(i)]);

        for (std::size_t begin = 0; begin < n; begin += static_cast<std::size_t>(config_.ppo.minibatch_size)) {
            const std::size_t end =
                std::min(begin + static_cast<std::size_t>(config_.ppo.minibatch_size), n);
            const auto batch = static_cast<float>(end - begin);

            Tape tape;
            Var total_loss = tape.constant(Tensor(Shape{1, 1}));
            double policy_loss_value = 0.0;
            double value_loss_value = 0.0;
            double entropy_value = 0.0;

            for (std::size_t bi = begin; bi < end; ++bi) {
                const Transition& t = buffer_[order[bi]];
                const auto adv = static_cast<float>(gae.advantages[order[bi]]);
                const auto ret = static_cast<float>(gae.returns[order[bi]]);

                const Agent::Forward fwd = agent_->forward(tape, t.state);
                const Categorical_vars dist = masked_categorical(tape, fwd.logits, t.mask);
                const Var log_prob = tape.pick(dist.log_probs, t.action);

                // Eq. 3 (clip objective), maximised => negated into the loss.
                const Var ratio = tape.exp(
                    tape.add(log_prob, tape.constant(Tensor::scalar(-static_cast<float>(t.log_prob))
                                                         .reshaped({1, 1}))));
                const Var unclipped = tape.scale(ratio, adv);
                const Var clipped = tape.scale(
                    tape.clamp(ratio, 1.0F - static_cast<float>(config_.ppo.clip),
                               1.0F + static_cast<float>(config_.ppo.clip)),
                    adv);
                const Var objective = tape.minimum(unclipped, clipped);

                // Eq. 4 (value regression).
                const Var value_error =
                    tape.square(tape.add(fwd.value, tape.constant(Tensor(Shape{1, 1}, {-ret}))));

                // Eq. 5: J = L_clip + c1 L_vf + c2 L_entropy.
                Var item_loss = tape.neg(objective);
                item_loss = tape.add(
                    item_loss, tape.scale(value_error, static_cast<float>(config_.ppo.value_coef)));
                item_loss = tape.add(item_loss, tape.scale(dist.entropy,
                                                           -static_cast<float>(config_.ppo.entropy_coef)));
                total_loss = tape.add(total_loss, item_loss);

                policy_loss_value += -tape.value(objective).at(0);
                value_loss_value += tape.value(value_error).at(0);
                entropy_value += tape.value(dist.entropy).at(0);
            }

            const Var loss = tape.scale(total_loss, 1.0F / batch);
            tape.backward(loss);
            adam_.step();

            totals.mean_policy_loss += policy_loss_value / batch;
            totals.mean_value_loss += value_loss_value / batch;
            totals.mean_entropy += entropy_value / batch;
            ++totals.minibatches;
        }
    }

    if (totals.minibatches > 0) {
        totals.mean_policy_loss /= totals.minibatches;
        totals.mean_value_loss /= totals.minibatches;
        totals.mean_entropy /= totals.minibatches;
    }
    last_update_ = totals;
    buffer_.clear();
}

} // namespace xrl
