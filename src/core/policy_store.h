// Policy_store: where trained policies outlive the process.
//
// X-RLflow's distinguishing production property is that a trained policy
// is reusable — the paper's Figure 7 generalisation rests on it — so
// retraining on every server restart throws away exactly the state the RL
// backend exists to accumulate. This interface is the backend-facing
// half of warm-start persistence: the xrlflow adapter offers every policy
// it trains to the store and asks the store before training a new one.
//
// Keys and payloads are deliberately opaque strings: the backend composes
// a key naming everything that identifies a policy — model hash, device
// fingerprint, seed, training episodes, and the agent architecture — and
// a payload via checkpoint.h's stream serialisers. The store (the
// serving layer's State_store) adds versioning, checksums, atomic writes
// and age eviction without either side knowing the other's format.
#pragma once

#include <string>

namespace xrl {

class Policy_store {
public:
    virtual ~Policy_store() = default;

    /// Fill `*blob` with the policy stored under `key`; false = miss. A
    /// store may decline entries it no longer trusts (age, corruption) —
    /// a miss always just means "train from scratch".
    virtual bool fetch_policy(const std::string& key, std::string* blob) = 0;

    /// Persist `blob` under `key`, replacing any previous entry.
    virtual void put_policy(const std::string& key, const std::string& blob) = 0;
};

} // namespace xrl
