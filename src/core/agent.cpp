#include "core/agent.h"

#include <cmath>

#include "core/checkpoint.h"
#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {

namespace {

Rng seeded(std::uint64_t seed)
{
    return Rng(seed);
}

} // namespace

Agent::Agent(const Agent_config& config, std::uint64_t seed)
    : config_(config),
      encoder_([&] {
          Rng rng = seeded(seed);
          return Gnn_encoder(config.gnn, rng);
      }()),
      policy_head_([&] {
          Rng rng = seeded(seed ^ 0x1111ULL);
          return Mlp(2 * config.gnn.global_dim, config.head_hidden, 1, rng);
      }()),
      value_head_([&] {
          Rng rng = seeded(seed ^ 0x2222ULL);
          return Mlp(config.gnn.global_dim, config.head_hidden, 1, rng);
      }()),
      pad_embedding_([&] {
          Rng rng = seeded(seed ^ 0x3333ULL);
          return Tensor::random_uniform({1, config.gnn.global_dim}, rng, -0.1F, 0.1F);
      }()),
      noop_embedding_([&] {
          Rng rng = seeded(seed ^ 0x4444ULL);
          return Tensor::random_uniform({1, config.gnn.global_dim}, rng, -0.1F, 0.1F);
      }())
{
    XRL_EXPECTS(config_.max_candidates >= 1);
}

Agent::Forward Agent::forward(Tape& tape, const Encoded_graph& state)
{
    XRL_EXPECTS(state.num_graphs >= 1);
    const auto num_candidates = state.num_graphs - 1;
    XRL_EXPECTS(num_candidates <= config_.max_candidates);

    const Gnn_encoder::Output encoded = encoder_(tape, state);
    const Var embeddings = encoded.graph_embeddings; // (1 + K) x gd

    // Candidate slot embeddings: real candidates, then pad rows, then No-Op.
    std::vector<std::int64_t> candidate_rows(static_cast<std::size_t>(num_candidates));
    for (std::int64_t k = 0; k < num_candidates; ++k)
        candidate_rows[static_cast<std::size_t>(k)] = k + 1;
    Var rows = tape.gather_rows(embeddings, candidate_rows);

    const std::int64_t pad_count = config_.max_candidates - num_candidates;
    if (pad_count > 0) {
        const std::vector<std::int64_t> zeros(static_cast<std::size_t>(pad_count), 0);
        rows = tape.concat_rows(rows, tape.gather_rows(tape.param(pad_embedding_), zeros));
    }
    rows = tape.concat_rows(rows, tape.param(noop_embedding_));

    // Score each slot against the current graph's embedding.
    const std::vector<std::int64_t> current_rep(
        static_cast<std::size_t>(config_.max_candidates + 1), 0);
    const Var current = tape.gather_rows(embeddings, current_rep);
    const Var logits = policy_head_(tape, tape.concat_cols(current, rows));

    const Var value = value_head_(tape, tape.gather_rows(embeddings, {0}));
    return {logits, value};
}

Agent::Decision Agent::act(const Encoded_graph& state, const std::vector<std::uint8_t>& mask,
                           Rng& rng, bool greedy)
{
    static Histogram& phase_histogram = Metrics_registry::global().histogram(
        "xrlflow_rollout_phase_us", "RL rollout time by phase", duration_us_buckets(),
        {{"phase", "gnn_inference"}});
    const Scoped_timer_us timer(phase_histogram);
    const Span_scope span("rollout/gnn_inference");
    Tape tape;
    const Forward fwd = forward(tape, state);
    const Tensor& logits = tape.value(fwd.logits);

    Decision decision;
    decision.action =
        greedy ? argmax_masked(logits, mask) : sample_masked(logits, mask, rng);
    const auto probs = masked_probabilities(logits, mask);
    decision.log_prob = std::log(std::max(probs[static_cast<std::size_t>(decision.action)], 1e-12));
    decision.value = tape.value(fwd.value).at(0);
    return decision;
}

std::vector<Parameter*> Agent::parameters()
{
    std::vector<Parameter*> out = encoder_.parameters();
    for (Parameter* p : policy_head_.parameters()) out.push_back(p);
    for (Parameter* p : value_head_.parameters()) out.push_back(p);
    out.push_back(&pad_embedding_);
    out.push_back(&noop_embedding_);
    return out;
}

void Agent::save(const std::string& path)
{
    save_parameters(path, parameters());
}

void Agent::load(const std::string& path)
{
    load_parameters(path, parameters());
}

} // namespace xrl
