// Binary (de)serialisation of parameter sets — lets the generalisation
// experiments (Figure 7) train once and reuse the policy, and gives the
// warm-start state store (serve/state_store.h) its policy payload format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/autograd.h"

namespace xrl {

void save_parameters(const std::string& path, const std::vector<Parameter*>& parameters);

/// Shapes must match the checkpoint exactly; throws Contract_violation
/// otherwise.
void load_parameters(const std::string& path, const std::vector<Parameter*>& parameters);

/// Stream forms of the same format (the file forms delegate to these). The
/// state store uses them to move policies through in-memory blobs instead
/// of paths; values round-trip bit-exactly, so a restored policy's
/// inference is bit-identical to the trained one's.
void save_parameters(std::ostream& os, const std::vector<Parameter*>& parameters);
void load_parameters(std::istream& is, const std::vector<Parameter*>& parameters);

} // namespace xrl
