// Binary (de)serialisation of parameter sets — lets the generalisation
// experiments (Figure 7) train once and reuse the policy.
#pragma once

#include <string>
#include <vector>

#include "nn/autograd.h"

namespace xrl {

void save_parameters(const std::string& path, const std::vector<Parameter*>& parameters);

/// Shapes must match the checkpoint exactly; throws Contract_violation
/// otherwise.
void load_parameters(const std::string& path, const std::vector<Parameter*>& parameters);

} // namespace xrl
