// X-RLflow facade: the end-to-end tensor-graph superoptimiser.
//
// Owns the rule corpus, device simulator, agent, and training loop; exposes
// the three operations the evaluation needs: train on a model, optimise a
// model with the trained policy (greedy inference), and optimise an unseen
// shape variant with the same policy (Figure 7 generalisation).
#pragma once

#include <memory>
#include <string>

#include "core/agent.h"
#include "core/optimizer_api.h"
#include "core/trainer.h"
#include "cost/device.h"
#include "env/environment.h"
#include "rules/corpus.h"

namespace xrl {

struct Xrlflow_config {
    Agent_config agent;
    Env_config env;
    Trainer_config trainer;
    Device_profile device = gtx1080_profile();
    std::uint64_t seed = 7;

    /// Transformation episodes run at inference: the first is greedy, the
    /// rest sample from the policy; the best graph seen wins. 1 reproduces
    /// the paper's single greedy episode (appropriate after full-scale
    /// training); the smoke-scale benches use a few stochastic roll-outs to
    /// compensate for their much shorter training budget.
    int inference_rollouts = 1;
};

struct Optimisation_outcome {
    Graph best_graph;
    double initial_ms = 0.0;
    double final_ms = 0.0;
    int steps = 0;
    double optimisation_seconds = 0.0;
    bool stopped_early = false;   ///< Heartbeat cut inference short.
    std::vector<int> rule_counts; ///< Applications per rule during inference.

    double speedup() const { return initial_ms / final_ms; }
};

/// Per-call overrides for Xrlflow::optimise (the unified-API adapter maps an
/// Optimize_request onto these; config defaults apply where fields are 0).
struct Inference_options {
    int rollouts = 0;                 ///< 0 = config.inference_rollouts.
    bool deterministic_only = false;  ///< Force a single greedy episode.
    std::uint64_t seed = 0;           ///< 0 = config.seed.
    Search_heartbeat heartbeat;       ///< Checked every environment step.
};

class Xrlflow {
public:
    /// `rules` must outlive the instance.
    Xrlflow(const Rule_set& rules, Xrlflow_config config = {});

    /// Train the agent on a model graph for `episodes` episodes. Can be
    /// called repeatedly (continues training the same policy).
    void train(const Graph& model, int episodes);

    /// Greedy inference: run one deterministic transformation episode and
    /// return the best graph seen (by deterministic latency).
    Optimisation_outcome optimise(const Graph& model) { return optimise(model, {}); }

    Optimisation_outcome optimise(const Graph& model, const Inference_options& options);

    Agent& agent() { return *agent_; }
    const std::vector<Episode_stats>& training_history() const { return history_; }

    void save_policy(const std::string& path) { agent_->save(path); }
    void load_policy(const std::string& path) { agent_->load(path); }

private:
    const Rule_set* rules_;
    Xrlflow_config config_;
    std::unique_ptr<Agent> agent_;
    std::vector<Episode_stats> history_;
    std::uint64_t episode_seed_ = 0;
};

/// Register the "xrlflow" backend. The adapter trains a policy per distinct
/// (graph, seed, episodes, target device) on first use and reuses it
/// afterwards — the device is part of the key because the simulator that
/// produces the reward is device-specific. Training
/// counts against the request's wall clock but runs as one uninterruptible
/// phase (PPO needs whole update windows); cancellation is checked before
/// training starts and at every inference step. Options:
/// "xrlflow.episodes" (training episodes, default 8), "xrlflow.rollouts"
/// (sampled inference episodes when the request is non-deterministic),
/// "xrlflow.hidden_dim", "xrlflow.max_candidates", "xrlflow.max_steps".
void register_xrlflow_backend(Optimizer_registry& registry);

} // namespace xrl
