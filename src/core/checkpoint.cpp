#include "core/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/check.h"

namespace xrl {

namespace {

constexpr std::uint64_t checkpoint_magic = 0x78726c666c6f7731ULL; // "xrlflow1"

} // namespace

void save_parameters(std::ostream& os, const std::vector<Parameter*>& parameters)
{
    XRL_EXPECTS(os.good());
    const std::uint64_t magic = checkpoint_magic;
    const std::uint64_t count = parameters.size();
    os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Parameter* p : parameters) {
        const std::uint64_t rank = p->value.shape().size();
        os.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
        for (const std::int64_t dim : p->value.shape())
            os.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
        os.write(reinterpret_cast<const char*>(p->value.data()),
                 static_cast<std::streamsize>(p->value.volume() * sizeof(float)));
    }
    XRL_ENSURES(os.good());
}

void load_parameters(std::istream& is, const std::vector<Parameter*>& parameters)
{
    XRL_EXPECTS(is.good());
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    XRL_EXPECTS(magic == checkpoint_magic);
    is.read(reinterpret_cast<char*>(&count), sizeof(count));
    XRL_EXPECTS(count == parameters.size());
    for (Parameter* p : parameters) {
        std::uint64_t rank = 0;
        is.read(reinterpret_cast<char*>(&rank), sizeof(rank));
        XRL_EXPECTS(rank == p->value.shape().size());
        Shape shape(rank);
        for (auto& dim : shape) is.read(reinterpret_cast<char*>(&dim), sizeof(dim));
        XRL_EXPECTS(shape == p->value.shape());
        is.read(reinterpret_cast<char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.volume() * sizeof(float)));
        p->zero_grad();
    }
    XRL_EXPECTS(is.good());
}

void save_parameters(const std::string& path, const std::vector<Parameter*>& parameters)
{
    std::ofstream os(path, std::ios::binary);
    save_parameters(os, parameters);
}

void load_parameters(const std::string& path, const std::vector<Parameter*>& parameters)
{
    std::ifstream is(path, std::ios::binary);
    load_parameters(is, parameters);
}

} // namespace xrl
