#include "core/optimization_service.h"

#include <bit>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {

Optimization_service::Optimization_service(Service_config config)
    : config_(std::move(config)),
      rules_(standard_rule_corpus()),
      devices_(config_.simulator_seed)
{
    if (config_.devices.empty()) {
        register_standard_devices(devices_);
    } else {
        for (const Device_profile& profile : config_.devices) devices_.add(profile);
    }
    if (!config_.default_device.empty()) devices_.set_default_device(config_.default_device);
    context_.rules = &rules_;
    context_.devices = &devices_;
    context_.options = config_.backend_options;
    context_.policy_store = config_.policy_store.get();
}

std::vector<std::string> Optimization_service::backends() const
{
    return Optimizer_registry::built_in().names();
}

std::unique_ptr<Optimizer> Optimization_service::acquire_instance(const std::string& backend)
{
    Lock_guard lock(mutex_);
    Backend_pool& pool = pools_[backend];
    if (!pool.idle.empty()) {
        std::unique_ptr<Optimizer> instance = std::move(pool.idle.back());
        pool.idle.pop_back();
        return instance;
    }
    // Creation throws for unknown names before any stats are touched, so a
    // bad backend string leaves the service intact (an empty pool entry is
    // the only trace).
    std::unique_ptr<Optimizer> instance = make_optimizer(backend, context_);
    ++pool.created;
    return instance;
}

void Optimization_service::release_instance(const std::string& backend,
                                            std::unique_ptr<Optimizer> instance)
{
    Lock_guard lock(mutex_);
    Backend_pool& pool = pools_[backend];
    if (pool.idle.size() < config_.max_idle_per_backend)
        pool.idle.push_back(std::move(instance));
    // else: drop it — warm state worth keeping fits in the retained set.
}

std::string Optimization_service::memo_key(std::uint64_t graph_hash, const std::string& backend,
                                           std::uint64_t device_fingerprint,
                                           const Optimize_request& request)
{
    std::ostringstream os;
    // The time budget is keyed by its exact bit pattern: default ostream
    // precision (6 significant digits) would collide distinct budgets.
    // (+ 0.0 folds -0.0 into +0.0 so equal-comparing budgets share a key.)
    os << graph_hash << '|' << backend << '|' << device_fingerprint << '|'
       << std::bit_cast<std::uint64_t>(request.time_budget_seconds + 0.0) << '|'
       << request.iteration_budget << '|' << request.seed << '|' << request.deterministic;
    return os.str();
}

std::string Optimization_service::request_key(std::uint64_t graph_hash, const std::string& backend,
                                              const Optimize_request& request) const
{
    return memo_key(graph_hash, backend, devices_.fingerprint(request.device), request);
}

Optimize_result Optimization_service::optimize(const std::string& backend, const Graph& graph,
                                               const Optimize_request& request)
{
    validate_request(request, devices_); // before any hash or registry-cache work
    return optimize_keyed(request_key(graph.model_hash(), backend, request), backend, graph,
                          request);
}

Optimize_result Optimization_service::optimize_keyed(const std::string& key,
                                                     const std::string& backend,
                                                     const Graph& graph,
                                                     const Optimize_request& request)
{
    // Both callers — optimize() and Optimization_server::submit — have
    // already run validate_request(request, devices()); doing it here too
    // would re-take the registry lock on every job.

    if (config_.cache_capacity > 0) {
        Lock_guard lock(mutex_);
        const auto hit = cache_.find(key);
        if (hit != cache_.end()) {
            ++hits_;
            Optimize_result cached = hit->second;
            cached.from_cache = true;
            return cached;
        }
    }

    std::unique_ptr<Optimizer> instance = acquire_instance(backend); // throws for unknown names
    if (config_.cache_capacity > 0) {
        Lock_guard lock(mutex_);
        ++misses_; // only real runs count as misses
    }

    Optimize_result result;
    try {
        result = instance->optimize(graph, request);
    } catch (...) {
        release_instance(backend, std::move(instance));
        throw;
    }
    release_instance(backend, std::move(instance));

    if (config_.cache_capacity > 0 && !result.cancelled) {
        Lock_guard lock(mutex_);
        if (cache_.emplace(key, result).second) {
            cache_order_.push_back(key);
            while (cache_order_.size() > config_.cache_capacity) {
                cache_.erase(cache_order_.front());
                cache_order_.pop_front();
            }
        }
    }
    return result;
}

std::vector<Backend_run> Optimization_service::optimize_all(const Graph& graph,
                                                            const Optimize_request& request,
                                                            int measure_repeats)
{
    if (measure_repeats < 1)
        throw std::invalid_argument("optimize_all: measure_repeats must be >= 1, got " +
                                    std::to_string(measure_repeats));
    validate_request(request, devices_);
    // One shared baseline measurement on the *target device's* simulator:
    // every backend is compared against the same "before" numbers (the
    // simulator is stateful, so measuring per backend would sample each
    // pair at a different noise state). The simulator locks its noise
    // stream internally, so each measure_repeated call is one atomic block.
    E2e_simulator& sim = devices_.simulator(request.device);
    const Latency_stats before = sim.measure_repeated(graph, measure_repeats);
    // Hash and device fingerprint resolved once for the whole comparison;
    // optimize_keyed skips re-validation (validated above).
    const std::uint64_t model_hash = graph.model_hash();
    const std::uint64_t device_fp = devices_.fingerprint(request.device);
    std::vector<Backend_run> runs;
    for (const std::string& backend : backends()) {
        Backend_run run;
        run.backend = backend;
        run.result = optimize_keyed(memo_key(model_hash, backend, device_fp, request), backend,
                                    graph, request);
        run.e2e_before = before;
        run.e2e_after = sim.measure_repeated(run.result.best_graph, measure_repeats);
        runs.push_back(std::move(run));
    }
    return runs;
}

std::size_t Optimization_service::cache_hits() const
{
    Lock_guard lock(mutex_);
    return hits_;
}

std::size_t Optimization_service::cache_misses() const
{
    Lock_guard lock(mutex_);
    return misses_;
}

std::size_t Optimization_service::cache_size() const
{
    Lock_guard lock(mutex_);
    return cache_.size();
}

void Optimization_service::clear_cache()
{
    Lock_guard lock(mutex_);
    cache_.clear();
    cache_order_.clear();
}

std::vector<Optimization_service::Memo_entry> Optimization_service::export_memo() const
{
    Lock_guard lock(mutex_);
    std::vector<Memo_entry> entries;
    entries.reserve(cache_order_.size());
    for (const std::string& key : cache_order_) {
        const auto it = cache_.find(key);
        if (it != cache_.end()) entries.push_back({key, it->second});
    }
    return entries;
}

std::size_t Optimization_service::import_memo(const std::vector<Memo_entry>& entries)
{
    if (config_.cache_capacity == 0) return 0;
    Lock_guard lock(mutex_);
    std::size_t imported = 0;
    for (const Memo_entry& entry : entries) {
        Optimize_result result = entry.result;
        result.from_cache = false; // stamped per hit, never stored
        if (!cache_.emplace(entry.key, std::move(result)).second) continue;
        cache_order_.push_back(entry.key);
        ++imported;
        while (cache_order_.size() > config_.cache_capacity) {
            cache_.erase(cache_order_.front());
            cache_order_.pop_front();
        }
    }
    return imported;
}

std::size_t Optimization_service::backend_instances(const std::string& backend) const
{
    Lock_guard lock(mutex_);
    const auto it = pools_.find(backend);
    return it == pools_.end() ? 0 : it->second.created;
}

} // namespace xrl
