#include "core/optimization_service.h"

#include <sstream>

#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {

Optimization_service::Optimization_service(Service_config config)
    : config_(std::move(config)),
      rules_(standard_rule_corpus()),
      cost_(config_.device),
      simulator_(config_.device, config_.simulator_seed)
{
    context_.rules = &rules_;
    context_.cost = &cost_;
    context_.device = config_.device;
    context_.options = config_.backend_options;
}

std::vector<std::string> Optimization_service::backends() const
{
    return Optimizer_registry::built_in().names();
}

Optimization_service::Backend_slot& Optimization_service::slot_for(const std::string& backend)
{
    // Caller holds mutex_. Creation throws for unknown names before any
    // state is touched, so a bad backend string leaves the service intact.
    const auto it = slots_.find(backend);
    if (it != slots_.end()) return *it->second;
    auto slot = std::make_unique<Backend_slot>();
    slot->optimizer = make_optimizer(backend, context_);
    return *slots_.emplace(backend, std::move(slot)).first->second;
}

std::string Optimization_service::cache_key(std::uint64_t graph_hash, const std::string& backend,
                                            const Optimize_request& request)
{
    std::ostringstream os;
    os << graph_hash << '|' << backend << '|' << request.time_budget_seconds << '|'
       << request.iteration_budget << '|' << request.seed << '|' << request.deterministic;
    return os.str();
}

Optimize_result Optimization_service::optimize(const std::string& backend, const Graph& graph,
                                               const Optimize_request& request)
{
    const std::string key = cache_key(graph.canonical_hash(), backend, request);

    Backend_slot* slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (config_.cache_capacity > 0) {
            const auto hit = cache_.find(key);
            if (hit != cache_.end()) {
                ++hits_;
                Optimize_result cached = hit->second;
                cached.from_cache = true;
                return cached;
            }
        }
        slot = &slot_for(backend); // throws for unknown names...
        if (config_.cache_capacity > 0) ++misses_; // ...so only real runs count as misses
    }

    Optimize_result result;
    {
        std::lock_guard<std::mutex> run_lock(slot->run_mutex);
        result = slot->optimizer->optimize(graph, request);
    }

    if (config_.cache_capacity > 0 && !result.cancelled) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cache_.emplace(key, result).second) {
            cache_order_.push_back(key);
            while (cache_order_.size() > config_.cache_capacity) {
                cache_.erase(cache_order_.front());
                cache_order_.pop_front();
            }
        }
    }
    return result;
}

std::vector<Backend_run> Optimization_service::optimize_all(const Graph& graph,
                                                            const Optimize_request& request,
                                                            int measure_repeats)
{
    XRL_EXPECTS(measure_repeats > 0);
    // One shared baseline measurement: every backend is compared against
    // the same "before" numbers (the simulator is stateful, so measuring
    // per backend would sample each pair at a different noise state).
    Latency_stats before;
    {
        std::lock_guard<std::mutex> sim_lock(simulator_mutex_);
        before = simulator_.measure_repeated(graph, measure_repeats);
    }
    std::vector<Backend_run> runs;
    for (const std::string& backend : backends()) {
        Backend_run run;
        run.backend = backend;
        run.result = optimize(backend, graph, request);
        run.e2e_before = before;
        {
            std::lock_guard<std::mutex> sim_lock(simulator_mutex_);
            run.e2e_after = simulator_.measure_repeated(run.result.best_graph, measure_repeats);
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

std::size_t Optimization_service::cache_hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t Optimization_service::cache_misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t Optimization_service::cache_size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

void Optimization_service::clear_cache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
    cache_order_.clear();
}

} // namespace xrl
