#include "core/result_serial.h"

#include <stdexcept>

#include "ir/graph_io.h"
#include "support/reflect.h"

namespace xrl {

namespace {

constexpr std::uint32_t result_serial_version = 1;

static_assert(aggregate_field_count<Optimize_result> == 11,
              "Optimize_result grew a field the serialiser does not cover: update "
              "serialise_result / deserialise_result, bump result_serial_version if the "
              "layout changed, and then this count");

template <class Value, class Write_value>
void write_map(Byte_writer& out, const std::map<std::string, Value>& map, Write_value write_value)
{
    out.u32(static_cast<std::uint32_t>(map.size()));
    for (const auto& [key, value] : map) {
        out.str(key);
        write_value(value);
    }
}

} // namespace

void serialise_result(Byte_writer& out, const Optimize_result& result)
{
    out.u32(result_serial_version);
    serialise_graph_binary(out, result.best_graph);
    out.str(result.backend);
    out.str(result.device);
    out.f64(result.initial_ms);
    out.f64(result.final_ms);
    out.i32(result.steps);
    out.f64(result.wall_seconds);
    out.u8(result.cancelled ? 1 : 0);
    out.u8(result.from_cache ? 1 : 0);
    write_map(out, result.rule_counts, [&out](int count) { out.i32(count); });
    write_map(out, result.metadata, [&out](double value) { out.f64(value); });
}

Optimize_result deserialise_result(Byte_reader& in)
{
    const std::uint32_t version = in.u32();
    if (version != result_serial_version)
        throw std::runtime_error("result serial: unsupported version " + std::to_string(version));
    Optimize_result result;
    result.best_graph = deserialise_graph_binary(in);
    result.backend = in.str();
    result.device = in.str();
    result.initial_ms = in.f64();
    result.final_ms = in.f64();
    result.steps = in.i32();
    result.wall_seconds = in.f64();
    result.cancelled = in.u8() != 0;
    result.from_cache = in.u8() != 0;
    const std::uint32_t rule_count = in.u32();
    in.expect_items(rule_count, sizeof(std::uint64_t) + sizeof(std::int32_t));
    for (std::uint32_t i = 0; i < rule_count; ++i) {
        std::string key = in.str();
        result.rule_counts[std::move(key)] = in.i32();
    }
    const std::uint32_t metadata_count = in.u32();
    in.expect_items(metadata_count, sizeof(std::uint64_t) + sizeof(double));
    for (std::uint32_t i = 0; i < metadata_count; ++i) {
        std::string key = in.str();
        result.metadata[std::move(key)] = in.f64();
    }
    return result;
}

std::string result_to_bytes(const Optimize_result& result)
{
    Byte_writer out;
    serialise_result(out, result);
    return out.take();
}

Optimize_result result_from_bytes(std::string_view bytes)
{
    Byte_reader in(bytes);
    Optimize_result result = deserialise_result(in);
    if (!in.at_end())
        throw std::runtime_error("result serial: trailing bytes after result");
    return result;
}

} // namespace xrl
