// Serving-oriented facade over the unified optimiser API.
//
// Owns everything a caller would otherwise have to assemble by hand — the
// rule corpus, the device registry (named profiles with per-device cost
// models and simulators), and per-backend pools of optimizer instances —
// and memoises results by (graph hash, backend, device, request
// fingerprint) so repeated optimisation of the same model *for the same
// accelerator* is served from cache. One service serves a heterogeneous
// fleet: the request's Target_device picks the cost model, and requests
// for different devices never share memo entries. This is the entry point
// the serving layer (Optimization_server, Optimization_router) builds on.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimizer_api.h"
#include "core/policy_store.h"
#include "cost/device_registry.h"
#include "cost/e2e_simulator.h"
#include "rules/rule.h"
#include "support/sync.h"

namespace xrl {

struct Service_config {
    /// The fleet's accelerators, registered by profile name. Empty = the
    /// standard pair (gtx1080_profile(), a100_profile()).
    std::vector<Device_profile> devices;

    /// Device unqualified requests resolve to; "" = the first registered
    /// profile (gtx1080 for the standard pair).
    std::string default_device;

    std::uint64_t simulator_seed = 9;

    /// Forwarded to every backend ("taso.budget", "xrlflow.episodes", ...).
    std::map<std::string, double> backend_options;

    /// Memoised results kept before FIFO eviction; 0 disables caching.
    std::size_t cache_capacity = 256;

    /// Idle optimizer instances retained per backend after concurrent
    /// bursts (instances beyond this are destroyed on release, so a
    /// one-off burst does not pin peak-concurrency memory — xrlflow
    /// instances in particular carry trained-policy caches).
    std::size_t max_idle_per_backend = 4;

    /// Warm-start persistence for backends that train (the xrlflow
    /// trained-policy cache): policies are looked up here before training
    /// and offered back after. Shared so the serving layer can hand one
    /// store (serve/state_store.h) to many services. Null = no
    /// persistence.
    std::shared_ptr<Policy_store> policy_store;
};

/// One backend's entry in an optimize_all comparison: the unified result
/// plus end-to-end latencies measured on the service's shared simulator so
/// the numbers are comparable across backends.
struct Backend_run {
    std::string backend;
    Optimize_result result;
    Latency_stats e2e_before;
    Latency_stats e2e_after;
};

class Optimization_service {
public:
    explicit Optimization_service(Service_config config = {});

    /// Registered backend names, sorted ("pet", "taso", "tensat", "xrlflow").
    std::vector<std::string> backends() const;

    /// Optimise `graph` with `backend` for the request's target device.
    /// Results are memoised by (graph canonical hash, backend, device
    /// fingerprint, request budgets/seed/mode); the progress callback is
    /// deliberately not part of the memo key, and cancelled runs are never
    /// cached. A memo hit returns with `from_cache` set. Throws
    /// std::invalid_argument for an unknown device name (the message lists
    /// the registered devices).
    ///
    /// Safe to call from concurrent threads, including for the same
    /// backend: each backend keeps a pool of optimizer instances, a caller
    /// reuses an idle instance or creates a fresh one, and every backend's
    /// optimize() is a deterministic function of (graph, request), so the
    /// result is bit-identical regardless of which instance served it.
    Optimize_result optimize(const std::string& backend, const Graph& graph,
                             const Optimize_request& request = {});

    /// As optimize(), with the memo key precomputed by the caller. The
    /// serving layer already derived it for coalescing — `key` must equal
    /// request_key(graph.model_hash(), backend, request) — and the model
    /// hash is a full-graph traversal not worth paying twice per job. The
    /// caller has run validate_request(request, devices()) (deriving a
    /// valid key requires it); this entry point does not re-validate.
    Optimize_result optimize_keyed(const std::string& key, const std::string& backend,
                                   const Graph& graph, const Optimize_request& request);

    /// One-call cross-backend comparison: run every registered backend on
    /// `graph` and measure each winner on the target device's end-to-end
    /// simulator. Throws std::invalid_argument when `measure_repeats` < 1.
    std::vector<Backend_run> optimize_all(const Graph& graph, const Optimize_request& request = {},
                                          int measure_repeats = 5);

    const Rule_set& rules() const { return rules_; }

    /// The fleet: named profiles plus lazily-built per-device cost models
    /// and simulators. Internally locked; shared with direct callers.
    const Device_registry& devices() const { return devices_; }

    /// The default device's cost model / simulator / profile (shorthands
    /// for devices().cost_model({}) etc.). The simulator's measurement
    /// paths are internally locked, so concurrent use is safe.
    const Cost_model& cost() const { return devices_.cost_model({}); }
    E2e_simulator& simulator() { return devices_.simulator({}); }
    E2e_simulator& simulator(const Target_device& device) { return devices_.simulator(device); }
    const Device_profile& device() const { return devices_.resolve({}); }

    /// The memo key: (Graph::model_hash — structure plus source shapes,
    /// backend, device fingerprint, request budgets / seed / mode — not the
    /// progress callback). Public so the serving layer can coalesce
    /// in-flight duplicates with exactly the cache's notion of "identical
    /// request".
    static std::string memo_key(std::uint64_t graph_hash, const std::string& backend,
                                std::uint64_t device_fingerprint, const Optimize_request& request);

    /// memo_key with the device fingerprint resolved against this service's
    /// registry (throws std::invalid_argument for unknown device names).
    std::string request_key(std::uint64_t graph_hash, const std::string& backend,
                            const Optimize_request& request) const;

    std::size_t cache_hits() const;
    std::size_t cache_misses() const;
    std::size_t cache_size() const;
    void clear_cache();

    /// One memo-table entry in persistable form: the full memo key and the
    /// result exactly as cached (`from_cache` clear — the flag is stamped
    /// per hit, not stored).
    struct Memo_entry {
        std::string key;
        Optimize_result result;
    };

    /// Snapshot the memo table in FIFO (insertion) order, so a restore
    /// into an equally-sized cache evicts in the same order the original
    /// would have. Safe alongside concurrent optimize() traffic.
    std::vector<Memo_entry> export_memo() const;

    /// Seed the memo table (warm restart). Entries whose key is already
    /// present are skipped — live results outrank a snapshot — capacity
    /// and FIFO eviction apply as usual, and the hit/miss counters are
    /// untouched (imports are not traffic). Returns how many entries were
    /// inserted. Keys must come from the same service configuration:
    /// memo keys do not cover backend_options, so snapshots only make
    /// sense between services configured identically (the state store
    /// documents this contract).
    std::size_t import_memo(const std::vector<Memo_entry>& entries);

    /// Optimizer instances created so far for `backend` (tests observe that
    /// concurrency widens the pool and serial reuse does not).
    std::size_t backend_instances(const std::string& backend) const;

private:
    /// Per-backend pool of interchangeable optimizer instances. An instance
    /// runs at most one optimize() at a time; concurrent requests for the
    /// same backend each check one out (creating on demand) and return it
    /// when done, so serial callers keep reusing one instance (preserving
    /// warm state like xrlflow's trained-policy cache) while concurrent
    /// callers never contend.
    struct Backend_pool {
        std::vector<std::unique_ptr<Optimizer>> idle;
        std::size_t created = 0;
    };

    std::unique_ptr<Optimizer> acquire_instance(const std::string& backend);
    void release_instance(const std::string& backend, std::unique_ptr<Optimizer> instance);

    Service_config config_;
    Rule_set rules_;
    Device_registry devices_;
    Optimizer_context context_;

    mutable Mutex mutex_{"service", Lock_rank::service};
    std::unordered_map<std::string, Backend_pool> pools_ XRL_GUARDED_BY(mutex_);
    std::unordered_map<std::string, Optimize_result> cache_ XRL_GUARDED_BY(mutex_);
    /// FIFO eviction.
    std::deque<std::string> cache_order_ XRL_GUARDED_BY(mutex_);
    std::size_t hits_ XRL_GUARDED_BY(mutex_) = 0;
    std::size_t misses_ XRL_GUARDED_BY(mutex_) = 0;
};

} // namespace xrl
