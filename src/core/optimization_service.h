// Serving-oriented facade over the unified optimiser API.
//
// Owns everything a caller would otherwise have to assemble by hand — the
// rule corpus, the device profile / cost model, the end-to-end simulator,
// and one lazily-created instance of each registered backend — and memoises
// results by (graph hash, backend, request fingerprint) so repeated
// optimisation of the same model is served from cache. This is the single
// entry point the ROADMAP's production-serving direction builds on: a
// request router in front of interchangeable search backends.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimizer_api.h"
#include "cost/e2e_simulator.h"
#include "rules/rule.h"

namespace xrl {

struct Service_config {
    Device_profile device = gtx1080_profile();
    std::uint64_t simulator_seed = 9;

    /// Forwarded to every backend ("taso.budget", "xrlflow.episodes", ...).
    std::map<std::string, double> backend_options;

    /// Memoised results kept before FIFO eviction; 0 disables caching.
    std::size_t cache_capacity = 256;
};

/// One backend's entry in an optimize_all comparison: the unified result
/// plus end-to-end latencies measured on the service's shared simulator so
/// the numbers are comparable across backends.
struct Backend_run {
    std::string backend;
    Optimize_result result;
    Latency_stats e2e_before;
    Latency_stats e2e_after;
};

class Optimization_service {
public:
    explicit Optimization_service(Service_config config = {});

    /// Registered backend names, sorted ("pet", "taso", "tensat", "xrlflow").
    std::vector<std::string> backends() const;

    /// Optimise `graph` with `backend`. Results are memoised by (graph
    /// canonical hash, backend, request budgets/seed/mode); the progress
    /// callback is deliberately not part of the memo key, and cancelled
    /// runs are never cached. A memo hit returns with `from_cache` set.
    Optimize_result optimize(const std::string& backend, const Graph& graph,
                             const Optimize_request& request = {});

    /// One-call cross-backend comparison: run every registered backend on
    /// `graph` and measure each winner on the shared end-to-end simulator.
    std::vector<Backend_run> optimize_all(const Graph& graph, const Optimize_request& request = {},
                                          int measure_repeats = 5);

    const Rule_set& rules() const { return rules_; }
    const Cost_model& cost() const { return cost_; }

    /// The shared stateful simulator. optimize_all serialises its own
    /// measurements internally; direct use from concurrent threads needs
    /// external synchronisation.
    E2e_simulator& simulator() { return simulator_; }
    const Device_profile& device() const { return cost_.device(); }

    std::size_t cache_hits() const;
    std::size_t cache_misses() const;
    std::size_t cache_size() const;
    void clear_cache();

private:
    struct Backend_slot {
        std::unique_ptr<Optimizer> optimizer;
        std::mutex run_mutex; ///< Backends may be stateful (policy caches).
    };

    Backend_slot& slot_for(const std::string& backend);
    static std::string cache_key(std::uint64_t graph_hash, const std::string& backend,
                                 const Optimize_request& request);

    Service_config config_;
    Rule_set rules_;
    Cost_model cost_;
    E2e_simulator simulator_;
    Optimizer_context context_;

    mutable std::mutex mutex_;     ///< Guards slots_, cache_, stats.
    std::mutex simulator_mutex_;   ///< Serialises optimize_all's measurements.
    std::unordered_map<std::string, std::unique_ptr<Backend_slot>> slots_;
    std::unordered_map<std::string, Optimize_result> cache_;
    std::deque<std::string> cache_order_; ///< FIFO eviction.
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace xrl
