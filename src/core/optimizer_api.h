// Unified optimiser API.
//
// The paper's evaluation is a head-to-head of four search strategies —
// TASO's backtracking search, PET's partially-equivalent search, Tensat's
// equality saturation, and X-RLflow's learned policy — and every bench,
// example, and test used to re-implement the comparison glue against four
// incompatible entry points. This header defines the one interface they all
// stand behind:
//
//   * `Optimize_request`  — budget (wall-clock / iterations), seed,
//     deterministic-vs-sampled mode, the target device the search optimises
//     for, and an optional progress callback that supports early
//     cancellation.
//   * `Optimize_result`   — best graph, initial/final latency, speedup,
//     steps, wall time, per-rule application counts, and backend-specific
//     metadata as key/value doubles.
//   * `Optimizer`         — the abstract backend: name() + optimize().
//   * `Optimizer_registry`— string-keyed factories ("taso", "pet",
//     "tensat", "xrlflow") so backends slot in interchangeably.
//
// The device is first-class: a backend runs against a Device_registry (the
// fleet's accelerators) and resolves its cost model *per request* from the
// request's Target_device, so one backend instance serves a heterogeneous
// fleet and every cache key downstream carries the device.
//
// The serving-oriented facade that owns the rule corpus, device registry
// and simulators — and memoises results — lives in
// core/optimization_service.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/device.h"
#include "cost/device_registry.h"
#include "ir/graph.h"
#include "rules/rule.h"

namespace xrl {

// ---------------------------------------------------------------------------
// Request / result
// ---------------------------------------------------------------------------

/// Snapshot handed to a progress callback while a backend searches.
struct Optimize_progress {
    std::string backend;
    int step = 0;                ///< Backend-native step count so far.
    double best_ms = 0.0;        ///< Best cost seen so far (backend-native signal).
    double elapsed_seconds = 0.0;
};

/// Return false to cancel the search; the backend stops at the next
/// heartbeat and returns its best-so-far result with `cancelled` set.
using Progress_callback = std::function<bool(const Optimize_progress&)>;

struct Optimize_request {
    double time_budget_seconds = 0.0; ///< Wall-clock cap; 0 = unlimited.
    int iteration_budget = 0;         ///< Backend-native iteration cap; 0 = backend default.
    std::uint64_t seed = 7;           ///< Seed for any stochastic behaviour.
    bool deterministic = true;        ///< Greedy/deterministic vs sampled search.
    Target_device device;             ///< What to optimise for; default = service default.
    Progress_callback on_progress;    ///< Optional; also the cancellation hook.
};

/// Reject malformed requests — negative or non-finite budgets, or an inline
/// device profile with non-positive throughputs — with a
/// std::invalid_argument naming the offending field and value, before any
/// backend state is touched. Optimization_service::optimize and
/// Optimization_server::submit both run every request through this.
void validate_request(const Optimize_request& request);

/// As above, and additionally reject a request whose named target device is
/// not registered (the message lists the registered devices). The device-
/// aware entry points (service, server, router) use this overload.
void validate_request(const Optimize_request& request, const Device_registry& devices);

/// The unified outcome every backend reports.
struct Optimize_result {
    Graph best_graph;
    std::string backend;
    std::string device;       ///< Resolved device name the search optimised for.
    double initial_ms = 0.0;  ///< Latency of the input under the backend's signal.
    double final_ms = 0.0;    ///< Latency of `best_graph` under the same signal.
    int steps = 0;            ///< Backend-native iterations performed.
    double wall_seconds = 0.0;
    bool cancelled = false;   ///< Stopped early by callback or time budget.
    bool from_cache = false;  ///< Set by Optimization_service on a memo hit.

    /// Applications (or admitted candidates) per rule, keyed by rule name.
    std::map<std::string, int> rule_counts;

    /// Backend-specific numbers (e-graph size, candidates generated, ...).
    std::map<std::string, double> metadata;

    double speedup() const { return final_ms > 0.0 ? initial_ms / final_ms : 1.0; }
};

// ---------------------------------------------------------------------------
// The backend interface
// ---------------------------------------------------------------------------

/// Shared state a backend adapter runs against. The pointed-to rule corpus
/// and device registry must outlive any optimizer created from the context
/// (Optimization_service owns both and guarantees this). There is no
/// per-context cost model any more: a backend resolves its cost model from
/// the registry per request, keyed by the request's Target_device.
class Policy_store; // core/policy_store.h

struct Optimizer_context {
    const Rule_set* rules = nullptr;
    const Device_registry* devices = nullptr;

    /// Optional warm-start persistence for backends that train (xrlflow):
    /// trained policies are offered to the store and looked up before
    /// training. Null = no persistence. Must outlive optimizers created
    /// from the context (Optimization_service holds it via its config).
    Policy_store* policy_store = nullptr;

    /// Backend-specific knobs, namespaced by backend ("taso.alpha",
    /// "tensat.max_iterations", "xrlflow.episodes", ...). Unknown keys are
    /// ignored; missing keys fall back to the backend's defaults.
    std::map<std::string, double> options;

    double option_or(const std::string& key, double fallback) const
    {
        const auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }

    /// Per-request device resolution (the registry's default device when
    /// the request names none). Throws std::invalid_argument for unknown
    /// device names — same contract as Device_registry.
    const Device_profile& device_for(const Optimize_request& request) const;
    const Cost_model& cost_for(const Optimize_request& request) const;
    std::uint64_t device_fingerprint(const Optimize_request& request) const;
};

class Optimizer {
public:
    virtual ~Optimizer() = default;

    Optimizer(const Optimizer&) = delete;
    Optimizer& operator=(const Optimizer&) = delete;

    virtual std::string name() const = 0;

    /// Run the search on `graph` under `request`. Implementations honour the
    /// request's budgets and cancellation hook on a best-effort heartbeat
    /// (checked at least once per native iteration).
    virtual Optimize_result optimize(const Graph& graph, const Optimize_request& request) = 0;

protected:
    Optimizer() = default;
};

// ---------------------------------------------------------------------------
// Progress / cancellation plumbing
// ---------------------------------------------------------------------------

/// In-loop hook the backend search configs carry: called with (step,
/// best_cost_ms); returning false stops the search at that point.
using Search_heartbeat = std::function<bool(int step, double best_cost_ms)>;

/// Translates an Optimize_request into a Search_heartbeat: tracks wall time,
/// enforces the time budget, forwards snapshots to the user callback, and
/// records whether the search was cut short. Copyable (shared state) so the
/// heartbeat closure can outlive the driver's stack frame.
class Progress_driver {
public:
    Progress_driver(std::string backend, const Optimize_request& request);

    /// Heartbeat for a backend config; returns false once cancelled.
    Search_heartbeat heartbeat() const;

    bool cancelled() const;
    double elapsed_seconds() const;

private:
    struct State;
    std::shared_ptr<State> state_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// String-keyed optimizer factories. `built_in()` serves the four paper
/// backends; custom backends can be added to a mutable registry instance.
class Optimizer_registry {
public:
    using Factory = std::function<std::unique_ptr<Optimizer>(const Optimizer_context&)>;

    /// Register a backend; throws Contract_violation on duplicate names.
    void add(std::string name, Factory factory);

    bool contains(const std::string& name) const;

    /// Registered backend names, sorted.
    std::vector<std::string> names() const;

    /// Construct a backend; throws std::invalid_argument for unknown names
    /// (the message lists what is registered) and Contract_violation when
    /// the context is missing its rule corpus or cost model.
    std::unique_ptr<Optimizer> create(const std::string& name, const Optimizer_context& context) const;

    /// The registry holding "taso", "pet", "tensat" and "xrlflow".
    static const Optimizer_registry& built_in();

private:
    std::map<std::string, Factory> factories_;
};

/// Shorthand for Optimizer_registry::built_in().create(name, context).
std::unique_ptr<Optimizer> make_optimizer(const std::string& name, const Optimizer_context& context);

} // namespace xrl
