// The X-RLflow actor-critic agent (§3.3.2, Figure 3).
//
// The GNN encodes the meta-graph (current graph + candidates) into one
// embedding per member graph; a policy head scores each candidate slot of
// the padded action space against the current graph's embedding (padded
// slots use a learned pad embedding, the final slot is the learned No-Op),
// and a value head estimates the state value from the current graph's
// embedding. Heads are two-layer MLPs (Table 4: [256, 64]).
#pragma once

#include <string>

#include "gnn/gnn.h"
#include "nn/adam.h"
#include "rl/categorical.h"

namespace xrl {

struct Agent_config {
    Gnn_config gnn;
    std::vector<std::int64_t> head_hidden = {256, 64}; ///< Table 4: MLP heads.
    int max_candidates = 63; ///< Action space = max_candidates + 1 (No-Op).
};

class Agent {
public:
    Agent(const Agent_config& config, std::uint64_t seed);

    /// Differentiable forward pass for one state.
    struct Forward {
        Var logits;  ///< (A x 1) where A = max_candidates + 1.
        Var value;   ///< 1x1 state value.
    };
    Forward forward(Tape& tape, const Encoded_graph& state);

    /// Behaviour-time action selection (no gradients retained).
    struct Decision {
        int action = 0;
        double log_prob = 0.0;
        double value = 0.0;
    };
    Decision act(const Encoded_graph& state, const std::vector<std::uint8_t>& mask, Rng& rng,
                 bool greedy = false);

    int action_space() const { return config_.max_candidates + 1; }
    int max_candidates() const { return config_.max_candidates; }
    const Agent_config& config() const { return config_; }

    std::vector<Parameter*> parameters();

    void save(const std::string& path);
    void load(const std::string& path);

private:
    Agent_config config_;
    Gnn_encoder encoder_;
    Mlp policy_head_;
    Mlp value_head_;
    Parameter pad_embedding_;
    Parameter noop_embedding_;
};

} // namespace xrl
