// Bit-exact (de)serialisation of Optimize_result — the persistable form of
// a memo-table entry.
//
// The Optimization_service memo table caches whole Optimize_results, and
// warm-start persistence (serve/state_store.h) is a save/load of that
// table: a result written here, restarted, and read back must be
// bit-identical to the original — graph representation, float bit
// patterns, metadata and all — so a repeated request after restart gets
// exactly the answer it would have gotten before. Graphs use the binary
// graph form (ir/graph_io.h); doubles travel as bit patterns.
//
// The field list is explicit, guarded by a static_assert on
// aggregate_field_count<Optimize_result>: adding a field to the struct
// without teaching the serialiser about it is a compile error, not silent
// data loss on the next restart.
//
// The progress callback is the one part of a *request* that can't
// persist; results carry no callables, so every field serialises.
#pragma once

#include <string>
#include <string_view>

#include "core/optimizer_api.h"
#include "support/record_file.h"

namespace xrl {

void serialise_result(Byte_writer& out, const Optimize_result& result);

/// Throws std::runtime_error on malformed or truncated input (the state
/// store catches, counts, and skips the record).
Optimize_result deserialise_result(Byte_reader& in);

/// Whole-payload conveniences over the stream forms.
std::string result_to_bytes(const Optimize_result& result);
Optimize_result result_from_bytes(std::string_view bytes);

} // namespace xrl
