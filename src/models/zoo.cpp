#include "models/models.h"

namespace xrl {

std::vector<Model_spec> evaluation_models(Scale scale)
{
    // Table 3 order. Image/sequence sizes follow the paper's defaults
    // (224-class images, short token sequences) at both scales; `scale`
    // controls width/depth.
    return {
        {"InceptionV3", "convolutional", [scale] { return make_inception_v3(scale); }},
        {"SqueezeNet", "convolutional", [scale] { return make_squeezenet(scale); }},
        {"ResNext-50", "convolutional", [scale] { return make_resnext50(scale); }},
        {"BERT", "transformer", [scale] { return make_bert(scale); }},
        {"DALL-E", "transformer", [scale] { return make_dalle(scale); }},
        {"T-T", "transformer", [scale] { return make_transformer_transducer(scale); }},
        {"ViT", "transformer", [scale] { return make_vit(scale); }},
    };
}

std::vector<Model_spec> table1_models(Scale scale)
{
    return {
        {"DALL-E", "transformer", [scale] { return make_dalle(scale); }},
        {"InceptionV3", "convolutional", [scale] { return make_inception_v3(scale); }},
        {"BERT", "transformer", [scale] { return make_bert(scale); }},
        {"SqueezeNet", "convolutional", [scale] { return make_squeezenet(scale); }},
        {"ResNext-50", "convolutional", [scale] { return make_resnext50(scale); }},
        {"T-T", "transformer", [scale] { return make_transformer_transducer(scale); }},
    };
}

} // namespace xrl
