// Model zoo: programmatic graph builders for the paper's evaluation DNNs
// (Table 3) plus ResNet-18 (Table 2).
//
// Only graph *structure and shapes* matter to a tensor-graph
// superoptimiser; weights are placeholder `weight` nodes exactly as in
// TASO's optimisation phase. Every builder accepts the experiment scale —
// `smoke` shrinks channel widths and block counts so the full bench suite
// runs in minutes on a CPU; `paper` uses full-size architectures — and the
// primary input dimension (image side or sequence length), which the
// Figure 7 generalisation experiments vary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "support/config.h"

namespace xrl {

// -- convolutional (Table 3: "convolutional") --------------------------------

Graph make_inception_v3(Scale scale, std::int64_t image = 224);
Graph make_squeezenet(Scale scale, std::int64_t image = 224);
Graph make_resnext50(Scale scale, std::int64_t image = 224);
Graph make_resnet18(Scale scale, std::int64_t image = 224);

// -- transformer (Table 3: "transformer") ------------------------------------

Graph make_bert(Scale scale, std::int64_t sequence = 64);
Graph make_vit(Scale scale, std::int64_t image = 224);
Graph make_dalle(Scale scale, std::int64_t sequence = 64);
Graph make_transformer_transducer(Scale scale, std::int64_t sequence = 64);

/// The quickstart's dense layer (paper Figure 1): y = relu(w . x + b).
Graph make_dense_layer_example();

// -- registry ------------------------------------------------------------------

struct Model_spec {
    std::string name;
    std::string type; ///< "convolutional" | "transformer" (Table 3).
    std::function<Graph()> build;
};

/// The seven DNNs of the paper's evaluation, in Table 3 order.
std::vector<Model_spec> evaluation_models(Scale scale);

/// The six DNNs of Table 1 (Table 3 set minus ViT).
std::vector<Model_spec> table1_models(Scale scale);

} // namespace xrl
