#include <algorithm>

#include "ir/builder.h"
#include "models/models.h"
#include "support/check.h"

namespace xrl {

namespace {

/// conv + batch norm + relu, the standard convnet building block. The BN
/// carries its own per-channel weight nodes; folding it into the conv is
/// one of the rewrites the optimisers discover.
Edge conv_bn_relu(Graph_builder& b, Edge x, std::int64_t out_channels, std::int64_t in_channels,
                  std::int64_t kernel, std::int64_t stride, std::int64_t padding,
                  std::int64_t groups = 1)
{
    const Edge w = b.weight({out_channels, in_channels / groups, kernel, kernel});
    const Edge conv = b.conv2d(x, w, stride, padding, Activation::none, groups);
    return b.relu(b.batch_norm(conv, out_channels));
}

Edge conv_relu(Graph_builder& b, Edge x, std::int64_t out_channels, std::int64_t in_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding)
{
    const Edge w = b.weight({out_channels, in_channels, kernel, kernel});
    return b.relu(b.conv2d(x, w, stride, padding));
}

/// Asymmetric conv (1xk then kx1), the InceptionV3 factorisation.
Edge conv_factorised(Graph_builder& b, Edge x, std::int64_t channels, std::int64_t in_channels,
                     std::int64_t k)
{
    // Graph_builder::conv2d exposes square padding only; emulate the
    // asymmetric 1xk / kx1 cases with explicit pad nodes.
    const Edge wh = b.weight({channels, in_channels, 1, k});
    const Edge padded_w = b.pad(x, {0, 0, 0, (k - 1) / 2}, {0, 0, 0, (k - 1) / 2});
    const Edge c1 = b.relu(b.conv2d(padded_w, wh, 1, 0));

    const Edge wv = b.weight({channels, channels, k, 1});
    const Edge padded_h = b.pad(c1, {0, 0, (k - 1) / 2, 0}, {0, 0, (k - 1) / 2, 0});
    return b.relu(b.conv2d(padded_h, wv, 1, 0));
}

std::int64_t spatial_of(Graph_builder& b, Edge x)
{
    return b.shape_of(x)[2];
}

std::int64_t channels_of(Graph_builder& b, Edge x)
{
    return b.shape_of(x)[1];
}

} // namespace

Graph make_inception_v3(Scale scale, std::int64_t image)
{
    const std::int64_t base = scale == Scale::paper ? 32 : 8;
    const int modules_a = scale == Scale::paper ? 3 : 2;
    const int modules_b = scale == Scale::paper ? 4 : 2;
    const int modules_c = scale == Scale::paper ? 2 : 1;

    Graph_builder b;
    Edge x = b.input({1, 3, image, image}, "image");

    // Stem.
    x = conv_bn_relu(b, x, base, 3, 3, 2, 1);
    x = conv_bn_relu(b, x, base, base, 3, 1, 1);
    x = b.max_pool2d(x, 3, 2, 1);
    x = conv_bn_relu(b, x, base * 2, base, 1, 1, 0);
    x = conv_bn_relu(b, x, base * 6, base * 2, 3, 1, 1);
    x = b.max_pool2d(x, 3, 2, 1);

    // Inception-A modules: 1x1 / 5x5 / double-3x3 / pool-proj branches.
    const std::int64_t wa = base * 2;
    for (int m = 0; m < modules_a; ++m) {
        const std::int64_t in = channels_of(b, x);
        const Edge b1 = conv_bn_relu(b, x, wa, in, 1, 1, 0);
        Edge b2 = conv_bn_relu(b, x, wa, in, 1, 1, 0);
        b2 = conv_bn_relu(b, b2, wa, wa, 5, 1, 2);
        Edge b3 = conv_bn_relu(b, x, wa, in, 1, 1, 0);
        b3 = conv_bn_relu(b, b3, wa, wa, 3, 1, 1);
        b3 = conv_bn_relu(b, b3, wa, wa, 3, 1, 1);
        Edge b4 = b.avg_pool2d(x, 3, 1, 1);
        b4 = conv_bn_relu(b, b4, wa, in, 1, 1, 0);
        x = b.concat(1, {b1, b2, b3, b4});
    }

    // Reduction-A.
    {
        const std::int64_t in = channels_of(b, x);
        const Edge r1 = conv_bn_relu(b, x, wa * 2, in, 3, 2, 1);
        Edge r2 = conv_bn_relu(b, x, wa, in, 1, 1, 0);
        r2 = conv_bn_relu(b, r2, wa * 2, wa, 3, 2, 1);
        const Edge r3 = b.max_pool2d(x, 3, 2, 1);
        x = b.concat(1, {r1, r2, r3});
    }

    // Inception-B modules with 1x7/7x1 factorised branches.
    const std::int64_t wb = base * 3;
    for (int m = 0; m < modules_b; ++m) {
        const std::int64_t in = channels_of(b, x);
        const Edge b1 = conv_bn_relu(b, x, wb, in, 1, 1, 0);
        Edge b2 = conv_bn_relu(b, x, wb, in, 1, 1, 0);
        b2 = conv_factorised(b, b2, wb, wb, 7);
        Edge b3 = b.avg_pool2d(x, 3, 1, 1);
        b3 = conv_bn_relu(b, b3, wb, in, 1, 1, 0);
        x = b.concat(1, {b1, b2, b3});
    }

    // Reduction-B.
    {
        const std::int64_t in = channels_of(b, x);
        Edge r1 = conv_bn_relu(b, x, wb, in, 1, 1, 0);
        r1 = conv_bn_relu(b, r1, wb * 2, wb, 3, 2, 1);
        const Edge r2 = b.max_pool2d(x, 3, 2, 1);
        x = b.concat(1, {r1, r2});
    }

    // Inception-C modules (parallel 1x3 / 3x1 style expanded branches).
    const std::int64_t wc = base * 4;
    for (int m = 0; m < modules_c; ++m) {
        const std::int64_t in = channels_of(b, x);
        const Edge b1 = conv_bn_relu(b, x, wc, in, 1, 1, 0);
        Edge b2 = conv_bn_relu(b, x, wc, in, 1, 1, 0);
        const Edge b2a = conv_bn_relu(b, b2, wc, wc, 3, 1, 1);
        const Edge b2b = conv_bn_relu(b, b2, wc, wc, 1, 1, 0);
        Edge b3 = b.avg_pool2d(x, 3, 1, 1);
        b3 = conv_bn_relu(b, b3, wc, in, 1, 1, 0);
        x = b.concat(1, {b1, b2a, b2b, b3});
    }

    x = b.global_avg_pool(x);
    const std::int64_t features = channels_of(b, x);
    x = b.reshape(x, {1, features});
    const Edge classifier = b.weight({features, 100});
    return b.finish({b.matmul(x, classifier)});
}

Graph make_squeezenet(Scale scale, std::int64_t image)
{
    const std::int64_t base = scale == Scale::paper ? 16 : 8;
    const int fire_modules = scale == Scale::paper ? 8 : 4;

    Graph_builder b;
    Edge x = b.input({1, 3, image, image}, "image");
    x = conv_relu(b, x, base * 4, 3, 3, 2, 1);
    x = b.max_pool2d(x, 3, 2, 1);

    // Fire modules: squeeze 1x1, then parallel expand 1x1 / 3x3 concat.
    for (int m = 0; m < fire_modules; ++m) {
        const std::int64_t in = channels_of(b, x);
        const std::int64_t squeeze = base * (1 + m / 2);
        const std::int64_t expand = squeeze * 4;
        const Edge s = conv_relu(b, x, squeeze, in, 1, 1, 0);
        const Edge e1 = conv_relu(b, s, expand, squeeze, 1, 1, 0);
        const Edge e3 = conv_relu(b, s, expand, squeeze, 3, 1, 1);
        x = b.concat(1, {e1, e3});
        if (m == fire_modules / 2 - 1 && spatial_of(b, x) >= 8) x = b.max_pool2d(x, 3, 2, 1);
    }

    const std::int64_t in = channels_of(b, x);
    x = conv_relu(b, x, 100, in, 1, 1, 0);
    x = b.global_avg_pool(x);
    return b.finish({b.reshape(x, {1, 100})});
}

Graph make_resnext50(Scale scale, std::int64_t image)
{
    const std::int64_t base = scale == Scale::paper ? 32 : 16;
    const std::int64_t cardinality = scale == Scale::paper ? 32 : 8;
    const std::vector<int> blocks = scale == Scale::paper ? std::vector<int>{3, 4, 6, 3}
                                                          : std::vector<int>{1, 2, 2, 1};

    Graph_builder b;
    Edge x = b.input({1, 3, image, image}, "image");
    x = conv_bn_relu(b, x, base * 2, 3, 7, 2, 3);
    x = b.max_pool2d(x, 3, 2, 1);

    std::int64_t width = base * 4;
    for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
        for (int block = 0; block < blocks[stage]; ++block) {
            const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
            const std::int64_t in = channels_of(b, x);
            const std::int64_t out = width * 2;

            Edge y = conv_bn_relu(b, x, width, in, 1, 1, 0);
            // The grouped 3x3 convolution — ResNeXt's aggregated transform.
            y = conv_bn_relu(b, y, width, width, 3, stride, 1, cardinality);
            const Edge w3 = b.weight({out, width, 1, 1});
            y = b.batch_norm(b.conv2d(y, w3, 1, 0), out);

            Edge shortcut = x;
            if (in != out || stride != 1) {
                const Edge wp = b.weight({out, in, 1, 1});
                shortcut = b.batch_norm(b.conv2d(x, wp, stride, 0), out);
            }
            x = b.relu(b.add(y, shortcut));
        }
        width *= 2;
    }

    x = b.global_avg_pool(x);
    const std::int64_t features = channels_of(b, x);
    x = b.reshape(x, {1, features});
    const Edge classifier = b.weight({features, 100});
    return b.finish({b.matmul(x, classifier)});
}

Graph make_resnet18(Scale scale, std::int64_t image)
{
    const std::int64_t base = scale == Scale::paper ? 64 : 16;
    const std::vector<int> blocks = scale == Scale::paper ? std::vector<int>{2, 2, 2, 2}
                                                          : std::vector<int>{1, 1, 1, 1};

    Graph_builder b;
    Edge x = b.input({1, 3, image, image}, "image");
    x = conv_bn_relu(b, x, base, 3, 7, 2, 3);
    x = b.max_pool2d(x, 3, 2, 1);

    std::int64_t width = base;
    for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
        for (int block = 0; block < blocks[stage]; ++block) {
            const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
            const std::int64_t in = channels_of(b, x);

            Edge y = conv_bn_relu(b, x, width, in, 3, stride, 1);
            const Edge w2 = b.weight({width, width, 3, 3});
            y = b.batch_norm(b.conv2d(y, w2, 1, 1), width);

            Edge shortcut = x;
            if (in != width || stride != 1) {
                const Edge wp = b.weight({width, in, 1, 1});
                shortcut = b.batch_norm(b.conv2d(x, wp, stride, 0), width);
            }
            x = b.relu(b.add(y, shortcut));
        }
        width *= 2;
    }

    x = b.global_avg_pool(x);
    const std::int64_t features = channels_of(b, x);
    x = b.reshape(x, {1, features});
    const Edge classifier = b.weight({features, 100});
    return b.finish({b.matmul(x, classifier)});
}

} // namespace xrl
