#include <cmath>

#include "ir/builder.h"
#include "models/models.h"
#include "support/check.h"

namespace xrl {

namespace {

struct Transformer_dims {
    std::int64_t hidden;
    std::int64_t ffn;
    int layers;
};

Transformer_dims transformer_dims(Scale scale)
{
    if (scale == Scale::paper) return {256, 1024, 6};
    return {64, 256, 3};
}

/// One encoder block: single-head self-attention (separate Q/K/V matmuls —
/// exactly the structure the merge-matmul rewrite targets) + gelu FFN, with
/// residual connections and layer norm.
Edge transformer_block(Graph_builder& b, Edge x, std::int64_t hidden, std::int64_t ffn)
{
    const Edge wq = b.weight({hidden, hidden});
    const Edge wk = b.weight({hidden, hidden});
    const Edge wv = b.weight({hidden, hidden});
    const Edge q = b.matmul(x, wq);
    const Edge k = b.matmul(x, wk);
    const Edge v = b.matmul(x, wv);

    const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(hidden));
    const Edge scores = b.scale(b.matmul(q, b.transpose(k)), inv_sqrt);
    const Edge attention = b.softmax(scores);
    const Edge context = b.matmul(attention, v);

    const Edge wo = b.weight({hidden, hidden});
    const Edge projected = b.matmul(context, wo);
    Edge y = b.layer_norm(b.add(x, projected), hidden);

    const Edge w1 = b.weight({hidden, ffn});
    const Edge w2 = b.weight({ffn, hidden});
    const Edge ff = b.matmul(b.gelu(b.matmul(y, w1)), w2);
    return b.layer_norm(b.add(y, ff), hidden);
}

} // namespace

Graph make_bert(Scale scale, std::int64_t sequence)
{
    const Transformer_dims dims = transformer_dims(scale);
    constexpr std::int64_t vocabulary = 512;

    Graph_builder b;
    const Edge ids = b.input({sequence}, "token-ids");
    // ALBERT-style factorised embedding: narrow table + up-projection (a
    // weight-only chain a superoptimiser can fold into one lookup).
    const Edge table = b.weight({vocabulary, dims.hidden / 2});
    const Edge projection = b.weight({dims.hidden / 2, dims.hidden});
    Edge x = b.matmul(b.embedding(ids, table), projection);
    const Edge positions = b.weight({sequence, dims.hidden});
    x = b.layer_norm(b.add(x, positions), dims.hidden);

    for (int layer = 0; layer < dims.layers; ++layer)
        x = transformer_block(b, x, dims.hidden, dims.ffn);

    const Edge pooler = b.weight({dims.hidden, dims.hidden});
    const Edge pooled = b.matmul(x, pooler, Activation::tanh);
    const Edge classifier = b.weight({dims.hidden, 2});
    return b.finish({b.matmul(pooled, classifier)});
}

Graph make_vit(Scale scale, std::int64_t image)
{
    const Transformer_dims dims = transformer_dims(scale);
    const std::int64_t patch = 16;
    XRL_EXPECTS(image % patch == 0);
    const std::int64_t tokens_per_side = image / patch;
    const std::int64_t tokens = tokens_per_side * tokens_per_side;

    Graph_builder b;
    const Edge pixels = b.input({1, 3, image, image}, "image");
    // Patch embedding: a stride-`patch` convolution, then flatten to tokens.
    const Edge patch_kernel = b.weight({dims.hidden, 3, patch, patch});
    Edge x = b.conv2d(pixels, patch_kernel, patch, 0);
    x = b.reshape(x, {dims.hidden, tokens});
    x = b.transpose(x); // tokens x hidden

    // Learned position embeddings, scaled — the weight-only arithmetic that
    // becomes constant-foldable after rewrites (the paper's ViT effect).
    const Edge positions = b.weight({tokens, dims.hidden});
    const Edge position_scale = b.scale(positions, 0.125F);
    x = b.layer_norm(b.add(x, position_scale), dims.hidden);

    for (int layer = 0; layer < dims.layers; ++layer)
        x = transformer_block(b, x, dims.hidden, dims.ffn);

    x = b.layer_norm(x, dims.hidden);
    x = b.reduce_mean(x, 0, /*keep_dim=*/true); // 1 x hidden token pooling
    // Linear representation layer before the classifier: the weight-weight
    // product that re-association + constant folding removes at runtime.
    const Edge representation = b.weight({dims.hidden, dims.hidden});
    const Edge classifier = b.weight({dims.hidden, 100});
    return b.finish({b.matmul(b.matmul(x, representation), classifier)});
}

Graph make_dalle(Scale scale, std::int64_t sequence)
{
    const Transformer_dims dims = transformer_dims(scale);
    constexpr std::int64_t vocabulary = 512;

    Graph_builder b;
    const Edge ids = b.input({sequence}, "token-ids");
    // Factorised embedding, as in make_bert.
    const Edge table = b.weight({vocabulary, dims.hidden / 2});
    const Edge projection = b.weight({dims.hidden / 2, dims.hidden});
    Edge x = b.matmul(b.embedding(ids, table), projection);
    const Edge positions = b.weight({sequence, dims.hidden});
    x = b.add(x, positions);

    // Decoder-style blocks with extra elementwise gating, making the model
    // elementwise-heavy (the direction where Table 1 shows the cost model
    // over-estimating: runtime fusion wins).
    for (int layer = 0; layer < dims.layers; ++layer) {
        x = transformer_block(b, x, dims.hidden, dims.ffn);
        const Edge gate = b.weight({1, dims.hidden});
        x = b.mul(x, b.sigmoid(gate));
        x = b.scale(x, 1.0F / 1.1F);
    }

    const Edge head = b.weight({dims.hidden, vocabulary});
    return b.finish({b.softmax(b.matmul(x, head))});
}

Graph make_transformer_transducer(Scale scale, std::int64_t sequence)
{
    const Transformer_dims dims = transformer_dims(scale);
    const std::int64_t features = 80; // log-mel audio frames

    Graph_builder b;
    const Edge frames = b.input({sequence, features}, "audio-frames");
    // Low-rank factorised front-end (features -> bottleneck -> hidden): a
    // weight-weight product that re-association exposes for folding.
    const Edge front_a = b.weight({features, features / 2});
    const Edge front_b = b.weight({features / 2, dims.hidden});
    Edge x = b.relu(b.matmul(b.matmul(frames, front_a), front_b));

    for (int layer = 0; layer < dims.layers; ++layer)
        x = transformer_block(b, x, dims.hidden, dims.ffn);

    // RNN-T style joint network: encoder projection + prediction projection
    // combined through tanh (prediction input folded into a weight here:
    // inference over a fixed label context).
    const Edge enc_proj = b.weight({dims.hidden, dims.hidden});
    const Edge pred = b.weight({sequence, dims.hidden});
    const Edge joint = b.tanh(b.add(b.matmul(x, enc_proj), pred));
    const Edge head = b.weight({dims.hidden, 64});
    return b.finish({b.softmax(b.matmul(joint, head))});
}

Graph make_dense_layer_example()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

} // namespace xrl
