// Client: the in-process face of a remote xrlflowd daemon.
//
// Mirrors the Optimization_service surface — optimize() blocks for a
// result, submit()/poll()/wait()/cancel() expose the job lifecycle — but
// every call travels the framed wire protocol (net/protocol.h) over one
// blocking connection. Results come back through the same bit-exact codecs
// the warm-start layer uses, so a remote optimize() returns bytes
// identical to the in-process call it mirrors (test_net proves this).
//
// Error surface: transport failures throw Net_error; malformed frames and
// local decode failures throw Protocol_error (remote() == false); typed
// `error` PDUs from the daemon throw Protocol_error with remote() == true
// and the daemon's code — so callers can distinguish "my connection died"
// from "the daemon refused".
//
// One Client is one connection and is not thread-safe: the protocol is
// strictly request/reply on a single stream. Concurrent callers each open
// their own Client (connections are cheap; the daemon multiplexes).
//
// Retries: with a Retry_policy allowing more than one attempt, transport
// failures and *retryable* protocol errors (see retryable() in
// net/protocol.h) are retried with capped exponential backoff and
// deterministic seeded jitter, reconnecting and re-handshaking first when
// the connection died. Every submit carries a client-generated idempotency
// key, so a retried submit whose original reply was lost coalesces onto
// the already-accepted job instead of searching twice (the daemon replays
// the original reply byte-identically). The default policy is a single
// attempt — exactly the pre-retry behaviour.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/connection.h"
#include "net/protocol.h"
#include "support/fault_plan.h"
#include "support/rng.h"

namespace xrl {

/// Retry tuning for one Client. `max_attempts` counts the first try: 1
/// disables retrying entirely. Backoff before attempt k+1 is
/// min(initial * multiplier^(k-1), max), scaled by a deterministic jitter
/// drawn from `jitter_seed` — two clients with different seeds never
/// thundering-herd in lockstep, and a test with a fixed seed replays the
/// exact same schedule.
struct Retry_policy {
    std::uint32_t max_attempts = 1;
    double initial_backoff_seconds = 0.05;
    double max_backoff_seconds = 2.0;
    double backoff_multiplier = 2.0;
    /// Each sleep is scaled by a factor in [1 - jitter, 1 + jitter].
    double jitter = 0.2;
    std::uint64_t jitter_seed = 1;
    /// Overall wall-clock budget across all attempts of one call; once
    /// exceeded the current failure is rethrown instead of retried.
    /// 0 = no deadline.
    double deadline_seconds = 0.0;
};

struct Client_config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    Net_timeouts timeouts;

    /// Server-side wait requested per poll round inside wait(); the daemon
    /// caps it anyway (poll_wait_cap_seconds), so this is the client's
    /// long-poll cadence.
    double poll_wait_seconds = 0.05;

    /// Frames larger than this are rejected locally (frame_too_large).
    std::size_t max_frame_payload = protocol_max_payload;

    /// Advertised in the hello handshake.
    std::string client_name = "xrlflow-client";

    /// Retry/backoff behaviour; the default (one attempt) never retries.
    Retry_policy retry;

    /// Seed for the idempotency-key stream stamped on submits. 0 (the
    /// default) draws a random stream per Client — two clients never
    /// collide; a nonzero seed makes the keys reproducible for tests.
    std::uint64_t request_key_seed = 0;

    /// Deterministic fault injection on this client's send path: one event
    /// consumed at site "client/send" per sent frame (see
    /// Connection::set_fault_plan). Survives reconnects. Tests only.
    std::shared_ptr<Fault_plan> fault_plan;
};

class Client {
public:
    /// Connects and completes the hello handshake (version negotiation).
    /// Throws Net_error when the daemon is unreachable and Protocol_error
    /// when the handshake fails.
    explicit Client(Client_config config);

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&&) = default;
    Client& operator=(Client&&) = default;

    // -- handshake results ------------------------------------------------
    std::uint8_t negotiated_version() const { return version_; }
    /// The daemon's highest supported protocol version (may exceed the
    /// negotiated one when the daemon is newer than this client).
    std::uint8_t server_protocol_version() const { return server_protocol_version_; }
    const std::string& server_name() const { return server_name_; }
    std::uint32_t shard_count() const { return shard_count_; }
    const std::vector<std::string>& backends() const { return backends_; }

    // -- the Optimization_service mirror ----------------------------------

    /// Submit and block until terminal: the remote twin of
    /// Optimization_service::optimize. Returns the result for done and
    /// cancelled (best-so-far, exactly like the in-process call); throws
    /// std::runtime_error carrying the daemon's message for rejected and
    /// failed jobs. `observer`, when set, receives each new progress
    /// snapshot streamed back through the poll loop.
    Optimize_result optimize(const std::string& backend, const Graph& graph,
                             const Optimize_request& request = {},
                             const Submit_options& options = {},
                             const Progress_observer& observer = {});

    // -- job lifecycle -----------------------------------------------------

    /// Async submit; returns the wire job id (+ whether the daemon
    /// coalesced it onto an in-flight duplicate).
    Submit_ok submit(const std::string& backend, const Graph& graph,
                     const Optimize_request& request = {}, const Submit_options& options = {});

    /// A deployment's model set under one budget/deadline envelope.
    Batch_ok batch_submit(const Batch_submit& batch);

    /// One poll round: state, latest progress, result when terminal.
    /// `wait_seconds` asks the daemon to wait briefly before answering
    /// (capped server-side).
    Poll_ok poll(std::uint64_t job_id, double wait_seconds = 0.0);

    /// Long-poll until terminal; same result/throw contract as optimize().
    Optimize_result wait(std::uint64_t job_id, const Progress_observer& observer = {});

    /// Withdraw this submission's interest (the daemon's interest-counting
    /// matches Job_handle::cancel).
    Cancel_ok cancel(std::uint64_t job_id);

    /// Fleet-wide router telemetry + the daemon's wire counters.
    Stats_ok stats();

    /// The daemon's full metric registry in Prometheus text exposition.
    Metrics_ok metrics();

    /// Spans recorded on the daemon: by wire job id (job_id != 0), by
    /// trace id (trace_id != 0), or the whole buffer (both 0).
    Trace_ok trace(std::uint64_t job_id = 0, std::uint64_t trace_id = 0);

    /// The trace id stamped on the most recent submit/batch_submit (0
    /// before the first). Pair with trace() to fetch that job's spans.
    std::uint64_t last_trace_id() const { return last_trace_id_; }

    /// Block until the fleet is idle and its warm state is snapshotted.
    void drain();

    void close() { connection_.close(); }

private:
    /// One request/reply exchange; throws Protocol_error for error PDUs
    /// (remote) and protocol violations (local), Net_error for transport.
    std::string call(Pdu_type request, std::string_view payload, Pdu_type expected_reply);

    /// call() under the retry policy: reconnect + re-handshake when the
    /// connection died, capped exponential backoff with deterministic
    /// jitter between attempts, overall deadline enforced. Only transport
    /// failures and retryable protocol errors are retried.
    std::string call_with_retry(Pdu_type request, std::string_view payload,
                                Pdu_type expected_reply);

    /// Connect and complete the hello handshake if the connection is down;
    /// no-op on a live connection.
    void ensure_connected();

    /// Whether attempt `attempt` may be followed by another under the
    /// policy's attempt and deadline budgets.
    bool retry_again(std::uint32_t attempt, std::chrono::steady_clock::time_point start) const;

    /// Sleep the jittered backoff, then advance `backoff` one step
    /// (capped).
    void backoff_sleep(double& backoff);

    /// Next nonzero idempotency key from this client's stream.
    std::uint64_t next_request_key();

    std::string endpoint() const { return config_.host + ":" + std::to_string(config_.port); }

    Client_config config_;
    Connection connection_;
    std::uint8_t version_ = protocol_version;
    std::uint8_t server_protocol_version_ = protocol_version;
    std::string server_name_;
    std::uint32_t shard_count_ = 0;
    std::vector<std::string> backends_;
    Rng backoff_rng_;
    std::uint64_t key_state_ = 0;
    std::uint64_t last_trace_id_ = 0;
};

} // namespace xrl
