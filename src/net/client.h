// Client: the in-process face of a remote xrlflowd daemon.
//
// Mirrors the Optimization_service surface — optimize() blocks for a
// result, submit()/poll()/wait()/cancel() expose the job lifecycle — but
// every call travels the framed wire protocol (net/protocol.h) over one
// blocking connection. Results come back through the same bit-exact codecs
// the warm-start layer uses, so a remote optimize() returns bytes
// identical to the in-process call it mirrors (test_net proves this).
//
// Error surface: transport failures throw Net_error; malformed frames and
// local decode failures throw Protocol_error (remote() == false); typed
// `error` PDUs from the daemon throw Protocol_error with remote() == true
// and the daemon's code — so callers can distinguish "my connection died"
// from "the daemon refused".
//
// One Client is one connection and is not thread-safe: the protocol is
// strictly request/reply on a single stream. Concurrent callers each open
// their own Client (connections are cheap; the daemon multiplexes).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/connection.h"
#include "net/protocol.h"

namespace xrl {

struct Client_config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    Net_timeouts timeouts;

    /// Server-side wait requested per poll round inside wait(); the daemon
    /// caps it anyway (poll_wait_cap_seconds), so this is the client's
    /// long-poll cadence.
    double poll_wait_seconds = 0.05;

    /// Frames larger than this are rejected locally (frame_too_large).
    std::size_t max_frame_payload = protocol_max_payload;

    /// Advertised in the hello handshake.
    std::string client_name = "xrlflow-client";
};

class Client {
public:
    /// Connects and completes the hello handshake (version negotiation).
    /// Throws Net_error when the daemon is unreachable and Protocol_error
    /// when the handshake fails.
    explicit Client(Client_config config);

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&&) = default;
    Client& operator=(Client&&) = default;

    // -- handshake results ------------------------------------------------
    std::uint8_t negotiated_version() const { return version_; }
    const std::string& server_name() const { return server_name_; }
    std::uint32_t shard_count() const { return shard_count_; }
    const std::vector<std::string>& backends() const { return backends_; }

    // -- the Optimization_service mirror ----------------------------------

    /// Submit and block until terminal: the remote twin of
    /// Optimization_service::optimize. Returns the result for done and
    /// cancelled (best-so-far, exactly like the in-process call); throws
    /// std::runtime_error carrying the daemon's message for rejected and
    /// failed jobs. `observer`, when set, receives each new progress
    /// snapshot streamed back through the poll loop.
    Optimize_result optimize(const std::string& backend, const Graph& graph,
                             const Optimize_request& request = {},
                             const Submit_options& options = {},
                             const Progress_observer& observer = {});

    // -- job lifecycle -----------------------------------------------------

    /// Async submit; returns the wire job id (+ whether the daemon
    /// coalesced it onto an in-flight duplicate).
    Submit_ok submit(const std::string& backend, const Graph& graph,
                     const Optimize_request& request = {}, const Submit_options& options = {});

    /// A deployment's model set under one budget/deadline envelope.
    Batch_ok batch_submit(const Batch_submit& batch);

    /// One poll round: state, latest progress, result when terminal.
    /// `wait_seconds` asks the daemon to wait briefly before answering
    /// (capped server-side).
    Poll_ok poll(std::uint64_t job_id, double wait_seconds = 0.0);

    /// Long-poll until terminal; same result/throw contract as optimize().
    Optimize_result wait(std::uint64_t job_id, const Progress_observer& observer = {});

    /// Withdraw this submission's interest (the daemon's interest-counting
    /// matches Job_handle::cancel).
    Cancel_ok cancel(std::uint64_t job_id);

    /// Fleet-wide router telemetry + the daemon's wire counters.
    Stats_ok stats();

    /// Block until the fleet is idle and its warm state is snapshotted.
    void drain();

    void close() { connection_.close(); }

private:
    /// One request/reply exchange; throws Protocol_error for error PDUs
    /// (remote) and protocol violations (local), Net_error for transport.
    std::string call(Pdu_type request, std::string_view payload, Pdu_type expected_reply);

    Client_config config_;
    Connection connection_;
    std::uint8_t version_ = protocol_version;
    std::string server_name_;
    std::uint32_t shard_count_ = 0;
    std::vector<std::string> backends_;
};

} // namespace xrl
