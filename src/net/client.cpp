#include "net/client.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include "support/trace.h"

namespace xrl {

Client::Client(Client_config config)
    : config_(std::move(config)), backoff_rng_(config_.retry.jitter_seed)
{
    if (config_.request_key_seed != 0) {
        key_state_ = config_.request_key_seed;
    } else {
        // A per-process random stream: two clients retrying the same logical
        // submit must not share a key (each submit is its own job).
        std::random_device device;
        key_state_ = (static_cast<std::uint64_t>(device()) << 32) ^ device();
    }

    // The initial connect honours the retry policy too — a daemon that is
    // restarting is exactly what the backoff exists for.
    const auto start = std::chrono::steady_clock::now();
    double backoff = config_.retry.initial_backoff_seconds;
    for (std::uint32_t attempt = 1;; ++attempt) {
        try {
            ensure_connected();
            return;
        } catch (const Net_error&) {
            connection_.close();
            if (!retry_again(attempt, start)) throw;
        } catch (const Protocol_error& error) {
            connection_.close();
            if (!error.retryable() || !retry_again(attempt, start)) throw;
        }
        backoff_sleep(backoff);
    }
}

void Client::ensure_connected()
{
    if (connection_.valid()) return;
    connection_ = Connection::connect(config_.host, config_.port, config_.timeouts);
    if (config_.fault_plan != nullptr)
        connection_.set_fault_plan(config_.fault_plan, "client/send");

    // Handshake: always framed as version 1 (the shared floor), proposing
    // the highest version this build speaks.
    Hello hello;
    hello.proposed_version = protocol_version;
    hello.client_name = config_.client_name;
    write_frame(connection_, 1, Pdu_type::hello, encode_hello(hello));

    std::optional<Frame> reply = read_frame(connection_, config_.max_frame_payload);
    if (!reply.has_value())
        throw Protocol_error(Protocol_error_code::io,
                             "daemon at " + endpoint() +
                                 " closed the connection cleanly during the hello handshake");
    if (reply->type == Pdu_type::error) {
        const Error_pdu error = decode_error(reply->payload);
        throw Protocol_error(error.code, error.message, /*remote=*/true, error.retryable);
    }
    if (reply->type != Pdu_type::hello_ok)
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string("expected hello_ok, got ") + to_string(reply->type));

    const Hello_ok ok = decode_hello_ok(reply->payload);
    if (ok.negotiated_version < 1 || ok.negotiated_version > protocol_version)
        throw Protocol_error(Protocol_error_code::unsupported_version,
                             "daemon negotiated version " +
                                 std::to_string(ok.negotiated_version) +
                                 ", which this client does not speak");
    version_ = ok.negotiated_version;
    server_protocol_version_ = ok.server_protocol_version;
    server_name_ = ok.server_name;
    shard_count_ = ok.shard_count;
    backends_ = ok.backends;
}

bool Client::retry_again(std::uint32_t attempt,
                         std::chrono::steady_clock::time_point start) const
{
    if (attempt >= config_.retry.max_attempts) return false;
    if (config_.retry.deadline_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (elapsed >= config_.retry.deadline_seconds) return false;
    }
    return true;
}

void Client::backoff_sleep(double& backoff)
{
    const Retry_policy& retry = config_.retry;
    const double jittered =
        backoff * (1.0 + retry.jitter * (backoff_rng_.uniform() * 2.0 - 1.0));
    if (jittered > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(jittered));
    backoff = std::min(backoff * retry.backoff_multiplier, retry.max_backoff_seconds);
}

std::uint64_t Client::next_request_key()
{
    std::uint64_t key = 0;
    do {
        key = splitmix64(key_state_);
    } while (key == 0); // 0 means "no key" on the wire
    return key;
}

std::string Client::call(Pdu_type request, std::string_view payload, Pdu_type expected_reply)
{
    write_frame(connection_, version_, request, payload);
    std::optional<Frame> reply;
    try {
        reply = read_frame(connection_, config_.max_frame_payload);
    } catch (const Net_error& error) {
        if (error.kind() == Net_error_kind::timeout)
            // Distinct from a connect timeout: we *are* connected, the
            // daemon just never answered within the read deadline (its
            // reply may be lost, or the request still executing).
            throw Net_error(Net_error_kind::timeout,
                            std::string("read timed out awaiting ") + to_string(expected_reply) +
                                " from " + endpoint() +
                                " — connected, but no reply within the read timeout");
        throw;
    }
    if (!reply.has_value())
        throw Protocol_error(Protocol_error_code::io,
                             "daemon at " + endpoint() +
                                 " closed the connection cleanly while awaiting " +
                                 to_string(expected_reply));
    if (reply->version != version_)
        throw Protocol_error(Protocol_error_code::unsupported_version,
                             "reply framed as version " + std::to_string(reply->version) +
                                 " on a connection that negotiated " + std::to_string(version_));
    if (reply->type == Pdu_type::error) {
        const Error_pdu error = decode_error(reply->payload);
        throw Protocol_error(error.code, error.message, /*remote=*/true, error.retryable);
    }
    if (reply->type != expected_reply)
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string("expected ") + to_string(expected_reply) + ", got " +
                                 to_string(reply->type));
    return std::move(reply->payload);
}

std::string Client::call_with_retry(Pdu_type request, std::string_view payload,
                                    Pdu_type expected_reply)
{
    const auto start = std::chrono::steady_clock::now();
    double backoff = config_.retry.initial_backoff_seconds;
    for (std::uint32_t attempt = 1;; ++attempt) {
        try {
            ensure_connected();
            return call(request, payload, expected_reply);
        } catch (const Net_error&) {
            // The transport failed somewhere under the request: the stream
            // position is unknowable, so the retry starts from a fresh
            // connection either way.
            connection_.close();
            if (!retry_again(attempt, start)) throw;
        } catch (const Protocol_error& error) {
            if (error.remote() && error.retryable()) {
                // Typed refusal (busy / shutting_down): the stream is still
                // in sync — retry on the same connection.
                if (!retry_again(attempt, start)) throw;
            } else if (!error.remote()) {
                // Local framing damage: the stream can no longer be
                // trusted whether or not we retry.
                connection_.close();
                if (!error.retryable() || !retry_again(attempt, start)) throw;
            } else {
                throw; // permanent remote rejection
            }
        }
        backoff_sleep(backoff);
    }
}

Submit_ok Client::submit(const std::string& backend, const Graph& graph,
                         const Optimize_request& request, const Submit_options& options)
{
    Submit submit;
    submit.backend = backend;
    submit.request = request;
    submit.graph = graph;
    submit.priority = options.priority;
    submit.deadline_seconds = options.deadline_seconds;
    // One key for every attempt of this logical submit: a retry after a
    // lost reply replays the original accept instead of starting a second
    // search.
    submit.request_key = next_request_key();

    // One trace for every attempt too: joined to the caller's trace when
    // one is active, otherwise a fresh id — the daemon parents its spans
    // under whatever span is current here.
    const Trace_context ambient = current_trace();
    const std::uint64_t trace_id = ambient.trace_id != 0 ? ambient.trace_id : new_trace_id();
    const Trace_scope trace_scope(trace_id, ambient.span_id);
    Span_scope span("client/submit");
    if (span.active()) span.annotate("backend", backend);
    submit.trace_id = trace_id;
    submit.parent_span = current_trace().span_id;
    last_trace_id_ = trace_id;

    const std::string payload = encode_submit(submit);
    return decode_submit_ok(call_with_retry(Pdu_type::submit, payload, Pdu_type::submit_ok));
}

Batch_ok Client::batch_submit(const Batch_submit& batch)
{
    Batch_submit keyed = batch;
    if (keyed.request_key == 0) keyed.request_key = next_request_key();

    const Trace_context ambient = current_trace();
    if (keyed.trace_id == 0) {
        keyed.trace_id = ambient.trace_id != 0 ? ambient.trace_id : new_trace_id();
        keyed.parent_span = ambient.span_id;
    }
    const Trace_scope trace_scope(keyed.trace_id, keyed.parent_span);
    Span_scope span("client/batch_submit");
    if (span.active()) span.annotate("entries", std::to_string(keyed.entries.size()));
    keyed.parent_span = current_trace().span_id;
    last_trace_id_ = keyed.trace_id;

    const std::string payload = encode_batch_submit(keyed);
    return decode_batch_ok(call_with_retry(Pdu_type::batch_submit, payload, Pdu_type::batch_ok));
}

Poll_ok Client::poll(std::uint64_t job_id, double wait_seconds)
{
    Poll poll;
    poll.job_id = job_id;
    poll.wait_seconds = wait_seconds;
    return decode_poll_ok(
        call_with_retry(Pdu_type::poll, encode_poll(poll), Pdu_type::poll_ok));
}

Optimize_result Client::wait(std::uint64_t job_id, const Progress_observer& observer)
{
    // The long poll is the client's loop: each round asks the daemon to
    // wait briefly (capped server-side), so a slow search costs neither a
    // parked daemon worker nor a client spin.
    int last_step = -1;
    for (;;) {
        Poll_ok round = poll(job_id, config_.poll_wait_seconds);
        if (observer && round.progress.has_value() && round.progress->step != last_step) {
            last_step = round.progress->step;
            observer(*round.progress);
        }
        switch (round.state) {
        case Job_state::done:
        case Job_state::cancelled:
            if (!round.result.has_value())
                throw Protocol_error(Protocol_error_code::bad_payload,
                                     "terminal poll_ok without a result");
            return std::move(*round.result);
        case Job_state::rejected:
        case Job_state::failed:
            // Mirror Job_handle::wait: both surface as runtime_error with
            // the daemon's message (reject reason / backend error text).
            throw std::runtime_error(round.message.empty()
                                         ? std::string("remote job ") + std::to_string(job_id) +
                                               " " + to_string(round.state)
                                         : round.message);
        case Job_state::queued:
        case Job_state::running:
            break;
        }
    }
}

Optimize_result Client::optimize(const std::string& backend, const Graph& graph,
                                 const Optimize_request& request, const Submit_options& options,
                                 const Progress_observer& observer)
{
    const Submit_ok submitted = submit(backend, graph, request, options);
    return wait(submitted.job_id, observer);
}

Cancel_ok Client::cancel(std::uint64_t job_id)
{
    Cancel cancel;
    cancel.job_id = job_id;
    return decode_cancel_ok(
        call_with_retry(Pdu_type::cancel, encode_cancel(cancel), Pdu_type::cancel_ok));
}

Stats_ok Client::stats()
{
    return decode_stats_ok(call_with_retry(Pdu_type::stats, {}, Pdu_type::stats_ok));
}

Metrics_ok Client::metrics()
{
    return decode_metrics_ok(call_with_retry(Pdu_type::metrics, {}, Pdu_type::metrics_ok));
}

Trace_ok Client::trace(std::uint64_t job_id, std::uint64_t trace_id)
{
    const Trace_request request{job_id, trace_id};
    return decode_trace_ok(
        call_with_retry(Pdu_type::trace, encode_trace_request(request), Pdu_type::trace_ok));
}

void Client::drain()
{
    call_with_retry(Pdu_type::drain, {}, Pdu_type::drain_ok);
}

} // namespace xrl
