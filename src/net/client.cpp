#include "net/client.h"

#include <stdexcept>
#include <utility>

namespace xrl {

Client::Client(Client_config config)
    : config_(std::move(config)),
      connection_(Connection::connect(config_.host, config_.port, config_.timeouts))
{
    // Handshake: always framed as version 1 (the shared floor), proposing
    // the highest version this build speaks.
    Hello hello;
    hello.proposed_version = protocol_version;
    hello.client_name = config_.client_name;
    write_frame(connection_, 1, Pdu_type::hello, encode_hello(hello));

    std::optional<Frame> reply = read_frame(connection_, config_.max_frame_payload);
    if (!reply.has_value())
        throw Protocol_error(Protocol_error_code::io,
                             "connection closed during the hello handshake");
    if (reply->type == Pdu_type::error) {
        const Error_pdu error = decode_error(reply->payload);
        throw Protocol_error(error.code, error.message, /*remote=*/true);
    }
    if (reply->type != Pdu_type::hello_ok)
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string("expected hello_ok, got ") + to_string(reply->type));

    const Hello_ok ok = decode_hello_ok(reply->payload);
    if (ok.negotiated_version < 1 || ok.negotiated_version > protocol_version)
        throw Protocol_error(Protocol_error_code::unsupported_version,
                             "daemon negotiated version " +
                                 std::to_string(ok.negotiated_version) +
                                 ", which this client does not speak");
    version_ = ok.negotiated_version;
    server_name_ = ok.server_name;
    shard_count_ = ok.shard_count;
    backends_ = ok.backends;
}

std::string Client::call(Pdu_type request, std::string_view payload, Pdu_type expected_reply)
{
    write_frame(connection_, version_, request, payload);
    std::optional<Frame> reply = read_frame(connection_, config_.max_frame_payload);
    if (!reply.has_value())
        throw Protocol_error(Protocol_error_code::io,
                             std::string("connection closed awaiting ") +
                                 to_string(expected_reply));
    if (reply->version != version_)
        throw Protocol_error(Protocol_error_code::unsupported_version,
                             "reply framed as version " + std::to_string(reply->version) +
                                 " on a connection that negotiated " + std::to_string(version_));
    if (reply->type == Pdu_type::error) {
        const Error_pdu error = decode_error(reply->payload);
        throw Protocol_error(error.code, error.message, /*remote=*/true);
    }
    if (reply->type != expected_reply)
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string("expected ") + to_string(expected_reply) + ", got " +
                                 to_string(reply->type));
    return std::move(reply->payload);
}

Submit_ok Client::submit(const std::string& backend, const Graph& graph,
                         const Optimize_request& request, const Submit_options& options)
{
    Submit submit;
    submit.backend = backend;
    submit.request = request;
    submit.graph = graph;
    submit.priority = options.priority;
    submit.deadline_seconds = options.deadline_seconds;
    return decode_submit_ok(call(Pdu_type::submit, encode_submit(submit), Pdu_type::submit_ok));
}

Batch_ok Client::batch_submit(const Batch_submit& batch)
{
    return decode_batch_ok(
        call(Pdu_type::batch_submit, encode_batch_submit(batch), Pdu_type::batch_ok));
}

Poll_ok Client::poll(std::uint64_t job_id, double wait_seconds)
{
    Poll poll;
    poll.job_id = job_id;
    poll.wait_seconds = wait_seconds;
    return decode_poll_ok(call(Pdu_type::poll, encode_poll(poll), Pdu_type::poll_ok));
}

Optimize_result Client::wait(std::uint64_t job_id, const Progress_observer& observer)
{
    // The long poll is the client's loop: each round asks the daemon to
    // wait briefly (capped server-side), so a slow search costs neither a
    // parked daemon worker nor a client spin.
    int last_step = -1;
    for (;;) {
        Poll_ok round = poll(job_id, config_.poll_wait_seconds);
        if (observer && round.progress.has_value() && round.progress->step != last_step) {
            last_step = round.progress->step;
            observer(*round.progress);
        }
        switch (round.state) {
        case Job_state::done:
        case Job_state::cancelled:
            if (!round.result.has_value())
                throw Protocol_error(Protocol_error_code::bad_payload,
                                     "terminal poll_ok without a result");
            return std::move(*round.result);
        case Job_state::rejected:
        case Job_state::failed:
            // Mirror Job_handle::wait: both surface as runtime_error with
            // the daemon's message (reject reason / backend error text).
            throw std::runtime_error(round.message.empty()
                                         ? std::string("remote job ") + std::to_string(job_id) +
                                               " " + to_string(round.state)
                                         : round.message);
        case Job_state::queued:
        case Job_state::running:
            break;
        }
    }
}

Optimize_result Client::optimize(const std::string& backend, const Graph& graph,
                                 const Optimize_request& request, const Submit_options& options,
                                 const Progress_observer& observer)
{
    const Submit_ok submitted = submit(backend, graph, request, options);
    return wait(submitted.job_id, observer);
}

Cancel_ok Client::cancel(std::uint64_t job_id)
{
    Cancel cancel;
    cancel.job_id = job_id;
    return decode_cancel_ok(call(Pdu_type::cancel, encode_cancel(cancel), Pdu_type::cancel_ok));
}

Stats_ok Client::stats()
{
    return decode_stats_ok(call(Pdu_type::stats, {}, Pdu_type::stats_ok));
}

void Client::drain()
{
    call(Pdu_type::drain, {}, Pdu_type::drain_ok);
}

} // namespace xrl
