#include "net/daemon.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {

namespace {

/// The fleet store alias: hand Daemon_config::state_store to the router
/// config when the latter did not bring its own — and likewise the fault
/// plan, so one plan covers the shards and the wire.
Router_config resolved_router_config(Daemon_config& config)
{
    if (config.state_store != nullptr && config.router.state_store == nullptr)
        config.router.state_store = config.state_store;
    if (config.fault_plan != nullptr && config.router.fault_plan == nullptr)
        config.router.fault_plan = config.fault_plan;
    return config.router;
}

} // namespace

Daemon::Daemon(Daemon_config config)
    : config_(std::move(config)),
      router_(resolved_router_config(config_)),
      listener_(config_.host, config_.port),
      port_(listener_.port()),
      pool_(&Thread_pool::shared())
{
    accept_thread_ = std::thread([this] { accept_loop(); });
}

Daemon::~Daemon()
{
    stop();
}

void Daemon::stop()
{
    {
        const Lock_guard lock(mutex_);
        stopping_ = true;
    }
    // Idempotent by construction: every step below tolerates re-running
    // (the destructor re-stops after an explicit stop()).
    // Wake the accept thread (shutdown, not close: the fd number stays
    // ours until the listener is destroyed, so no new socket can alias it
    // while accept() is still waking up).
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();

    // Let in-flight session turns observe stopping_ and retire. Turns are
    // short by design (one readiness poll / one frame), except drain —
    // which finishes because the fleet keeps executing below us.
    {
        Unique_lock lock(mutex_);
        sessions_done_.wait(lock, [this]() XRL_REQUIRES(mutex_) { return active_sessions_ == 0; });
    }

    // The SIGTERM contract: finish what was admitted, then put warm state
    // on disk so a restarted daemon starts warm.
    router_.drain();
    router_.save_state();
}

Daemon_wire_stats Daemon::stats() const
{
    const Lock_guard lock(mutex_);
    Daemon_wire_stats out = stats_;
    out.connections_active = active_sessions_;
    out.jobs_retained = jobs_.size();
    return out;
}

// ---------------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------------

void Daemon::accept_loop()
{
    for (;;) {
        std::optional<Connection> connection;
        try {
            connection = listener_.accept(config_.timeouts);
        } catch (const Net_error&) {
            continue; // One failed handshake must not stop the daemon.
        }
        if (!connection.has_value()) return; // Listener closed: stopping.
        start_session(std::move(*connection));
    }
}

void Daemon::start_session(Connection connection)
{
    std::shared_ptr<Session> session;
    {
        const Lock_guard lock(mutex_);
        if (stopping_) return; // Dropped: the peer sees a clean close.
        if (active_sessions_ >= config_.max_connections) {
            ++stats_.connections_rejected;
        } else {
            ++stats_.connections_accepted;
            ++active_sessions_;
            session = std::make_shared<Session>();
            session->connection = std::move(connection);
            if (config_.fault_plan != nullptr)
                session->connection.set_fault_plan(config_.fault_plan, "daemon/send");
            session->id = next_session_id_++;
        }
    }
    if (session == nullptr) {
        // Over capacity: a typed refusal, then close. Best-effort — the
        // peer may already be gone.
        try {
            write_frame(connection, protocol_version, Pdu_type::error,
                        encode_error({Protocol_error_code::busy,
                                      "connection limit reached (" +
                                          std::to_string(config_.max_connections) + ")",
                                      retryable(Protocol_error_code::busy)}));
        } catch (const Net_error&) {
        }
        return;
    }
    pool_->post([this, session] { session_turn(session); });
}

void Daemon::finish_session(const std::shared_ptr<Session>& session)
{
    session->connection.close();
    const Lock_guard lock(mutex_);
    XRL_ASSERT(active_sessions_ > 0);
    --active_sessions_;
    sessions_done_.notify_all();
}

// ---------------------------------------------------------------------------
// Session turns
// ---------------------------------------------------------------------------

void Daemon::session_turn(const std::shared_ptr<Session>& session)
{
    bool stopping = false;
    {
        const Lock_guard lock(mutex_);
        stopping = stopping_;
    }
    if (stopping) {
        finish_session(session);
        return;
    }

    // Cooperative turn: a short readiness poll, at most one frame, then
    // yield the worker back to the pool. Idle connections cost one poll
    // per turn, never a parked thread.
    bool ready = false;
    try {
        ready = session->connection.readable(config_.idle_poll_seconds);
    } catch (const Net_error&) {
        finish_session(session);
        return;
    }
    if (!ready) {
        pool_->post([this, session] { session_turn(session); });
        return;
    }

    std::optional<Frame> frame;
    try {
        frame = read_frame(session->connection, config_.max_frame_payload);
    } catch (const Protocol_error& error) {
        // Framing damage: the stream can no longer be trusted. Name the
        // failure, then close.
        {
            const Lock_guard lock(mutex_);
            ++stats_.protocol_errors;
        }
        send_error(*session, error.code(), error.what());
        finish_session(session);
        return;
    } catch (const Net_error&) {
        finish_session(session);
        return;
    }
    if (!frame.has_value()) { // Clean hangup at a frame boundary.
        finish_session(session);
        return;
    }

    {
        const Lock_guard lock(mutex_);
        ++stats_.frames_received;
    }

    bool keep = false;
    try {
        keep = handle_frame(session, *frame);
    } catch (const Net_error&) {
        keep = false; // Reply send failed: the peer is gone.
    }
    if (!keep) {
        finish_session(session);
        return;
    }
    pool_->post([this, session] { session_turn(session); });
}

bool Daemon::handle_frame(const std::shared_ptr<Session>& session, const Frame& frame)
{
    if (!session->negotiated) return handle_hello(session, frame);

    if (frame.version != session->version) {
        {
            const Lock_guard lock(mutex_);
            ++stats_.protocol_errors;
        }
        send_error(*session, Protocol_error_code::unsupported_version,
                   "frame version " + std::to_string(frame.version) +
                       " on a connection that negotiated version " +
                       std::to_string(session->version));
        return true; // Framing is intact; the client may recover.
    }

    Reply reply;
    try {
        reply = dispatch(frame);
    } catch (const Protocol_error& error) {
        {
            const Lock_guard lock(mutex_);
            ++stats_.protocol_errors;
        }
        send_error(*session, error.code(), error.what());
        return true; // Payload-level failure; the stream itself is fine.
    }
    write_frame(session->connection, session->version, reply.type, reply.payload);
    return true;
}

bool Daemon::handle_hello(const std::shared_ptr<Session>& session, const Frame& frame)
{
    // The handshake is strict: anything but a well-formed hello framed as
    // version 1 closes the connection — there is no negotiated state to
    // recover into.
    const auto fail = [&](Protocol_error_code code, const std::string& message) {
        {
            const Lock_guard lock(mutex_);
            ++stats_.protocol_errors;
        }
        send_error(*session, code, message);
        return false;
    };

    if (frame.type != Pdu_type::hello)
        return fail(Protocol_error_code::bad_payload,
                    std::string("expected hello as the first frame, got ") + to_string(frame.type));
    if (frame.version != 1)
        return fail(Protocol_error_code::unsupported_version,
                    "hello frames must be framed as version 1, got " +
                        std::to_string(frame.version));

    Hello hello;
    try {
        hello = decode_hello(frame.payload);
    } catch (const Protocol_error& error) {
        return fail(error.code(), error.what());
    }
    if (hello.proposed_version < 1)
        return fail(Protocol_error_code::unsupported_version, "client proposed version 0");

    session->version = std::min<std::uint8_t>(hello.proposed_version, protocol_version);
    session->negotiated = true;

    Hello_ok ok;
    ok.negotiated_version = session->version;
    ok.server_protocol_version = protocol_version;
    ok.server_name = config_.server_name;
    ok.shard_count = static_cast<std::uint32_t>(router_.shard_count());
    ok.backends = router_.shard(0).service().backends();
    write_frame(session->connection, session->version, Pdu_type::hello_ok, encode_hello_ok(ok));
    return true;
}

// ---------------------------------------------------------------------------
// PDU handlers
// ---------------------------------------------------------------------------

Daemon::Reply Daemon::dispatch(const Frame& frame)
{
    switch (frame.type) {
    case Pdu_type::submit: return handle_submit(frame.payload);
    case Pdu_type::batch_submit: return handle_batch(frame.payload);
    case Pdu_type::poll: return handle_poll(frame.payload);
    case Pdu_type::cancel: return handle_cancel(frame.payload);
    case Pdu_type::stats: return handle_stats();
    case Pdu_type::drain: return handle_drain();
    case Pdu_type::metrics: return handle_metrics();
    case Pdu_type::trace: return handle_trace(frame.payload);
    case Pdu_type::hello:
        throw Protocol_error(Protocol_error_code::bad_payload,
                             "hello after the handshake completed");
    default:
        // Daemon-to-client PDUs (submit_ok, poll_ok, ...) arriving at the
        // daemon: known bytes, wrong direction.
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string("unexpected PDU at the daemon: ") +
                                 to_string(frame.type));
    }
}

Job_handle Daemon::routed_submit(const std::string& backend, const Graph& graph,
                                 const Optimize_request& request, const Submit_options& options)
{
    {
        const Lock_guard lock(mutex_);
        if (stopping_)
            throw Protocol_error(Protocol_error_code::shutting_down, "daemon is stopping");
    }
    try {
        return router_.submit(backend, graph, request, options);
    } catch (const std::invalid_argument& error) {
        throw Protocol_error(Protocol_error_code::invalid_request, error.what());
    } catch (const std::runtime_error& error) {
        // The shard refused for operational reasons (shutdown mid-submit).
        throw Protocol_error(Protocol_error_code::shutting_down, error.what());
    }
}

Daemon::Reply Daemon::handle_submit(std::string_view payload)
{
    const Submit submit = decode_submit(payload);
    if (std::optional<Reply> replay = find_keyed_reply(submit.request_key); replay.has_value())
        return std::move(*replay);
    // Install the client-stamped trace context for the whole admission:
    // the router span and the shard's job capture both nest under it.
    const Trace_scope trace_scope(submit.trace_id, submit.parent_span);
    Span_scope span("daemon/submit");
    if (span.active()) span.annotate("backend", submit.backend);
    const Submit_options options{static_cast<int>(submit.priority), submit.deadline_seconds};
    Job_handle handle = routed_submit(submit.backend, submit.graph, submit.request, options);
    Reply reply{Pdu_type::submit_ok, encode_submit_ok(register_job(std::move(handle)))};
    remember_keyed_reply(submit.request_key, reply);
    return reply;
}

Daemon::Reply Daemon::handle_batch(std::string_view payload)
{
    const Batch_submit batch = decode_batch_submit(payload);
    if (std::optional<Reply> replay = find_keyed_reply(batch.request_key); replay.has_value())
        return std::move(*replay);
    if (batch.entries.empty())
        throw Protocol_error(Protocol_error_code::invalid_request,
                             "batch_submit carries no entries");
    // One trace for the whole envelope: every entry's job shares it.
    const Trace_scope trace_scope(batch.trace_id, batch.parent_span);
    Span_scope span("daemon/batch_submit");
    if (span.active()) span.annotate("entries", std::to_string(batch.entries.size()));

    // The deployment contract: one envelope for the whole model set.
    // Entries without their own wall budget split the batch budget evenly;
    // deadline and priority apply to every entry.
    const double shared_budget =
        batch.budget_seconds > 0.0
            ? batch.budget_seconds / static_cast<double>(batch.entries.size())
            : 0.0;
    const Submit_options options{static_cast<int>(batch.priority), batch.deadline_seconds};

    Batch_ok ok;
    std::vector<Job_handle> handles;
    handles.reserve(batch.entries.size());
    try {
        for (const Batch_submit::Entry& entry : batch.entries) {
            Optimize_request request = entry.request;
            if (request.time_budget_seconds <= 0.0 && shared_budget > 0.0)
                request.time_budget_seconds = shared_budget;
            handles.push_back(routed_submit(entry.backend, entry.graph, request, options));
        }
    } catch (...) {
        // All-or-nothing admission: withdraw the partial batch so a
        // rejected deployment does not leave half its models searching.
        for (Job_handle& handle : handles) handle.cancel();
        throw;
    }
    ok.jobs.reserve(handles.size());
    for (Job_handle& handle : handles) ok.jobs.push_back(register_job(std::move(handle)));
    Reply reply{Pdu_type::batch_ok, encode_batch_ok(ok)};
    remember_keyed_reply(batch.request_key, reply);
    return reply;
}

Daemon::Reply Daemon::handle_poll(std::string_view payload)
{
    const Poll poll = decode_poll(payload);
    Job_handle handle;
    {
        const Lock_guard lock(mutex_);
        const auto it = jobs_.find(poll.job_id);
        if (it == jobs_.end())
            throw Protocol_error(Protocol_error_code::unknown_job,
                                 "unknown job id " + std::to_string(poll.job_id));
        handle = it->second.handle;
    }

    // Bounded server-side wait: a worker may sit here briefly, never for
    // the client's whole patience — long polls are the client's loop.
    const double wait = std::min(std::max(poll.wait_seconds, 0.0), config_.poll_wait_cap_seconds);
    if (wait > 0.0 && !handle.finished()) handle.wait_for(wait);

    Poll_ok ok;
    ok.job_id = poll.job_id;
    ok.state = handle.poll();
    ok.progress = handle.progress();
    if (ok.state == Job_state::done || ok.state == Job_state::cancelled) {
        ok.result = handle.wait();
        note_terminal_delivered(poll.job_id);
    } else if (ok.state == Job_state::rejected || ok.state == Job_state::failed) {
        try {
            handle.wait();
        } catch (const std::exception& error) {
            ok.message = error.what();
        }
        note_terminal_delivered(poll.job_id);
    }
    return {Pdu_type::poll_ok, encode_poll_ok(ok)};
}

Daemon::Reply Daemon::handle_cancel(std::string_view payload)
{
    const Cancel cancel = decode_cancel(payload);
    Job_handle handle;
    {
        const Lock_guard lock(mutex_);
        const auto it = jobs_.find(cancel.job_id);
        if (it == jobs_.end())
            throw Protocol_error(Protocol_error_code::unknown_job,
                                 "unknown job id " + std::to_string(cancel.job_id));
        handle = it->second.handle;
    }
    // The wire submission owns exactly one interest; cancelling through a
    // copy withdraws it once (Job_handle's ticket semantics).
    handle.cancel();
    return {Pdu_type::cancel_ok, encode_cancel_ok({cancel.job_id, handle.poll()})};
}

Daemon::Reply Daemon::handle_stats()
{
    Stats_ok ok;
    ok.router = router_.stats();
    ok.daemon = stats();
    return {Pdu_type::stats_ok, encode_stats_ok(ok)};
}

Daemon::Reply Daemon::handle_drain()
{
    // One administrative drain at a time: losers get a typed `busy`
    // rather than a second parked worker.
    const Try_lock admin(admin_mutex_);
    if (!admin.owns_lock())
        throw Protocol_error(Protocol_error_code::busy, "a drain is already in progress");
    router_.drain();
    router_.save_state();
    return {Pdu_type::drain_ok, {}};
}

Daemon::Reply Daemon::handle_metrics()
{
    // Scrape-time refresh: router_.stats() re-publishes the slow gauges
    // (uptime, shard count, per-shard breaker state) into the registry,
    // and the daemon's own wire counters are mirrored here — the registry
    // holds the history, stats_ stays the wire-struct source of truth.
    router_.stats();
    const Daemon_wire_stats wire = stats();
    Metrics_registry& registry = Metrics_registry::global();
    registry.gauge("xrlflow_daemon_connections_active",
                   "Currently connected wire clients")
        .set(static_cast<double>(wire.connections_active));
    registry.gauge("xrlflow_daemon_connections_accepted",
                   "Wire connections accepted since start")
        .set(static_cast<double>(wire.connections_accepted));
    registry.gauge("xrlflow_daemon_connections_rejected",
                   "Wire connections refused over max_connections")
        .set(static_cast<double>(wire.connections_rejected));
    registry.gauge("xrlflow_daemon_frames_received", "Frames decoded off the wire")
        .set(static_cast<double>(wire.frames_received));
    registry.gauge("xrlflow_daemon_protocol_errors",
                   "Malformed frames answered with a typed error")
        .set(static_cast<double>(wire.protocol_errors));
    registry.gauge("xrlflow_daemon_jobs_submitted", "Wire jobs admitted since start")
        .set(static_cast<double>(wire.jobs_submitted));
    registry.gauge("xrlflow_daemon_jobs_retained", "Live entries in the wire job table")
        .set(static_cast<double>(wire.jobs_retained));
    registry.gauge("xrlflow_daemon_jobs_deduplicated",
                   "Submits replayed from the keyed-reply cache")
        .set(static_cast<double>(wire.jobs_deduplicated));
    return {Pdu_type::metrics_ok, encode_metrics_ok({registry.expose()})};
}

Daemon::Reply Daemon::handle_trace(std::string_view payload)
{
    const Trace_request request = decode_trace_request(payload);
    std::uint64_t trace_id = request.trace_id;
    if (request.job_id != 0) {
        const Lock_guard lock(mutex_);
        const auto it = jobs_.find(request.job_id);
        if (it == jobs_.end())
            throw Protocol_error(Protocol_error_code::unknown_job,
                                 "unknown job id " + std::to_string(request.job_id));
        trace_id = it->second.trace_id;
    }
    Trace_ok ok;
    ok.trace_id = trace_id;
    // trace_id 0 (no job filter either) dumps the whole buffer — the
    // operator's "what has this daemon been doing" view.
    ok.spans = Trace_buffer::global().spans_for(trace_id);
    return {Pdu_type::trace_ok, encode_trace_ok(ok)};
}

// ---------------------------------------------------------------------------
// Job table
// ---------------------------------------------------------------------------

std::optional<Daemon::Reply> Daemon::find_keyed_reply(std::uint64_t request_key)
{
    if (request_key == 0) return std::nullopt;
    const Lock_guard lock(mutex_);
    const auto it = keyed_replies_.find(request_key);
    if (it == keyed_replies_.end()) return std::nullopt;
    // Replay the stored bytes verbatim: the retry observes exactly the
    // reply its lost original carried (same wire job id, same flags).
    ++stats_.jobs_deduplicated;
    return it->second;
}

void Daemon::remember_keyed_reply(std::uint64_t request_key, const Reply& reply)
{
    if (request_key == 0 || config_.retain_request_keys == 0) return;
    const Lock_guard lock(mutex_);
    if (!keyed_replies_.emplace(request_key, reply).second) return;
    keyed_order_.push_back(request_key);
    while (keyed_order_.size() > config_.retain_request_keys) {
        keyed_replies_.erase(keyed_order_.front());
        keyed_order_.pop_front();
    }
}

Submit_ok Daemon::register_job(Job_handle handle)
{
    const Lock_guard lock(mutex_);
    const std::uint64_t id = next_job_id_++;
    const bool coalesced = handle.coalesced();
    jobs_.emplace(id, Job_entry{std::move(handle), false, current_trace().trace_id});
    ++stats_.jobs_submitted;
    return {id, coalesced};
}

void Daemon::note_terminal_delivered(std::uint64_t job_id)
{
    const Lock_guard lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end() || it->second.terminal_delivered) return;
    it->second.terminal_delivered = true;
    delivered_order_.push_back(job_id);
    // Delivered results stay re-pollable (an idempotent client may ask
    // again) up to the retention cap; beyond it the oldest are forgotten.
    while (delivered_order_.size() > config_.retain_terminal_jobs) {
        jobs_.erase(delivered_order_.front());
        delivered_order_.pop_front();
    }
}

void Daemon::send_error(Session& session, Protocol_error_code code, const std::string& message)
{
    const std::uint8_t version = session.negotiated ? session.version : protocol_version;
    try {
        write_frame(session.connection, version, Pdu_type::error,
                    encode_error({code, message, retryable(code)}));
    } catch (const Net_error&) {
        // Best-effort: the peer that sent us garbage may already be gone.
    }
}

} // namespace xrl
