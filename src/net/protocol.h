// The xrlflow wire protocol: versioned, length-prefixed, checksummed
// frames carrying request/response PDUs between clients and the xrlflowd
// daemon (net/daemon.h).
//
// Frame layout (all integers little-endian, floats as IEEE-754 bit
// patterns — the same byte composition record files use):
//
//   offset size  field
//   0      4     magic  0x464C5258 ("XRLF")
//   4      1     protocol version of this frame
//   5      1     PDU type (Pdu_type)
//   6      4     payload size N
//   10     N     payload (PDU-specific, composed with Byte_writer)
//   10+N   8     FNV-1a checksum over bytes [0, 10+N)
//
// Version negotiation: the first frame on a connection is `hello`, always
// framed as version 1 (the floor every speaker shares), proposing the
// client's highest supported version; the daemon answers `hello_ok` with
// the negotiated version — min(client's, ours) — and every subsequent
// frame in either direction must carry it. A proposal below the daemon's
// floor, or a later frame with any other version byte, earns a typed
// `error` PDU.
//
// Fault tolerance follows the record_file contract: a malformed frame —
// bad magic, bad checksum, oversized or truncated length, unknown type,
// undecodable payload, future version — is *never* a crash on either
// side. The daemon answers with an `error` PDU naming a Protocol_error_code
// and closes the connection when the stream can no longer be trusted
// (framing damage); the client library throws Protocol_error. Payloads
// reuse the bit-exact codecs the warm-start layer already trusts:
// graphs via serialise_graph_binary (ir/graph_io.h), results via
// core/result_serial.h — so a remote result is byte-identical to the
// in-process one.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer_api.h"
#include "net/connection.h"
#include "serve/job.h"
#include "serve/router.h"
#include "support/record_file.h"
#include "support/trace.h"

namespace xrl {

inline constexpr std::uint32_t protocol_magic = 0x464C5258; // "XRLF"

/// Highest protocol version this build speaks; hello frames are always
/// framed as version 1 so any future speaker can still negotiate down.
inline constexpr std::uint8_t protocol_version = 1;

/// Frames larger than this are rejected before any allocation — an
/// oversized length prefix is indistinguishable from corruption.
inline constexpr std::size_t protocol_max_payload = 64u << 20;

inline constexpr std::size_t protocol_header_size = 10; // magic + version + type + length
inline constexpr std::size_t protocol_checksum_size = 8;

// ---------------------------------------------------------------------------
// PDU types and error taxonomy
// ---------------------------------------------------------------------------

enum class Pdu_type : std::uint8_t {
    hello = 1,        ///< client → daemon: version proposal + client name.
    hello_ok = 2,     ///< daemon → client: negotiated version + fleet info.
    submit = 3,       ///< one (backend, request, graph) + scheduling options.
    submit_ok = 4,    ///< wire job id + coalesced flag.
    batch_submit = 5, ///< a deployment's model set under one budget/deadline.
    batch_ok = 6,     ///< wire job ids, in entry order.
    poll = 7,         ///< job id + bounded server-side wait.
    poll_ok = 8,      ///< state, progress snapshot, result when terminal.
    cancel = 9,       ///< withdraw interest in a job.
    cancel_ok = 10,   ///< state after the cancel took effect.
    stats = 11,       ///< no payload.
    stats_ok = 12,    ///< router + daemon counters.
    drain = 13,       ///< block until the fleet is idle and snapshotted.
    drain_ok = 14,    ///< drain finished.
    error = 15,       ///< typed failure; may be terminal for the connection.
    metrics = 16,     ///< no payload; scrape the daemon's metrics plane.
    metrics_ok = 17,  ///< Prometheus text exposition of the whole process.
    trace = 18,       ///< fetch buffered spans for a job / trace id.
    trace_ok = 19,    ///< the matching spans, oldest first.
};

const char* to_string(Pdu_type type);

enum class Protocol_error_code : std::uint16_t {
    bad_magic = 1,           ///< Frame does not start with "XRLF".
    bad_checksum = 2,        ///< Frame bytes do not hash to the trailer.
    truncated = 3,           ///< Stream ended inside a frame.
    frame_too_large = 4,     ///< Length prefix exceeds the payload cap.
    unsupported_version = 5, ///< Future version proposed or stamped on a frame.
    unknown_type = 6,        ///< PDU type byte not in Pdu_type.
    bad_payload = 7,         ///< Frame intact, payload undecodable.
    invalid_request = 8,     ///< Decoded fine, rejected by validate_request etc.
    unknown_job = 9,         ///< poll/cancel for an id the daemon does not hold.
    busy = 10,               ///< Admin operation already in progress.
    shutting_down = 11,      ///< Daemon is stopping; no new work.
    io = 12,                 ///< Transport failure surfaced through the protocol layer.
};

const char* to_string(Protocol_error_code code);

/// Whether a failure with this code is worth retrying (possibly against a
/// reconnected daemon): transient transport/framing damage and load states
/// are; malformed or unserviceable *requests* are not — resending the same
/// bytes earns the same answer. The table is part of the protocol contract
/// (documented in PROTOCOL.md) so both sides and every client agree.
bool retryable(Protocol_error_code code);

/// The typed failure both sides speak. Thrown by the client library for
/// local decode failures and for `error` PDUs received from the daemon
/// (`remote() == true`); the daemon never throws it across a connection —
/// it answers with an `error` PDU instead. `retryable()` defaults to the
/// protocol table for the code; a remote error carries the daemon's
/// explicit verdict instead (same table today, but the daemon's word
/// wins if they ever diverge).
class Protocol_error : public std::runtime_error {
public:
    Protocol_error(Protocol_error_code code, const std::string& message, bool remote = false)
        : std::runtime_error(message), code_(code), remote_(remote),
          retryable_(xrl::retryable(code))
    {
    }

    Protocol_error(Protocol_error_code code, const std::string& message, bool remote,
                   bool retryable_override)
        : std::runtime_error(message), code_(code), remote_(remote),
          retryable_(retryable_override)
    {
    }

    Protocol_error_code code() const { return code_; }
    bool remote() const { return remote_; }
    bool retryable() const { return retryable_; }

private:
    Protocol_error_code code_;
    bool remote_;
    bool retryable_;
};

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

struct Frame {
    std::uint8_t version = protocol_version;
    Pdu_type type = Pdu_type::error;
    std::string payload;
};

/// Compose one frame (header + payload + checksum) as raw bytes.
std::string encode_frame(std::uint8_t version, Pdu_type type, std::string_view payload);

/// Decode a whole frame from a flat buffer (tests and fuzzing drive this
/// directly; the streaming path below shares its checks). Throws
/// Protocol_error with the precise code.
Frame decode_frame(std::string_view bytes, std::size_t max_payload = protocol_max_payload);

void write_frame(Connection& connection, std::uint8_t version, Pdu_type type,
                 std::string_view payload);

/// Read the next frame off the stream. nullopt on a clean end-of-stream at
/// a frame boundary (the peer finished and hung up); Protocol_error
/// {truncated} when the stream dies inside a frame, {bad_magic /
/// bad_checksum / frame_too_large / unknown_type} for damage. Transport
/// timeouts and resets surface as Net_error.
std::optional<Frame> read_frame(Connection& connection,
                                std::size_t max_payload = protocol_max_payload);

// ---------------------------------------------------------------------------
// PDU payloads
// ---------------------------------------------------------------------------

struct Hello {
    std::uint8_t proposed_version = protocol_version;
    std::string client_name;
};

struct Hello_ok {
    std::uint8_t negotiated_version = protocol_version;
    /// The daemon's *highest* supported version, distinct from the
    /// negotiated one — lets a client (and `xrlflowctl stats`) report when
    /// the daemon could speak newer than the session does.
    std::uint8_t server_protocol_version = protocol_version;
    std::string server_name;
    std::uint32_t shard_count = 0;
    std::vector<std::string> backends; ///< Registered backend names, sorted.
};

/// One optimisation submission. The request's progress callback cannot
/// travel (documented in PROTOCOL.md); progress comes back through poll.
struct Submit {
    std::string backend;
    Optimize_request request;
    Graph graph;
    std::int32_t priority = 0;
    double deadline_seconds = 0.0;
    /// Client-chosen idempotency key; 0 = none. A resubmit carrying the
    /// key of a submit the daemon already answered gets the *original*
    /// reply replayed byte-identically instead of scheduling a second
    /// search — how a retry after a lost reply stays at-most-once. See
    /// PROTOCOL.md "Retry semantics".
    std::uint64_t request_key = 0;
    /// Client-stamped trace identity (support/trace.h); 0 = untraced. The
    /// daemon joins this trace for its own spans and carries it through
    /// router → shard → optimizer, so `xrlflowctl trace` reconstructs the
    /// job end to end. `parent_span` is the client-side span the daemon's
    /// spans nest under.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
};

struct Submit_ok {
    std::uint64_t job_id = 0;
    bool coalesced = false;
};

/// A deployment's whole model set under one scheduling envelope: every
/// entry shares the batch deadline and priority, and entries that carry no
/// wall-clock budget of their own split `budget_seconds` evenly — one
/// request, one budget, N models, exactly as a deployment rollout wants.
struct Batch_submit {
    struct Entry {
        std::string backend;
        Optimize_request request;
        Graph graph;
    };
    std::vector<Entry> entries;
    double budget_seconds = 0.0;   ///< Shared wall budget; 0 = per-entry budgets only.
    double deadline_seconds = 0.0; ///< Applied to every entry; 0 = none.
    std::int32_t priority = 0;
    /// Idempotency key for the whole batch (one key, one reply); 0 = none.
    /// Same replay contract as Submit::request_key.
    std::uint64_t request_key = 0;
    /// Trace identity shared by every entry; same contract as on Submit.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
};

struct Batch_ok {
    std::vector<Submit_ok> jobs; ///< In entry order.
};

struct Poll {
    std::uint64_t job_id = 0;
    /// Server-side wait for a terminal state before answering, capped by
    /// the daemon (Daemon_config::poll_wait_cap_seconds) so a slow search
    /// cannot pin a daemon worker; clients long-poll in a loop.
    double wait_seconds = 0.0;
};

struct Poll_ok {
    std::uint64_t job_id = 0;
    Job_state state = Job_state::queued;
    /// Reject reason (rejected) or backend error text (failed); "" else.
    std::string message;
    std::optional<Optimize_progress> progress; ///< Latest heartbeat snapshot.
    std::optional<Optimize_result> result;     ///< Present in done / cancelled.
};

struct Cancel {
    std::uint64_t job_id = 0;
};

struct Cancel_ok {
    std::uint64_t job_id = 0;
    Job_state state = Job_state::queued; ///< State observed after the cancel.
};

/// Daemon-level counters riding next to the router's in stats_ok.
struct Daemon_wire_stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t connections_rejected = 0; ///< Over max_connections.
    std::uint64_t frames_received = 0;
    std::uint64_t protocol_errors = 0; ///< Malformed frames answered with `error`.
    std::uint64_t jobs_submitted = 0;  ///< Wire jobs (batch entries count singly).
    std::uint64_t jobs_retained = 0;   ///< Live entries in the daemon's job table.
    /// Submits answered from the keyed-reply cache (a retry whose original
    /// was already accepted) rather than scheduled again.
    std::uint64_t jobs_deduplicated = 0;
};

struct Stats_ok {
    Router_stats router;
    Daemon_wire_stats daemon;
};

/// metrics has no payload; the reply is the whole process's Prometheus
/// text exposition (Metrics_registry::global().expose() after the daemon
/// refreshes its scrape-time gauges).
struct Metrics_ok {
    std::string exposition;
};

/// Span fetch: by daemon job id (the daemon maps it to the job's trace),
/// by raw trace id, or everything buffered when both are 0. Exactly one of
/// job_id / trace_id should be nonzero otherwise.
struct Trace_request {
    std::uint64_t job_id = 0;
    std::uint64_t trace_id = 0;
};

struct Trace_ok {
    std::uint64_t trace_id = 0; ///< Resolved trace (0 for an all-spans dump).
    std::vector<Trace_span> spans;
};

struct Error_pdu {
    Protocol_error_code code = Protocol_error_code::bad_payload;
    std::string message;
    /// The daemon's verdict on whether resending can help; defaults to
    /// the protocol table when composed via the daemon's error path.
    bool retryable = false;
};

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------
//
// Every decode_* throws Protocol_error{bad_payload} (or a more precise
// code) on malformed input and never reads out of bounds — Byte_reader's
// bounds checks are translated, not propagated raw. Field-count
// static_asserts in protocol.cpp keep these in lockstep with the structs
// they serialise.

std::string encode_hello(const Hello& hello);
Hello decode_hello(std::string_view payload);

std::string encode_hello_ok(const Hello_ok& hello_ok);
Hello_ok decode_hello_ok(std::string_view payload);

std::string encode_submit(const Submit& submit);
Submit decode_submit(std::string_view payload);

std::string encode_submit_ok(const Submit_ok& ok);
Submit_ok decode_submit_ok(std::string_view payload);

std::string encode_batch_submit(const Batch_submit& batch);
Batch_submit decode_batch_submit(std::string_view payload);

std::string encode_batch_ok(const Batch_ok& ok);
Batch_ok decode_batch_ok(std::string_view payload);

std::string encode_poll(const Poll& poll);
Poll decode_poll(std::string_view payload);

std::string encode_poll_ok(const Poll_ok& ok);
Poll_ok decode_poll_ok(std::string_view payload);

std::string encode_cancel(const Cancel& cancel);
Cancel decode_cancel(std::string_view payload);

std::string encode_cancel_ok(const Cancel_ok& ok);
Cancel_ok decode_cancel_ok(std::string_view payload);

std::string encode_stats_ok(const Stats_ok& stats);
Stats_ok decode_stats_ok(std::string_view payload);

std::string encode_metrics_ok(const Metrics_ok& metrics);
Metrics_ok decode_metrics_ok(std::string_view payload);

std::string encode_trace_request(const Trace_request& request);
Trace_request decode_trace_request(std::string_view payload);

std::string encode_trace_ok(const Trace_ok& trace);
Trace_ok decode_trace_ok(std::string_view payload);

std::string encode_error(const Error_pdu& error);
Error_pdu decode_error(std::string_view payload);

/// Shared by submit and batch_submit: an Optimize_request minus its
/// progress callback (which cannot travel), device target included.
void serialise_request(Byte_writer& out, const Optimize_request& request);
Optimize_request deserialise_request(Byte_reader& in);

} // namespace xrl
