#include "net/connection.h"

#if defined(_WIN32)

// Non-POSIX stub: the serving plane targets Linux hosts. Everything that
// would open a socket throws; the rest of the library stays usable.
namespace xrl {

const char* to_string(Net_error_kind kind)
{
    switch (kind) {
    case Net_error_kind::timeout: return "timeout";
    case Net_error_kind::closed: return "closed";
    case Net_error_kind::refused: return "refused";
    case Net_error_kind::failed: return "failed";
    }
    return "?";
}

namespace {
[[noreturn]] void unsupported()
{
    throw Net_error(Net_error_kind::failed, "sockets are not supported on this platform");
}
} // namespace

Connection::Connection(int, const Net_timeouts&) { unsupported(); }
Connection::~Connection() = default;
Connection::Connection(Connection&&) noexcept = default;
Connection& Connection::operator=(Connection&&) noexcept = default;
Connection Connection::connect(const std::string&, std::uint16_t, const Net_timeouts&)
{
    unsupported();
}
void Connection::set_fault_plan(std::shared_ptr<Fault_plan>, std::string) {}
void Connection::send_all(std::string_view) { unsupported(); }
std::string Connection::recv_exact(std::size_t) { unsupported(); }
std::size_t Connection::recv_some(void*, std::size_t) { unsupported(); }
bool Connection::readable(double) { unsupported(); }
void Connection::shutdown_send() {}
void Connection::close() {}

Listener::Listener(const std::string&, std::uint16_t, int) { unsupported(); }
Listener::~Listener() = default;
std::optional<Connection> Listener::accept(const Net_timeouts&) { unsupported(); }
void Listener::close() {}

} // namespace xrl

#else // POSIX

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

namespace xrl {

const char* to_string(Net_error_kind kind)
{
    switch (kind) {
    case Net_error_kind::timeout: return "timeout";
    case Net_error_kind::closed: return "closed";
    case Net_error_kind::refused: return "refused";
    case Net_error_kind::failed: return "failed";
    }
    return "?";
}

namespace {

[[noreturn]] void throw_errno(Net_error_kind kind, const std::string& what)
{
    throw Net_error(kind, what + ": " + std::strerror(errno));
}

timeval to_timeval(double seconds)
{
    timeval tv{};
    if (seconds > 0.0) {
        tv.tv_sec = static_cast<time_t>(seconds);
        tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
    }
    return tv;
}

/// SO_RCVTIMEO / SO_SNDTIMEO; zero timeouts leave the socket fully
/// blocking. Also disables Nagle — the protocol is request/response with
/// small frames, where delayed ACK + Nagle interaction costs 40ms a turn.
void configure_socket(int fd, const Net_timeouts& timeouts)
{
    const timeval read_tv = to_timeval(timeouts.read_seconds);
    const timeval write_tv = to_timeval(timeouts.write_seconds);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &read_tv, sizeof(read_tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &write_tv, sizeof(write_tv));
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in resolve(const std::string& host, std::uint16_t port)
{
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    // Numeric IPv4 only ("127.0.0.1", "0.0.0.0"): the daemon and its
    // clients address each other by IP inside a deployment; name
    // resolution stays out of the transport.
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1)
        throw Net_error(Net_error_kind::failed,
                        "not a numeric IPv4 address: '" + host + "'");
    return address;
}

} // namespace

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

Connection::Connection(int fd, const Net_timeouts& timeouts) : fd_(fd), timeouts_(timeouts)
{
    configure_socket(fd_, timeouts_);
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), timeouts_(other.timeouts_),
      fault_plan_(std::move(other.fault_plan_)), fault_site_(std::move(other.fault_site_))
{
}

Connection& Connection::operator=(Connection&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        timeouts_ = other.timeouts_;
        fault_plan_ = std::move(other.fault_plan_);
        fault_site_ = std::move(other.fault_site_);
    }
    return *this;
}

void Connection::set_fault_plan(std::shared_ptr<Fault_plan> plan, std::string site)
{
    fault_plan_ = std::move(plan);
    fault_site_ = std::move(site);
}

Connection Connection::connect(const std::string& host, std::uint16_t port,
                               const Net_timeouts& timeouts)
{
    const sockaddr_in address = resolve(host, port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno(Net_error_kind::failed, "socket()");

    // Connect with its own deadline: start non-blocking, poll for
    // writability, then restore blocking mode for the data path.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
    if (rc != 0 && errno == EINPROGRESS) {
        pollfd waiter{fd, POLLOUT, 0};
        const int timeout_ms = timeouts.connect_seconds > 0.0
                                   ? static_cast<int>(timeouts.connect_seconds * 1e3)
                                   : -1;
        rc = ::poll(&waiter, 1, timeout_ms);
        if (rc == 0) {
            ::close(fd);
            throw Net_error(Net_error_kind::timeout,
                            "connect to " + host + ":" + std::to_string(port) + " timed out");
        }
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        (void)::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
            ::close(fd);
            errno = soerr;
            throw_errno(soerr == ECONNREFUSED ? Net_error_kind::refused : Net_error_kind::failed,
                        "connect to " + host + ":" + std::to_string(port));
        }
    } else if (rc != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno(saved == ECONNREFUSED ? Net_error_kind::refused : Net_error_kind::failed,
                    "connect to " + host + ":" + std::to_string(port));
    }
    (void)::fcntl(fd, F_SETFL, flags); // back to blocking
    return Connection(fd, timeouts);
}

void Connection::send_all(std::string_view bytes)
{
    if (!valid()) throw Net_error(Net_error_kind::closed, "send on a closed connection");
    std::string corrupted; // backing storage when a fault rewrites the bytes
    if (fault_plan_ != nullptr) {
        double delay_seconds = 0.0;
        switch (fault_plan_->next(fault_site_, &delay_seconds)) {
        case Fault_action::none:
        case Fault_action::fail: // fail targets job execution, not transport
            break;
        case Fault_action::drop:
            // Swallow the frame whole: the peer keeps waiting and its read
            // deadline — not a decode error — reports the loss.
            return;
        case Fault_action::corrupt:
            corrupted.assign(bytes);
            if (!corrupted.empty()) corrupted[corrupted.size() / 2] ^= 0x5a;
            bytes = corrupted;
            break;
        case Fault_action::delay:
            if (delay_seconds > 0.0)
                std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds));
            break;
        }
    }
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process
        // signal — the daemon must survive every client departure.
        const ssize_t n =
            ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            throw Net_error(Net_error_kind::timeout, "send timed out");
        if (errno == EPIPE || errno == ECONNRESET)
            throw Net_error(Net_error_kind::closed, "peer closed the connection during send");
        throw_errno(Net_error_kind::failed, "send()");
    }
}

std::size_t Connection::recv_some(void* destination, std::size_t max)
{
    if (!valid()) throw Net_error(Net_error_kind::closed, "recv on a closed connection");
    for (;;) {
        const ssize_t n = ::recv(fd_, destination, max, 0);
        if (n > 0) return static_cast<std::size_t>(n);
        if (n == 0) return 0; // clean end-of-stream
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            throw Net_error(Net_error_kind::timeout, "recv timed out");
        if (errno == ECONNRESET)
            throw Net_error(Net_error_kind::closed, "peer reset the connection");
        throw_errno(Net_error_kind::failed, "recv()");
    }
}

std::string Connection::recv_exact(std::size_t size)
{
    std::string out(size, '\0');
    std::size_t have = 0;
    while (have < size) {
        const std::size_t n = recv_some(out.data() + have, size - have);
        if (n == 0)
            throw Net_error(Net_error_kind::closed,
                            "peer closed the connection mid-read (" + std::to_string(have) +
                                " of " + std::to_string(size) + " bytes received)");
        have += n;
    }
    return out;
}

bool Connection::readable(double timeout_seconds)
{
    if (!valid()) return false;
    pollfd waiter{fd_, POLLIN, 0};
    const int timeout_ms =
        timeout_seconds > 0.0 ? static_cast<int>(timeout_seconds * 1e3) : 0;
    for (;;) {
        const int rc = ::poll(&waiter, 1, timeout_ms);
        if (rc < 0 && errno == EINTR) continue;
        // POLLHUP/POLLERR count as readable: the next recv reports the
        // condition through the normal error path.
        return rc > 0;
    }
}

void Connection::shutdown_send()
{
    if (valid()) (void)::shutdown(fd_, SHUT_WR);
}

void Connection::close()
{
    if (fd_ >= 0) {
        (void)::close(fd_);
        fd_ = -1;
    }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(const std::string& host, std::uint16_t port, int backlog)
{
    sockaddr_in address = resolve(host, port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno(Net_error_kind::failed, "socket()");
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno(Net_error_kind::failed,
                    "bind to " + host + ":" + std::to_string(port));
    }
    if (::listen(fd_, backlog) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno(Net_error_kind::failed, "listen()");
    }
    // Read back the bound port (resolves port 0 to the kernel's choice).
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
        port_ = ntohs(bound.sin_port);
}

Listener::~Listener()
{
    if (fd_ >= 0) {
        (void)::close(fd_);
        fd_ = -1;
    }
}

std::optional<Connection> Listener::accept(const Net_timeouts& timeouts)
{
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) return Connection(fd, timeouts);
        if (errno == EINTR) continue;
        // close() shut the listening socket down: EINVAL (Linux) or a
        // connection-level error on the dying fd — either way, accepting
        // is over.
        return std::nullopt;
    }
}

void Listener::close()
{
    // Shut down rather than close: wakes a blocked accept() on another
    // thread without freeing the fd number underneath it (the destructor
    // closes after the accept thread has been joined).
    if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

} // namespace xrl

#endif // POSIX
