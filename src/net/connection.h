// Blocking-socket transport for the network serving plane.
//
// The wire protocol (net/protocol.h) needs exactly two primitives — "send
// these bytes or fail loudly" and "give me exactly N bytes or fail loudly"
// — plus bounded waiting, so this layer is deliberately small: a
// `Connection` wraps one connected stream socket with connect/read/write
// timeouts, and a `Listener` accepts them. Everything above the socket —
// framing, checksums, versioning — lives in the protocol layer; everything
// below — partial writes, EINTR retries, poll-based readiness — is hidden
// here.
//
// Failure contract: every operation that cannot complete throws Net_error
// with a typed `kind` (timeout / closed / refused / failed), never returns
// garbage. A clean end-of-stream is only reported where it is legal — at
// the *start* of a read via recv_some() returning zero — so callers can
// tell "peer hung up between frames" (normal) from "peer hung up mid-frame"
// (a protocol violation the framing layer reports as truncation).
//
// POSIX sockets only; on other platforms the constructors throw. The
// serving plane is a Linux daemon — this mirrors the repo's "stub missing
// platforms, never #ifdef the call sites" approach.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/fault_plan.h"

namespace xrl {

/// Transport-level failure taxonomy. `timeout` covers connect, read, and
/// write deadlines; `closed` is a peer reset or mid-operation hangup;
/// `refused` is a failed connect (nothing listening); `failed` is any
/// other socket-layer error (message carries errno text).
enum class Net_error_kind { timeout, closed, refused, failed };

const char* to_string(Net_error_kind kind);

class Net_error : public std::runtime_error {
public:
    Net_error(Net_error_kind kind, const std::string& message)
        : std::runtime_error(message), kind_(kind)
    {
    }

    Net_error_kind kind() const { return kind_; }

private:
    Net_error_kind kind_;
};

/// Per-connection deadlines, all in seconds; 0 disables that deadline.
struct Net_timeouts {
    double connect_seconds = 5.0;
    double read_seconds = 30.0;
    double write_seconds = 30.0;
};

/// One connected stream socket. Move-only; the destructor closes the fd.
class Connection {
public:
    Connection() = default; ///< Invalid (valid() == false) until assigned.

    /// Adopt an already-connected socket (the listener's accept path).
    Connection(int fd, const Net_timeouts& timeouts);

    ~Connection();
    Connection(Connection&& other) noexcept;
    Connection& operator=(Connection&& other) noexcept;
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Connect to host:port within the configured connect timeout. Throws
    /// Net_error (refused / timeout / failed).
    static Connection connect(const std::string& host, std::uint16_t port,
                              const Net_timeouts& timeouts = {});

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Deterministic fault injection on the send path
    /// (support/fault_plan.h): each send_all call consumes one event at
    /// `site`. `drop` discards the bytes (the peer's read times out),
    /// `corrupt` flips one payload byte before sending (the peer sees a
    /// checksum mismatch), `delay` stalls the send first. Tests drive
    /// lost-reply and damaged-frame scenarios through this; production
    /// never sets it.
    void set_fault_plan(std::shared_ptr<Fault_plan> plan, std::string site);

    /// Write every byte or throw (timeout / closed / failed). Handles
    /// partial writes and EINTR internally.
    void send_all(std::string_view bytes);

    /// Read exactly `size` bytes or throw. End-of-stream *anywhere* inside
    /// the span throws Net_error{closed} — callers that must distinguish a
    /// clean boundary hangup read the first byte range via recv_some.
    std::string recv_exact(std::size_t size);

    /// Read 1..max bytes, blocking up to the read timeout. Returns 0 on a
    /// clean end-of-stream (the only non-exceptional EOF in this API).
    std::size_t recv_some(void* destination, std::size_t max);

    /// True when a read would not block, false after `timeout_seconds` of
    /// nothing to read. A hangup/error counts as readable (the next read
    /// reports it properly). Used by the daemon's cooperative session
    /// turns so a pool worker never parks on an idle connection.
    bool readable(double timeout_seconds);

    /// Half-close: no more sends; the peer's next read sees EOF.
    void shutdown_send();

    void close();

private:
    int fd_ = -1;
    Net_timeouts timeouts_;
    std::shared_ptr<Fault_plan> fault_plan_;
    std::string fault_site_;
};

/// A bound, listening socket. close() (or destruction) wakes a blocked
/// accept() on another thread via shutdown — the owner joins its accept
/// thread before the Listener is destroyed, which keeps the fd alive for
/// the duration of any concurrent accept call.
class Listener {
public:
    /// Bind and listen on host:port; port 0 binds an ephemeral port (read
    /// it back via port()). Throws Net_error{failed} when the bind is
    /// refused.
    Listener(const std::string& host, std::uint16_t port, int backlog = 64);

    ~Listener();
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /// The actually-bound port (resolves an ephemeral bind).
    std::uint16_t port() const { return port_; }

    /// Block for the next connection; the returned Connection carries
    /// `timeouts`. nullopt once the listener was close()d — the accept
    /// loop's clean exit signal.
    std::optional<Connection> accept(const Net_timeouts& timeouts = {});

    /// Stop accepting and wake any blocked accept(). Idempotent.
    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace xrl
