// Daemon: the network front of an Optimization_router fleet — the process
// behind the `xrlflowd` binary (tools/xrlflowd.cpp).
//
// Through PR 5 the entire serving stack was in-process; this is the piece
// that lets a deployment's clients reach it. The daemon binds a loopback
// or fleet address, accepts up to `max_connections` concurrent clients,
// and speaks the framed wire protocol (net/protocol.h): every submit /
// batch_submit frame is mapped onto a Job_handle from the owned router,
// polls stream the job's latest progress snapshot and — once terminal —
// its bit-exact serialised result, and stats frames carry the router's
// fleet-wide telemetry (queue depth, in-flight, peaks) plus the daemon's
// own connection counters.
//
// Concurrency model: one dedicated accept thread; connection sessions run
// as cooperative turns on the process-wide Thread_pool (the same pool the
// candidate engines and server workers use). A turn never parks a pool
// worker for long — idle connections are checked with a short readiness
// poll and re-posted, and a poll frame's server-side wait is capped by
// `poll_wait_cap_seconds` — so N idle connections cannot starve the
// searches they are waiting on. The exception is `drain`, which blocks its
// worker until the fleet is idle; an admin mutex admits one drain at a
// time (concurrent drains get a typed `busy` error), so at most one worker
// is ever parked on administration.
//
// Fault tolerance (the record_file contract, applied to the wire): a
// malformed frame — bad magic, flipped checksum bytes, oversized or
// truncated length prefix, unknown type, future version, undecodable
// payload — is answered with a typed `error` PDU and never crashes the
// daemon; when the damage desynchronises the stream (framing errors), the
// connection is closed after the error is sent, and every other client is
// unaffected.
//
// Shutdown: stop() — which the xrlflowd binary invokes on SIGTERM — stops
// accepting, lets in-flight session turns finish, drains the router, and
// (with a state store configured) snapshots warm state to disk, so a
// SIGTERM'd daemon restarts warm.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/connection.h"
#include "net/protocol.h"
#include "serve/router.h"
#include "serve/state_store.h"
#include "support/sync.h"
#include "support/thread_pool.h"

namespace xrl {

struct Daemon_config {
    /// The fleet this daemon fronts. `router.state_store` (or the shared
    /// `state_store` below) gives every shard warm-start persistence.
    Router_config router;

    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; read back via Daemon::port().

    /// Accepted concurrent connections; one over the limit is answered
    /// with a typed `busy` error and closed.
    std::size_t max_connections = 64;

    /// Per-connection transport deadlines.
    Net_timeouts timeouts;

    /// Upper bound on a poll frame's server-side wait for a terminal
    /// state. Small by design: a waiting poll occupies a pool worker, so
    /// clients long-poll in a loop rather than parking the fleet's
    /// threads.
    double poll_wait_cap_seconds = 0.05;

    /// Readiness-poll slice for idle connections between turns.
    double idle_poll_seconds = 0.02;

    /// Frames larger than this are rejected (frame_too_large).
    std::size_t max_frame_payload = protocol_max_payload;

    /// Terminal jobs whose result has been delivered stay pollable until
    /// this many are retained; then the oldest are forgotten (a later poll
    /// answers unknown_job).
    std::size_t retain_terminal_jobs = 1024;

    /// Successful submit/batch replies are remembered by their idempotency
    /// key up to this cap (oldest forgotten first), so a client retrying a
    /// submit whose reply was lost gets the original reply replayed
    /// byte-identically instead of a second search. 0 disables the cache.
    std::size_t retain_request_keys = 1024;

    /// Deterministic fault injection: handed to the router (unless it
    /// brought its own plan, sites "shard/<id>") and to every accepted
    /// connection's send path (site "daemon/send" — one event per sent
    /// frame, so tests can drop or corrupt a specific reply). Tests only.
    std::shared_ptr<Fault_plan> fault_plan;

    /// Convenience alias for `router.state_store`: the warm-start store
    /// shared by the fleet, snapshotted on drain and stop()/SIGTERM.
    std::shared_ptr<State_store> state_store;

    /// Advertised in hello_ok.
    std::string server_name = "xrlflowd";
};

class Daemon {
public:
    /// Binds and starts accepting immediately. Throws Net_error when the
    /// bind fails and std::invalid_argument for a bad router config.
    explicit Daemon(Daemon_config config);

    /// stop(), then tears the fleet down (each shard snapshots).
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// The bound port (resolves an ephemeral request).
    std::uint16_t port() const { return port_; }
    const std::string& host() const { return config_.host; }

    /// Stop accepting, finish in-flight session turns, drain the fleet,
    /// and snapshot warm state. Idempotent; also the SIGTERM path — the
    /// xrlflowd binary translates the signal into this call.
    void stop();

    /// The fleet behind the wire (tests submit directly for parity checks).
    Optimization_router& router() { return router_; }

    Daemon_wire_stats stats() const;

private:
    /// One connected client: its socket, negotiated protocol version, and
    /// whether the hello handshake completed.
    struct Session {
        Connection connection;
        std::uint8_t version = protocol_version;
        bool negotiated = false;
        std::uint64_t id = 0;
    };

    void accept_loop();
    void start_session(Connection connection);
    void session_turn(const std::shared_ptr<Session>& session);
    void finish_session(const std::shared_ptr<Session>& session);

    /// Handle one decoded frame; returns false when the connection must
    /// close (hello violation or reply-send failure). Payload-level
    /// failures are answered with a typed error PDU and keep the
    /// connection — the framing is still trustworthy.
    bool handle_frame(const std::shared_ptr<Session>& session, const Frame& frame);

    bool handle_hello(const std::shared_ptr<Session>& session, const Frame& frame);

    /// Route one post-handshake PDU to its handler. Throws Protocol_error
    /// (typed) for everything the protocol can reject.
    struct Reply {
        Pdu_type type = Pdu_type::error;
        std::string payload;
    };
    Reply dispatch(const Frame& frame);

    /// Route one submission to the fleet, translating the router's
    /// exceptions into typed Protocol_errors.
    Job_handle routed_submit(const std::string& backend, const Graph& graph,
                             const Optimize_request& request, const Submit_options& options);

    Reply handle_submit(std::string_view payload);
    Reply handle_batch(std::string_view payload);
    Reply handle_poll(std::string_view payload);
    Reply handle_cancel(std::string_view payload);
    Reply handle_stats();
    Reply handle_drain();
    Reply handle_metrics();
    Reply handle_trace(std::string_view payload);

    /// Send an error PDU, best-effort (a dead peer is already gone).
    void send_error(Session& session, Protocol_error_code code, const std::string& message);

    /// Register a routed job under a fresh wire id.
    Submit_ok register_job(Job_handle handle);

    /// Keyed-reply cache: the stored reply for this idempotency key, if
    /// the daemon already answered it (counts a deduplication).
    std::optional<Reply> find_keyed_reply(std::uint64_t request_key);

    /// Remember a successful reply under its idempotency key (no-op for
    /// key 0), evicting the oldest beyond the retention cap.
    void remember_keyed_reply(std::uint64_t request_key, const Reply& reply);

    /// Mark a terminal job's result as delivered and evict the oldest
    /// delivered entries beyond the retention cap.
    void note_terminal_delivered(std::uint64_t job_id);

    Daemon_config config_;
    Optimization_router router_;
    Listener listener_;
    std::uint16_t port_ = 0;
    Thread_pool* pool_;
    std::thread accept_thread_;

    mutable Mutex mutex_{"daemon", Lock_rank::daemon};
    Cond_var sessions_done_;
    bool stopping_ XRL_GUARDED_BY(mutex_) = false;
    std::size_t active_sessions_ XRL_GUARDED_BY(mutex_) = 0;
    std::uint64_t next_session_id_ XRL_GUARDED_BY(mutex_) = 1;
    std::uint64_t next_job_id_ XRL_GUARDED_BY(mutex_) = 1;
    /// Wire job id -> the handle the protocol polls/cancels through.
    struct Job_entry {
        Job_handle handle;
        bool terminal_delivered = false;
        std::uint64_t trace_id = 0; ///< Client-stamped; `trace` by job id resolves here.
    };
    std::unordered_map<std::uint64_t, Job_entry> jobs_ XRL_GUARDED_BY(mutex_);
    /// Retention/eviction order.
    std::deque<std::uint64_t> delivered_order_ XRL_GUARDED_BY(mutex_);
    /// Idempotency key -> the reply originally sent for it.
    std::unordered_map<std::uint64_t, Reply> keyed_replies_ XRL_GUARDED_BY(mutex_);
    /// Key retention/eviction order.
    std::deque<std::uint64_t> keyed_order_ XRL_GUARDED_BY(mutex_);
    Daemon_wire_stats stats_ XRL_GUARDED_BY(mutex_);

    /// One drain at a time; losers get `busy`. A mutual-exclusion token
    /// (guards no fields) taken with Try_lock from session turns; ranked
    /// below everything because drain holds it across router_.drain() and
    /// save_state().
    Mutex admin_mutex_{"daemon_admin", Lock_rank::daemon_admin};
};

} // namespace xrl
