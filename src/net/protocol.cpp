#include "net/protocol.h"

#include <bit>
#include <limits>

#include "core/result_serial.h"
#include "ir/graph_io.h"
#include "support/fnv.h"
#include "support/reflect.h"

namespace xrl {

// The wire is little-endian; Byte_writer/Byte_reader compose in host
// order, so a big-endian build would need swapping shims here. Every
// deployment target today is little-endian — fail the build loudly rather
// than corrupt frames silently if that ever changes.
static_assert(std::endian::native == std::endian::little,
              "the xrlflow wire protocol is little-endian; add byte swapping to "
              "net/protocol.cpp before building for a big-endian target");

// Drift guards: adding a field to any serialised struct must update the
// codec below *and* these counts (and PROTOCOL.md, and the version rules
// if the layout changed).
static_assert(aggregate_field_count<Optimize_request> == 6,
              "Optimize_request grew a field: update serialise_request / "
              "deserialise_request (the progress callback stays unserialised) and PROTOCOL.md");
static_assert(aggregate_field_count<Device_profile> == 7,
              "Device_profile grew a field: update the device codec in net/protocol.cpp");
static_assert(aggregate_field_count<Optimize_progress> == 4,
              "Optimize_progress grew a field: update the progress codec in net/protocol.cpp");
static_assert(aggregate_field_count<Backend_stats> == 5,
              "Backend_stats grew a field: update the stats codec in net/protocol.cpp");
static_assert(aggregate_field_count<Server_stats> == 18,
              "Server_stats grew a field: update the stats codec in net/protocol.cpp");
static_assert(aggregate_field_count<Router_stats> == 11,
              "Router_stats grew a field: update the stats codec in net/protocol.cpp");
static_assert(aggregate_field_count<Daemon_wire_stats> == 8,
              "Daemon_wire_stats grew a field: update the stats codec in net/protocol.cpp");
static_assert(aggregate_field_count<Shard_health_snapshot> == 8,
              "Shard_health_snapshot grew a field: update the health codec in net/protocol.cpp");
static_assert(aggregate_field_count<Trace_span> == 8,
              "Trace_span grew a field: update the trace codec in net/protocol.cpp");

const char* to_string(Pdu_type type)
{
    switch (type) {
    case Pdu_type::hello: return "hello";
    case Pdu_type::hello_ok: return "hello_ok";
    case Pdu_type::submit: return "submit";
    case Pdu_type::submit_ok: return "submit_ok";
    case Pdu_type::batch_submit: return "batch_submit";
    case Pdu_type::batch_ok: return "batch_ok";
    case Pdu_type::poll: return "poll";
    case Pdu_type::poll_ok: return "poll_ok";
    case Pdu_type::cancel: return "cancel";
    case Pdu_type::cancel_ok: return "cancel_ok";
    case Pdu_type::stats: return "stats";
    case Pdu_type::stats_ok: return "stats_ok";
    case Pdu_type::drain: return "drain";
    case Pdu_type::drain_ok: return "drain_ok";
    case Pdu_type::error: return "error";
    case Pdu_type::metrics: return "metrics";
    case Pdu_type::metrics_ok: return "metrics_ok";
    case Pdu_type::trace: return "trace";
    case Pdu_type::trace_ok: return "trace_ok";
    }
    return "?";
}

const char* to_string(Protocol_error_code code)
{
    switch (code) {
    case Protocol_error_code::bad_magic: return "bad_magic";
    case Protocol_error_code::bad_checksum: return "bad_checksum";
    case Protocol_error_code::truncated: return "truncated";
    case Protocol_error_code::frame_too_large: return "frame_too_large";
    case Protocol_error_code::unsupported_version: return "unsupported_version";
    case Protocol_error_code::unknown_type: return "unknown_type";
    case Protocol_error_code::bad_payload: return "bad_payload";
    case Protocol_error_code::invalid_request: return "invalid_request";
    case Protocol_error_code::unknown_job: return "unknown_job";
    case Protocol_error_code::busy: return "busy";
    case Protocol_error_code::shutting_down: return "shutting_down";
    case Protocol_error_code::io: return "io";
    }
    return "?";
}

bool retryable(Protocol_error_code code)
{
    switch (code) {
    // Transient: framing damage heals on a fresh connection, load states
    // drain, transport hiccups pass.
    case Protocol_error_code::bad_magic:
    case Protocol_error_code::bad_checksum:
    case Protocol_error_code::truncated:
    case Protocol_error_code::busy:
    case Protocol_error_code::shutting_down:
    case Protocol_error_code::io:
        return true;
    // Permanent: the same bytes earn the same rejection.
    case Protocol_error_code::frame_too_large:
    case Protocol_error_code::unsupported_version:
    case Protocol_error_code::unknown_type:
    case Protocol_error_code::bad_payload:
    case Protocol_error_code::invalid_request:
    case Protocol_error_code::unknown_job:
        return false;
    }
    return false;
}

namespace {

bool known_pdu_type(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(Pdu_type::hello) &&
           raw <= static_cast<std::uint8_t>(Pdu_type::trace_ok);
}

/// Every decoder runs under this: Byte_reader's bounds-check throws (plain
/// std::runtime_error) become typed bad_payload protocol errors, so a
/// damaged payload is a diagnosable rejection, never a crash or a raw
/// internal error leaking to the wire.
template <class Decode>
auto guarded_decode(const char* what, Decode&& decode)
{
    try {
        return decode();
    } catch (const Protocol_error&) {
        throw; // already typed — keep the precise code
    } catch (const std::exception& error) {
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string(what) + ": " + error.what());
    }
}

/// Trailing bytes mean the payload was composed by a different (newer)
/// codec than the type byte claims — reject rather than half-read.
void expect_consumed(const Byte_reader& in, const char* what)
{
    if (!in.at_end())
        throw Protocol_error(Protocol_error_code::bad_payload,
                             std::string(what) + ": " + std::to_string(in.remaining()) +
                                 " trailing bytes after payload");
}

std::uint8_t state_to_wire(Job_state state) { return static_cast<std::uint8_t>(state); }

Job_state state_from_wire(std::uint8_t raw)
{
    if (raw > static_cast<std::uint8_t>(Job_state::failed))
        throw Protocol_error(Protocol_error_code::bad_payload,
                             "unknown job state " + std::to_string(raw));
    return static_cast<Job_state>(raw);
}

// -- device / request -------------------------------------------------------

void serialise_profile(Byte_writer& out, const Device_profile& profile)
{
    out.str(profile.name);
    out.f64(profile.flops_per_ms);
    out.f64(profile.bytes_per_ms);
    out.f64(profile.kernel_launch_ms);
    out.f64(profile.scheduler_overhead_ms);
    out.f64(profile.measurement_noise);
    out.f64(profile.utilisation_knee_flops);
}

Device_profile deserialise_profile(Byte_reader& in)
{
    Device_profile profile;
    profile.name = in.str();
    profile.flops_per_ms = in.f64();
    profile.bytes_per_ms = in.f64();
    profile.kernel_launch_ms = in.f64();
    profile.scheduler_overhead_ms = in.f64();
    profile.measurement_noise = in.f64();
    profile.utilisation_knee_flops = in.f64();
    return profile;
}

void serialise_progress(Byte_writer& out, const Optimize_progress& progress)
{
    out.str(progress.backend);
    out.i32(progress.step);
    out.f64(progress.best_ms);
    out.f64(progress.elapsed_seconds);
}

Optimize_progress deserialise_progress(Byte_reader& in)
{
    Optimize_progress progress;
    progress.backend = in.str();
    progress.step = in.i32();
    progress.best_ms = in.f64();
    progress.elapsed_seconds = in.f64();
    return progress;
}

// -- stats ------------------------------------------------------------------

void serialise_backend_stats(Byte_writer& out, const Backend_stats& stats)
{
    out.u64(stats.submitted);
    out.u64(stats.completed);
    out.u64(stats.cancelled);
    out.u64(stats.failed);
    out.f64(stats.busy_seconds);
}

Backend_stats deserialise_backend_stats(Byte_reader& in)
{
    Backend_stats stats;
    stats.submitted = in.u64();
    stats.completed = in.u64();
    stats.cancelled = in.u64();
    stats.failed = in.u64();
    stats.busy_seconds = in.f64();
    return stats;
}

void serialise_server_stats(Byte_writer& out, const Server_stats& stats)
{
    out.u64(stats.submitted);
    out.u64(stats.coalesced);
    out.u64(stats.rejected);
    out.u64(stats.shed);
    out.u64(stats.completed);
    out.u64(stats.cancelled);
    out.u64(stats.failed);
    out.u64(stats.cache_hits);
    out.u64(stats.queue_depth);
    out.u64(stats.running);
    out.u64(stats.inflight);
    out.u64(stats.peak_queue_depth);
    out.u64(stats.peak_running);
    out.f64(stats.p50_latency_ms);
    out.f64(stats.p95_latency_ms);
    out.f64(stats.uptime_seconds);
    out.u64(stats.snapshot_seq);
    out.u32(static_cast<std::uint32_t>(stats.backends.size()));
    for (const auto& [backend, per_backend] : stats.backends) {
        out.str(backend);
        serialise_backend_stats(out, per_backend);
    }
}

void serialise_health(Byte_writer& out, const Shard_health_snapshot& health)
{
    out.u64(health.stable_id);
    out.u8(static_cast<std::uint8_t>(health.state));
    out.u8(health.draining ? 1 : 0);
    out.u32(health.consecutive_failures);
    out.u64(health.successes);
    out.u64(health.failures);
    out.u64(health.trips);
    out.u64(health.probes);
}

Shard_health_snapshot deserialise_health(Byte_reader& in)
{
    Shard_health_snapshot health;
    health.stable_id = in.u64();
    const std::uint8_t raw_state = in.u8();
    if (raw_state > static_cast<std::uint8_t>(Breaker_state::half_open))
        throw Protocol_error(Protocol_error_code::bad_payload,
                             "unknown breaker state " + std::to_string(raw_state));
    health.state = static_cast<Breaker_state>(raw_state);
    health.draining = in.u8() != 0;
    health.consecutive_failures = in.u32();
    health.successes = in.u64();
    health.failures = in.u64();
    health.trips = in.u64();
    health.probes = in.u64();
    return health;
}

Server_stats deserialise_server_stats(Byte_reader& in)
{
    Server_stats stats;
    stats.submitted = in.u64();
    stats.coalesced = in.u64();
    stats.rejected = in.u64();
    stats.shed = in.u64();
    stats.completed = in.u64();
    stats.cancelled = in.u64();
    stats.failed = in.u64();
    stats.cache_hits = in.u64();
    stats.queue_depth = static_cast<std::size_t>(in.u64());
    stats.running = static_cast<std::size_t>(in.u64());
    stats.inflight = static_cast<std::size_t>(in.u64());
    stats.peak_queue_depth = static_cast<std::size_t>(in.u64());
    stats.peak_running = static_cast<std::size_t>(in.u64());
    stats.p50_latency_ms = in.f64();
    stats.p95_latency_ms = in.f64();
    stats.uptime_seconds = in.f64();
    stats.snapshot_seq = in.u64();
    const std::uint32_t backend_count = in.u32();
    in.expect_items(backend_count, sizeof(std::uint64_t));
    for (std::uint32_t i = 0; i < backend_count; ++i) {
        std::string backend = in.str();
        stats.backends[std::move(backend)] = deserialise_backend_stats(in);
    }
    return stats;
}

} // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string encode_frame(std::uint8_t version, Pdu_type type, std::string_view payload)
{
    Byte_writer out;
    out.u32(protocol_magic);
    out.u8(version);
    out.u8(static_cast<std::uint8_t>(type));
    out.u32(static_cast<std::uint32_t>(payload.size()));
    std::string bytes = out.take();
    bytes.append(payload.data(), payload.size());
    Byte_writer trailer;
    trailer.u64(fnv1a_bytes(fnv1a_offset, bytes));
    bytes += trailer.take();
    return bytes;
}

Frame decode_frame(std::string_view bytes, std::size_t max_payload)
{
    if (bytes.size() < protocol_header_size + protocol_checksum_size)
        throw Protocol_error(Protocol_error_code::truncated,
                             "frame shorter than header + checksum (" +
                                 std::to_string(bytes.size()) + " bytes)");
    Byte_reader header(bytes.substr(0, protocol_header_size));
    if (header.u32() != protocol_magic)
        throw Protocol_error(Protocol_error_code::bad_magic,
                             "frame does not start with the XRLF magic");
    Frame frame;
    frame.version = header.u8();
    const std::uint8_t raw_type = header.u8();
    const std::uint32_t payload_size = header.u32();
    if (payload_size > max_payload)
        throw Protocol_error(Protocol_error_code::frame_too_large,
                             "frame payload of " + std::to_string(payload_size) +
                                 " bytes exceeds the cap of " + std::to_string(max_payload));
    if (bytes.size() != protocol_header_size + payload_size + protocol_checksum_size)
        throw Protocol_error(Protocol_error_code::truncated,
                             "frame length prefix says " + std::to_string(payload_size) +
                                 " payload bytes but " +
                                 std::to_string(bytes.size() - protocol_header_size -
                                                protocol_checksum_size) +
                                 " are present");
    const std::size_t body_end = protocol_header_size + payload_size;
    Byte_reader trailer(bytes.substr(body_end, protocol_checksum_size));
    if (trailer.u64() != fnv1a_bytes(fnv1a_offset, bytes.substr(0, body_end)))
        throw Protocol_error(Protocol_error_code::bad_checksum,
                             "frame checksum mismatch (flipped bytes in transit?)");
    // Checked *after* the checksum: a frame that hashes clean but names an
    // unknown type really is from a future speaker, not damage.
    if (!known_pdu_type(raw_type))
        throw Protocol_error(Protocol_error_code::unknown_type,
                             "unknown PDU type " + std::to_string(raw_type));
    frame.type = static_cast<Pdu_type>(raw_type);
    frame.payload.assign(bytes.data() + protocol_header_size, payload_size);
    return frame;
}

void write_frame(Connection& connection, std::uint8_t version, Pdu_type type,
                 std::string_view payload)
{
    connection.send_all(encode_frame(version, type, payload));
}

std::optional<Frame> read_frame(Connection& connection, std::size_t max_payload)
{
    // First byte separately: EOF here is a clean between-frames hangup,
    // EOF anywhere later is truncation.
    char first = 0;
    if (connection.recv_some(&first, 1) == 0) return std::nullopt;
    std::string bytes(1, first);
    try {
        bytes += connection.recv_exact(protocol_header_size - 1);
    } catch (const Net_error& error) {
        if (error.kind() == Net_error_kind::closed)
            throw Protocol_error(Protocol_error_code::truncated,
                                 std::string("stream ended inside a frame header: ") +
                                     error.what());
        throw;
    }

    // Validate the header before trusting the length prefix with an
    // allocation or a long read.
    Byte_reader header(bytes);
    if (header.u32() != protocol_magic)
        throw Protocol_error(Protocol_error_code::bad_magic,
                             "frame does not start with the XRLF magic");
    (void)header.u8(); // version — checked by decode_frame / the session layer
    (void)header.u8(); // type — ditto
    const std::uint32_t payload_size = header.u32();
    if (payload_size > max_payload)
        throw Protocol_error(Protocol_error_code::frame_too_large,
                             "frame payload of " + std::to_string(payload_size) +
                                 " bytes exceeds the cap of " + std::to_string(max_payload));
    try {
        bytes += connection.recv_exact(payload_size + protocol_checksum_size);
    } catch (const Net_error& error) {
        if (error.kind() == Net_error_kind::closed)
            throw Protocol_error(Protocol_error_code::truncated,
                                 std::string("stream ended inside a frame body: ") +
                                     error.what());
        throw;
    }
    return decode_frame(bytes, max_payload);
}

// ---------------------------------------------------------------------------
// Request codec (shared by submit and batch_submit)
// ---------------------------------------------------------------------------

void serialise_request(Byte_writer& out, const Optimize_request& request)
{
    out.f64(request.time_budget_seconds);
    out.i32(request.iteration_budget);
    out.u64(request.seed);
    out.u8(request.deterministic ? 1 : 0);
    out.str(request.device.name);
    out.u8(request.device.profile.has_value() ? 1 : 0);
    if (request.device.profile.has_value()) serialise_profile(out, *request.device.profile);
    // request.on_progress deliberately not serialised: callables cannot
    // travel; remote progress is served through the poll PDU instead.
}

Optimize_request deserialise_request(Byte_reader& in)
{
    Optimize_request request;
    request.time_budget_seconds = in.f64();
    request.iteration_budget = in.i32();
    request.seed = in.u64();
    request.deterministic = in.u8() != 0;
    request.device.name = in.str();
    if (in.u8() != 0) request.device.profile = deserialise_profile(in);
    return request;
}

// ---------------------------------------------------------------------------
// PDU codecs
// ---------------------------------------------------------------------------

std::string encode_hello(const Hello& hello)
{
    Byte_writer out;
    out.u8(hello.proposed_version);
    out.str(hello.client_name);
    return out.take();
}

Hello decode_hello(std::string_view payload)
{
    return guarded_decode("hello", [&] {
        Byte_reader in(payload);
        Hello hello;
        hello.proposed_version = in.u8();
        hello.client_name = in.str();
        expect_consumed(in, "hello");
        return hello;
    });
}

std::string encode_hello_ok(const Hello_ok& hello_ok)
{
    Byte_writer out;
    out.u8(hello_ok.negotiated_version);
    out.u8(hello_ok.server_protocol_version);
    out.str(hello_ok.server_name);
    out.u32(hello_ok.shard_count);
    out.u32(static_cast<std::uint32_t>(hello_ok.backends.size()));
    for (const std::string& backend : hello_ok.backends) out.str(backend);
    return out.take();
}

Hello_ok decode_hello_ok(std::string_view payload)
{
    return guarded_decode("hello_ok", [&] {
        Byte_reader in(payload);
        Hello_ok hello_ok;
        hello_ok.negotiated_version = in.u8();
        hello_ok.server_protocol_version = in.u8();
        hello_ok.server_name = in.str();
        hello_ok.shard_count = in.u32();
        const std::uint32_t backend_count = in.u32();
        in.expect_items(backend_count, sizeof(std::uint64_t));
        hello_ok.backends.reserve(backend_count);
        for (std::uint32_t i = 0; i < backend_count; ++i) hello_ok.backends.push_back(in.str());
        expect_consumed(in, "hello_ok");
        return hello_ok;
    });
}

std::string encode_submit(const Submit& submit)
{
    Byte_writer out;
    out.str(submit.backend);
    serialise_request(out, submit.request);
    out.i32(submit.priority);
    out.f64(submit.deadline_seconds);
    out.u64(submit.request_key);
    out.u64(submit.trace_id);
    out.u64(submit.parent_span);
    serialise_graph_binary(out, submit.graph);
    return out.take();
}

Submit decode_submit(std::string_view payload)
{
    return guarded_decode("submit", [&] {
        Byte_reader in(payload);
        Submit submit;
        submit.backend = in.str();
        submit.request = deserialise_request(in);
        submit.priority = in.i32();
        submit.deadline_seconds = in.f64();
        submit.request_key = in.u64();
        submit.trace_id = in.u64();
        submit.parent_span = in.u64();
        submit.graph = deserialise_graph_binary(in);
        expect_consumed(in, "submit");
        return submit;
    });
}

std::string encode_submit_ok(const Submit_ok& ok)
{
    Byte_writer out;
    out.u64(ok.job_id);
    out.u8(ok.coalesced ? 1 : 0);
    return out.take();
}

Submit_ok decode_submit_ok(std::string_view payload)
{
    return guarded_decode("submit_ok", [&] {
        Byte_reader in(payload);
        Submit_ok ok;
        ok.job_id = in.u64();
        ok.coalesced = in.u8() != 0;
        expect_consumed(in, "submit_ok");
        return ok;
    });
}

std::string encode_batch_submit(const Batch_submit& batch)
{
    Byte_writer out;
    out.u32(static_cast<std::uint32_t>(batch.entries.size()));
    for (const Batch_submit::Entry& entry : batch.entries) {
        out.str(entry.backend);
        serialise_request(out, entry.request);
        serialise_graph_binary(out, entry.graph);
    }
    out.f64(batch.budget_seconds);
    out.f64(batch.deadline_seconds);
    out.i32(batch.priority);
    out.u64(batch.request_key);
    out.u64(batch.trace_id);
    out.u64(batch.parent_span);
    return out.take();
}

Batch_submit decode_batch_submit(std::string_view payload)
{
    return guarded_decode("batch_submit", [&] {
        Byte_reader in(payload);
        Batch_submit batch;
        const std::uint32_t entry_count = in.u32();
        in.expect_items(entry_count, sizeof(std::uint64_t));
        batch.entries.reserve(entry_count);
        for (std::uint32_t i = 0; i < entry_count; ++i) {
            Batch_submit::Entry entry;
            entry.backend = in.str();
            entry.request = deserialise_request(in);
            entry.graph = deserialise_graph_binary(in);
            batch.entries.push_back(std::move(entry));
        }
        batch.budget_seconds = in.f64();
        batch.deadline_seconds = in.f64();
        batch.priority = in.i32();
        batch.request_key = in.u64();
        batch.trace_id = in.u64();
        batch.parent_span = in.u64();
        expect_consumed(in, "batch_submit");
        return batch;
    });
}

std::string encode_batch_ok(const Batch_ok& ok)
{
    Byte_writer out;
    out.u32(static_cast<std::uint32_t>(ok.jobs.size()));
    for (const Submit_ok& job : ok.jobs) {
        out.u64(job.job_id);
        out.u8(job.coalesced ? 1 : 0);
    }
    return out.take();
}

Batch_ok decode_batch_ok(std::string_view payload)
{
    return guarded_decode("batch_ok", [&] {
        Byte_reader in(payload);
        Batch_ok ok;
        const std::uint32_t count = in.u32();
        in.expect_items(count, sizeof(std::uint64_t) + 1);
        ok.jobs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            Submit_ok job;
            job.job_id = in.u64();
            job.coalesced = in.u8() != 0;
            ok.jobs.push_back(job);
        }
        expect_consumed(in, "batch_ok");
        return ok;
    });
}

std::string encode_poll(const Poll& poll)
{
    Byte_writer out;
    out.u64(poll.job_id);
    out.f64(poll.wait_seconds);
    return out.take();
}

Poll decode_poll(std::string_view payload)
{
    return guarded_decode("poll", [&] {
        Byte_reader in(payload);
        Poll poll;
        poll.job_id = in.u64();
        poll.wait_seconds = in.f64();
        expect_consumed(in, "poll");
        return poll;
    });
}

std::string encode_poll_ok(const Poll_ok& ok)
{
    Byte_writer out;
    out.u64(ok.job_id);
    out.u8(state_to_wire(ok.state));
    out.str(ok.message);
    out.u8(ok.progress.has_value() ? 1 : 0);
    if (ok.progress.has_value()) serialise_progress(out, *ok.progress);
    out.u8(ok.result.has_value() ? 1 : 0);
    if (ok.result.has_value()) serialise_result(out, *ok.result);
    return out.take();
}

Poll_ok decode_poll_ok(std::string_view payload)
{
    return guarded_decode("poll_ok", [&] {
        Byte_reader in(payload);
        Poll_ok ok;
        ok.job_id = in.u64();
        ok.state = state_from_wire(in.u8());
        ok.message = in.str();
        if (in.u8() != 0) ok.progress = deserialise_progress(in);
        if (in.u8() != 0) ok.result = deserialise_result(in);
        expect_consumed(in, "poll_ok");
        return ok;
    });
}

std::string encode_cancel(const Cancel& cancel)
{
    Byte_writer out;
    out.u64(cancel.job_id);
    return out.take();
}

Cancel decode_cancel(std::string_view payload)
{
    return guarded_decode("cancel", [&] {
        Byte_reader in(payload);
        Cancel cancel;
        cancel.job_id = in.u64();
        expect_consumed(in, "cancel");
        return cancel;
    });
}

std::string encode_cancel_ok(const Cancel_ok& ok)
{
    Byte_writer out;
    out.u64(ok.job_id);
    out.u8(state_to_wire(ok.state));
    return out.take();
}

Cancel_ok decode_cancel_ok(std::string_view payload)
{
    return guarded_decode("cancel_ok", [&] {
        Byte_reader in(payload);
        Cancel_ok ok;
        ok.job_id = in.u64();
        ok.state = state_from_wire(in.u8());
        expect_consumed(in, "cancel_ok");
        return ok;
    });
}

std::string encode_stats_ok(const Stats_ok& stats)
{
    Byte_writer out;
    out.u64(stats.router.submitted);
    out.u64(stats.router.affinity_routed);
    out.u64(stats.router.hash_routed);
    out.u64(stats.router.probe_routed);
    out.u64(stats.router.breaker_rerouted);
    out.f64(stats.router.uptime_seconds);
    out.u64(stats.router.snapshot_seq);
    serialise_server_stats(out, stats.router.total);
    out.u32(static_cast<std::uint32_t>(stats.router.shards.size()));
    for (const Server_stats& shard : stats.router.shards) serialise_server_stats(out, shard);
    out.u32(static_cast<std::uint32_t>(stats.router.routed_to.size()));
    for (const std::uint64_t routed : stats.router.routed_to) out.u64(routed);
    out.u32(static_cast<std::uint32_t>(stats.router.health.size()));
    for (const Shard_health_snapshot& health : stats.router.health)
        serialise_health(out, health);
    out.u64(stats.daemon.connections_accepted);
    out.u64(stats.daemon.connections_active);
    out.u64(stats.daemon.connections_rejected);
    out.u64(stats.daemon.frames_received);
    out.u64(stats.daemon.protocol_errors);
    out.u64(stats.daemon.jobs_submitted);
    out.u64(stats.daemon.jobs_retained);
    out.u64(stats.daemon.jobs_deduplicated);
    return out.take();
}

Stats_ok decode_stats_ok(std::string_view payload)
{
    return guarded_decode("stats_ok", [&] {
        Byte_reader in(payload);
        Stats_ok stats;
        stats.router.submitted = in.u64();
        stats.router.affinity_routed = in.u64();
        stats.router.hash_routed = in.u64();
        stats.router.probe_routed = in.u64();
        stats.router.breaker_rerouted = in.u64();
        stats.router.uptime_seconds = in.f64();
        stats.router.snapshot_seq = in.u64();
        stats.router.total = deserialise_server_stats(in);
        const std::uint32_t shard_count = in.u32();
        in.expect_items(shard_count, 15 * sizeof(std::uint64_t));
        stats.router.shards.reserve(shard_count);
        for (std::uint32_t i = 0; i < shard_count; ++i)
            stats.router.shards.push_back(deserialise_server_stats(in));
        const std::uint32_t routed_count = in.u32();
        in.expect_items(routed_count, sizeof(std::uint64_t));
        stats.router.routed_to.reserve(routed_count);
        for (std::uint32_t i = 0; i < routed_count; ++i)
            stats.router.routed_to.push_back(in.u64());
        const std::uint32_t health_count = in.u32();
        // Per-entry wire size: u64 id + u8 state + u8 draining + u32 + 4×u64.
        in.expect_items(health_count, 8 + 1 + 1 + 4 + 4 * 8);
        stats.router.health.reserve(health_count);
        for (std::uint32_t i = 0; i < health_count; ++i)
            stats.router.health.push_back(deserialise_health(in));
        stats.daemon.connections_accepted = in.u64();
        stats.daemon.connections_active = in.u64();
        stats.daemon.connections_rejected = in.u64();
        stats.daemon.frames_received = in.u64();
        stats.daemon.protocol_errors = in.u64();
        stats.daemon.jobs_submitted = in.u64();
        stats.daemon.jobs_retained = in.u64();
        stats.daemon.jobs_deduplicated = in.u64();
        expect_consumed(in, "stats_ok");
        return stats;
    });
}

std::string encode_metrics_ok(const Metrics_ok& metrics)
{
    Byte_writer out;
    out.str(metrics.exposition);
    return out.take();
}

Metrics_ok decode_metrics_ok(std::string_view payload)
{
    return guarded_decode("metrics_ok", [&] {
        Byte_reader in(payload);
        Metrics_ok metrics;
        metrics.exposition = in.str();
        expect_consumed(in, "metrics_ok");
        return metrics;
    });
}

std::string encode_trace_request(const Trace_request& request)
{
    Byte_writer out;
    out.u64(request.job_id);
    out.u64(request.trace_id);
    return out.take();
}

Trace_request decode_trace_request(std::string_view payload)
{
    return guarded_decode("trace", [&] {
        Byte_reader in(payload);
        Trace_request request;
        request.job_id = in.u64();
        request.trace_id = in.u64();
        expect_consumed(in, "trace");
        return request;
    });
}

std::string encode_trace_ok(const Trace_ok& trace)
{
    Byte_writer out;
    out.u64(trace.trace_id);
    out.u32(static_cast<std::uint32_t>(trace.spans.size()));
    for (const Trace_span& span : trace.spans) {
        out.u64(span.trace_id);
        out.u64(span.span_id);
        out.u64(span.parent_span);
        out.str(span.name);
        out.u64(span.thread_id);
        out.u64(span.start_us);
        out.u64(span.duration_us);
        out.u32(static_cast<std::uint32_t>(span.annotations.size()));
        for (const auto& [key, value] : span.annotations) {
            out.str(key);
            out.str(value);
        }
    }
    return out.take();
}

Trace_ok decode_trace_ok(std::string_view payload)
{
    return guarded_decode("trace_ok", [&] {
        Byte_reader in(payload);
        Trace_ok trace;
        trace.trace_id = in.u64();
        const std::uint32_t span_count = in.u32();
        // Minimum wire size per span: 6×u64 + 2 length-prefixed counts.
        in.expect_items(span_count, 6 * sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t));
        trace.spans.reserve(span_count);
        for (std::uint32_t i = 0; i < span_count; ++i) {
            Trace_span span;
            span.trace_id = in.u64();
            span.span_id = in.u64();
            span.parent_span = in.u64();
            span.name = in.str();
            span.thread_id = in.u64();
            span.start_us = in.u64();
            span.duration_us = in.u64();
            const std::uint32_t annotation_count = in.u32();
            in.expect_items(annotation_count, 2 * sizeof(std::uint32_t));
            span.annotations.reserve(annotation_count);
            for (std::uint32_t k = 0; k < annotation_count; ++k) {
                std::string key = in.str();
                std::string value = in.str();
                span.annotations.emplace_back(std::move(key), std::move(value));
            }
            trace.spans.push_back(std::move(span));
        }
        expect_consumed(in, "trace_ok");
        return trace;
    });
}

std::string encode_error(const Error_pdu& error)
{
    Byte_writer out;
    out.u32(static_cast<std::uint32_t>(error.code));
    out.str(error.message);
    out.u8(error.retryable ? 1 : 0);
    return out.take();
}

Error_pdu decode_error(std::string_view payload)
{
    return guarded_decode("error", [&] {
        Byte_reader in(payload);
        Error_pdu error;
        const std::uint32_t raw = in.u32();
        if (raw < static_cast<std::uint32_t>(Protocol_error_code::bad_magic) ||
            raw > static_cast<std::uint32_t>(Protocol_error_code::io))
            throw Protocol_error(Protocol_error_code::bad_payload,
                                 "unknown protocol error code " + std::to_string(raw));
        error.code = static_cast<Protocol_error_code>(raw);
        error.message = in.str();
        error.retryable = in.u8() != 0;
        expect_consumed(in, "error");
        return error;
    });
}

} // namespace xrl
