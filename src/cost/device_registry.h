// Device registry: the fleet's accelerators, as named profiles with
// lazily-built per-device cost models and end-to-end simulators.
//
// X-RLflow's reward is the cost-model/simulator delta *on a specific
// device* (§4.2: "the cost modelling depends on the execution hardware"),
// so one serving process must be able to answer "optimise this graph for
// that accelerator" without being reconstructed. The registry owns one
// entry per registered Device_profile; a Target_device on the request
// resolves against it — by name, or as an inline profile cached by
// fingerprint so repeated one-off targets do not rebuild their models.
// Resolution returns stable references (entries are heap-allocated and
// never move), and every path is internally locked for server concurrency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/device.h"
#include "cost/e2e_simulator.h"
#include "support/sync.h"

namespace xrl {

class Device_registry {
public:
    /// `simulator_seed` salts every per-device simulator (each device gets
    /// its own noise stream, derived from the seed and the profile
    /// fingerprint, so fleets with the same seed are reproducible).
    explicit Device_registry(std::uint64_t simulator_seed = 9);

    Device_registry(const Device_registry&) = delete;
    Device_registry& operator=(const Device_registry&) = delete;

    /// Register `profile` under `profile.name`. The first registration
    /// becomes the default device. Throws std::invalid_argument for an
    /// empty name or a duplicate registration.
    void add(Device_profile profile);

    bool contains(const std::string& name) const;

    /// Registered device names, sorted.
    std::vector<std::string> names() const;

    std::size_t size() const;

    /// The device unqualified requests resolve to. Throws
    /// std::invalid_argument when `name` is not registered.
    void set_default_device(const std::string& name);
    std::string default_device() const;

    /// Resolve a request's target: the default device, a registered name,
    /// or an inline profile (cached by fingerprint on first use). Unknown
    /// names throw std::invalid_argument listing the registered devices.
    /// References stay valid for the registry's lifetime.
    const Device_profile& resolve(const Target_device& device) const;

    /// Per-device models, built on first use and then shared; internally
    /// locked, and the simulator itself is safe under concurrent use.
    const Cost_model& cost_model(const Target_device& device) const;
    E2e_simulator& simulator(const Target_device& device) const;

    /// Distinct inline profiles cached before further ones are refused
    /// (std::invalid_argument). Entries hand out stable references, so
    /// they are never evicted — recurring hardware belongs in add().
    static constexpr std::size_t max_inline_entries = 64;

    /// The resolved profile's fingerprint — the device component of memo /
    /// coalescing / policy-cache keys.
    std::uint64_t fingerprint(const Target_device& device) const;

private:
    /// One device's lazily-completed state. Heap-allocated so references
    /// survive registrations.
    struct Entry {
        Device_profile profile;
        std::unique_ptr<Cost_model> cost;      ///< Built on first cost_model().
        std::unique_ptr<E2e_simulator> simulator; ///< Built on first simulator().
    };

    Entry& entry_for_locked(const Target_device& device) const XRL_REQUIRES(mutex_);
    Entry& named_entry_locked(const std::string& name) const XRL_REQUIRES(mutex_);

    mutable Mutex mutex_{"device_registry", Lock_rank::device_registry};
    std::map<std::string, std::unique_ptr<Entry>> named_ XRL_GUARDED_BY(mutex_);
    /// Registered entries by fingerprint (filled in add(); profiles are
    /// immutable afterwards), so inline-profile resolution is one lookup
    /// instead of re-hashing the whole fleet under the mutex.
    std::map<std::uint64_t, Entry*> named_by_fingerprint_ XRL_GUARDED_BY(mutex_);
    /// Inline profiles, cached by fingerprint so a repeated one-off target
    /// reuses its models (and its simulator noise stream).
    mutable std::map<std::uint64_t, std::unique_ptr<Entry>> inline_ XRL_GUARDED_BY(mutex_);
    std::string default_name_ XRL_GUARDED_BY(mutex_);
    std::uint64_t simulator_seed_;
};

/// Register the two built-in profiles — gtx1080_profile() (the default) and
/// a100_profile() — into `registry`. The standard fleet every
/// Optimization_service starts from unless configured otherwise.
void register_standard_devices(Device_registry& registry);

} // namespace xrl
