#include "cost/device.h"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "support/fnv.h"

namespace xrl {

void validate_device_profile(const Device_profile& profile, const std::string& context)
{
    const auto reject = [&](const char* field, double value, const char* range) {
        std::ostringstream os;
        os << context << " device profile '" << profile.name << "' has " << field << " = " << value
           << " (must be " << range << ")";
        throw std::invalid_argument(os.str());
    };
    // Throughputs feed divisions; the rest feed sums and the occupancy
    // ratio — NaN or negatives anywhere would poison every latency (and,
    // downstream, memoised results).
    if (!(profile.flops_per_ms > 0.0) || profile.flops_per_ms > 1e30)
        reject("flops_per_ms", profile.flops_per_ms, "positive and at most 1e30");
    if (!(profile.bytes_per_ms > 0.0) || profile.bytes_per_ms > 1e30)
        reject("bytes_per_ms", profile.bytes_per_ms, "positive and at most 1e30");
    if (!(profile.kernel_launch_ms >= 0.0) || profile.kernel_launch_ms > 1e30)
        reject("kernel_launch_ms", profile.kernel_launch_ms, "non-negative and at most 1e30");
    if (!(profile.scheduler_overhead_ms >= 0.0) || profile.scheduler_overhead_ms > 1e30)
        reject("scheduler_overhead_ms", profile.scheduler_overhead_ms,
               "non-negative and at most 1e30");
    if (!(profile.measurement_noise >= 0.0) || profile.measurement_noise > 1.0)
        reject("measurement_noise", profile.measurement_noise, "in [0, 1]");
    if (!(profile.utilisation_knee_flops >= 0.0) || profile.utilisation_knee_flops > 1e30)
        reject("utilisation_knee_flops", profile.utilisation_knee_flops,
               "non-negative and at most 1e30");
}

double Device_profile::efficiency(Op_kind kind) const
{
    switch (kind) {
    case Op_kind::matmul: return 0.70;
    case Op_kind::conv2d: return 0.60;
    case Op_kind::batch_norm:
    case Op_kind::layer_norm:
    case Op_kind::softmax: return 0.25;
    case Op_kind::max_pool2d:
    case Op_kind::avg_pool2d:
    case Op_kind::global_avg_pool: return 0.30;
    default: return 0.20; // elementwise & data movement: bandwidth-bound anyway
    }
}

double Device_profile::utilisation(Op_kind kind, std::int64_t flops) const
{
    if (kind != Op_kind::matmul && kind != Op_kind::conv2d) return 1.0;
    const double f = static_cast<double>(flops);
    return f / (f + utilisation_knee_flops);
}

std::uint64_t Device_profile::fingerprint() const
{
    // FNV-1a over the name bytes, then the bit patterns of every numeric
    // field (+ 0.0 folds -0.0 into +0.0 so equal-comparing profiles match).
    std::uint64_t h = fnv1a_bytes(fnv1a_offset, name);
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(flops_per_ms + 0.0));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(bytes_per_ms + 0.0));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(kernel_launch_ms + 0.0));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(scheduler_overhead_ms + 0.0));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(measurement_noise + 0.0));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(utilisation_knee_flops + 0.0));
    return h;
}

Device_profile gtx1080_profile()
{
    Device_profile p;
    p.name = "gtx1080-sim";
    p.flops_per_ms = 8.9e9;
    p.bytes_per_ms = 3.2e8;
    p.kernel_launch_ms = 8e-3;
    p.scheduler_overhead_ms = 4e-3;
    p.measurement_noise = 0.01;
    return p;
}

Device_profile a100_profile()
{
    Device_profile p;
    p.name = "a100-sim";
    p.flops_per_ms = 19.5e9;
    p.bytes_per_ms = 1.555e9;
    p.kernel_launch_ms = 5e-3;
    p.scheduler_overhead_ms = 2.5e-3;
    p.measurement_noise = 0.005;
    p.utilisation_knee_flops = 8e6; // bigger device: needs larger kernels
    return p;
}

} // namespace xrl
