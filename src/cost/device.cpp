#include "cost/device.h"

namespace xrl {

double Device_profile::efficiency(Op_kind kind) const
{
    switch (kind) {
    case Op_kind::matmul: return 0.70;
    case Op_kind::conv2d: return 0.60;
    case Op_kind::batch_norm:
    case Op_kind::layer_norm:
    case Op_kind::softmax: return 0.25;
    case Op_kind::max_pool2d:
    case Op_kind::avg_pool2d:
    case Op_kind::global_avg_pool: return 0.30;
    default: return 0.20; // elementwise & data movement: bandwidth-bound anyway
    }
}

double Device_profile::utilisation(Op_kind kind, std::int64_t flops) const
{
    if (kind != Op_kind::matmul && kind != Op_kind::conv2d) return 1.0;
    const double f = static_cast<double>(flops);
    return f / (f + utilisation_knee_flops);
}

Device_profile gtx1080_profile()
{
    Device_profile p;
    p.name = "gtx1080-sim";
    p.flops_per_ms = 8.9e9;
    p.bytes_per_ms = 3.2e8;
    p.kernel_launch_ms = 8e-3;
    p.scheduler_overhead_ms = 4e-3;
    p.measurement_noise = 0.01;
    return p;
}

Device_profile a100_profile()
{
    Device_profile p;
    p.name = "a100-sim";
    p.flops_per_ms = 19.5e9;
    p.bytes_per_ms = 1.555e9;
    p.kernel_launch_ms = 5e-3;
    p.scheduler_overhead_ms = 2.5e-3;
    p.measurement_noise = 0.005;
    p.utilisation_knee_flops = 8e6; // bigger device: needs larger kernels
    return p;
}

} // namespace xrl
