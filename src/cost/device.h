// Simulated execution device.
//
// Substitution for the paper's GTX 1080 + CUDA/CuDNN testbed (see
// DESIGN.md §1): an analytical roofline model with per-operator efficiency
// factors. Per-kernel *launch* overhead is visible to the cost model (TASO
// measures kernels in isolation, launch included); per-kernel *scheduler*
// overhead and runtime fusion/folding are only visible to the end-to-end
// simulator — exactly the split that creates the paper's Table 1
// discrepancy between cost-model estimates and end-to-end latency.
#pragma once

#include <string>

#include "ir/op.h"

namespace xrl {

struct Device_profile {
    std::string name;

    double flops_per_ms = 8.9e9;      ///< Peak FP32 throughput (flops / ms).
    double bytes_per_ms = 3.2e8;      ///< Memory bandwidth (bytes / ms).
    double kernel_launch_ms = 8e-3;   ///< Per-kernel launch latency (measured by kernels-in-isolation).
    double scheduler_overhead_ms = 4e-3;  ///< Per-kernel framework/stream overhead (end-to-end only).
    double measurement_noise = 0.01;  ///< Relative std-dev of an end-to-end measurement.

    /// Occupancy knee for dense kernels (matmul/conv): a kernel of F flops
    /// reaches F/(F + knee) of its peak efficiency, so small kernels
    /// under-utilise the device and merging them into larger ones pays off.
    double utilisation_knee_flops = 2e6;

    /// Fraction of peak compute an operator kind achieves.
    double efficiency(Op_kind kind) const;

    /// Occupancy factor in (0, 1] for a dense kernel of `flops` work; 1 for
    /// non-dense kinds.
    double utilisation(Op_kind kind, std::int64_t flops) const;
};

/// GTX-1080-like profile (the paper's testbed). Default everywhere.
Device_profile gtx1080_profile();

/// A100-like profile: higher compute/bandwidth ratio, cheaper launches.
/// Used by the ablation bench to show device-dependent cost modelling
/// (§4.2: "the cost modelling depends on the execution hardware").
Device_profile a100_profile();

} // namespace xrl
