// Simulated execution device.
//
// Substitution for the paper's GTX 1080 + CUDA/CuDNN testbed (see
// DESIGN.md §1): an analytical roofline model with per-operator efficiency
// factors. Per-kernel *launch* overhead is visible to the cost model (TASO
// measures kernels in isolation, launch included); per-kernel *scheduler*
// overhead and runtime fusion/folding are only visible to the end-to-end
// simulator — exactly the split that creates the paper's Table 1
// discrepancy between cost-model estimates and end-to-end latency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ir/op.h"

namespace xrl {

struct Device_profile {
    std::string name;

    double flops_per_ms = 8.9e9;      ///< Peak FP32 throughput (flops / ms).
    double bytes_per_ms = 3.2e8;      ///< Memory bandwidth (bytes / ms).
    double kernel_launch_ms = 8e-3;   ///< Per-kernel launch latency (measured by kernels-in-isolation).
    double scheduler_overhead_ms = 4e-3;  ///< Per-kernel framework/stream overhead (end-to-end only).
    double measurement_noise = 0.01;  ///< Relative std-dev of an end-to-end measurement.

    /// Occupancy knee for dense kernels (matmul/conv): a kernel of F flops
    /// reaches F/(F + knee) of its peak efficiency, so small kernels
    /// under-utilise the device and merging them into larger ones pays off.
    double utilisation_knee_flops = 2e6;

    /// Fraction of peak compute an operator kind achieves.
    double efficiency(Op_kind kind) const;

    /// Occupancy factor in (0, 1] for a dense kernel of `flops` work; 1 for
    /// non-dense kinds.
    double utilisation(Op_kind kind, std::int64_t flops) const;

    /// Stable hash of the name and every numeric field. Two profiles with
    /// the same fingerprint model the same hardware, so the fingerprint is
    /// the device component of memo keys, coalescing keys, and trained
    /// policy-cache keys — an inline profile that duplicates a registered
    /// one deliberately shares its cache entries.
    std::uint64_t fingerprint() const;
};

/// What a request wants to optimise *for*: a registered device by name, an
/// inline one-off profile, or (default-constructed) the service's default
/// device. Travels on Optimize_request so one server can serve a
/// heterogeneous fleet.
struct Target_device {
    Target_device() = default;
    Target_device(std::string device_name) : name(std::move(device_name)) {}
    Target_device(const char* device_name) : name(device_name) {}
    Target_device(Device_profile inline_profile) : profile(std::move(inline_profile)) {}

    std::string name;                      ///< Registered name; "" = default device.
    std::optional<Device_profile> profile; ///< Inline profile; overrides `name`.

    bool is_default() const { return name.empty() && !profile.has_value(); }

    /// The name this target goes by: the inline profile's name, the
    /// registered name, or "" for the default device.
    const std::string& display_name() const { return profile ? profile->name : name; }
};

/// Reject a profile whose numeric fields would poison every latency
/// computed from it — non-positive/NaN throughputs (they feed divisions),
/// negative or non-finite overheads, noise outside [0, 1] — with a
/// std::invalid_argument whose message starts with `context` and names the
/// field, value, and accepted range. Shared by the device registry
/// (registration time) and validate_request (inline request profiles), so
/// a profile that one accepts the other does too.
void validate_device_profile(const Device_profile& profile, const std::string& context);

/// GTX-1080-like profile (the paper's testbed). Default everywhere.
Device_profile gtx1080_profile();

/// A100-like profile: higher compute/bandwidth ratio, cheaper launches.
/// Used by the ablation bench to show device-dependent cost modelling
/// (§4.2: "the cost modelling depends on the execution hardware").
Device_profile a100_profile();

} // namespace xrl
