// TASO-style sum-of-operators cost model.
//
// Ranks candidate graphs by summing per-operator kernel times measured in
// isolation — the assumption the paper shows to be inaccurate (Table 1):
// "the cost model ... assumes the summation of individual operator runtime
// is the same as the end-to-end inference latency."
#pragma once

#include <cstdint>

#include "cost/device.h"
#include "ir/graph.h"

namespace xrl {

/// Floating point operations performed by a node (0 for data movement).
std::int64_t node_flops(const Graph& graph, Node_id id);

/// Bytes moved by a node (inputs read + outputs written, 4 B/element).
std::int64_t node_bytes(const Graph& graph, Node_id id);

/// Ops with no kernel at all (views / erased at runtime).
bool is_free_op(Op_kind kind);

class Cost_model {
public:
    explicit Cost_model(Device_profile device) : device_(std::move(device)) {}

    const Device_profile& device() const { return device_; }

    /// Kernel time for one operator in isolation: launch overhead plus the
    /// roofline max of compute and memory time.
    double op_cost_ms(const Graph& graph, Node_id id) const;

    /// Sum of op costs over all nodes reachable from the graph outputs.
    double graph_cost_ms(const Graph& graph) const;

private:
    Device_profile device_;
};

} // namespace xrl
