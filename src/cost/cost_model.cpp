#include "cost/cost_model.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace xrl {

namespace {

std::int64_t volume_of(const Graph& g, Edge e)
{
    return shape_volume(g.shape_of(e));
}

std::int64_t output_volume(const Graph& g, Node_id id)
{
    std::int64_t total = 0;
    for (const Shape& s : g.node(id).output_shapes) total += shape_volume(s);
    return total;
}

std::int64_t input_volume(const Graph& g, Node_id id)
{
    std::int64_t total = 0;
    for (const Edge& e : g.node(id).inputs) total += volume_of(g, e);
    return total;
}

/// Extra elementwise flops contributed by a fused activation.
std::int64_t activation_flops(Activation act, std::int64_t volume)
{
    switch (act) {
    case Activation::none: return 0;
    case Activation::relu: return volume;
    case Activation::gelu: return 8 * volume;
    case Activation::tanh: return 4 * volume;
    case Activation::sigmoid: return 4 * volume;
    }
    return 0;
}

} // namespace

bool is_free_op(Op_kind kind)
{
    switch (kind) {
    case Op_kind::input:
    case Op_kind::weight:
    case Op_kind::constant:
    case Op_kind::reshape:
    case Op_kind::identity:
    case Op_kind::dropout:
    case Op_kind::split:
    case Op_kind::slice:
        // Views: runtimes return strided views for splits/slices, so no
        // kernel executes (the contiguous-copy cost, when needed, is borne
        // by the consumer's memory traffic, already counted).
        return true;
    default:
        return false;
    }
}

std::int64_t node_flops(const Graph& g, Node_id id)
{
    const Node& n = g.node(id);
    const std::int64_t out_volume = output_volume(g, id);
    switch (n.kind) {
    case Op_kind::matmul: {
        const Shape& a = g.shape_of(n.inputs[0]);
        const std::int64_t k = a.back();
        return 2 * out_volume * k + activation_flops(n.params.activation, out_volume);
    }
    case Op_kind::conv2d: {
        const Shape& w = g.shape_of(n.inputs[1]);
        // 2 * N*K*OH*OW * (C/g)*R*S
        return 2 * out_volume * w[1] * w[2] * w[3] +
               activation_flops(n.params.activation, out_volume);
    }
    case Op_kind::add:
    case Op_kind::sub:
    case Op_kind::mul:
    case Op_kind::div:
    case Op_kind::relu:
    case Op_kind::leaky_relu:
    case Op_kind::scale:
        return out_volume;
    case Op_kind::gelu:
    case Op_kind::erf:
        return 8 * out_volume;
    case Op_kind::sigmoid:
    case Op_kind::tanh:
    case Op_kind::exp:
    case Op_kind::sqrt:
        return 4 * out_volume;
    case Op_kind::max_pool2d:
    case Op_kind::avg_pool2d:
        return out_volume * n.params.kernel_h * n.params.kernel_w;
    case Op_kind::global_avg_pool:
        return input_volume(g, id);
    case Op_kind::batch_norm:
        return 2 * out_volume;
    case Op_kind::layer_norm:
        return 8 * out_volume;
    case Op_kind::softmax:
        return 5 * out_volume;
    case Op_kind::reduce_sum:
    case Op_kind::reduce_mean:
        return input_volume(g, id);
    default:
        return 0; // data movement / sources
    }
}

std::int64_t node_bytes(const Graph& g, Node_id id)
{
    const Node& n = g.node(id);
    if (is_free_op(n.kind)) return 0;
    return 4 * (input_volume(g, id) + output_volume(g, id));
}

double Cost_model::op_cost_ms(const Graph& g, Node_id id) const
{
    const Node& n = g.node(id);
    if (is_free_op(n.kind)) return 0.0;
    const std::int64_t flops = node_flops(g, id);
    // Grouped convolutions launch one kernel per group (pre-Volta CuDNN
    // loops over groups), and each group's kernel is small: utilisation is
    // judged per group.
    const std::int64_t launches = n.kind == Op_kind::conv2d ? n.params.groups : 1;
    const double util = device_.utilisation(n.kind, flops / launches);
    const double effective_rate = device_.efficiency(n.kind) * util * device_.flops_per_ms;
    const double compute_ms = static_cast<double>(flops) / effective_rate;
    const double memory_ms = static_cast<double>(node_bytes(g, id)) / device_.bytes_per_ms;
    return static_cast<double>(launches) * device_.kernel_launch_ms +
           std::max(compute_ms, memory_ms);
}

double Cost_model::graph_cost_ms(const Graph& g) const
{
    // Only nodes that contribute to the outputs count.
    std::unordered_set<Node_id> reachable;
    std::vector<Node_id> stack;
    for (const Edge& e : g.outputs())
        if (reachable.insert(e.node).second) stack.push_back(e.node);
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : g.node(id).inputs)
            if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    double total = 0.0;
    for (const Node_id id : reachable) total += op_cost_ms(g, id);
    return total;
}

} // namespace xrl
