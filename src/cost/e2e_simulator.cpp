#include "cost/e2e_simulator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.h"

namespace xrl {

namespace {

std::unordered_set<Node_id> reachable_from_outputs(const Graph& g)
{
    std::unordered_set<Node_id> reachable;
    std::vector<Node_id> stack;
    for (const Edge& e : g.outputs())
        if (reachable.insert(e.node).second) stack.push_back(e.node);
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : g.node(id).inputs)
            if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    return reachable;
}

} // namespace

E2e_breakdown E2e_simulator::analyse(const Graph& g) const
{
    const Device_profile& device = cost_model_.device();
    const auto reachable = reachable_from_outputs(g);
    const auto order = g.topo_order();
    const auto users = g.build_users();

    // Number of *reachable* consumers per node (fusion needs single-consumer
    // producers).
    auto reachable_consumers = [&](Node_id id) {
        int count = 0;
        for (const Edge_use& use : users[static_cast<std::size_t>(id)])
            if (reachable.contains(use.user)) ++count;
        for (const Edge& e : g.outputs())
            if (e.node == id) ++count;
        return count;
    };

    // Pass 1: constant folding. A node is foldable when it has inputs and
    // every operand comes from a weight/constant or another foldable node —
    // it can be evaluated once offline and cached.
    std::vector<std::uint8_t> foldable(g.capacity(), 0);
    for (const Node_id id : order) {
        const Node& n = g.node(id);
        if (n.kind == Op_kind::input) continue;
        if (n.kind == Op_kind::weight || n.kind == Op_kind::constant) {
            foldable[static_cast<std::size_t>(id)] = 1;
            continue;
        }
        if (n.inputs.empty()) continue;
        bool all_static = true;
        for (const Edge& e : n.inputs)
            all_static = all_static && foldable[static_cast<std::size_t>(e.node)] != 0;
        foldable[static_cast<std::size_t>(id)] = all_static ? 1 : 0;
    }

    // Pass 2: runtime elementwise fusion. An elementwise op fuses into its
    // producer kernel when that producer is a runtime kernel feeding only
    // this op. Binary elementwise ops fuse when their *other* operand is
    // static (e.g. folded bias tensors).
    auto is_runtime_kernel = [&](Node_id id) {
        return reachable.contains(id) && !is_free_op(g.node(id).kind) &&
               foldable[static_cast<std::size_t>(id)] == 0;
    };

    std::vector<std::uint8_t> fused(g.capacity(), 0);
    for (const Node_id id : order) {
        if (!is_runtime_kernel(id)) continue;
        const Node& n = g.node(id);
        Node_id producer = invalid_node;
        if (is_elementwise_unary(n.kind)) {
            producer = n.inputs[0].node;
        } else if (is_elementwise_binary(n.kind)) {
            const bool lhs_static = foldable[static_cast<std::size_t>(n.inputs[0].node)] != 0 ||
                                    is_source(g.node(n.inputs[0].node).kind);
            const bool rhs_static = foldable[static_cast<std::size_t>(n.inputs[1].node)] != 0 ||
                                    is_source(g.node(n.inputs[1].node).kind);
            if (lhs_static == rhs_static) continue; // need exactly one dynamic side
            producer = lhs_static ? n.inputs[1].node : n.inputs[0].node;
        } else {
            continue;
        }
        if (!is_runtime_kernel(producer)) continue;
        if (reachable_consumers(producer) != 1) continue;
        fused[static_cast<std::size_t>(id)] = 1;
    }

    // Pass 3: accumulate the schedule.
    E2e_breakdown b;
    for (const Node_id id : order) {
        if (!reachable.contains(id)) continue;
        const Node& n = g.node(id);
        if (is_free_op(n.kind)) continue;
        if (foldable[static_cast<std::size_t>(id)] != 0) {
            ++b.nodes_folded;
            continue;
        }
        const std::int64_t flops = node_flops(g, id);
        const std::int64_t launches = n.kind == Op_kind::conv2d ? n.params.groups : 1;
        const double util = device.utilisation(n.kind, flops / launches);
        const double compute_ms =
            static_cast<double>(flops) / (device.efficiency(n.kind) * util * device.flops_per_ms);
        if (fused[static_cast<std::size_t>(id)] != 0) {
            // Applied in-register inside the producer kernel: compute time
            // only, no launch, no memory round-trip.
            b.compute_ms += compute_ms;
            ++b.kernels_fused;
            continue;
        }
        const double memory_ms = static_cast<double>(node_bytes(g, id)) / device.bytes_per_ms;
        b.compute_ms += std::max(compute_ms, memory_ms);
        b.launch_ms += static_cast<double>(launches) * device.kernel_launch_ms;
        b.scheduler_ms += static_cast<double>(launches) * device.scheduler_overhead_ms;
        b.kernels_launched += static_cast<int>(launches);
    }
    b.total_ms = b.compute_ms + b.launch_ms + b.scheduler_ms;
    return b;
}

double E2e_simulator::measure_ms(const Graph& g)
{
    const double base = noiseless_ms(g);
    const Lock_guard lock(rng_mutex_);
    const double noisy = base * (1.0 + device().measurement_noise * rng_.normal());
    return std::max(noisy, 1e-9);
}

Latency_stats E2e_simulator::measure_repeated(const Graph& g, int repeats)
{
    XRL_EXPECTS(repeats >= 1);
    const double base = noiseless_ms(g);
    const Lock_guard lock(rng_mutex_);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < repeats; ++i) {
        const double m = std::max(base * (1.0 + device().measurement_noise * rng_.normal()), 1e-9);
        sum += m;
        sum_sq += m * m;
    }
    Latency_stats stats;
    stats.repeats = repeats;
    stats.mean_ms = sum / repeats;
    const double var = std::max(sum_sq / repeats - stats.mean_ms * stats.mean_ms, 0.0);
    stats.std_ms = std::sqrt(var);
    return stats;
}

} // namespace xrl
