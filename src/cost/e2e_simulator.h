// End-to-end inference latency simulator.
//
// Plays the role of actually running the optimised network (the feedback
// signal of §3.3.3). Unlike the sum-of-ops cost model it simulates the
// *schedule*: weight-only subgraphs are constant-folded away (the effect
// behind the paper's ViT result), single-consumer elementwise ops fuse into
// their producer kernel at runtime, and every launched kernel pays
// framework scheduler overhead the cost model never sees. Measurements add
// seeded noise; repeated measurement returns mean ± std as in the paper's
// "run five times" protocol.
#pragma once

#include <cstdint>

#include "cost/cost_model.h"
#include "cost/device.h"
#include "ir/graph.h"
#include "support/rng.h"
#include "support/sync.h"

namespace xrl {

struct Latency_stats {
    double mean_ms = 0.0;
    double std_ms = 0.0;
    int repeats = 0;
};

/// Noiseless decomposition of a simulated end-to-end run (for tests and
/// benchmarks).
struct E2e_breakdown {
    double total_ms = 0.0;
    double compute_ms = 0.0;
    double launch_ms = 0.0;
    double scheduler_ms = 0.0;
    int kernels_launched = 0;  ///< Kernels that actually execute.
    int kernels_fused = 0;     ///< Elementwise ops folded into a producer kernel.
    int nodes_folded = 0;      ///< Ops evaluated offline (weight-only inputs).
};

class E2e_simulator {
public:
    E2e_simulator(Device_profile device, std::uint64_t seed)
        : cost_model_(std::move(device)), rng_(seed)
    {
    }

    const Device_profile& device() const { return cost_model_.device(); }

    /// Deterministic schedule analysis (no measurement noise).
    E2e_breakdown analyse(const Graph& graph) const;

    double noiseless_ms(const Graph& graph) const { return analyse(graph).total_ms; }

    /// One noisy end-to-end measurement (advances the noise stream).
    /// Thread-safe: the noise stream is internally locked, so concurrent
    /// callers interleave draws but each draw is well-defined.
    double measure_ms(const Graph& graph);

    /// Mean and standard deviation over `repeats` noisy measurements. The
    /// whole run holds the noise-stream lock, so the `repeats` draws are one
    /// atomic block — concurrent measurements cannot interleave inside it.
    Latency_stats measure_repeated(const Graph& graph, int repeats);

private:
    Cost_model cost_model_;
    /// Makes the simulator safe under server concurrency.
    Mutex rng_mutex_{"simulator_rng", Lock_rank::simulator_rng};
    Rng rng_ XRL_GUARDED_BY(rng_mutex_);
};

} // namespace xrl
