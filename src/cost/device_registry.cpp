#include "cost/device_registry.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace xrl {

Device_registry::Device_registry(std::uint64_t simulator_seed) : simulator_seed_(simulator_seed) {}

void Device_registry::add(Device_profile profile)
{
    if (profile.name.empty())
        throw std::invalid_argument("Device_registry::add: profile has an empty name");
    // Same field checks requests get for inline profiles: a fleet must not
    // be configurable with a profile that poisons every latency.
    validate_device_profile(profile, "Device_registry::add:");
    const Lock_guard lock(mutex_);
    if (named_.contains(profile.name))
        throw std::invalid_argument("Device_registry::add: device '" + profile.name +
                                    "' is already registered");
    if (default_name_.empty()) default_name_ = profile.name;
    auto entry = std::make_unique<Entry>();
    entry->profile = std::move(profile);
    named_by_fingerprint_.emplace(entry->profile.fingerprint(), entry.get());
    named_.emplace(entry->profile.name, std::move(entry));
}

bool Device_registry::contains(const std::string& name) const
{
    const Lock_guard lock(mutex_);
    return named_.contains(name);
}

std::vector<std::string> Device_registry::names() const
{
    const Lock_guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(named_.size());
    for (const auto& [name, entry] : named_) out.push_back(name);
    return out;
}

std::size_t Device_registry::size() const
{
    const Lock_guard lock(mutex_);
    return named_.size();
}

void Device_registry::set_default_device(const std::string& name)
{
    const Lock_guard lock(mutex_);
    if (!named_.contains(name)) {
        std::ostringstream os;
        os << "Device_registry::set_default_device: unknown device '" << name
           << "'; registered devices:";
        for (const auto& [known, entry] : named_) os << ' ' << known;
        throw std::invalid_argument(os.str());
    }
    default_name_ = name;
}

std::string Device_registry::default_device() const
{
    const Lock_guard lock(mutex_);
    return default_name_;
}

Device_registry::Entry& Device_registry::named_entry_locked(const std::string& name) const
{
    const auto it = named_.find(name);
    if (it == named_.end()) {
        std::ostringstream os;
        os << "unknown device '" << name << "'; registered devices:";
        for (const auto& [known, entry] : named_) os << ' ' << known;
        throw std::invalid_argument(os.str());
    }
    return *it->second;
}

Device_registry::Entry& Device_registry::entry_for_locked(const Target_device& device) const
{
    if (device.profile.has_value()) {
        // An inline profile whose fingerprint matches a registered device
        // *is* that device — same models, same noise stream, same caches.
        const std::uint64_t fp = device.profile->fingerprint();
        const auto named_it = named_by_fingerprint_.find(fp);
        if (named_it != named_by_fingerprint_.end()) return *named_it->second;
        const auto it = inline_.find(fp);
        if (it != inline_.end()) return *it->second;
        // Bounded: entries hand out stable references (a backend holds its
        // cost model for a whole search), so they can never be evicted —
        // refuse pathological streams of distinct inline profiles instead
        // of growing without bound.
        if (inline_.size() >= max_inline_entries)
            throw std::invalid_argument(
                "Device_registry: more than " + std::to_string(max_inline_entries) +
                " distinct inline device profiles; register recurring devices by name instead");
        // The single choke point for inline entries: direct registry calls
        // (cost_model / simulator on an inline target) must meet the same
        // bar as validated requests — a poisoned profile cached here could
        // never be evicted.
        if (device.profile->name.empty())
            throw std::invalid_argument(
                "Device_registry: inline device profile has an empty name");
        validate_device_profile(*device.profile, "Device_registry: inline");
        auto entry = std::make_unique<Entry>();
        entry->profile = *device.profile;
        return *inline_.emplace(fp, std::move(entry)).first->second;
    }
    if (!device.name.empty()) return named_entry_locked(device.name);
    if (default_name_.empty())
        throw std::invalid_argument("Device_registry: no devices registered");
    return named_entry_locked(default_name_);
}

const Device_profile& Device_registry::resolve(const Target_device& device) const
{
    const Lock_guard lock(mutex_);
    return entry_for_locked(device).profile;
}

const Cost_model& Device_registry::cost_model(const Target_device& device) const
{
    const Lock_guard lock(mutex_);
    Entry& entry = entry_for_locked(device);
    if (!entry.cost) entry.cost = std::make_unique<Cost_model>(entry.profile);
    return *entry.cost;
}

E2e_simulator& Device_registry::simulator(const Target_device& device) const
{
    const Lock_guard lock(mutex_);
    Entry& entry = entry_for_locked(device);
    if (!entry.simulator)
        entry.simulator = std::make_unique<E2e_simulator>(
            entry.profile, simulator_seed_ ^ (entry.profile.fingerprint() | 1ULL));
    return *entry.simulator;
}

std::uint64_t Device_registry::fingerprint(const Target_device& device) const
{
    const Lock_guard lock(mutex_);
    return entry_for_locked(device).profile.fingerprint();
}

void register_standard_devices(Device_registry& registry)
{
    registry.add(gtx1080_profile());
    registry.add(a100_profile());
    registry.set_default_device(gtx1080_profile().name);
}

} // namespace xrl
