// Dense row-major float tensor.
//
// This is the *reference* numeric substrate: it executes operators exactly
// (naively) so that the rewrite-rule generator and the property-test suite
// can check that graph transformations preserve semantics on random inputs.
// It is deliberately simple — clarity over speed (Per.1/Per.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace xrl {

/// Tensor shape: a list of extents. Rank 0 denotes a scalar.
using Shape = std::vector<std::int64_t>;

/// Number of elements in a shape (1 for scalars).
std::int64_t shape_volume(const Shape& shape);

/// Human-readable "[a, b, c]" form.
std::string shape_to_string(const Shape& shape);

/// Dense row-major float tensor with value semantics.
class Tensor {
public:
    Tensor() = default;

    /// Zero-initialised tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Tensor with explicit contents; data.size() must equal the volume.
    Tensor(Shape shape, std::vector<float> data);

    /// Scalar tensor.
    static Tensor scalar(float value);

    /// Constant-filled tensor.
    static Tensor full(Shape shape, float value);

    /// Uniform random tensor in [lo, hi).
    static Tensor random_uniform(Shape shape, Rng& rng, float lo = -1.0F, float hi = 1.0F);

    const Shape& shape() const { return shape_; }
    std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
    std::int64_t dim(std::int64_t axis) const;
    std::int64_t volume() const { return static_cast<std::int64_t>(data_.size()); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::vector<float>& values() { return data_; }
    const std::vector<float>& values() const { return data_; }

    float& at(std::int64_t flat_index);
    float at(std::int64_t flat_index) const;

    /// Row-major flat index for a multi-index (size must equal rank).
    std::int64_t flat_index(const std::vector<std::int64_t>& index) const;

    /// Reinterpret as a new shape with the same volume.
    Tensor reshaped(Shape new_shape) const;

    /// Max |a - b| over all elements; shapes must match.
    static float max_abs_difference(const Tensor& a, const Tensor& b);

    /// True when shapes match and all elements differ by at most `tolerance`.
    static bool all_close(const Tensor& a, const Tensor& b, float tolerance = 1e-4F);

private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace xrl
