#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"

namespace xrl {

namespace {

// Strides of a row-major shape.
std::vector<std::int64_t> strides_of(const Shape& shape)
{
    std::vector<std::int64_t> strides(shape.size(), 1);
    for (std::int64_t i = static_cast<std::int64_t>(shape.size()) - 2; i >= 0; --i)
        strides[static_cast<std::size_t>(i)] =
            strides[static_cast<std::size_t>(i + 1)] * shape[static_cast<std::size_t>(i + 1)];
    return strides;
}

// Flat index into a tensor broadcast up to `out_shape`, given the
// multi-index `index` into the output.
std::int64_t broadcast_flat_index(const Shape& in_shape, const std::vector<std::int64_t>& in_strides,
                                  const std::vector<std::int64_t>& index, std::size_t out_rank)
{
    const std::size_t offset = out_rank - in_shape.size();
    std::int64_t flat = 0;
    for (std::size_t axis = 0; axis < in_shape.size(); ++axis) {
        const std::int64_t extent = in_shape[axis];
        const std::int64_t i = extent == 1 ? 0 : index[axis + offset];
        flat += i * in_strides[axis];
    }
    return flat;
}

void advance_index(std::vector<std::int64_t>& index, const Shape& shape)
{
    for (std::int64_t axis = static_cast<std::int64_t>(shape.size()) - 1; axis >= 0; --axis) {
        auto& i = index[static_cast<std::size_t>(axis)];
        if (++i < shape[static_cast<std::size_t>(axis)]) return;
        i = 0;
    }
}

} // namespace

Shape broadcast_shapes(const Shape& a, const Shape& b)
{
    const std::size_t rank = std::max(a.size(), b.size());
    Shape out(rank, 1);
    for (std::size_t i = 0; i < rank; ++i) {
        const std::int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
        const std::int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
        XRL_EXPECTS(da == db || da == 1 || db == 1);
        out[i] = std::max(da, db);
    }
    return out;
}

Tensor ewise_binary(const Tensor& a, const Tensor& b, const std::function<float(float, float)>& f)
{
    const Shape out_shape = broadcast_shapes(a.shape(), b.shape());
    Tensor out(out_shape);
    if (a.shape() == b.shape()) { // fast path, no broadcast bookkeeping
        for (std::int64_t i = 0; i < out.volume(); ++i) out.at(i) = f(a.at(i), b.at(i));
        return out;
    }
    const auto sa = strides_of(a.shape());
    const auto sb = strides_of(b.shape());
    std::vector<std::int64_t> index(out_shape.size(), 0);
    for (std::int64_t flat = 0; flat < out.volume(); ++flat) {
        const std::int64_t ia = broadcast_flat_index(a.shape(), sa, index, out_shape.size());
        const std::int64_t ib = broadcast_flat_index(b.shape(), sb, index, out_shape.size());
        out.at(flat) = f(a.at(ia), b.at(ib));
        advance_index(index, out_shape);
    }
    return out;
}

Tensor add(const Tensor& a, const Tensor& b) { return ewise_binary(a, b, [](float x, float y) { return x + y; }); }
Tensor sub(const Tensor& a, const Tensor& b) { return ewise_binary(a, b, [](float x, float y) { return x - y; }); }
Tensor mul(const Tensor& a, const Tensor& b) { return ewise_binary(a, b, [](float x, float y) { return x * y; }); }
Tensor div(const Tensor& a, const Tensor& b) { return ewise_binary(a, b, [](float x, float y) { return x / y; }); }

Tensor ewise_unary(const Tensor& a, const std::function<float(float)>& f)
{
    Tensor out(a.shape());
    for (std::int64_t i = 0; i < a.volume(); ++i) out.at(i) = f(a.at(i));
    return out;
}

Tensor relu(const Tensor& a) { return ewise_unary(a, [](float x) { return x > 0.0F ? x : 0.0F; }); }

Tensor leaky_relu(const Tensor& a, float negative_slope)
{
    return ewise_unary(a, [negative_slope](float x) { return x > 0.0F ? x : negative_slope * x; });
}

Tensor gelu(const Tensor& a)
{
    return ewise_unary(a, [](float x) {
        return 0.5F * x * (1.0F + std::erf(x / 1.41421356237F));
    });
}

Tensor sigmoid(const Tensor& a)
{
    return ewise_unary(a, [](float x) { return 1.0F / (1.0F + std::exp(-x)); });
}

Tensor tanh_op(const Tensor& a) { return ewise_unary(a, [](float x) { return std::tanh(x); }); }
Tensor exp_op(const Tensor& a) { return ewise_unary(a, [](float x) { return std::exp(x); }); }
Tensor sqrt_op(const Tensor& a) { return ewise_unary(a, [](float x) { return std::sqrt(x); }); }
Tensor erf_op(const Tensor& a) { return ewise_unary(a, [](float x) { return std::erf(x); }); }

Tensor scale(const Tensor& a, float factor)
{
    return ewise_unary(a, [factor](float x) { return factor * x; });
}

Tensor matmul(const Tensor& a, const Tensor& b)
{
    XRL_EXPECTS(a.rank() >= 2 && b.rank() >= 2);
    if (a.rank() == 2 && b.rank() == 2) {
        const std::int64_t m = a.dim(0);
        const std::int64_t k = a.dim(1);
        XRL_EXPECTS(b.dim(0) == k);
        const std::int64_t n = b.dim(1);
        Tensor out(Shape{m, n});
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = a.at(i * k + kk);
                if (av == 0.0F) continue;
                const float* brow = b.data() + kk * n;
                float* orow = out.data() + i * n;
                for (std::int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
            }
        }
        return out;
    }
    // Batched: flatten leading axes of `a` into a batch; `b` is either
    // batched identically or broadcast.
    XRL_EXPECTS(a.rank() == 3);
    const std::int64_t batch = a.dim(0);
    const std::int64_t m = a.dim(1);
    const std::int64_t k = a.dim(2);
    std::int64_t n = 0;
    const bool b_batched = b.rank() == 3;
    if (b_batched) {
        XRL_EXPECTS(b.dim(0) == batch && b.dim(1) == k);
        n = b.dim(2);
    } else {
        XRL_EXPECTS(b.rank() == 2 && b.dim(0) == k);
        n = b.dim(1);
    }
    Tensor out(Shape{batch, m, n});
    for (std::int64_t bi = 0; bi < batch; ++bi) {
        const float* abase = a.data() + bi * m * k;
        const float* bbase = b.data() + (b_batched ? bi * k * n : 0);
        float* obase = out.data() + bi * m * n;
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float av = abase[i * k + kk];
                if (av == 0.0F) continue;
                const float* brow = bbase + kk * n;
                float* orow = obase + i * n;
                for (std::int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
            }
        }
    }
    return out;
}

Tensor transpose(const Tensor& a, const std::vector<std::int64_t>& perm)
{
    XRL_EXPECTS(static_cast<std::int64_t>(perm.size()) == a.rank());
    Shape out_shape(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        out_shape[i] = a.dim(perm[i]);
    Tensor out(out_shape);
    const auto in_strides = strides_of(a.shape());
    std::vector<std::int64_t> index(out_shape.size(), 0);
    for (std::int64_t flat = 0; flat < out.volume(); ++flat) {
        std::int64_t src = 0;
        for (std::size_t i = 0; i < perm.size(); ++i)
            src += index[i] * in_strides[static_cast<std::size_t>(perm[i])];
        out.at(flat) = a.at(src);
        advance_index(index, out_shape);
    }
    return out;
}

Tensor transpose_last2(const Tensor& a)
{
    XRL_EXPECTS(a.rank() >= 2);
    std::vector<std::int64_t> perm(static_cast<std::size_t>(a.rank()));
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<std::int64_t>(i);
    std::swap(perm[perm.size() - 1], perm[perm.size() - 2]);
    return transpose(a, perm);
}

Tensor concat(const std::vector<Tensor>& parts, std::int64_t axis)
{
    XRL_EXPECTS(!parts.empty());
    const std::int64_t rank = parts.front().rank();
    XRL_EXPECTS(axis >= 0 && axis < rank);
    Shape out_shape = parts.front().shape();
    std::int64_t total = 0;
    for (const Tensor& p : parts) {
        XRL_EXPECTS(p.rank() == rank);
        for (std::int64_t d = 0; d < rank; ++d)
            if (d != axis) XRL_EXPECTS(p.dim(d) == out_shape[static_cast<std::size_t>(d)]);
        total += p.dim(axis);
    }
    out_shape[static_cast<std::size_t>(axis)] = total;

    // Views as (outer, axis_extent, inner).
    std::int64_t outer = 1;
    for (std::int64_t d = 0; d < axis; ++d) outer *= out_shape[static_cast<std::size_t>(d)];
    std::int64_t inner = 1;
    for (std::int64_t d = axis + 1; d < rank; ++d) inner *= out_shape[static_cast<std::size_t>(d)];

    Tensor out(out_shape);
    std::int64_t axis_offset = 0;
    for (const Tensor& p : parts) {
        const std::int64_t extent = p.dim(axis);
        for (std::int64_t o = 0; o < outer; ++o) {
            const float* src = p.data() + o * extent * inner;
            float* dst = out.data() + (o * total + axis_offset) * inner;
            std::copy(src, src + extent * inner, dst);
        }
        axis_offset += extent;
    }
    return out;
}

std::vector<Tensor> split(const Tensor& a, std::int64_t axis, const std::vector<std::int64_t>& sizes)
{
    XRL_EXPECTS(axis >= 0 && axis < a.rank());
    std::int64_t total = 0;
    for (const std::int64_t s : sizes) total += s;
    XRL_EXPECTS(total == a.dim(axis));

    std::vector<Tensor> out;
    out.reserve(sizes.size());
    std::int64_t begin = 0;
    for (const std::int64_t s : sizes) {
        out.push_back(slice(a, axis, begin, begin + s));
        begin += s;
    }
    return out;
}

Tensor slice(const Tensor& a, std::int64_t axis, std::int64_t begin, std::int64_t end)
{
    XRL_EXPECTS(axis >= 0 && axis < a.rank());
    XRL_EXPECTS(begin >= 0 && begin <= end && end <= a.dim(axis));
    Shape out_shape = a.shape();
    out_shape[static_cast<std::size_t>(axis)] = end - begin;

    std::int64_t outer = 1;
    for (std::int64_t d = 0; d < axis; ++d) outer *= a.dim(d);
    std::int64_t inner = 1;
    for (std::int64_t d = axis + 1; d < a.rank(); ++d) inner *= a.dim(d);
    const std::int64_t in_extent = a.dim(axis);
    const std::int64_t out_extent = end - begin;

    Tensor out(out_shape);
    for (std::int64_t o = 0; o < outer; ++o) {
        const float* src = a.data() + (o * in_extent + begin) * inner;
        float* dst = out.data() + o * out_extent * inner;
        std::copy(src, src + out_extent * inner, dst);
    }
    return out;
}

Tensor pad(const Tensor& a, const std::vector<std::int64_t>& before, const std::vector<std::int64_t>& after)
{
    XRL_EXPECTS(static_cast<std::int64_t>(before.size()) == a.rank());
    XRL_EXPECTS(static_cast<std::int64_t>(after.size()) == a.rank());
    Shape out_shape = a.shape();
    for (std::size_t i = 0; i < out_shape.size(); ++i) {
        XRL_EXPECTS(before[i] >= 0 && after[i] >= 0);
        out_shape[i] += before[i] + after[i];
    }
    Tensor out(out_shape);
    const auto out_strides = strides_of(out_shape);
    std::vector<std::int64_t> index(a.shape().size(), 0);
    for (std::int64_t flat = 0; flat < a.volume(); ++flat) {
        std::int64_t dst = 0;
        for (std::size_t i = 0; i < index.size(); ++i) dst += (index[i] + before[i]) * out_strides[i];
        out.at(dst) = a.at(flat);
        advance_index(index, a.shape());
    }
    return out;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Conv2d_spec& spec)
{
    XRL_EXPECTS(input.rank() == 4 && weight.rank() == 4);
    const std::int64_t n = input.dim(0);
    const std::int64_t c = input.dim(1);
    const std::int64_t h = input.dim(2);
    const std::int64_t w = input.dim(3);
    const std::int64_t k = weight.dim(0);
    const std::int64_t cg = weight.dim(1);
    const std::int64_t r = weight.dim(2);
    const std::int64_t s = weight.dim(3);
    const std::int64_t groups = spec.groups;
    XRL_EXPECTS(groups >= 1 && c % groups == 0 && k % groups == 0);
    XRL_EXPECTS(cg == c / groups);

    const std::int64_t oh = (h + 2 * spec.pad_h - r) / spec.stride_h + 1;
    const std::int64_t ow = (w + 2 * spec.pad_w - s) / spec.stride_w + 1;
    XRL_EXPECTS(oh > 0 && ow > 0);

    Tensor out(Shape{n, k, oh, ow});
    const std::int64_t k_per_group = k / groups;
    for (std::int64_t ni = 0; ni < n; ++ni) {
        for (std::int64_t ki = 0; ki < k; ++ki) {
            const std::int64_t g = ki / k_per_group;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    float acc = 0.0F;
                    for (std::int64_t ci = 0; ci < cg; ++ci) {
                        const std::int64_t in_c = g * cg + ci;
                        for (std::int64_t ry = 0; ry < r; ++ry) {
                            const std::int64_t iy = oy * spec.stride_h + ry - spec.pad_h;
                            if (iy < 0 || iy >= h) continue;
                            for (std::int64_t sx = 0; sx < s; ++sx) {
                                const std::int64_t ix = ox * spec.stride_w + sx - spec.pad_w;
                                if (ix < 0 || ix >= w) continue;
                                const float iv = input.at(((ni * c + in_c) * h + iy) * w + ix);
                                const float wv = weight.at(((ki * cg + ci) * r + ry) * s + sx);
                                acc += iv * wv;
                            }
                        }
                    }
                    out.at(((ni * k + ki) * oh + oy) * ow + ox) = acc;
                }
            }
        }
    }
    return out;
}

namespace {

template <typename Reduce>
Tensor pool2d(const Tensor& input, const Pool2d_spec& spec, float init, Reduce reduce, bool average)
{
    XRL_EXPECTS(input.rank() == 4);
    const std::int64_t n = input.dim(0);
    const std::int64_t c = input.dim(1);
    const std::int64_t h = input.dim(2);
    const std::int64_t w = input.dim(3);
    const std::int64_t oh = (h + 2 * spec.pad_h - spec.kernel_h) / spec.stride_h + 1;
    const std::int64_t ow = (w + 2 * spec.pad_w - spec.kernel_w) / spec.stride_w + 1;
    XRL_EXPECTS(oh > 0 && ow > 0);

    Tensor out(Shape{n, c, oh, ow});
    for (std::int64_t ni = 0; ni < n; ++ni) {
        for (std::int64_t ci = 0; ci < c; ++ci) {
            for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    float acc = init;
                    std::int64_t count = 0;
                    for (std::int64_t ry = 0; ry < spec.kernel_h; ++ry) {
                        const std::int64_t iy = oy * spec.stride_h + ry - spec.pad_h;
                        if (iy < 0 || iy >= h) continue;
                        for (std::int64_t sx = 0; sx < spec.kernel_w; ++sx) {
                            const std::int64_t ix = ox * spec.stride_w + sx - spec.pad_w;
                            if (ix < 0 || ix >= w) continue;
                            acc = reduce(acc, input.at(((ni * c + ci) * h + iy) * w + ix));
                            ++count;
                        }
                    }
                    if (average && count > 0) acc /= static_cast<float>(count);
                    out.at(((ni * c + ci) * oh + oy) * ow + ox) = acc;
                }
            }
        }
    }
    return out;
}

} // namespace

Tensor max_pool2d(const Tensor& input, const Pool2d_spec& spec)
{
    return pool2d(
        input, spec, -std::numeric_limits<float>::infinity(),
        [](float a, float b) { return std::max(a, b); }, /*average=*/false);
}

Tensor avg_pool2d(const Tensor& input, const Pool2d_spec& spec)
{
    return pool2d(
        input, spec, 0.0F, [](float a, float b) { return a + b; }, /*average=*/true);
}

Tensor global_avg_pool(const Tensor& input)
{
    XRL_EXPECTS(input.rank() == 4);
    const std::int64_t n = input.dim(0);
    const std::int64_t c = input.dim(1);
    const std::int64_t spatial = input.dim(2) * input.dim(3);
    Tensor out(Shape{n, c, 1, 1});
    for (std::int64_t ni = 0; ni < n; ++ni) {
        for (std::int64_t ci = 0; ci < c; ++ci) {
            float acc = 0.0F;
            const float* base = input.data() + (ni * c + ci) * spatial;
            for (std::int64_t i = 0; i < spatial; ++i) acc += base[i];
            out.at(ni * c + ci) = acc / static_cast<float>(spatial);
        }
    }
    return out;
}

Tensor batch_norm(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                  const Tensor& mean, const Tensor& variance, float epsilon)
{
    XRL_EXPECTS(input.rank() == 4);
    const std::int64_t c = input.dim(1);
    XRL_EXPECTS(gamma.volume() == c && beta.volume() == c && mean.volume() == c && variance.volume() == c);
    Tensor out(input.shape());
    const std::int64_t n = input.dim(0);
    const std::int64_t spatial = input.dim(2) * input.dim(3);
    for (std::int64_t ni = 0; ni < n; ++ni) {
        for (std::int64_t ci = 0; ci < c; ++ci) {
            const float inv = 1.0F / std::sqrt(variance.at(ci) + epsilon);
            const float g = gamma.at(ci) * inv;
            const float b = beta.at(ci) - mean.at(ci) * g;
            const float* src = input.data() + (ni * c + ci) * spatial;
            float* dst = out.data() + (ni * c + ci) * spatial;
            for (std::int64_t i = 0; i < spatial; ++i) dst[i] = src[i] * g + b;
        }
    }
    return out;
}

Tensor layer_norm(const Tensor& input, const Tensor& gamma, const Tensor& beta, float epsilon)
{
    XRL_EXPECTS(input.rank() >= 1);
    const std::int64_t width = input.dim(input.rank() - 1);
    XRL_EXPECTS(gamma.volume() == width && beta.volume() == width);
    const std::int64_t rows = input.volume() / width;
    Tensor out(input.shape());
    for (std::int64_t row = 0; row < rows; ++row) {
        const float* src = input.data() + row * width;
        float* dst = out.data() + row * width;
        float mean = 0.0F;
        for (std::int64_t i = 0; i < width; ++i) mean += src[i];
        mean /= static_cast<float>(width);
        float var = 0.0F;
        for (std::int64_t i = 0; i < width; ++i) var += (src[i] - mean) * (src[i] - mean);
        var /= static_cast<float>(width);
        const float inv = 1.0F / std::sqrt(var + epsilon);
        for (std::int64_t i = 0; i < width; ++i)
            dst[i] = (src[i] - mean) * inv * gamma.at(i) + beta.at(i);
    }
    return out;
}

Tensor softmax(const Tensor& input)
{
    XRL_EXPECTS(input.rank() >= 1);
    const std::int64_t width = input.dim(input.rank() - 1);
    const std::int64_t rows = input.volume() / width;
    Tensor out(input.shape());
    for (std::int64_t row = 0; row < rows; ++row) {
        const float* src = input.data() + row * width;
        float* dst = out.data() + row * width;
        float max_v = -std::numeric_limits<float>::infinity();
        for (std::int64_t i = 0; i < width; ++i) max_v = std::max(max_v, src[i]);
        float total = 0.0F;
        for (std::int64_t i = 0; i < width; ++i) {
            dst[i] = std::exp(src[i] - max_v);
            total += dst[i];
        }
        for (std::int64_t i = 0; i < width; ++i) dst[i] /= total;
    }
    return out;
}

namespace {

Tensor reduce_axis(const Tensor& input, std::int64_t axis, bool keep_dim, bool mean)
{
    XRL_EXPECTS(axis >= 0 && axis < input.rank());
    Shape out_shape;
    for (std::int64_t d = 0; d < input.rank(); ++d) {
        if (d == axis) {
            if (keep_dim) out_shape.push_back(1);
        } else {
            out_shape.push_back(input.dim(d));
        }
    }
    std::int64_t outer = 1;
    for (std::int64_t d = 0; d < axis; ++d) outer *= input.dim(d);
    std::int64_t inner = 1;
    for (std::int64_t d = axis + 1; d < input.rank(); ++d) inner *= input.dim(d);
    const std::int64_t extent = input.dim(axis);

    Tensor out(out_shape);
    for (std::int64_t o = 0; o < outer; ++o) {
        for (std::int64_t i = 0; i < inner; ++i) {
            float acc = 0.0F;
            for (std::int64_t e = 0; e < extent; ++e)
                acc += input.at((o * extent + e) * inner + i);
            if (mean) acc /= static_cast<float>(extent);
            out.at(o * inner + i) = acc;
        }
    }
    return out;
}

} // namespace

Tensor reduce_sum(const Tensor& input, std::int64_t axis, bool keep_dim)
{
    return reduce_axis(input, axis, keep_dim, /*mean=*/false);
}

Tensor reduce_mean(const Tensor& input, std::int64_t axis, bool keep_dim)
{
    return reduce_axis(input, axis, keep_dim, /*mean=*/true);
}

Tensor embedding(const Tensor& ids, const Tensor& table)
{
    XRL_EXPECTS(table.rank() == 2);
    const std::int64_t rows = table.dim(0);
    const std::int64_t width = table.dim(1);
    Shape out_shape = ids.shape();
    out_shape.push_back(width);
    Tensor out(out_shape);
    for (std::int64_t i = 0; i < ids.volume(); ++i) {
        const auto row = static_cast<std::int64_t>(ids.at(i));
        XRL_EXPECTS(row >= 0 && row < rows);
        const float* src = table.data() + row * width;
        std::copy(src, src + width, out.data() + i * width);
    }
    return out;
}

Tensor enlarge_kernel(const Tensor& weight, std::int64_t target_r, std::int64_t target_s)
{
    XRL_EXPECTS(weight.rank() == 4);
    const std::int64_t r = weight.dim(2);
    const std::int64_t s = weight.dim(3);
    XRL_EXPECTS(target_r >= r && target_s >= s);
    XRL_EXPECTS((target_r - r) % 2 == 0 && (target_s - s) % 2 == 0);
    const std::int64_t pr = (target_r - r) / 2;
    const std::int64_t ps = (target_s - s) / 2;
    return pad(weight, {0, 0, pr, ps}, {0, 0, pr, ps});
}

} // namespace xrl
