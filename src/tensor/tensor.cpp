#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"

namespace xrl {

std::int64_t shape_volume(const Shape& shape)
{
    std::int64_t v = 1;
    for (const std::int64_t d : shape) {
        XRL_EXPECTS(d >= 0);
        v *= d;
    }
    return v;
}

std::string shape_to_string(const Shape& shape)
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i > 0) os << ", ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_volume(shape_)), 0.0F)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)), data_(std::move(data))
{
    XRL_EXPECTS(static_cast<std::int64_t>(data_.size()) == shape_volume(shape_));
}

Tensor Tensor::scalar(float value)
{
    return Tensor(Shape{}, std::vector<float>{value});
}

Tensor Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    std::fill(t.data_.begin(), t.data_.end(), value);
    return t;
}

Tensor Tensor::random_uniform(Shape shape, Rng& rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (auto& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

std::int64_t Tensor::dim(std::int64_t axis) const
{
    XRL_EXPECTS(axis >= 0 && axis < rank());
    return shape_[static_cast<std::size_t>(axis)];
}

float& Tensor::at(std::int64_t flat_index)
{
    XRL_EXPECTS(flat_index >= 0 && flat_index < volume());
    return data_[static_cast<std::size_t>(flat_index)];
}

float Tensor::at(std::int64_t flat_index) const
{
    XRL_EXPECTS(flat_index >= 0 && flat_index < volume());
    return data_[static_cast<std::size_t>(flat_index)];
}

std::int64_t Tensor::flat_index(const std::vector<std::int64_t>& index) const
{
    XRL_EXPECTS(static_cast<std::int64_t>(index.size()) == rank());
    std::int64_t flat = 0;
    for (std::size_t axis = 0; axis < index.size(); ++axis) {
        XRL_EXPECTS(index[axis] >= 0 && index[axis] < shape_[axis]);
        flat = flat * shape_[axis] + index[axis];
    }
    return flat;
}

Tensor Tensor::reshaped(Shape new_shape) const
{
    XRL_EXPECTS(shape_volume(new_shape) == volume());
    return Tensor(std::move(new_shape), data_);
}

float Tensor::max_abs_difference(const Tensor& a, const Tensor& b)
{
    XRL_EXPECTS(a.shape() == b.shape());
    float worst = 0.0F;
    for (std::int64_t i = 0; i < a.volume(); ++i)
        worst = std::max(worst, std::abs(a.at(i) - b.at(i)));
    return worst;
}

bool Tensor::all_close(const Tensor& a, const Tensor& b, float tolerance)
{
    if (a.shape() != b.shape()) return false;
    return max_abs_difference(a, b) <= tolerance;
}

} // namespace xrl
