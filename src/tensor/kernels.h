// Reference kernels for every operator in the graph IR.
//
// These run on the CPU with straightforward loops. They define the
// *semantics* that rewrite rules must preserve; the property-test suite and
// the TASO-style rule generator execute graphs through these kernels on
// random inputs and compare results.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace xrl {

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

/// NumPy-style broadcast of two shapes; throws Contract_violation when the
/// shapes are incompatible.
Shape broadcast_shapes(const Shape& a, const Shape& b);

Tensor ewise_binary(const Tensor& a, const Tensor& b, const std::function<float(float, float)>& f);

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

Tensor ewise_unary(const Tensor& a, const std::function<float(float)>& f);

Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float negative_slope);
Tensor gelu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor exp_op(const Tensor& a);
Tensor sqrt_op(const Tensor& a);
Tensor erf_op(const Tensor& a);
Tensor scale(const Tensor& a, float factor);

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// Matrix product. Supports (m,k)x(k,n); (b,m,k)x(b,k,n); and
/// (b,m,k)x(k,n) with the right-hand side broadcast over the batch.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Permute axes; `perm` must be a permutation of [0, rank).
Tensor transpose(const Tensor& a, const std::vector<std::int64_t>& perm);

/// Swap the last two axes (the IR's default transpose).
Tensor transpose_last2(const Tensor& a);

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

Tensor concat(const std::vector<Tensor>& parts, std::int64_t axis);

/// Split along `axis` into pieces of the given sizes (must sum to the
/// extent of `axis`).
std::vector<Tensor> split(const Tensor& a, std::int64_t axis, const std::vector<std::int64_t>& sizes);

/// Half-open slice [begin, end) along `axis`.
Tensor slice(const Tensor& a, std::int64_t axis, std::int64_t begin, std::int64_t end);

/// Zero-pad: `before`/`after` give the padding per axis.
Tensor pad(const Tensor& a, const std::vector<std::int64_t>& before, const std::vector<std::int64_t>& after);

// ---------------------------------------------------------------------------
// Convolution / pooling (NCHW)
// ---------------------------------------------------------------------------

struct Conv2d_spec {
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;
    std::int64_t groups = 1;
};

/// input (N,C,H,W) * weight (K,C/groups,R,S) -> (N,K,H',W').
Tensor conv2d(const Tensor& input, const Tensor& weight, const Conv2d_spec& spec);

struct Pool2d_spec {
    std::int64_t kernel_h = 2;
    std::int64_t kernel_w = 2;
    std::int64_t stride_h = 2;
    std::int64_t stride_w = 2;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;
};

Tensor max_pool2d(const Tensor& input, const Pool2d_spec& spec);
Tensor avg_pool2d(const Tensor& input, const Pool2d_spec& spec);

/// (N,C,H,W) -> (N,C,1,1) mean over the spatial extent.
Tensor global_avg_pool(const Tensor& input);

// ---------------------------------------------------------------------------
// Normalisation / attention building blocks
// ---------------------------------------------------------------------------

/// Inference-mode batch norm over channel axis 1 of an NCHW tensor.
Tensor batch_norm(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                  const Tensor& mean, const Tensor& variance, float epsilon);

/// Layer norm over the last axis with learned gamma/beta (1-D of that size).
Tensor layer_norm(const Tensor& input, const Tensor& gamma, const Tensor& beta, float epsilon);

/// Softmax along the last axis.
Tensor softmax(const Tensor& input);

Tensor reduce_sum(const Tensor& input, std::int64_t axis, bool keep_dim);
Tensor reduce_mean(const Tensor& input, std::int64_t axis, bool keep_dim);

/// Row gather: ids (any shape, values are row indices) from table
/// (rows, width) -> ids.shape + [width].
Tensor embedding(const Tensor& ids, const Tensor& table);

/// Pad a conv kernel (K,C,R,S) spatially to (K,C,R',S') centred, zeros
/// elsewhere (TASO's "enlarge" operator).
Tensor enlarge_kernel(const Tensor& weight, std::int64_t target_r, std::int64_t target_s);

} // namespace xrl
