#include "rules/rule.h"

namespace xrl {

Pattern_rule::Pattern_rule(Pattern pattern) : Rewrite_rule(pattern.name), pattern_(std::move(pattern))
{
    pattern_.finalise();
}

std::vector<Graph> Pattern_rule::apply_all(const Graph& graph, std::size_t limit) const
{
    std::vector<Graph> out;
    for (const Pattern_match& match : find_matches(graph, pattern_, limit)) {
        if (out.size() >= limit) break;
        if (auto transformed = apply_match(graph, pattern_, match); transformed.has_value())
            out.push_back(std::move(*transformed));
    }
    return out;
}

} // namespace xrl
