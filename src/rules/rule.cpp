#include "rules/rule.h"

namespace xrl {

std::vector<Graph> Rewrite_rule::apply_all(const Graph& graph, std::size_t limit) const
{
    Graph_batch batch;
    apply_all_into(graph, limit, batch);
    return std::move(batch).take();
}

Pattern_rule::Pattern_rule(Pattern pattern) : Rewrite_rule(pattern.name), pattern_(std::move(pattern))
{
    pattern_.finalise();
}

void Pattern_rule::apply_all_into(const Graph& graph, std::size_t limit, Graph_batch& out) const
{
    for (const Pattern_match& match : find_matches(graph, pattern_, limit)) {
        if (out.size() >= limit) break;
        if (apply_match_into(out.next(), graph, pattern_, match)) out.keep();
    }
}

} // namespace xrl
