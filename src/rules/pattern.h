// Subgraph pattern matching and substitution.
//
// A Pattern is a pair of small graphs (source, target) over shared
// variables, exactly as in TASO's rewrite rules (paper Figure 2): applying
// a rule means pattern-matching the source against the host computation
// graph and splicing in the target. Variables are `input` nodes; the i-th
// variable of the target binds to whatever matched the i-th variable of the
// source.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"
#include "ir/op.h"

namespace xrl {

/// How a source-pattern node's parameters participate in matching.
enum class Param_match : std::uint8_t {
    exact,   ///< Host params must equal the pattern node's params.
    ignore,  ///< Any params match (geometry wildcards, e.g. conv stride).
};

/// Copy parameters from a matched source node into a target node when the
/// target is instantiated; optionally overriding the fused activation.
struct Param_transfer {
    Node_id from_source_node = invalid_node;
    std::optional<Activation> set_activation;
};

/// A rewrite pattern. Invariants: `source` and `target` have the same number
/// of variables (input nodes, matched by order of node id) and the same
/// number of outputs.
struct Pattern {
    std::string name;
    Graph source;
    Graph target;

    /// Per source node id: matching mode (defaults to exact).
    std::unordered_map<Node_id, Param_match> param_modes;

    /// When a source node's params are ignored, optionally still require its
    /// fused activation to equal this value.
    std::unordered_map<Node_id, Activation> required_activation;

    /// Pairs of source nodes whose matched host params must be equal
    /// (e.g. two convolutions with identical geometry).
    std::vector<std::pair<Node_id, Node_id>> equal_params;

    /// Per target node id: params copied from the matched source node.
    std::unordered_map<Node_id, Param_transfer> param_transfers;

    /// Ordered variable lists (computed by finalise()).
    std::vector<Node_id> source_variables;
    std::vector<Node_id> target_variables;

    /// Validate structure and compute the variable lists. Call once after
    /// construction.
    void finalise();
};

/// A successful match of a pattern source against a host graph.
struct Pattern_match {
    /// Source variable node -> host edge bound to it.
    std::unordered_map<Node_id, Edge> var_bindings;
    /// Source internal node -> host node.
    std::unordered_map<Node_id, Node_id> node_map;
    /// match_binding_key of the two maps, filled by the matcher (which
    /// already computes it for its own dedup); the candidate engine reuses
    /// it for fingerprints instead of rehashing.
    std::uint64_t binding_key = 0;
};

/// Order-independent 64-bit key over a match's bindings. One definition
/// serves both the matcher's own dedup of matches reached via different
/// search orders and the candidate engine's pre-materialisation
/// fingerprints — the two must never diverge.
std::uint64_t match_binding_key(const std::unordered_map<Node_id, Edge>& var_bindings,
                                const std::unordered_map<Node_id, Node_id>& node_map);

/// Per-host acceleration structure, shareable across every rule matched
/// against the same graph within one candidate-generation step: alive node
/// ids bucketed by operator kind (so root enumeration visits only
/// kind-compatible nodes) plus the host's use lists (the matcher's
/// outside-use check). Invalidated by any mutation of the host.
class Host_index {
public:
    explicit Host_index(const Graph& host);

    const std::vector<Node_id>& of_kind(Op_kind kind) const
    {
        return by_kind_[static_cast<std::size_t>(kind)];
    }

    const std::vector<std::vector<Edge_use>>& users() const { return users_; }

private:
    std::array<std::vector<Node_id>, static_cast<std::size_t>(Op_kind::count_)> by_kind_;
    std::vector<std::vector<Edge_use>> users_;
};

/// Find (up to `limit`) matches of `pattern.source` in `host`.
///
/// Enforced conditions: operator kinds and arities agree; params agree per
/// `param_modes`/`equal_params`; the mapping is injective on internal
/// nodes; matched internal nodes that do not produce a pattern output have
/// no uses outside the match (TASO's substitution condition).
std::vector<Pattern_match> find_matches(const Graph& host, const Pattern& pattern,
                                        std::size_t limit = SIZE_MAX);

/// Index-reusing variant: `index` must have been built from `host`. The
/// candidate engine builds the index once per step and matches the whole
/// rule corpus against it.
std::vector<Pattern_match> find_matches(const Graph& host, const Host_index& index,
                                        const Pattern& pattern, std::size_t limit = SIZE_MAX);

/// Splice `pattern.target` into a copy of `host` at `match`.
///
/// Returns the transformed graph (shapes inferred, dead nodes removed,
/// validated), or std::nullopt when the transformation is structurally
/// invalid at this site (shape inference failure or a cycle).
std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern,
                                 const Pattern_match& match);

/// Engine variant: additionally reports the canonical hash of the result
/// (a convenience for callers that dedup immediately after applying).
std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern,
                                 const Pattern_match& match, std::uint64_t* canonical_hash_out);

/// A splice point recorded by a rewrite: every use of `before` (an edge of
/// the pre-rewrite graph) was redirected to `after`.
struct Rewired_edge {
    Edge before;
    Edge after;
};

/// Shared epilogue for substitution-style rewrites (pattern substitution
/// and the bespoke shape-dependent rules). `g` is a copy of `host` that was
/// mutated by appending nodes (ids >= `first_new_node`) and redirecting the
/// `rewired` edges. Performs the cycle check, dead-node elimination, shape
/// inference — incrementally over the appended nodes when every splice
/// keeps the shape it replaced, the full pass otherwise — and validation.
/// Returns false (graph state unspecified) when the rewrite is structurally
/// invalid at this site; optionally reports the result's canonical hash.
bool finalise_rewrite(Graph& g, const Graph& host, Node_id first_new_node,
                      const std::vector<Rewired_edge>& rewired,
                      std::uint64_t* canonical_hash_out = nullptr);

} // namespace xrl
