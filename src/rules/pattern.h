// Subgraph pattern matching and substitution.
//
// A Pattern is a pair of small graphs (source, target) over shared
// variables, exactly as in TASO's rewrite rules (paper Figure 2): applying
// a rule means pattern-matching the source against the host computation
// graph and splicing in the target. Variables are `input` nodes; the i-th
// variable of the target binds to whatever matched the i-th variable of the
// source.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"
#include "ir/op.h"

namespace xrl {

/// How a source-pattern node's parameters participate in matching.
enum class Param_match : std::uint8_t {
    exact,   ///< Host params must equal the pattern node's params.
    ignore,  ///< Any params match (geometry wildcards, e.g. conv stride).
};

/// Copy parameters from a matched source node into a target node when the
/// target is instantiated; optionally overriding the fused activation.
struct Param_transfer {
    Node_id from_source_node = invalid_node;
    std::optional<Activation> set_activation;
};

/// A rewrite pattern. Invariants: `source` and `target` have the same number
/// of variables (input nodes, matched by order of node id) and the same
/// number of outputs.
struct Pattern {
    std::string name;
    Graph source;
    Graph target;

    /// Per source node id: matching mode (defaults to exact).
    std::unordered_map<Node_id, Param_match> param_modes;

    /// When a source node's params are ignored, optionally still require its
    /// fused activation to equal this value.
    std::unordered_map<Node_id, Activation> required_activation;

    /// Pairs of source nodes whose matched host params must be equal
    /// (e.g. two convolutions with identical geometry).
    std::vector<std::pair<Node_id, Node_id>> equal_params;

    /// Per target node id: params copied from the matched source node.
    std::unordered_map<Node_id, Param_transfer> param_transfers;

    /// Ordered variable lists (computed by finalise()).
    std::vector<Node_id> source_variables;
    std::vector<Node_id> target_variables;

    /// Topological order of `target` (computed by finalise()): the pattern
    /// is immutable after construction, so the substitution hot path reads
    /// this instead of re-sorting the target per materialised candidate.
    std::vector<Node_id> target_order;

    /// Validate structure and compute the variable lists. Call once after
    /// construction.
    void finalise();
};

/// A successful match of a pattern source against a host graph. Bindings
/// are flat vectors sorted by pattern node id — stable op ids, never
/// pointers or hash-map iteration order — so every consumer (fingerprints,
/// materialisation order, the binding key) is deterministic by
/// construction, independent of allocator behaviour.
struct Pattern_match {
    /// Source variable node -> host edge bound to it; sorted by first.
    std::vector<std::pair<Node_id, Edge>> var_bindings;
    /// Source internal node -> host node; sorted by first.
    std::vector<std::pair<Node_id, Node_id>> node_map;
    /// match_binding_key of the two maps, filled by the matcher (which
    /// already computes it for its own dedup); the candidate engine reuses
    /// it for fingerprints instead of rehashing.
    std::uint64_t binding_key = 0;

    /// Host edge bound to a source variable, or nullptr when unbound.
    const Edge* find_var(Node_id source_var) const;
    /// Host node matched to a source internal node, or invalid_node.
    Node_id mapped_node(Node_id source_node) const;
};

/// Order-independent 64-bit key over a match's bindings (both sorted by
/// pattern node id). One definition serves both the matcher's own dedup of
/// matches reached via different search orders and the candidate engine's
/// pre-materialisation fingerprints — the two must never diverge.
std::uint64_t match_binding_key(const std::vector<std::pair<Node_id, Edge>>& var_bindings,
                                const std::vector<std::pair<Node_id, Node_id>>& node_map);

/// A splice point recorded by a rewrite: every use of `before` (an edge of
/// the pre-rewrite graph) was redirected to `after`.
struct Rewired_edge {
    Edge before;
    Edge after;
};

/// What one rewrite did to the host's node set, reported by
/// finalise_rewrite: exactly the information needed to patch a Host_index
/// in place instead of rebuilding it. Self-contained — the producer lists
/// are snapshotted from the pre-rewrite host, so the patch needs no access
/// to that graph (which the environment has already overwritten by the
/// time the next step's index is needed).
struct Rewrite_delta {
    /// Host ids (< first_new_node) alive before the rewrite, dead after.
    std::vector<Node_id> removed;
    /// Appended ids (>= first_new_node) that survived dead-node elimination,
    /// ascending.
    std::vector<Node_id> added;
    /// Producers of the removed nodes' inputs — every use list that may hold
    /// an entry whose user died (apply_delta filters exactly these, plus the
    /// rewired splice points, against the post-rewrite graph).
    std::vector<Node_id> stale_use_producers;
    /// The splice points (uses moved from before.node to after.node).
    std::vector<Rewired_edge> rewired;
    /// False: the producer could not describe the change (bespoke rules);
    /// the index must be rebuilt.
    bool valid = false;
};

/// Per-host acceleration structure, shareable across every rule matched
/// against the same graph within one candidate-generation step: alive node
/// ids bucketed by operator kind (so root enumeration visits only
/// kind-compatible nodes) plus the host's use lists (the matcher's
/// outside-use check). Invalidated by any mutation of the host — except
/// via apply_delta, which patches buckets and use lists in place from a
/// Rewrite_delta and is equivalent to a from-scratch rebuild (the A/B gate
/// in test_incremental_index proves exact equality).
class Host_index {
public:
    /// Empty index; call rebuild() before use.
    Host_index() = default;
    explicit Host_index(const Graph& host) { rebuild(host); }

    /// Recompute from scratch, reusing this instance's storage.
    void rebuild(const Graph& host);

    /// Patch buckets and use lists for one rewrite step: `new_host` is the
    /// post-rewrite graph (same id space grown by the appended nodes),
    /// `delta` the change finalise_rewrite reported. Produces bit-identical
    /// state to rebuild(new_host).
    void apply_delta(const Graph& new_host, const Rewrite_delta& delta);

    /// Exact structural equality (the incremental-vs-rebuild parity check).
    bool equals(const Host_index& other) const
    {
        return by_kind_ == other.by_kind_ && users_ == other.users_;
    }

    const std::vector<Node_id>& of_kind(Op_kind kind) const
    {
        return by_kind_[static_cast<std::size_t>(kind)];
    }

    const std::vector<std::vector<Edge_use>>& users() const { return users_; }

private:
    std::array<std::vector<Node_id>, static_cast<std::size_t>(Op_kind::count_)> by_kind_;
    std::vector<std::vector<Edge_use>> users_;
    /// Kind per id slot — tombstoning wipes a node's kind from the graph,
    /// so bucket removal must remember it here.
    std::vector<Op_kind> kind_of_;
    /// Scratch for apply_delta (ids whose use lists need re-sorting).
    std::vector<Node_id> touched_;
};

/// Find (up to `limit`) matches of `pattern.source` in `host`.
///
/// Enforced conditions: operator kinds and arities agree; params agree per
/// `param_modes`/`equal_params`; the mapping is injective on internal
/// nodes; matched internal nodes that do not produce a pattern output have
/// no uses outside the match (TASO's substitution condition).
std::vector<Pattern_match> find_matches(const Graph& host, const Pattern& pattern,
                                        std::size_t limit = SIZE_MAX);

/// Index-reusing variant: `index` must have been built from `host`. The
/// candidate engine builds the index once per step and matches the whole
/// rule corpus against it.
std::vector<Pattern_match> find_matches(const Graph& host, const Host_index& index,
                                        const Pattern& pattern, std::size_t limit = SIZE_MAX);

/// Splice `pattern.target` into a copy of `host` at `match`.
///
/// Returns the transformed graph (shapes inferred, dead nodes removed,
/// validated), or std::nullopt when the transformation is structurally
/// invalid at this site (shape inference failure or a cycle).
std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern,
                                 const Pattern_match& match);

/// Engine variant: additionally reports the canonical hash of the result
/// (a convenience for callers that dedup immediately after applying).
std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern,
                                 const Pattern_match& match, std::uint64_t* canonical_hash_out);

/// Allocation-reusing variant: writes the result into `out` (a recycled
/// pool slot keeps every nested buffer warm — the candidate engine's hot
/// path). Returns false when the rewrite is invalid at this site, leaving
/// `out` unspecified. Optionally reports the canonical hash and the
/// Rewrite_delta for incremental Host_index maintenance.
bool apply_match_into(Graph& out, const Graph& host, const Pattern& pattern,
                      const Pattern_match& match, std::uint64_t* canonical_hash_out = nullptr,
                      Rewrite_delta* delta_out = nullptr);

/// Shared epilogue for substitution-style rewrites (pattern substitution
/// and the bespoke shape-dependent rules). `g` is a copy of `host` that was
/// mutated by appending nodes (ids >= `first_new_node`) and redirecting the
/// `rewired` edges. Performs the cycle check, dead-node elimination, shape
/// inference — incrementally over the appended nodes when every splice
/// keeps the shape it replaced, the full pass otherwise — and validation.
/// Returns false (graph state unspecified) when the rewrite is structurally
/// invalid at this site; optionally reports the result's canonical hash and
/// the node-set delta relative to `host` (for incremental index upkeep).
bool finalise_rewrite(Graph& g, const Graph& host, Node_id first_new_node,
                      const std::vector<Rewired_edge>& rewired,
                      std::uint64_t* canonical_hash_out = nullptr,
                      Rewrite_delta* delta_out = nullptr);

} // namespace xrl
