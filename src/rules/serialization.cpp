#include "rules/serialization.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace xrl {

namespace {

// Textual format (one token stream per rule):
//
//   rule <name>
//   graph source|target
//     node <id> <kind> inputs <n> <node>:<port>... shape <rank> <dims...> { <params> }
//     outputs <n> <node>:<port>...
//   param_mode <node> ignore
//   required_activation <node> <activation>
//   equal_params <a> <b>
//   transfer <target-node> <source-node> <activation|->
//   endrule

void serialise_graph(std::ostream& os, const char* label, const Graph& g)
{
    os << "graph " << label << "\n";
    for (const Node_id id : g.node_ids()) {
        const Node& n = g.node(id);
        // Constant payloads are not representable in the text format;
        // patterns that need literals stay programmatic (bespoke rules).
        XRL_EXPECTS(n.kind != Op_kind::constant);
        os << "  node " << id << ' ' << op_kind_name(n.kind) << " inputs " << n.inputs.size();
        for (const Edge& e : n.inputs) os << ' ' << e.node << ':' << e.port;
        // Source-kind nodes carry their sample shape so round-trips are
        // faithful (matching itself ignores shapes).
        const Shape shape = n.output_shapes.empty() ? Shape{} : n.output_shapes.front();
        os << " shape " << shape.size();
        for (const std::int64_t dim : shape) os << ' ' << dim;
        os << " { " << params_to_string(n.params) << " }\n";
    }
    os << "  outputs " << g.outputs().size();
    for (const Edge& e : g.outputs()) os << ' ' << e.node << ':' << e.port;
    os << "\n";
}

Edge parse_edge(const std::string& token)
{
    const std::size_t colon = token.find(':');
    XRL_EXPECTS(colon != std::string::npos);
    return Edge{static_cast<Node_id>(std::stoi(token.substr(0, colon))),
                static_cast<std::int32_t>(std::stoi(token.substr(colon + 1)))};
}

Graph deserialise_graph(std::istream& is)
{
    Graph g;
    std::unordered_map<Node_id, Node_id> id_map; // file id -> graph id
    std::string token;
    while (is >> token) {
        if (token == "node") {
            Node_id file_id = 0;
            std::string kind_name;
            std::string marker;
            std::size_t num_inputs = 0;
            is >> file_id >> kind_name >> marker >> num_inputs;
            XRL_EXPECTS(marker == "inputs");
            std::vector<Edge> inputs;
            inputs.reserve(num_inputs);
            for (std::size_t i = 0; i < num_inputs; ++i) {
                std::string edge_token;
                is >> edge_token;
                const Edge e = parse_edge(edge_token);
                const auto it = id_map.find(e.node);
                XRL_EXPECTS(it != id_map.end());
                inputs.push_back(Edge{it->second, e.port});
            }
            is >> marker;
            XRL_EXPECTS(marker == "shape");
            std::size_t rank = 0;
            is >> rank;
            Shape shape(rank);
            for (auto& dim : shape) is >> dim;
            is >> marker;
            XRL_EXPECTS(marker == "{");
            std::string params_text;
            std::string word;
            while (is >> word && word != "}") {
                if (!params_text.empty()) params_text += ' ';
                params_text += word;
            }
            const Op_kind kind = op_kind_from_name(kind_name);
            const Node_id id = g.add_node(kind, std::move(inputs), params_from_string(params_text));
            if (is_source(kind)) g.node_mut(id).output_shapes = {shape};
            id_map.emplace(file_id, id);
        } else if (token == "outputs") {
            std::size_t num_outputs = 0;
            is >> num_outputs;
            std::vector<Edge> outputs;
            outputs.reserve(num_outputs);
            for (std::size_t i = 0; i < num_outputs; ++i) {
                std::string edge_token;
                is >> edge_token;
                const Edge e = parse_edge(edge_token);
                outputs.push_back(Edge{id_map.at(e.node), e.port});
            }
            g.set_outputs(std::move(outputs));
            return g;
        } else {
            XRL_EXPECTS(false && "unexpected token in graph block");
        }
    }
    XRL_EXPECTS(false && "unterminated graph block");
    return g;
}

} // namespace

void serialise_patterns(std::ostream& os, const std::vector<Pattern>& patterns)
{
    os << "# xrlflow rewrite rules v1\n";
    for (const Pattern& p : patterns) {
        os << "rule " << p.name << "\n";
        serialise_graph(os, "source", p.source);
        serialise_graph(os, "target", p.target);
        for (const auto& [node, mode] : p.param_modes)
            if (mode == Param_match::ignore) os << "param_mode " << node << " ignore\n";
        for (const auto& [node, act] : p.required_activation)
            os << "required_activation " << node << ' ' << activation_name(act) << "\n";
        for (const auto& [a, b] : p.equal_params) os << "equal_params " << a << ' ' << b << "\n";
        for (const auto& [node, transfer] : p.param_transfers) {
            os << "transfer " << node << ' ' << transfer.from_source_node << ' ';
            if (transfer.set_activation.has_value())
                os << activation_name(*transfer.set_activation);
            else
                os << '-';
            os << "\n";
        }
        os << "endrule\n";
    }
}

std::vector<Pattern> deserialise_patterns(std::istream& is)
{
    std::vector<Pattern> patterns;
    std::string token;
    Pattern current;
    bool in_rule = false;
    while (is >> token) {
        if (token == "#") {
            std::string rest;
            std::getline(is, rest);
        } else if (token.starts_with("#")) {
            std::string rest;
            std::getline(is, rest);
        } else if (token == "rule") {
            XRL_EXPECTS(!in_rule);
            current = Pattern{};
            is >> current.name;
            in_rule = true;
        } else if (token == "graph") {
            XRL_EXPECTS(in_rule);
            std::string which;
            is >> which;
            if (which == "source")
                current.source = deserialise_graph(is);
            else if (which == "target")
                current.target = deserialise_graph(is);
            else
                XRL_EXPECTS(false && "graph must be source or target");
        } else if (token == "param_mode") {
            Node_id node = 0;
            std::string mode;
            is >> node >> mode;
            XRL_EXPECTS(mode == "ignore");
            current.param_modes[node] = Param_match::ignore;
        } else if (token == "required_activation") {
            Node_id node = 0;
            std::string act;
            is >> node >> act;
            current.required_activation[node] = activation_from_name(act);
        } else if (token == "equal_params") {
            Node_id a = 0;
            Node_id b = 0;
            is >> a >> b;
            current.equal_params.emplace_back(a, b);
        } else if (token == "transfer") {
            Node_id node = 0;
            Node_id from = 0;
            std::string act;
            is >> node >> from >> act;
            Param_transfer transfer;
            transfer.from_source_node = from;
            if (act != "-") transfer.set_activation = activation_from_name(act);
            current.param_transfers[node] = transfer;
        } else if (token == "endrule") {
            XRL_EXPECTS(in_rule);
            current.finalise();
            patterns.push_back(std::move(current));
            in_rule = false;
        } else {
            XRL_EXPECTS(false && "unexpected top-level token");
        }
    }
    XRL_EXPECTS(!in_rule);
    return patterns;
}

void save_patterns(const std::string& path, const std::vector<Pattern>& patterns)
{
    std::ofstream os(path);
    XRL_EXPECTS(os.good());
    serialise_patterns(os, patterns);
}

std::vector<Pattern> load_patterns(const std::string& path)
{
    std::ifstream is(path);
    XRL_EXPECTS(is.good());
    return deserialise_patterns(is);
}

} // namespace xrl
