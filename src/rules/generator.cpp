#include "rules/generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <cmath>
#include <iterator>

#include "ir/builder.h"
#include "ir/executor.h"
#include "support/check.h"
#include "support/rng.h"

namespace xrl {

namespace {

constexpr std::int64_t fp_dim = 4; // fingerprint tensors are fp_dim x fp_dim

const Op_kind unary_family[] = {Op_kind::relu, Op_kind::tanh, Op_kind::identity, Op_kind::transpose};
const Op_kind binary_family[] = {Op_kind::add, Op_kind::mul, Op_kind::sub, Op_kind::matmul};

/// One operator of a straight-line program. Operand indices < nv refer to
/// variables; operand index nv+i refers to the output of step i.
struct Op_step {
    Op_kind kind;
    int in0 = 0;
    int in1 = -1; // -1 for unary ops
};

using Program = std::vector<Op_step>;

int op_cost(Op_kind kind)
{
    switch (kind) {
    case Op_kind::matmul: return 64;
    case Op_kind::transpose: return 2;
    case Op_kind::identity: return 0;
    default: return 1;
    }
}

int program_cost(const Program& program)
{
    int cost = 0;
    for (const Op_step& step : program) cost += op_cost(step.kind);
    return cost;
}

/// Build the program as a pattern graph: `nv` square-matrix variables
/// followed by the ops; the last op is the sole output.
Graph build_graph(const Program& program, int nv)
{
    Graph_builder b;
    std::vector<Edge> values;
    for (int v = 0; v < nv; ++v) values.push_back(b.input({fp_dim, fp_dim}));
    for (const Op_step& step : program) {
        const Edge a = values[static_cast<std::size_t>(step.in0)];
        Edge result;
        switch (step.kind) {
        case Op_kind::add: result = b.add(a, values[static_cast<std::size_t>(step.in1)]); break;
        case Op_kind::mul: result = b.mul(a, values[static_cast<std::size_t>(step.in1)]); break;
        case Op_kind::sub: result = b.sub(a, values[static_cast<std::size_t>(step.in1)]); break;
        case Op_kind::matmul: result = b.matmul(a, values[static_cast<std::size_t>(step.in1)]); break;
        case Op_kind::relu: result = b.relu(a); break;
        case Op_kind::tanh: result = b.tanh(a); break;
        case Op_kind::identity: result = b.identity(a); break;
        case Op_kind::transpose: result = b.transpose(a); break;
        default: XRL_EXPECTS(false);
        }
        values.push_back(result);
    }
    return b.finish({values.back()});
}

/// Each non-final op must be consumed by a later op (no dead compute).
bool is_connected(const Program& program, int nv)
{
    for (std::size_t i = 0; i + 1 < program.size(); ++i) {
        const int value_index = nv + static_cast<int>(i);
        bool used = false;
        for (std::size_t j = i + 1; j < program.size() && !used; ++j)
            used = program[j].in0 == value_index || program[j].in1 == value_index;
        if (!used) return false;
    }
    return true;
}

void enumerate_programs(const Generator_config& cfg, Program& current, std::vector<Program>& out)
{
    if (!current.empty() && is_connected(current, cfg.num_variables)) out.push_back(current);
    if (static_cast<int>(current.size()) >= cfg.max_ops) return;
    const int num_values = cfg.num_variables + static_cast<int>(current.size());
    for (const Op_kind kind : unary_family) {
        for (int a = 0; a < num_values; ++a) {
            current.push_back({kind, a, -1});
            enumerate_programs(cfg, current, out);
            current.pop_back();
        }
    }
    for (const Op_kind kind : binary_family) {
        for (int a = 0; a < num_values; ++a) {
            for (int b = 0; b < num_values; ++b) {
                current.push_back({kind, a, b});
                enumerate_programs(cfg, current, out);
                current.pop_back();
            }
        }
    }
}

Program sample_program(const Generator_config& cfg, int length, Rng& rng)
{
    Program program;
    for (int i = 0; i < length; ++i) {
        const int num_values = cfg.num_variables + i;
        // Bias the final op toward consuming the previous one so sampled
        // programs are usually connected.
        const bool binary = rng.uniform() < 0.6;
        Op_step step;
        if (binary) {
            step.kind = binary_family[rng.uniform_index(std::size(binary_family))];
            step.in0 = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(num_values)));
            step.in1 = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(num_values)));
        } else {
            step.kind = unary_family[rng.uniform_index(std::size(unary_family))];
            step.in0 = static_cast<int>(rng.uniform_index(static_cast<std::size_t>(num_values)));
        }
        program.push_back(step);
    }
    return program;
}

std::uint64_t fingerprint(const Graph& graph, const std::vector<Binding_map>& trials)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 0x100000001b3ULL; };
    for (const Binding_map& bindings : trials) {
        const auto outputs = execute(graph, bindings);
        for (const Tensor& t : outputs) {
            for (const std::int64_t dim : t.shape()) mix(static_cast<std::uint64_t>(dim));
            for (std::int64_t i = 0; i < t.volume(); ++i) {
                // Quantise so float noise cannot split a group; verification
                // weeds out accidental collisions.
                mix(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(std::round(t.at(i) * 256.0F))));
            }
        }
    }
    return h;
}

bool outputs_equal(const Graph& a, const Graph& b, const Binding_map& bindings, float tolerance)
{
    const auto oa = execute(a, bindings);
    const auto ob = execute(b, bindings);
    if (oa.size() != ob.size()) return false;
    for (std::size_t i = 0; i < oa.size(); ++i)
        if (!Tensor::all_close(oa[i], ob[i], tolerance)) return false;
    return true;
}

Binding_map make_trial_bindings(int nv, Rng& rng)
{
    Binding_map bindings;
    for (Node_id v = 0; v < nv; ++v)
        bindings.emplace(v, Tensor::random_uniform({fp_dim, fp_dim}, rng, -1.0F, 1.0F));
    return bindings;
}

} // namespace

Generation_report generate_algebraic_rules(const Generator_config& cfg)
{
    XRL_EXPECTS(cfg.num_variables >= 1 && cfg.max_ops >= 1);
    Generation_report report;
    Rng rng(cfg.seed);

    std::vector<Program> programs;
    Program scratch;
    enumerate_programs(cfg, scratch, programs);
    for (int i = 0; i < cfg.extra_sampled_programs; ++i) {
        Program p = sample_program(cfg, cfg.max_ops + 1, rng);
        if (is_connected(p, cfg.num_variables)) programs.push_back(std::move(p));
    }
    report.programs_enumerated = static_cast<int>(programs.size());

    // Build graphs, dedup structurally identical programs.
    struct Candidate {
        Program program;
        Graph graph;
        int cost;
    };
    std::vector<Candidate> candidates;
    std::set<std::uint64_t> seen_structures;
    for (const Program& p : programs) {
        Graph g = build_graph(p, cfg.num_variables);
        if (!seen_structures.insert(g.canonical_hash()).second) continue;
        candidates.push_back({p, std::move(g), program_cost(p)});
    }

    // Fingerprint with shared trial inputs (variables share node ids 0..nv-1
    // across all candidate graphs by construction).
    std::vector<Binding_map> fp_trials;
    for (int t = 0; t < cfg.fingerprint_trials; ++t)
        fp_trials.push_back(make_trial_bindings(cfg.num_variables, rng));

    std::map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < candidates.size(); ++i)
        groups[fingerprint(candidates[i].graph, fp_trials)].push_back(i);

    std::vector<Binding_map> verify_trials;
    for (int t = 0; t < cfg.verify_trials; ++t)
        verify_trials.push_back(make_trial_bindings(cfg.num_variables, rng));

    std::set<std::pair<std::uint64_t, std::uint64_t>> emitted;
    int rule_index = 0;
    for (const auto& [fp, members] : groups) {
        if (members.size() < 2) continue;
        ++report.fingerprint_groups;
        // Pair the cheapest member with every costlier one.
        std::size_t best = members.front();
        for (const std::size_t m : members)
            if (candidates[m].cost < candidates[best].cost) best = m;
        for (const std::size_t m : members) {
            if (report.patterns.size() >= cfg.max_rules) break;
            if (m == best || candidates[m].cost <= candidates[best].cost) continue;
            ++report.pairs_considered;
            const auto key = std::make_pair(candidates[m].graph.canonical_hash(),
                                            candidates[best].graph.canonical_hash());
            if (!emitted.insert(key).second) continue;
            bool verified = true;
            for (const Binding_map& bindings : verify_trials) {
                if (!outputs_equal(candidates[m].graph, candidates[best].graph, bindings,
                                   cfg.tolerance)) {
                    verified = false;
                    break;
                }
            }
            if (!verified) {
                ++report.pairs_rejected;
                continue;
            }
            ++report.pairs_verified;
            Pattern p;
            p.name = "gen-" + std::to_string(rule_index++);
            p.source = candidates[m].graph;
            p.target = candidates[best].graph;
            p.finalise();
            report.patterns.push_back(std::move(p));
        }
        if (report.patterns.size() >= cfg.max_rules) break;
    }
    return report;
}

} // namespace xrl
