#include "rules/corpus.h"

#include "ir/builder.h"
#include "rules/bespoke_rules.h"

namespace xrl {

namespace {

// Sample shapes used when constructing pattern graphs. Matching ignores
// them entirely; they only let Graph_builder sanity-check each pattern's
// structure at definition time.
constexpr std::int64_t d = 4;

Pattern fuse_matmul_activation(Op_kind act_kind, Activation act)
{
    Pattern p;
    p.name = std::string("fuse-matmul-") + op_kind_name(act_kind);
    Graph_builder src;
    const Edge x = src.input({d, d});
    const Edge w = src.input({d, d});
    const Edge m = src.matmul(x, w);
    const Edge r = src.apply_unary(act_kind, m);
    p.source = src.finish({r});
    p.param_modes[m.node] = Param_match::ignore;
    p.required_activation[m.node] = Activation::none;

    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    const Edge tw = tgt.input({d, d});
    const Edge tm = tgt.matmul(tx, tw);
    p.target = tgt.finish({tm});
    p.param_transfers[tm.node] = Param_transfer{m.node, act};
    return p;
}

Pattern fuse_conv_activation(Op_kind act_kind, Activation act)
{
    Pattern p;
    p.name = std::string("fuse-conv-") + op_kind_name(act_kind);
    Graph_builder src;
    const Edge x = src.input({1, d, 8, 8});
    const Edge w = src.input({d, d, 3, 3});
    const Edge c = src.conv2d(x, w, 1, 1);
    const Edge r = src.apply_unary(act_kind, c);
    p.source = src.finish({r});
    p.param_modes[c.node] = Param_match::ignore;
    p.required_activation[c.node] = Activation::none;

    Graph_builder tgt;
    const Edge tx = tgt.input({1, d, 8, 8});
    const Edge tw = tgt.input({d, d, 3, 3});
    const Edge tc = tgt.conv2d(tx, tw, 1, 1);
    p.target = tgt.finish({tc});
    p.param_transfers[tc.node] = Param_transfer{c.node, act};
    return p;
}

Pattern matmul_assoc_right()
{
    Pattern p;
    p.name = "matmul-assoc-right";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge c = src.input({d, d});
    p.source = src.finish({src.matmul(src.matmul(a, b), c)});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tc = tgt.input({d, d});
    p.target = tgt.finish({tgt.matmul(ta, tgt.matmul(tb, tc))});
    return p;
}

Pattern matmul_assoc_left()
{
    Pattern p;
    p.name = "matmul-assoc-left";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge c = src.input({d, d});
    p.source = src.finish({src.matmul(a, src.matmul(b, c))});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tc = tgt.input({d, d});
    p.target = tgt.finish({tgt.matmul(tgt.matmul(ta, tb), tc)});
    return p;
}

Pattern matmul_factor_rhs()
{
    // add(matmul(A,B), matmul(A,C)) -> matmul(A, add(B,C))
    Pattern p;
    p.name = "matmul-factor-rhs";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge c = src.input({d, d});
    p.source = src.finish({src.add(src.matmul(a, b), src.matmul(a, c))});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tc = tgt.input({d, d});
    p.target = tgt.finish({tgt.matmul(ta, tgt.add(tb, tc))});
    return p;
}

Pattern matmul_factor_lhs()
{
    // add(matmul(A,C), matmul(B,C)) -> matmul(add(A,B), C)
    Pattern p;
    p.name = "matmul-factor-lhs";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge c = src.input({d, d});
    p.source = src.finish({src.add(src.matmul(a, c), src.matmul(b, c))});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tc = tgt.input({d, d});
    p.target = tgt.finish({tgt.matmul(tgt.add(ta, tb), tc)});
    return p;
}

Pattern matmul_distribute_rhs()
{
    // matmul(A, add(B,C)) -> add(matmul(A,B), matmul(A,C))
    // A deliberately compute-increasing move the agent can exploit for
    // long-term gain (the paper's "temporary loss of performance").
    Pattern p;
    p.name = "matmul-distribute-rhs";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge c = src.input({d, d});
    p.source = src.finish({src.matmul(a, src.add(b, c))});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tc = tgt.input({d, d});
    p.target = tgt.finish({tgt.add(tgt.matmul(ta, tb), tgt.matmul(ta, tc))});
    return p;
}

Pattern transpose_transpose_elim()
{
    Pattern p;
    p.name = "transpose-transpose-elim";
    Graph_builder src;
    const Edge x = src.input({d, d});
    p.source = src.finish({src.transpose(src.transpose(x))});

    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    p.target = tgt.finish({tx});
    return p;
}

Pattern transpose_of_matmul()
{
    // transpose(matmul(A,B)) -> matmul(transpose(B), transpose(A))
    Pattern p;
    p.name = "transpose-of-matmul";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    p.source = src.finish({src.transpose(src.matmul(a, b))});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    p.target = tgt.finish({tgt.matmul(tgt.transpose(tb), tgt.transpose(ta))});
    return p;
}

Pattern matmul_of_transposes()
{
    // matmul(transpose(B), transpose(A)) -> transpose(matmul(A,B))
    Pattern p;
    p.name = "matmul-of-transposes";
    Graph_builder src;
    const Edge b = src.input({d, d});
    const Edge a = src.input({d, d});
    p.source = src.finish({src.matmul(src.transpose(b), src.transpose(a))});

    Graph_builder tgt;
    const Edge tb = tgt.input({d, d});
    const Edge ta = tgt.input({d, d});
    p.target = tgt.finish({tgt.transpose(tgt.matmul(ta, tb))});
    return p;
}

Pattern add_assoc()
{
    Pattern p;
    p.name = "add-assoc";
    Graph_builder src;
    const Edge x = src.input({d, d});
    const Edge y = src.input({d, d});
    const Edge z = src.input({d, d});
    p.source = src.finish({src.add(src.add(x, y), z)});

    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    const Edge ty = tgt.input({d, d});
    const Edge tz = tgt.input({d, d});
    p.target = tgt.finish({tgt.add(tx, tgt.add(ty, tz))});
    return p;
}

Pattern mul_distribute_add()
{
    Pattern p;
    p.name = "mul-distribute-add";
    Graph_builder src;
    const Edge x = src.input({d, d});
    const Edge y = src.input({d, d});
    const Edge z = src.input({d, d});
    p.source = src.finish({src.mul(src.add(x, y), z)});

    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    const Edge ty = tgt.input({d, d});
    const Edge tz = tgt.input({d, d});
    p.target = tgt.finish({tgt.add(tgt.mul(tx, tz), tgt.mul(ty, tz))});
    return p;
}

Pattern mul_factor_add()
{
    Pattern p;
    p.name = "mul-factor-add";
    Graph_builder src;
    const Edge x = src.input({d, d});
    const Edge y = src.input({d, d});
    const Edge z = src.input({d, d});
    p.source = src.finish({src.add(src.mul(x, z), src.mul(y, z))});

    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    const Edge ty = tgt.input({d, d});
    const Edge tz = tgt.input({d, d});
    p.target = tgt.finish({tgt.mul(tgt.add(tx, ty), tz)});
    return p;
}

Pattern relu_relu_elim()
{
    Pattern p;
    p.name = "relu-relu-elim";
    Graph_builder src;
    const Edge x = src.input({d, d});
    p.source = src.finish({src.relu(src.relu(x))});
    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    p.target = tgt.finish({tgt.relu(tx)});
    return p;
}

Pattern unary_elim(Op_kind kind)
{
    Pattern p;
    p.name = std::string(op_kind_name(kind)) + "-elim";
    Graph_builder src;
    const Edge x = src.input({d, d});
    const Edge y = src.apply_unary(kind, x);
    p.source = src.finish({y});
    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    p.target = tgt.finish({tx});
    return p;
}

Pattern relu_of_concat()
{
    // relu(concat(a,b)) -> concat(relu(a), relu(b))
    Pattern p;
    p.name = "relu-of-concat";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge cat = src.concat(0, {a, b});
    p.source = src.finish({src.relu(cat)});
    p.param_modes[cat.node] = Param_match::ignore;

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tcat = tgt.concat(0, {tgt.relu(ta), tgt.relu(tb)});
    p.target = tgt.finish({tcat});
    p.param_transfers[tcat.node] = Param_transfer{cat.node, std::nullopt};
    return p;
}

Pattern concat_of_relus()
{
    // concat(relu(a), relu(b)) -> relu(concat(a,b))
    Pattern p;
    p.name = "concat-of-relus";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge cat = src.concat(0, {src.relu(a), src.relu(b)});
    p.source = src.finish({cat});
    p.param_modes[cat.node] = Param_match::ignore;

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tcat = tgt.concat(0, {ta, tb});
    p.target = tgt.finish({tgt.relu(tcat)});
    p.param_transfers[tcat.node] = Param_transfer{cat.node, std::nullopt};
    return p;
}

Pattern add_of_concats()
{
    // add(concat(a,b), concat(c,d)) -> concat(add(a,c), add(b,d))
    Pattern p;
    p.name = "add-of-concats";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge c = src.input({d, d});
    const Edge e = src.input({d, d});
    const Edge cat1 = src.concat(0, {a, b});
    const Edge cat2 = src.concat(0, {c, e});
    p.source = src.finish({src.add(cat1, cat2)});
    p.param_modes[cat1.node] = Param_match::ignore;
    p.param_modes[cat2.node] = Param_match::ignore;
    p.equal_params.emplace_back(cat1.node, cat2.node);

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tc = tgt.input({d, d});
    const Edge te = tgt.input({d, d});
    const Edge tcat = tgt.concat(0, {tgt.add(ta, tc), tgt.add(tb, te)});
    p.target = tgt.finish({tcat});
    p.param_transfers[tcat.node] = Param_transfer{cat1.node, std::nullopt};
    return p;
}

Pattern pool_relu_commute()
{
    // max_pool(relu(x)) -> relu(max_pool(x)) : pooling fewer activations.
    Pattern p;
    p.name = "pool-relu-commute";
    Graph_builder src;
    const Edge x = src.input({1, d, 8, 8});
    const Edge pool = src.max_pool2d(src.relu(x), 2, 2);
    p.source = src.finish({pool});
    p.param_modes[pool.node] = Param_match::ignore;

    Graph_builder tgt;
    const Edge tx = tgt.input({1, d, 8, 8});
    const Edge tpool = tgt.max_pool2d(tx, 2, 2);
    p.target = tgt.finish({tgt.relu(tpool)});
    p.param_transfers[tpool.node] = Param_transfer{pool.node, std::nullopt};
    return p;
}

Pattern relu_pool_commute()
{
    // relu(max_pool(x)) -> max_pool(relu(x))
    Pattern p;
    p.name = "relu-pool-commute";
    Graph_builder src;
    const Edge x = src.input({1, d, 8, 8});
    const Edge pool = src.max_pool2d(x, 2, 2);
    p.source = src.finish({src.relu(pool)});
    p.param_modes[pool.node] = Param_match::ignore;

    Graph_builder tgt;
    const Edge tx = tgt.input({1, d, 8, 8});
    const Edge tpool = tgt.max_pool2d(tgt.relu(tx), 2, 2);
    p.target = tgt.finish({tpool});
    p.param_transfers[tpool.node] = Param_transfer{pool.node, std::nullopt};
    return p;
}

Pattern scale_into_matmul()
{
    // scale(matmul(x,w)) -> matmul(x, scale(w)) : fold the scalar into the
    // (typically weight-only) right-hand side.
    Pattern p;
    p.name = "scale-into-matmul";
    Graph_builder src;
    const Edge x = src.input({d, d});
    const Edge w = src.input({d, d});
    const Edge m = src.matmul(x, w);
    const Edge s = src.scale(m, 2.0F);
    p.source = src.finish({s});
    p.param_modes[m.node] = Param_match::ignore;
    p.required_activation[m.node] = Activation::none;
    p.param_modes[s.node] = Param_match::ignore;

    Graph_builder tgt;
    const Edge tx = tgt.input({d, d});
    const Edge tw = tgt.input({d, d});
    const Edge ts = tgt.scale(tw, 2.0F);
    const Edge tm = tgt.matmul(tx, ts);
    p.target = tgt.finish({tm});
    p.param_transfers[ts.node] = Param_transfer{s.node, std::nullopt};
    p.param_transfers[tm.node] = Param_transfer{m.node, std::nullopt};
    return p;
}

Pattern scale_into_conv()
{
    Pattern p;
    p.name = "scale-into-conv";
    Graph_builder src;
    const Edge x = src.input({1, d, 8, 8});
    const Edge w = src.input({d, d, 3, 3});
    const Edge c = src.conv2d(x, w, 1, 1);
    const Edge s = src.scale(c, 2.0F);
    p.source = src.finish({s});
    p.param_modes[c.node] = Param_match::ignore;
    p.required_activation[c.node] = Activation::none;
    p.param_modes[s.node] = Param_match::ignore;

    Graph_builder tgt;
    const Edge tx = tgt.input({1, d, 8, 8});
    const Edge tw = tgt.input({d, d, 3, 3});
    const Edge ts = tgt.scale(tw, 2.0F);
    const Edge tc = tgt.conv2d(tx, ts, 1, 1);
    p.target = tgt.finish({tc});
    p.param_transfers[ts.node] = Param_transfer{s.node, std::nullopt};
    p.param_transfers[tc.node] = Param_transfer{c.node, std::nullopt};
    return p;
}

Pattern concat_of_matmuls_shared_rhs()
{
    // concat0(matmul(A,W), matmul(B,W)) -> matmul(concat0(A,B), W)
    Pattern p;
    p.name = "concat-of-matmuls-shared-rhs";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge w = src.input({d, d});
    const Edge cat = src.concat(0, {src.matmul(a, w), src.matmul(b, w)});
    p.source = src.finish({cat});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tw = tgt.input({d, d});
    p.target = tgt.finish({tgt.matmul(tgt.concat(0, {ta, tb}), tw)});
    return p;
}

Pattern matmul_of_concat_rows()
{
    // matmul(concat0(A,B), W) -> concat0(matmul(A,W), matmul(B,W))
    Pattern p;
    p.name = "matmul-of-concat-rows";
    Graph_builder src;
    const Edge a = src.input({d, d});
    const Edge b = src.input({d, d});
    const Edge w = src.input({d, d});
    p.source = src.finish({src.matmul(src.concat(0, {a, b}), w)});

    Graph_builder tgt;
    const Edge ta = tgt.input({d, d});
    const Edge tb = tgt.input({d, d});
    const Edge tw = tgt.input({d, d});
    p.target = tgt.finish({tgt.concat(0, {tgt.matmul(ta, tw), tgt.matmul(tb, tw)})});
    return p;
}

} // namespace

std::vector<Pattern> curated_patterns()
{
    std::vector<Pattern> patterns;
    patterns.push_back(fuse_matmul_activation(Op_kind::relu, Activation::relu));
    patterns.push_back(fuse_matmul_activation(Op_kind::gelu, Activation::gelu));
    patterns.push_back(fuse_matmul_activation(Op_kind::tanh, Activation::tanh));
    patterns.push_back(fuse_conv_activation(Op_kind::relu, Activation::relu));
    patterns.push_back(fuse_conv_activation(Op_kind::sigmoid, Activation::sigmoid));
    patterns.push_back(matmul_assoc_right());
    patterns.push_back(matmul_assoc_left());
    patterns.push_back(matmul_factor_rhs());
    patterns.push_back(matmul_factor_lhs());
    patterns.push_back(matmul_distribute_rhs());
    patterns.push_back(transpose_transpose_elim());
    patterns.push_back(transpose_of_matmul());
    patterns.push_back(matmul_of_transposes());
    patterns.push_back(add_assoc());
    patterns.push_back(mul_distribute_add());
    patterns.push_back(mul_factor_add());
    patterns.push_back(relu_relu_elim());
    patterns.push_back(unary_elim(Op_kind::identity));
    patterns.push_back(unary_elim(Op_kind::dropout));
    patterns.push_back(relu_of_concat());
    patterns.push_back(concat_of_relus());
    patterns.push_back(add_of_concats());
    patterns.push_back(pool_relu_commute());
    patterns.push_back(relu_pool_commute());
    patterns.push_back(scale_into_matmul());
    patterns.push_back(scale_into_conv());
    patterns.push_back(concat_of_matmuls_shared_rhs());
    patterns.push_back(matmul_of_concat_rows());
    for (Pattern& p : patterns) p.finalise();
    return patterns;
}

Rule_set standard_rule_corpus()
{
    Rule_set rules;
    for (Pattern& p : curated_patterns())
        rules.push_back(std::make_unique<Pattern_rule>(std::move(p)));
    rules.push_back(make_merge_matmul_shared_lhs_rule());
    rules.push_back(make_merge_conv_shared_input_rule());
    rules.push_back(make_eliminate_split_concat_rule());
    rules.push_back(make_eliminate_concat_split_rule());
    rules.push_back(make_fold_batch_norm_rule());
    rules.push_back(make_merge_conv_add_enlarge_rule());
    rules.push_back(make_fold_embedding_projection_rule());
    return rules;
}

std::vector<std::string> standard_rule_names()
{
    std::vector<std::string> names;
    for (const auto& rule : standard_rule_corpus()) names.push_back(rule->name());
    return names;
}

} // namespace xrl
