// Rule (de)serialisation.
//
// The paper (§3.2): rewrite rules "are serialised to a text file. At the
// beginning of the optimisation phase, rewrite rules are deserialised from
// the text file and activated." This module implements that round-trip for
// declarative Patterns (generated rules use it; bespoke rules are code).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules/pattern.h"

namespace xrl {

/// Write patterns in the textual rule format.
void serialise_patterns(std::ostream& os, const std::vector<Pattern>& patterns);

/// Parse patterns back; throws Contract_violation on malformed input.
std::vector<Pattern> deserialise_patterns(std::istream& is);

/// File-based convenience wrappers.
void save_patterns(const std::string& path, const std::vector<Pattern>& patterns);
std::vector<Pattern> load_patterns(const std::string& path);

} // namespace xrl
