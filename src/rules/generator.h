// TASO-style automatic rule generation.
//
// Mirrors the mechanism the paper inherits from TASO (§2.2.1/§3.2): small
// operator DAGs are enumerated up to a constant size, fingerprinted by
// executing them on random tensors, and every fingerprint-equal pair whose
// costs differ becomes a candidate rewrite rule. Candidates are then
// verified on further random inputs before being emitted (and can be
// serialised to the text rule file).
#pragma once

#include <cstdint>
#include <vector>

#include "rules/pattern.h"

namespace xrl {

struct Generator_config {
    int max_ops = 2;             ///< Exhaustive enumeration depth.
    int num_variables = 3;       ///< Variables available to each program.
    int extra_sampled_programs = 400;  ///< Random size-(max_ops+1) programs.
    int fingerprint_trials = 2;  ///< Random input sets used for grouping.
    int verify_trials = 4;       ///< Additional input sets for verification.
    float tolerance = 1e-3F;     ///< Max |difference| treated as equal.
    std::size_t max_rules = 64;  ///< Emission cap.
    std::uint64_t seed = 99;
};

struct Generation_report {
    std::vector<Pattern> patterns;
    int programs_enumerated = 0;
    int fingerprint_groups = 0;
    int pairs_considered = 0;
    int pairs_verified = 0;
    int pairs_rejected = 0;
};

/// Enumerate, fingerprint, verify and emit algebraic rewrite rules over the
/// {add, mul, sub, relu, tanh, transpose, matmul, identity} operator family.
Generation_report generate_algebraic_rules(const Generator_config& config);

} // namespace xrl
