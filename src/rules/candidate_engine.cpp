#include "rules/candidate_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {

Histogram& candidate_phase_histogram(const char* phase)
{
    return Metrics_registry::global().histogram(
        "xrlflow_candidate_phase_us", "Candidate-engine time by pipeline phase",
        duration_us_buckets(), {{"phase", phase}});
}

namespace {

/// Fingerprint of a match site: the binding key the matcher already
/// computed, mixed with the rule index. Records live only within one
/// enumerate() call (one host), so the host needs no representation here.
std::uint64_t match_fingerprint(std::size_t rule_index, const Pattern_match& match)
{
    return (match.binding_key ^ (static_cast<std::uint64_t>(rule_index) + 1)) *
           0x100000001b3ULL;
}

} // namespace

Candidate_engine::Candidate_engine(const Rule_set& rules, Candidate_engine_config config)
    : rules_(&rules), config_(config)
{
    pattern_rules_.reserve(rules.size());
    for (const auto& rule : rules)
        pattern_rules_.push_back(dynamic_cast<const Pattern_rule*>(rule.get()));

    // One process-wide pool for every parallel path (candidate fan-out and
    // the optimization server's jobs); threads == 1 opts out into a strict
    // serial loop. No pool is ever constructed per call site.
    if (config_.threads != 1) pool_ = &Thread_pool::shared();
}

std::vector<Rewrite_candidate> Candidate_engine::enumerate(const Graph& host) const
{
    static Histogram& index_histogram = candidate_phase_histogram("index_build");

    std::optional<Host_index> index;
    {
        const Scoped_timer_us timer(index_histogram);
        const Span_scope span("candidates/index_build");
        index.emplace(host);
    }
    std::vector<Rewrite_candidate> records;
    Enumerate_scratch scratch;
    enumerate_into(host, *index, scratch, records);
    // The scratch (and its bespoke batches) dies with this call, so slot
    // references must become owned graphs before the records escape.
    for (Rewrite_candidate& record : records) {
        if (record.pre_built_slot < 0) continue;
        Graph_batch& batch = scratch.bespoke[record.rule_index];
        record.pre_built = std::make_shared<Graph>(
            std::move(batch[static_cast<std::size_t>(record.pre_built_slot)]));
        record.pre_built_slot = -1;
    }
    return records;
}

void Candidate_engine::enumerate_into(const Graph& host, const Host_index& index,
                                      Enumerate_scratch& scratch,
                                      std::vector<Rewrite_candidate>& out) const
{
    // Per-phase timing: histogram references resolve once (function-local
    // statics), so the steady-state cost is two clock reads per phase.
    static Histogram& match_histogram = candidate_phase_histogram("match");
    static Histogram& dedup_histogram = candidate_phase_histogram("dedup");

    std::vector<std::vector<Rewrite_candidate>>& per_rule = scratch.per_rule;
    per_rule.resize(rules_->size());
    for (auto& bucket : per_rule) bucket.clear();
    scratch.bespoke.resize(rules_->size());

    const auto run_rule = [&](std::size_t rule_index) {
        std::vector<Rewrite_candidate>& bucket = per_rule[rule_index];
        if (const Pattern_rule* pattern_rule = pattern_rules_[rule_index]) {
            auto matches = find_matches(host, index, pattern_rule->pattern(),
                                        config_.per_rule_limit);
            bucket.reserve(matches.size());
            for (Pattern_match& match : matches) {
                Rewrite_candidate record;
                record.rule_index = rule_index;
                record.fingerprint = match_fingerprint(rule_index, match);
                record.match = std::move(match);
                bucket.push_back(std::move(record));
            }
        } else {
            // Bespoke rule: materialise eagerly into the rule's recycled
            // batch; records carry slot indices, not owned graphs.
            Graph_batch& batch = scratch.bespoke[rule_index];
            batch.reset();
            (*rules_)[rule_index]->apply_all_into(host, config_.per_rule_limit, batch);
            bucket.reserve(batch.size());
            for (std::size_t slot = 0; slot < batch.size(); ++slot) {
                Rewrite_candidate record;
                record.rule_index = rule_index;
                record.fingerprint = batch[slot].canonical_hash();
                record.pre_built_slot = static_cast<std::ptrdiff_t>(slot);
                bucket.push_back(std::move(record));
            }
        }
    };

    {
        const Scoped_timer_us timer(match_histogram);
        Span_scope span("candidates/match");
        if (pool_ != nullptr) {
            pool_->run(per_rule.size(), run_rule);
        } else {
            for (std::size_t i = 0; i < per_rule.size(); ++i) run_rule(i);
        }
        if (span.active()) span.annotate("rules", std::to_string(per_rule.size()));
    }

    // Deterministic order — rule index, then discovery order — and
    // fingerprint dedup before anything is materialised.
    const Scoped_timer_us timer(dedup_histogram);
    const Span_scope span("candidates/dedup");
    std::size_t total = 0;
    for (const auto& bucket : per_rule) total += bucket.size();
    out.clear();
    out.reserve(total);
    std::unordered_set<std::uint64_t>& seen = scratch.seen;
    seen.clear();
    seen.reserve(total);
    for (auto& bucket : per_rule)
        for (Rewrite_candidate& record : bucket)
            if (seen.insert(record.fingerprint).second) out.push_back(std::move(record));
}

std::optional<Graph> Candidate_engine::materialize(const Graph& host, Rewrite_candidate& candidate,
                                                   std::uint64_t* hash_out) const
{
    // Slot references are resolved (to owned graphs) before enumerate()
    // returns; only step mode sees them, and it never calls materialize.
    XRL_EXPECTS(candidate.pre_built_slot < 0);
    if (candidate.pre_built != nullptr) {
        if (hash_out != nullptr) *hash_out = candidate.fingerprint;
        Graph graph = std::move(*candidate.pre_built);
        candidate.pre_built.reset();
        return graph;
    }
    const Pattern_rule* pattern_rule = pattern_rules_[candidate.rule_index];
    XRL_EXPECTS(pattern_rule != nullptr);
    return apply_match(host, pattern_rule->pattern(), candidate.match, hash_out);
}

Candidate_engine::Generated Candidate_engine::generate(const Graph& host,
                                                       std::size_t max_total) const
{
    std::vector<Rewrite_candidate> records = enumerate(host);

    static Histogram& materialise_histogram = candidate_phase_histogram("materialise");
    const Scoped_timer_us timer(materialise_histogram);
    Span_scope span("candidates/materialise");
    if (span.active()) span.annotate("enumerated", std::to_string(records.size()));

    Generated out;
    out.enumerated = records.size();
    std::unordered_set<std::uint64_t> seen;
    seen.insert(host.canonical_hash());

    if (max_total == SIZE_MAX && pool_ != nullptr && records.size() > 1) {
        // No cap: materialise everything concurrently, then dedup in order.
        std::vector<std::optional<Graph>> graphs(records.size());
        std::vector<std::uint64_t> hashes(records.size(), 0);
        pool_->run(records.size(), [&](std::size_t i) {
            graphs[i] = materialize(host, records[i], &hashes[i]);
        });
        for (std::size_t i = 0; i < records.size(); ++i) {
            if (!graphs[i].has_value()) continue;
            if (!seen.insert(hashes[i]).second) continue;
            out.candidates.push_back(
                {std::move(*graphs[i]), static_cast<int>(records[i].rule_index), hashes[i]});
        }
        return out;
    }

    for (Rewrite_candidate& record : records) {
        if (out.candidates.size() >= max_total) {
            ++out.truncated;
            continue;
        }
        std::uint64_t hash = 0;
        std::optional<Graph> graph = materialize(host, record, &hash);
        if (!graph.has_value()) continue;
        if (!seen.insert(hash).second) continue;
        out.candidates.push_back({std::move(*graph), static_cast<int>(record.rule_index), hash});
    }
    return out;
}

const Candidate_engine::Step_generated& Candidate_engine::generate_step(
    const Graph& host, std::size_t max_total, const Step_candidate* via)
{
    static Histogram& index_histogram = candidate_phase_histogram("index_build");
    static Histogram& materialise_histogram = candidate_phase_histogram("materialise");

    // Index upkeep first: `via` points into last step's storage (its delta
    // lives in a pool slot), so it must be consumed before any reuse below.
    {
        const Scoped_timer_us timer(index_histogram);
        const Span_scope span("candidates/index_build");
        if (index_ready_ && via != nullptr && via->delta != nullptr) {
            index_.apply_delta(host, *via->delta);
            if (config_.verify_incremental_index) {
                const Host_index fresh(host);
                XRL_ENSURES(index_.equals(fresh));
            }
        } else {
            index_.rebuild(host);
        }
        index_ready_ = true;
    }
    const std::uint64_t host_hash = via != nullptr ? via->hash : host.canonical_hash();

    // Reclaim last step's slots, then enumerate into the persistent record
    // buffer (bespoke candidates live in step_scratch_'s per-rule batches
    // until the next call).
    for (Slot* slot : leased_) slot_pool_.release(slot);
    leased_.clear();
    enumerate_into(host, index_, step_scratch_, step_records_);

    const Scoped_timer_us timer(materialise_histogram);
    Span_scope span("candidates/materialise");
    if (span.active()) span.annotate("enumerated", std::to_string(step_records_.size()));

    step_.candidates.clear();
    step_.enumerated = step_records_.size();
    step_.truncated = 0;
    step_seen_.clear();
    step_seen_.insert(host_hash);

    Slot* working = nullptr;
    for (Rewrite_candidate& record : step_records_) {
        if (step_.candidates.size() >= max_total) {
            ++step_.truncated;
            continue;
        }
        if (record.pre_built_slot >= 0) {
            // Bespoke rule: already materialised during enumeration into
            // the rule's batch (owned by step_scratch_, alive until the
            // next call); the fingerprint is its canonical hash. No delta
            // — choosing one forces an index rebuild next step.
            if (!step_seen_.insert(record.fingerprint).second) continue;
            const Graph* graph = &step_scratch_.bespoke[record.rule_index]
                                                       [static_cast<std::size_t>(
                                                           record.pre_built_slot)];
            step_.candidates.push_back(
                {graph, static_cast<int>(record.rule_index), record.fingerprint, nullptr});
            continue;
        }
        const Pattern_rule* pattern_rule = pattern_rules_[record.rule_index];
        XRL_EXPECTS(pattern_rule != nullptr);
        if (working == nullptr) working = slot_pool_.acquire();
        std::uint64_t hash = 0;
        if (!apply_match_into(working->graph, host, pattern_rule->pattern(), record.match, &hash,
                              &working->delta))
            continue; // invalid site; `working` is reused for the next record
        if (!step_seen_.insert(hash).second) continue;
        step_.candidates.push_back(
            {&working->graph, static_cast<int>(record.rule_index), hash, &working->delta});
        leased_.push_back(working);
        working = nullptr;
    }
    if (working != nullptr) slot_pool_.release(working);
    return step_;
}

} // namespace xrl
