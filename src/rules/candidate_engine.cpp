#include "rules/candidate_engine.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {

Histogram& candidate_phase_histogram(const char* phase)
{
    return Metrics_registry::global().histogram(
        "xrlflow_candidate_phase_us", "Candidate-engine time by pipeline phase",
        duration_us_buckets(), {{"phase", phase}});
}

namespace {

/// Fingerprint of a match site: the binding key the matcher already
/// computed, mixed with the rule index. Records live only within one
/// enumerate() call (one host), so the host needs no representation here.
std::uint64_t match_fingerprint(std::size_t rule_index, const Pattern_match& match)
{
    return (match.binding_key ^ (static_cast<std::uint64_t>(rule_index) + 1)) *
           0x100000001b3ULL;
}

} // namespace

Candidate_engine::Candidate_engine(const Rule_set& rules, Candidate_engine_config config)
    : rules_(&rules), config_(config)
{
    pattern_rules_.reserve(rules.size());
    for (const auto& rule : rules)
        pattern_rules_.push_back(dynamic_cast<const Pattern_rule*>(rule.get()));

    // One process-wide pool for every parallel path (candidate fan-out and
    // the optimization server's jobs); threads == 1 opts out into a strict
    // serial loop. No pool is ever constructed per call site.
    if (config_.threads != 1) pool_ = &Thread_pool::shared();
}

std::vector<Rewrite_candidate> Candidate_engine::enumerate(const Graph& host) const
{
    // Per-phase timing: histogram references resolve once (function-local
    // statics), so the steady-state cost is two clock reads per phase.
    static Histogram& index_histogram = candidate_phase_histogram("index_build");
    static Histogram& match_histogram = candidate_phase_histogram("match");
    static Histogram& dedup_histogram = candidate_phase_histogram("dedup");

    std::optional<Host_index> index;
    {
        const Scoped_timer_us timer(index_histogram);
        const Span_scope span("candidates/index_build");
        index.emplace(host);
    }
    std::vector<std::vector<Rewrite_candidate>> per_rule(rules_->size());

    const auto run_rule = [&](std::size_t rule_index) {
        std::vector<Rewrite_candidate>& bucket = per_rule[rule_index];
        if (const Pattern_rule* pattern_rule = pattern_rules_[rule_index]) {
            auto matches = find_matches(host, *index, pattern_rule->pattern(),
                                        config_.per_rule_limit);
            bucket.reserve(matches.size());
            for (Pattern_match& match : matches) {
                Rewrite_candidate record;
                record.rule_index = rule_index;
                record.fingerprint = match_fingerprint(rule_index, match);
                record.match = std::move(match);
                bucket.push_back(std::move(record));
            }
        } else {
            auto graphs = (*rules_)[rule_index]->apply_all(host, config_.per_rule_limit);
            bucket.reserve(graphs.size());
            for (Graph& graph : graphs) {
                Rewrite_candidate record;
                record.rule_index = rule_index;
                record.fingerprint = graph.canonical_hash();
                record.pre_built = std::make_shared<Graph>(std::move(graph));
                bucket.push_back(std::move(record));
            }
        }
    };

    {
        const Scoped_timer_us timer(match_histogram);
        Span_scope span("candidates/match");
        if (pool_ != nullptr) {
            pool_->run(per_rule.size(), run_rule);
        } else {
            for (std::size_t i = 0; i < per_rule.size(); ++i) run_rule(i);
        }
        if (span.active()) span.annotate("rules", std::to_string(per_rule.size()));
    }

    // Deterministic order — rule index, then discovery order — and
    // fingerprint dedup before anything is materialised.
    const Scoped_timer_us timer(dedup_histogram);
    const Span_scope span("candidates/dedup");
    std::size_t total = 0;
    for (const auto& bucket : per_rule) total += bucket.size();
    std::vector<Rewrite_candidate> records;
    records.reserve(total);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(total);
    for (auto& bucket : per_rule)
        for (Rewrite_candidate& record : bucket)
            if (seen.insert(record.fingerprint).second) records.push_back(std::move(record));
    return records;
}

std::optional<Graph> Candidate_engine::materialize(const Graph& host, Rewrite_candidate& candidate,
                                                   std::uint64_t* hash_out) const
{
    if (candidate.pre_built != nullptr) {
        if (hash_out != nullptr) *hash_out = candidate.fingerprint;
        Graph graph = std::move(*candidate.pre_built);
        candidate.pre_built.reset();
        return graph;
    }
    const Pattern_rule* pattern_rule = pattern_rules_[candidate.rule_index];
    XRL_EXPECTS(pattern_rule != nullptr);
    return apply_match(host, pattern_rule->pattern(), candidate.match, hash_out);
}

Candidate_engine::Generated Candidate_engine::generate(const Graph& host,
                                                       std::size_t max_total) const
{
    std::vector<Rewrite_candidate> records = enumerate(host);

    static Histogram& materialise_histogram = candidate_phase_histogram("materialise");
    const Scoped_timer_us timer(materialise_histogram);
    Span_scope span("candidates/materialise");
    if (span.active()) span.annotate("enumerated", std::to_string(records.size()));

    Generated out;
    out.enumerated = records.size();
    std::unordered_set<std::uint64_t> seen;
    seen.insert(host.canonical_hash());

    if (max_total == SIZE_MAX && pool_ != nullptr && records.size() > 1) {
        // No cap: materialise everything concurrently, then dedup in order.
        std::vector<std::optional<Graph>> graphs(records.size());
        std::vector<std::uint64_t> hashes(records.size(), 0);
        pool_->run(records.size(), [&](std::size_t i) {
            graphs[i] = materialize(host, records[i], &hashes[i]);
        });
        for (std::size_t i = 0; i < records.size(); ++i) {
            if (!graphs[i].has_value()) continue;
            if (!seen.insert(hashes[i]).second) continue;
            out.candidates.push_back(
                {std::move(*graphs[i]), static_cast<int>(records[i].rule_index), hashes[i]});
        }
        return out;
    }

    for (Rewrite_candidate& record : records) {
        if (out.candidates.size() >= max_total) {
            ++out.truncated;
            continue;
        }
        std::uint64_t hash = 0;
        std::optional<Graph> graph = materialize(host, record, &hash);
        if (!graph.has_value()) continue;
        if (!seen.insert(hash).second) continue;
        out.candidates.push_back({std::move(*graph), static_cast<int>(record.rule_index), hash});
    }
    return out;
}

} // namespace xrl
