// The standard rewrite-rule corpus.
//
// A curated, executor-verified set of TASO-style substitutions: kernel
// fusion, linear-algebra re-association, distribution/factoring, operator
// merging, concat/elementwise commuting and cleanup rules. Together with
// the generated algebraic rules (rules/generator.h) this plays the role of
// TASO's 150 auto-generated rules in the paper.
#pragma once

#include <vector>

#include "rules/rule.h"

namespace xrl {

/// All curated declarative patterns (used directly by Tensat's e-graph and
/// wrapped as Pattern_rules elsewhere).
std::vector<Pattern> curated_patterns();

/// Curated patterns + bespoke shape-dependent rules: the rule set every
/// optimiser in this repository activates by default.
Rule_set standard_rule_corpus();

/// Names of all rules in standard_rule_corpus(), in order.
std::vector<std::string> standard_rule_names();

} // namespace xrl
