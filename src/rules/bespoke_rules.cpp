#include "rules/bespoke_rules.h"

#include <algorithm>

#include "support/check.h"

namespace xrl {

namespace {

/// Clean up a hand-built transformation; returns false when the result is
/// structurally invalid (cycle or failed shape inference). `graph` must be
/// a copy of `host` mutated only by appending nodes and redirecting the
/// `rewired` edges — the shared epilogue then infers shapes incrementally.
bool finalise_transformed(Graph& graph, const Graph& host,
                          const std::vector<Rewired_edge>& rewired)
{
    return finalise_rewrite(graph, host, static_cast<Node_id>(host.capacity()), rewired);
}

bool is_graph_output(const Graph& g, Node_id id)
{
    for (const Edge& e : g.outputs())
        if (e.node == id) return true;
    return false;
}

/// Host use lists in per-thread reused storage: the fan-out-gated rules
/// below rebuild them once per rule per step, so fresh vector-of-vectors
/// allocations would land on the candidate-generation hot path.
const std::vector<std::vector<Edge_use>>& host_users(const Graph& host)
{
    thread_local std::vector<std::vector<Edge_use>> users;
    host.build_users(users);
    return users;
}

class Merge_matmul_shared_lhs_rule final : public Rewrite_rule {
public:
    Merge_matmul_shared_lhs_rule() : Rewrite_rule("merge-matmul-shared-lhs") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        std::vector<Node_id> matmuls;
        for (const Node_id id : host.node_ids())
            if (host.node(id).kind == Op_kind::matmul) matmuls.push_back(id);

        for (std::size_t i = 0; i < matmuls.size() && out.size() < limit; ++i) {
            for (std::size_t j = i + 1; j < matmuls.size() && out.size() < limit; ++j) {
                const Node& m1 = host.node(matmuls[i]);
                const Node& m2 = host.node(matmuls[j]);
                if (!(m1.params == m2.params)) continue;
                if (!(m1.inputs[0] == m2.inputs[0])) continue;
                const Shape& w1 = host.shape_of(m1.inputs[1]);
                const Shape& w2 = host.shape_of(m2.inputs[1]);
                if (w1.size() != 2 || w2.size() != 2) continue;
                if (w1[0] != w2[0]) continue;
                if (m1.inputs[1] == m2.inputs[1]) continue; // degenerate
                if (merge(out.next(), host, matmuls[i], matmuls[j], w1[1], w2[1])) out.keep();
            }
        }
    }

private:
    static bool merge(Graph& g, const Graph& host, Node_id id1, Node_id id2, std::int64_t n1,
                      std::int64_t n2)
    {
        g = host;
        // Copy edges/params by value before add_node, which may reallocate
        // the node storage.
        const Edge x = g.node(id1).inputs[0];
        const Edge w1 = g.node(id1).inputs[1];
        const Edge w2 = g.node(id2).inputs[1];
        const Op_params matmul_params = g.node(id1).params;
        Op_params concat_params;
        concat_params.axis = 1;
        const Node_id wc = g.add_node(Op_kind::concat, {w1, w2}, concat_params);
        const Node_id merged = g.add_node(Op_kind::matmul, {x, {wc, 0}}, matmul_params);

        const auto out_rank = static_cast<std::int64_t>(g.shape_of({id1, 0}).size());
        Op_params split_params;
        split_params.axis = out_rank - 1;
        split_params.split_sizes = {n1, n2};
        const Node_id sp = g.add_node(Op_kind::split, {{merged, 0}}, split_params);

        g.replace_all_uses({id1, 0}, {sp, 0});
        g.replace_all_uses({id2, 0}, {sp, 1});
        return finalise_transformed(g, host, {{{id1, 0}, {sp, 0}}, {{id2, 0}, {sp, 1}}});
    }
};

class Merge_conv_shared_input_rule final : public Rewrite_rule {
public:
    Merge_conv_shared_input_rule() : Rewrite_rule("merge-conv-shared-input") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        std::vector<Node_id> convs;
        for (const Node_id id : host.node_ids())
            if (host.node(id).kind == Op_kind::conv2d) convs.push_back(id);

        for (std::size_t i = 0; i < convs.size() && out.size() < limit; ++i) {
            for (std::size_t j = i + 1; j < convs.size() && out.size() < limit; ++j) {
                const Node& c1 = host.node(convs[i]);
                const Node& c2 = host.node(convs[j]);
                if (!(c1.params == c2.params)) continue;
                if (c1.params.groups != 1) continue;
                if (!(c1.inputs[0] == c2.inputs[0])) continue;
                const Shape& w1 = host.shape_of(c1.inputs[1]);
                const Shape& w2 = host.shape_of(c2.inputs[1]);
                // Filter geometry must agree for filter-bank concatenation.
                if (w1[1] != w2[1] || w1[2] != w2[2] || w1[3] != w2[3]) continue;
                if (c1.inputs[1] == c2.inputs[1]) continue;
                if (merge(out.next(), host, convs[i], convs[j], w1[0], w2[0])) out.keep();
            }
        }
    }

private:
    static bool merge(Graph& g, const Graph& host, Node_id id1, Node_id id2, std::int64_t k1,
                      std::int64_t k2)
    {
        g = host;
        const Edge x = g.node(id1).inputs[0];
        const Edge w1 = g.node(id1).inputs[1];
        const Edge w2 = g.node(id2).inputs[1];
        const Op_params conv_params = g.node(id1).params;
        Op_params concat_params;
        concat_params.axis = 0; // filter-bank axis K
        const Node_id wc = g.add_node(Op_kind::concat, {w1, w2}, concat_params);
        const Node_id merged = g.add_node(Op_kind::conv2d, {x, {wc, 0}}, conv_params);

        Op_params split_params;
        split_params.axis = 1; // channel axis of the NCHW output
        split_params.split_sizes = {k1, k2};
        const Node_id sp = g.add_node(Op_kind::split, {{merged, 0}}, split_params);

        g.replace_all_uses({id1, 0}, {sp, 0});
        g.replace_all_uses({id2, 0}, {sp, 1});
        return finalise_transformed(g, host, {{{id1, 0}, {sp, 0}}, {{id2, 0}, {sp, 1}}});
    }
};

class Eliminate_split_concat_rule final : public Rewrite_rule {
public:
    Eliminate_split_concat_rule() : Rewrite_rule("eliminate-split-concat") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        for (const Node_id id : host.node_ids()) {
            if (out.size() >= limit) break;
            const Node& cat = host.node(id);
            if (cat.kind != Op_kind::concat) continue;
            // All inputs must be consecutive ports 0..n-1 of one split node.
            const Node_id split_id = cat.inputs.front().node;
            const Node& sp = host.node(split_id);
            if (sp.kind != Op_kind::split) continue;
            if (sp.params.axis != cat.params.axis) continue;
            if (cat.inputs.size() != sp.params.split_sizes.size()) continue;
            bool in_order = true;
            for (std::size_t port = 0; port < cat.inputs.size(); ++port) {
                if (cat.inputs[port].node != split_id ||
                    cat.inputs[port].port != static_cast<std::int32_t>(port)) {
                    in_order = false;
                    break;
                }
            }
            if (!in_order) continue;

            Graph& g = out.next();
            g = host;
            const Edge replacement = g.node(split_id).inputs[0];
            g.replace_all_uses({id, 0}, replacement);
            if (finalise_transformed(g, host, {{{id, 0}, replacement}})) out.keep();
        }
    }
};

class Eliminate_concat_split_rule final : public Rewrite_rule {
public:
    Eliminate_concat_split_rule() : Rewrite_rule("eliminate-concat-split") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        for (const Node_id id : host.node_ids()) {
            if (out.size() >= limit) break;
            const Node& sp = host.node(id);
            if (sp.kind != Op_kind::split) continue;
            const Node_id cat_id = sp.inputs[0].node;
            const Node& cat = host.node(cat_id);
            if (cat.kind != Op_kind::concat) continue;
            if (cat.params.axis != sp.params.axis) continue;
            if (cat.inputs.size() != sp.params.split_sizes.size()) continue;
            bool sizes_match = true;
            const auto axis = static_cast<std::size_t>(cat.params.axis);
            for (std::size_t piece = 0; piece < cat.inputs.size(); ++piece) {
                if (host.shape_of(cat.inputs[piece])[axis] != sp.params.split_sizes[piece]) {
                    sizes_match = false;
                    break;
                }
            }
            if (!sizes_match) continue;

            Graph& g = out.next();
            g = host;
            std::vector<Rewired_edge> rewired;
            rewired.reserve(cat.inputs.size());
            for (std::size_t piece = 0; piece < cat.inputs.size(); ++piece) {
                const Edge before{id, static_cast<std::int32_t>(piece)};
                const Edge after = g.node(cat_id).inputs[piece];
                g.replace_all_uses(before, after);
                rewired.push_back({before, after});
            }
            if (finalise_transformed(g, host, rewired)) out.keep();
        }
    }
};

class Fold_batch_norm_rule final : public Rewrite_rule {
public:
    Fold_batch_norm_rule() : Rewrite_rule("fold-batch-norm-into-conv") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        const auto& users = host_users(host);
        for (const Node_id id : host.node_ids()) {
            if (out.size() >= limit) break;
            const Node& bn = host.node(id);
            if (bn.kind != Op_kind::batch_norm) continue;
            const Node_id conv_id = bn.inputs[0].node;
            const Node& conv = host.node(conv_id);
            if (conv.kind != Op_kind::conv2d) continue;
            if (conv.params.activation != Activation::none) continue;
            // The conv output must feed only this batch norm.
            if (users[static_cast<std::size_t>(conv_id)].size() != 1) continue;
            if (is_graph_output(host, conv_id)) continue;
            if (fold(out.next(), host, id, conv_id)) out.keep();
        }
    }

private:
    static bool fold(Graph& g, const Graph& host, Node_id bn_id, Node_id conv_id)
    {
        g = host;
        const Node& bn = g.node(bn_id);
        const Node& conv = g.node(conv_id);
        const Edge x = conv.inputs[0];
        const Edge w = conv.inputs[1];
        const Edge gamma = bn.inputs[1];
        const Edge beta = bn.inputs[2];
        const Edge mean = bn.inputs[3];
        const Edge variance = bn.inputs[4];
        const std::int64_t k = g.shape_of(w)[0];
        const Op_params conv_params = conv.params;
        const float eps = bn.params.epsilon;

        // d = gamma / sqrt(var + eps)   -- weight-only arithmetic.
        const Node_id eps_c = g.add_constant(Tensor::scalar(eps), "bn-eps");
        const Node_id var_eps = g.add_node(Op_kind::add, {variance, {eps_c, 0}});
        const Node_id stddev = g.add_node(Op_kind::sqrt, {{var_eps, 0}});
        const Node_id d = g.add_node(Op_kind::div, {gamma, {stddev, 0}});

        Op_params reshape_w;
        reshape_w.target_shape = {k, 1, 1, 1};
        const Node_id d_col = g.add_node(Op_kind::reshape, {{d, 0}}, reshape_w);
        const Node_id w_scaled = g.add_node(Op_kind::mul, {w, {d_col, 0}});

        const Node_id folded_conv = g.add_node(Op_kind::conv2d, {x, {w_scaled, 0}}, conv_params);

        // bias = beta - mean * d, broadcast over (1, K, 1, 1).
        const Node_id mean_d = g.add_node(Op_kind::mul, {mean, {d, 0}});
        const Node_id bias = g.add_node(Op_kind::sub, {beta, {mean_d, 0}});
        Op_params reshape_b;
        reshape_b.target_shape = {1, k, 1, 1};
        const Node_id bias_col = g.add_node(Op_kind::reshape, {{bias, 0}}, reshape_b);
        const Node_id y = g.add_node(Op_kind::add, {{folded_conv, 0}, {bias_col, 0}});

        g.replace_all_uses({bn_id, 0}, {y, 0});
        return finalise_transformed(g, host, {{{bn_id, 0}, {y, 0}}});
    }
};

class Merge_conv_add_enlarge_rule final : public Rewrite_rule {
public:
    Merge_conv_add_enlarge_rule() : Rewrite_rule("merge-conv-add-enlarge") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        const auto& users = host_users(host);
        for (const Node_id id : host.node_ids()) {
            if (out.size() >= limit) break;
            const Node& a = host.node(id);
            if (a.kind != Op_kind::add) continue;
            const Node_id lhs = a.inputs[0].node;
            const Node_id rhs = a.inputs[1].node;
            if (lhs == rhs) continue;
            if (host.node(lhs).kind != Op_kind::conv2d || host.node(rhs).kind != Op_kind::conv2d)
                continue;
            // Try both orders: the larger kernel hosts the enlarged smaller one.
            for (const auto& [big, small] : {std::pair{lhs, rhs}, std::pair{rhs, lhs}}) {
                if (!mergeable(host, users, id, big, small)) continue;
                if (merge(out.next(), host, id, big, small)) {
                    out.keep();
                    break;
                }
            }
        }
    }

private:
    static bool mergeable(const Graph& host, const std::vector<std::vector<Edge_use>>& users,
                          Node_id add_id, Node_id big, Node_id small)
    {
        const Node& cb = host.node(big);
        const Node& cs = host.node(small);
        if (cb.params.activation != Activation::none || cs.params.activation != Activation::none)
            return false;
        if (cb.params.groups != 1 || cs.params.groups != 1) return false;
        if (cb.params.stride_h != cs.params.stride_h || cb.params.stride_w != cs.params.stride_w)
            return false;
        if (!(cb.inputs[0] == cs.inputs[0])) return false;
        // Both convs must feed only the add.
        for (const Node_id conv : {big, small}) {
            if (users[static_cast<std::size_t>(conv)].size() != 1) return false;
            if (users[static_cast<std::size_t>(conv)].front().user != add_id) return false;
            if (is_graph_output(host, conv)) return false;
        }
        const Shape& wb = host.shape_of(cb.inputs[1]);
        const Shape& ws = host.shape_of(cs.inputs[1]);
        if (wb[0] != ws[0] || wb[1] != ws[1]) return false;
        if (wb[2] < ws[2] || wb[3] < ws[3]) return false;
        if ((wb[2] - ws[2]) % 2 != 0 || (wb[3] - ws[3]) % 2 != 0) return false;
        // Padding must line up so the enlarged kernel sees the same window.
        if (cb.params.pad_h - cs.params.pad_h != (wb[2] - ws[2]) / 2) return false;
        if (cb.params.pad_w - cs.params.pad_w != (wb[3] - ws[3]) / 2) return false;
        return true;
    }

    static bool merge(Graph& g, const Graph& host, Node_id add_id, Node_id big, Node_id small)
    {
        g = host;
        const Edge x = g.node(big).inputs[0];
        const Edge w_big = g.node(big).inputs[1];
        const Edge w_small = g.node(small).inputs[1];
        const Op_params conv_params = g.node(big).params;
        const Shape wb = g.shape_of(w_big);

        Op_params enlarge_params;
        enlarge_params.target_r = wb[2];
        enlarge_params.target_s = wb[3];
        const Node_id enlarged = g.add_node(Op_kind::enlarge, {w_small}, enlarge_params);
        const Node_id w_sum = g.add_node(Op_kind::add, {w_big, {enlarged, 0}});
        const Node_id merged = g.add_node(Op_kind::conv2d, {x, {w_sum, 0}}, conv_params);

        g.replace_all_uses({add_id, 0}, {merged, 0});
        return finalise_transformed(g, host, {{{add_id, 0}, {merged, 0}}});
    }
};

class Fold_embedding_projection_rule final : public Rewrite_rule {
public:
    Fold_embedding_projection_rule() : Rewrite_rule("fold-embedding-projection") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        const auto& users = host_users(host);
        for (const Node_id id : host.node_ids()) {
            if (out.size() >= limit) break;
            const Node& mm = host.node(id);
            if (mm.kind != Op_kind::matmul) continue;
            if (mm.params.activation != Activation::none) continue;
            const Node_id emb_id = mm.inputs[0].node;
            const Node& emb = host.node(emb_id);
            if (emb.kind != Op_kind::embedding) continue;
            // The embedding must feed only this projection.
            if (users[static_cast<std::size_t>(emb_id)].size() != 1) continue;
            if (is_graph_output(host, emb_id)) continue;
            if (host.shape_of(mm.inputs[1]).size() != 2) continue;

            Graph& g = out.next();
            g = host;
            const Edge ids = g.node(emb_id).inputs[0];
            const Edge table = g.node(emb_id).inputs[1];
            const Edge projection = g.node(id).inputs[1];
            const Node_id folded_table = g.add_node(Op_kind::matmul, {table, projection});
            const Node_id folded = g.add_node(Op_kind::embedding, {ids, {folded_table, 0}});
            g.replace_all_uses({id, 0}, {folded, 0});
            if (finalise_transformed(g, host, {{{id, 0}, {folded, 0}}})) out.keep();
        }
    }
};

} // namespace

std::unique_ptr<Rewrite_rule> make_merge_matmul_shared_lhs_rule()
{
    return std::make_unique<Merge_matmul_shared_lhs_rule>();
}

std::unique_ptr<Rewrite_rule> make_merge_conv_shared_input_rule()
{
    return std::make_unique<Merge_conv_shared_input_rule>();
}

std::unique_ptr<Rewrite_rule> make_eliminate_split_concat_rule()
{
    return std::make_unique<Eliminate_split_concat_rule>();
}

std::unique_ptr<Rewrite_rule> make_eliminate_concat_split_rule()
{
    return std::make_unique<Eliminate_concat_split_rule>();
}

std::unique_ptr<Rewrite_rule> make_fold_batch_norm_rule()
{
    return std::make_unique<Fold_batch_norm_rule>();
}

std::unique_ptr<Rewrite_rule> make_merge_conv_add_enlarge_rule()
{
    return std::make_unique<Merge_conv_add_enlarge_rule>();
}

std::unique_ptr<Rewrite_rule> make_fold_embedding_projection_rule()
{
    return std::make_unique<Fold_embedding_projection_rule>();
}

} // namespace xrl
