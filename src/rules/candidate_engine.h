// Shared candidate-generation engine.
//
// Every optimisation step in X-RLflow (§3.2) regenerates the candidate set
// by pattern-matching the whole rule corpus against the current graph, and
// all four search backends (the RL environment, TASO beam search, the PET
// wrapper, Tensat's multi-pattern seeding) used to run their own copy of
// the naive per-rule `apply_all` scan. The engine replaces those loops
// with one measurably faster pipeline:
//
//   1. a per-step op-kind index of the host graph (Host_index), built once
//      and shared by every rule, so root enumeration visits only
//      kind-compatible nodes;
//   2. the undo-log matcher behind find_matches (no per-root state copies);
//   3. lazy candidates: enumerate() yields lightweight Rewrite_candidate
//      records with a cheap fingerprint (the matcher's match-site binding
//      key mixed with the rule id) gating materialisation — the full graph
//      copy + DCE + shape inference + canonical hash of materialize() run
//      only for fingerprint-unique records, and never for records beyond a
//      caller's candidate cap (for pattern rules the matcher already
//      dedups sites within a rule, so the gate mainly covers the eagerly
//      built rules below and any future record producers);
//   4. thread-pool fan-out across rules with deterministic result ordering
//      (results are collected into per-rule slots, so the output never
//      depends on thread scheduling).
//
// Rules that are not Pattern_rules (the bespoke shape-dependent rules)
// cannot defer materialisation — their apply_all *is* the site enumeration
// — so the engine runs them eagerly inside the fan-out and fingerprints
// them by result hash; everything downstream treats both kinds uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "ir/graph.h"
#include "rules/pattern.h"
#include "rules/rule.h"
#include "support/arena.h"
#include "support/thread_pool.h"

namespace xrl {

struct Candidate_engine_config {
    /// Candidates enumerated per rule per step (the environment's
    /// per_rule_limit; TASO's max_candidates_per_step).
    std::size_t per_rule_limit = SIZE_MAX;

    /// Fan-out mode: 0 = the process-wide shared pool (sized to the
    /// hardware), 1 = strictly serial, N > 1 = also the shared pool (the
    /// per-rule slot collection makes results order-independent, so a
    /// private width bought nothing but thread churn — engines are
    /// constructed per optimize call, and the serving layer shares the
    /// same pool). The result order is identical for every setting.
    std::size_t threads = 0;

    /// Step mode only: after every incremental Host_index patch, rebuild
    /// the index from scratch and assert exact equality. On by default in
    /// debug builds; the A/B gate (test_incremental_index) turns it on
    /// explicitly in release builds too.
    bool verify_incremental_index =
#ifndef NDEBUG
        true;
#else
        false;
#endif
};

/// A candidate discovered but not yet materialised: which rule, where, and
/// a fingerprint that dedups repeat discoveries before the expensive
/// apply_match. Non-pattern rules arrive pre-built (see file comment):
/// either owned (`pre_built`, the public enumerate() API) or as a slot
/// index into the engine-owned per-rule Graph_batch (`pre_built_slot`,
/// step mode — the batch outlives the record there).
struct Rewrite_candidate {
    std::size_t rule_index = 0;
    Pattern_match match;              ///< Pattern rules: the match site.
    std::uint64_t fingerprint = 0;    ///< Cheap pre-materialisation dedup key.
    std::shared_ptr<Graph> pre_built; ///< Non-pattern rules: the eager result.
    std::ptrdiff_t pre_built_slot = -1; ///< Step mode: index into the rule's batch.
};

/// A materialised, canonically-deduplicated candidate.
struct Engine_candidate {
    Graph graph;
    int rule_index = -1;
    std::uint64_t hash = 0; ///< canonical_hash of `graph`.
};

class Candidate_engine {
public:
    /// `rules` must outlive the engine.
    explicit Candidate_engine(const Rule_set& rules, Candidate_engine_config config = {});

    const Rule_set& rules() const { return *rules_; }

    /// Enumerate candidate records for `host`: fingerprint-deduped, ordered
    /// by (rule index, discovery order within the rule) regardless of the
    /// thread count. No pattern candidate is materialised here.
    std::vector<Rewrite_candidate> enumerate(const Graph& host) const;

    /// Materialise one record (apply_match for pattern rules). One-shot for
    /// pre-built records: the stored graph is moved out. Optionally reports
    /// the result's canonical hash (for pre-built records this reuses the
    /// fingerprint instead of rehashing).
    std::optional<Graph> materialize(const Graph& host, Rewrite_candidate& candidate,
                                     std::uint64_t* hash_out = nullptr) const;

    struct Generated {
        std::vector<Engine_candidate> candidates;
        std::size_t enumerated = 0; ///< Records produced by enumerate().
        std::size_t truncated = 0;  ///< Records never materialised: cap reached.
    };

    /// enumerate() + materialize() + canonical-hash dedup (against the host
    /// and against each other) — the exact semantics of the legacy per-rule
    /// apply_all loop. With `max_total` set, materialisation stops at the
    /// cap and the remaining records are only counted; without a cap,
    /// materialisation fans out across the pool.
    Generated generate(const Graph& host, std::size_t max_total = SIZE_MAX) const;

    /// One candidate of a step-mode generation. The graph lives in a pool
    /// slot owned by the engine (or, for bespoke rules, in the engine's
    /// record buffer) and stays valid until the next generate_step() call.
    struct Step_candidate {
        const Graph* graph = nullptr;
        int rule_index = -1;
        std::uint64_t hash = 0; ///< canonical_hash of `*graph`.
        /// How `*graph` differs from the host (for the next step's index
        /// patch); null for bespoke rules, which cannot report one.
        const Rewrite_delta* delta = nullptr;
    };

    struct Step_generated {
        std::vector<Step_candidate> candidates;
        std::size_t enumerated = 0; ///< Records produced by enumeration.
        std::size_t truncated = 0;  ///< Records never materialised: cap reached.
    };

    /// Step mode: generate() for a single-owner caller walking one evolving
    /// host (the RL environment). Differences from generate():
    ///   - candidate graphs are materialised into recycled pool slots
    ///     (apply_match_into), so a steady-state step allocates ~nothing;
    ///   - the Host_index persists across calls — pass the previous step's
    ///     chosen candidate as `via` and the index is patched from its
    ///     Rewrite_delta instead of rebuilt (pass null on the first step,
    ///     after reset, or when the host changed some other way);
    ///   - with `via`, the host's canonical hash for self-dedup comes from
    ///     via->hash instead of being recomputed.
    /// The returned reference and every candidate in it are invalidated by
    /// the next generate_step() call; `via` is read before any step storage
    /// is reused. NOT thread-safe — one owner per engine in step mode (see
    /// docs/CONCURRENCY.md).
    const Step_generated& generate_step(const Graph& host, std::size_t max_total = SIZE_MAX,
                                        const Step_candidate* via = nullptr);

    /// The persistent step-mode index (null before the first generate_step)
    /// — exposed for the incremental-vs-rebuild A/B gate.
    const Host_index* step_index() const { return index_ready_ ? &index_ : nullptr; }

    /// Pool/arena statistics of the step-mode slot pool (bench artifacts).
    const Pool_stats& step_pool_stats() const { return slot_pool_.stats(); }
    const Arena_stats& step_arena_stats() const { return slot_pool_.arena_stats(); }

private:
    /// Reusable buffers for one enumeration pass: per-rule result slots,
    /// the fingerprint-dedup set, and one recycled Graph_batch per bespoke
    /// rule (their eagerly built candidates land in warm storage). Step
    /// mode keeps one across calls so a steady-state enumeration allocates
    /// nothing; bespoke records then reference the batches by slot index.
    struct Enumerate_scratch {
        std::vector<std::vector<Rewrite_candidate>> per_rule;
        std::unordered_set<std::uint64_t> seen;
        std::vector<Graph_batch> bespoke;
    };

    /// Match + fingerprint-dedup against a caller-provided index, writing
    /// into `out` (cleared first, capacity reused). Shared by enumerate()
    /// and generate_step().
    void enumerate_into(const Graph& host, const Host_index& index, Enumerate_scratch& scratch,
                        std::vector<Rewrite_candidate>& out) const;

    /// A recycled materialisation target: the graph and the delta that
    /// turns the host's index into the graph's.
    struct Slot {
        Graph graph;
        Rewrite_delta delta;
    };

    const Rule_set* rules_;
    Candidate_engine_config config_;
    std::vector<const Pattern_rule*> pattern_rules_; ///< Per rule; null = generic.
    Thread_pool* pool_ = nullptr; ///< The shared pool; null = serial.

    // Step-mode state (single-owner; untouched by the const API).
    Host_index index_;
    bool index_ready_ = false;
    Pool<Slot> slot_pool_;
    Enumerate_scratch step_scratch_;
    std::vector<Slot*> leased_;    ///< Slots backing step_.candidates.
    std::vector<Rewrite_candidate> step_records_; ///< Keeps bespoke graphs alive.
    std::unordered_set<std::uint64_t> step_seen_;
    Step_generated step_;
};

class Histogram;

/// The registry histogram `xrlflow_candidate_phase_us{phase=...}` every
/// engine instance times its pipeline phases into (index_build, match,
/// dedup, materialise, finalise_rewrite). Exposed so the benches can read
/// per-phase snapshots into BENCH_candidates.json.
Histogram& candidate_phase_histogram(const char* phase);

} // namespace xrl
