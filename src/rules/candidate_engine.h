// Shared candidate-generation engine.
//
// Every optimisation step in X-RLflow (§3.2) regenerates the candidate set
// by pattern-matching the whole rule corpus against the current graph, and
// all four search backends (the RL environment, TASO beam search, the PET
// wrapper, Tensat's multi-pattern seeding) used to run their own copy of
// the naive per-rule `apply_all` scan. The engine replaces those loops
// with one measurably faster pipeline:
//
//   1. a per-step op-kind index of the host graph (Host_index), built once
//      and shared by every rule, so root enumeration visits only
//      kind-compatible nodes;
//   2. the undo-log matcher behind find_matches (no per-root state copies);
//   3. lazy candidates: enumerate() yields lightweight Rewrite_candidate
//      records with a cheap fingerprint (the matcher's match-site binding
//      key mixed with the rule id) gating materialisation — the full graph
//      copy + DCE + shape inference + canonical hash of materialize() run
//      only for fingerprint-unique records, and never for records beyond a
//      caller's candidate cap (for pattern rules the matcher already
//      dedups sites within a rule, so the gate mainly covers the eagerly
//      built rules below and any future record producers);
//   4. thread-pool fan-out across rules with deterministic result ordering
//      (results are collected into per-rule slots, so the output never
//      depends on thread scheduling).
//
// Rules that are not Pattern_rules (the bespoke shape-dependent rules)
// cannot defer materialisation — their apply_all *is* the site enumeration
// — so the engine runs them eagerly inside the fan-out and fingerprints
// them by result hash; everything downstream treats both kinds uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ir/graph.h"
#include "rules/pattern.h"
#include "rules/rule.h"
#include "support/thread_pool.h"

namespace xrl {

struct Candidate_engine_config {
    /// Candidates enumerated per rule per step (the environment's
    /// per_rule_limit; TASO's max_candidates_per_step).
    std::size_t per_rule_limit = SIZE_MAX;

    /// Fan-out mode: 0 = the process-wide shared pool (sized to the
    /// hardware), 1 = strictly serial, N > 1 = also the shared pool (the
    /// per-rule slot collection makes results order-independent, so a
    /// private width bought nothing but thread churn — engines are
    /// constructed per optimize call, and the serving layer shares the
    /// same pool). The result order is identical for every setting.
    std::size_t threads = 0;
};

/// A candidate discovered but not yet materialised: which rule, where, and
/// a fingerprint that dedups repeat discoveries before the expensive
/// apply_match. Non-pattern rules arrive pre-built (see file comment).
struct Rewrite_candidate {
    std::size_t rule_index = 0;
    Pattern_match match;              ///< Pattern rules: the match site.
    std::uint64_t fingerprint = 0;    ///< Cheap pre-materialisation dedup key.
    std::shared_ptr<Graph> pre_built; ///< Non-pattern rules: the eager result.
};

/// A materialised, canonically-deduplicated candidate.
struct Engine_candidate {
    Graph graph;
    int rule_index = -1;
    std::uint64_t hash = 0; ///< canonical_hash of `graph`.
};

class Candidate_engine {
public:
    /// `rules` must outlive the engine.
    explicit Candidate_engine(const Rule_set& rules, Candidate_engine_config config = {});

    const Rule_set& rules() const { return *rules_; }

    /// Enumerate candidate records for `host`: fingerprint-deduped, ordered
    /// by (rule index, discovery order within the rule) regardless of the
    /// thread count. No pattern candidate is materialised here.
    std::vector<Rewrite_candidate> enumerate(const Graph& host) const;

    /// Materialise one record (apply_match for pattern rules). One-shot for
    /// pre-built records: the stored graph is moved out. Optionally reports
    /// the result's canonical hash (for pre-built records this reuses the
    /// fingerprint instead of rehashing).
    std::optional<Graph> materialize(const Graph& host, Rewrite_candidate& candidate,
                                     std::uint64_t* hash_out = nullptr) const;

    struct Generated {
        std::vector<Engine_candidate> candidates;
        std::size_t enumerated = 0; ///< Records produced by enumerate().
        std::size_t truncated = 0;  ///< Records never materialised: cap reached.
    };

    /// enumerate() + materialize() + canonical-hash dedup (against the host
    /// and against each other) — the exact semantics of the legacy per-rule
    /// apply_all loop. With `max_total` set, materialisation stops at the
    /// cap and the remaining records are only counted; without a cap,
    /// materialisation fans out across the pool.
    Generated generate(const Graph& host, std::size_t max_total = SIZE_MAX) const;

private:
    const Rule_set* rules_;
    Candidate_engine_config config_;
    std::vector<const Pattern_rule*> pattern_rules_; ///< Per rule; null = generic.
    Thread_pool* pool_ = nullptr; ///< The shared pool; null = serial.
};

class Histogram;

/// The registry histogram `xrlflow_candidate_phase_us{phase=...}` every
/// engine instance times its pipeline phases into (index_build, match,
/// dedup, materialise, finalise_rewrite). Exposed so the benches can read
/// per-phase snapshots into BENCH_candidates.json.
Histogram& candidate_phase_histogram(const char* phase);

} // namespace xrl
