// Shape-dependent rewrite rules.
//
// These rules need parameters computed from the matched operands' shapes
// (split sizes, reshape targets), which declarative Patterns cannot
// express, so they implement Rewrite_rule directly. All of them are
// verified against the reference executor by the property-test suite.
#pragma once

#include <memory>

#include "rules/rule.h"

namespace xrl {

/// matmul(x, w1), matmul(x, w2)  ==>  split(matmul(x, concat(w1, w2)))
///
/// The transformer workhorse: repeated application fuses the Q/K/V
/// projections of an attention block into one large matmul.
std::unique_ptr<Rewrite_rule> make_merge_matmul_shared_lhs_rule();

/// conv(x, w1), conv(x, w2) with identical geometry
///   ==>  split_c(conv(x, concat_k(w1, w2)))
///
/// TASO's convolution merge: two convolutions that read the same tensor
/// become one convolution over concatenated filters.
std::unique_ptr<Rewrite_rule> make_merge_conv_shared_input_rule();

/// concat(split(x)[0], ..., split(x)[n-1]) along the split axis  ==>  x
std::unique_ptr<Rewrite_rule> make_eliminate_split_concat_rule();

/// split(concat(a, b)) with matching sizes along the same axis  ==>  (a, b)
std::unique_ptr<Rewrite_rule> make_eliminate_concat_split_rule();

/// batch_norm(conv(x, w), gamma, beta, mu, var)
///   ==>  add(conv(x, w * d), bias)   with d = gamma / sqrt(var + eps)
///
/// The folded multipliers are weight-only subgraphs, so the end-to-end
/// executor constant-folds them away — the effect behind the paper's ViT
/// observation (§4.2).
std::unique_ptr<Rewrite_rule> make_fold_batch_norm_rule();

/// add(conv_{r1}(x, w1), conv_{r2}(x, w2))  ==>  conv_{r1}(x, w1 + enlarge(w2))
///
/// TASO's enlarge-and-merge rule for parallel convolutions of different
/// kernel sizes over the same input.
std::unique_ptr<Rewrite_rule> make_merge_conv_add_enlarge_rule();

/// matmul(embedding(ids, T), P)  ==>  embedding(ids, matmul(T, P))
///
/// Folds a factored (ALBERT-style) embedding projection into the table.
/// T.P is weight-only, so the end-to-end executor evaluates it offline —
/// while the cost model *charges* for it, making this exactly the kind of
/// rewrite only the end-to-end feedback signal discovers (§4.2).
std::unique_ptr<Rewrite_rule> make_fold_embedding_projection_rule();

} // namespace xrl
