#include "rules/pattern.h"

#include <algorithm>
#include <unordered_set>

#include "rules/candidate_engine.h"
#include "support/check.h"
#include "support/metrics.h"

namespace xrl {

namespace {

bool is_variable(const Graph& pattern_graph, Node_id id)
{
    return pattern_graph.node(id).kind == Op_kind::input;
}

} // namespace

void Pattern::finalise()
{
    XRL_EXPECTS(!source.outputs().empty());
    XRL_EXPECTS(source.outputs().size() == target.outputs().size());

    source_variables.clear();
    target_variables.clear();
    for (const Node_id id : source.node_ids())
        if (source.node(id).kind == Op_kind::input) source_variables.push_back(id);
    for (const Node_id id : target.node_ids())
        if (target.node(id).kind == Op_kind::input) target_variables.push_back(id);
    XRL_EXPECTS(source_variables.size() == target_variables.size());

    // Every internal source node must be reachable from the outputs: the
    // matcher explores the pattern downward from its output producers.
    // (Unused variables are permitted — generated rules keep a fixed-size
    // variable list even when an identity drops an operand.)
    std::unordered_set<Node_id> reachable;
    std::vector<Node_id> stack;
    for (const Edge& e : source.outputs()) {
        if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : source.node(id).inputs)
            if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    for (const Node_id id : source.node_ids())
        XRL_EXPECTS(reachable.contains(id) || is_variable(source, id));
}

Host_index::Host_index(const Graph& host) : users_(host.build_users())
{
    for (const Node_id id : host.node_ids())
        by_kind_[static_cast<std::size_t>(host.node(id).kind)].push_back(id);
}

namespace {

/// Backtracking state with an undo log: bindings are recorded in trail
/// vectors so a failed branch rolls back in O(branch size) instead of the
/// O(state size) full copies the matcher used to make per root candidate
/// and per commutative branch.
struct Match_state {
    std::unordered_map<Node_id, Edge> vars;      // source variable -> host edge
    std::unordered_map<Node_id, Node_id> nodes;  // source internal -> host node
    std::unordered_set<Node_id> used_host;
    std::vector<Node_id> var_trail;              // vars keys, insertion order
    std::vector<Node_id> node_trail;             // nodes keys, insertion order

    struct Mark {
        std::size_t vars = 0;
        std::size_t nodes = 0;
    };

    Mark mark() const { return {var_trail.size(), node_trail.size()}; }

    void bind_var(Node_id pattern_var, const Edge& host_edge)
    {
        vars.emplace(pattern_var, host_edge);
        var_trail.push_back(pattern_var);
    }

    void bind_node(Node_id pattern_id, Node_id host_id)
    {
        nodes.emplace(pattern_id, host_id);
        used_host.insert(host_id);
        node_trail.push_back(pattern_id);
    }

    void rollback(const Mark& m)
    {
        while (var_trail.size() > m.vars) {
            vars.erase(var_trail.back());
            var_trail.pop_back();
        }
        while (node_trail.size() > m.nodes) {
            const auto it = nodes.find(node_trail.back());
            used_host.erase(it->second);
            nodes.erase(it);
            node_trail.pop_back();
        }
    }
};

class Matcher {
public:
    Matcher(const Graph& host, const Host_index& index, const Pattern& pattern, std::size_t limit)
        : host_(host), index_(index), pattern_(pattern), limit_(limit)
    {
        for (const Edge& e : pattern_.source.outputs()) {
            if (std::find(roots_.begin(), roots_.end(), e.node) == roots_.end() &&
                !is_variable(pattern_.source, e.node))
                roots_.push_back(e.node);
        }
    }

    std::vector<Pattern_match> run()
    {
        Match_state state;
        enumerate_roots(0, state);
        return std::move(results_);
    }

private:
    bool params_match(const Node& pattern_node, const Node& host_node, Node_id pattern_id) const
    {
        const auto mode_it = pattern_.param_modes.find(pattern_id);
        const Param_match mode = mode_it == pattern_.param_modes.end() ? Param_match::exact : mode_it->second;
        if (mode == Param_match::exact) return pattern_node.params == host_node.params;
        const auto act_it = pattern_.required_activation.find(pattern_id);
        if (act_it != pattern_.required_activation.end())
            return host_node.params.activation == act_it->second;
        return true;
    }

    // Each match_* call either succeeds with its bindings recorded on the
    // trail, or fails leaving `state` exactly as it found it.

    bool match_edge(Match_state& state, const Edge& pattern_edge, const Edge& host_edge)
    {
        if (is_variable(pattern_.source, pattern_edge.node)) {
            const auto it = state.vars.find(pattern_edge.node);
            if (it != state.vars.end()) return it->second == host_edge;
            state.bind_var(pattern_edge.node, host_edge);
            return true;
        }
        if (pattern_edge.port != host_edge.port) return false;
        return match_node(state, pattern_edge.node, host_edge.node);
    }

    bool match_node(Match_state& state, Node_id pattern_id, Node_id host_id)
    {
        const auto existing = state.nodes.find(pattern_id);
        if (existing != state.nodes.end()) return existing->second == host_id;
        if (state.used_host.contains(host_id)) return false;

        const Node& pn = pattern_.source.node(pattern_id);
        const Node& hn = host_.node(host_id);
        if (pn.kind != hn.kind) return false;
        if (pn.inputs.size() != hn.inputs.size()) return false;
        if (!params_match(pn, hn, pattern_id)) return false;

        const Match_state::Mark before_bind = state.mark();
        state.bind_node(pattern_id, host_id);

        if (is_commutative(pn.kind) && pn.inputs.size() == 2) {
            // Try both operand orders; backtrack via the undo log.
            const Match_state::Mark after_bind = state.mark();
            if (match_edge(state, pn.inputs[0], hn.inputs[0]) &&
                match_edge(state, pn.inputs[1], hn.inputs[1]))
                return true;
            state.rollback(after_bind);
            if (match_edge(state, pn.inputs[0], hn.inputs[1]) &&
                match_edge(state, pn.inputs[1], hn.inputs[0]))
                return true;
            state.rollback(before_bind);
            return false;
        }

        for (std::size_t slot = 0; slot < pn.inputs.size(); ++slot) {
            if (!match_edge(state, pn.inputs[slot], hn.inputs[slot])) {
                state.rollback(before_bind);
                return false;
            }
        }
        return true;
    }

    void enumerate_roots(std::size_t root_index, Match_state& state)
    {
        if (results_.size() >= limit_) return;
        if (root_index == roots_.size()) {
            finish_match(state);
            return;
        }
        const Node_id root = roots_[root_index];
        const Op_kind kind = pattern_.source.node(root).kind;
        for (const Node_id host_id : index_.of_kind(kind)) {
            if (results_.size() >= limit_) return;
            const Match_state::Mark mark = state.mark();
            if (match_node(state, root, host_id)) {
                enumerate_roots(root_index + 1, state);
                state.rollback(mark);
            }
        }
    }

    void finish_match(const Match_state& state)
    {
        // Equal-params constraints between matched source nodes.
        for (const auto& [a, b] : pattern_.equal_params) {
            const Node& ha = host_.node(state.nodes.at(a));
            const Node& hb = host_.node(state.nodes.at(b));
            if (!(ha.params == hb.params)) return;
        }

        // Internal matched nodes that do not produce a pattern output must
        // have all their uses inside the match, and must not be graph
        // outputs (TASO's substitution validity condition).
        std::unordered_set<Node_id> matched;
        for (const auto& [pn, hn] : state.nodes) matched.insert(hn);
        std::unordered_set<Node_id> output_producers;
        for (const Edge& e : pattern_.source.outputs()) {
            if (!is_variable(pattern_.source, e.node))
                output_producers.insert(state.nodes.at(e.node));
        }
        for (const Node_id hn : matched) {
            if (output_producers.contains(hn)) continue;
            for (const Edge_use& use : index_.users()[static_cast<std::size_t>(hn)])
                if (!matched.contains(use.user)) return;
            for (const Edge& out : host_.outputs())
                if (out.node == hn) return;
        }

        // Dedup identical matches reached via different search orders.
        const std::uint64_t key = match_binding_key(state.vars, state.nodes);
        if (!seen_.insert(key).second) return;

        results_.push_back(Pattern_match{state.vars, state.nodes, key});
    }

    const Graph& host_;
    const Host_index& index_;
    const Pattern& pattern_;
    std::size_t limit_;
    std::vector<Node_id> roots_;
    std::unordered_set<std::uint64_t> seen_;
    std::vector<Pattern_match> results_;
};

bool edge_shape_known(const Graph& g, const Edge& e)
{
    return static_cast<std::size_t>(e.port) < g.node(e.node).output_shapes.size();
}

} // namespace

std::uint64_t match_binding_key(const std::unordered_map<Node_id, Edge>& var_bindings,
                                const std::unordered_map<Node_id, Node_id>& node_map)
{
    std::uint64_t key = 0x811c9dc5ULL;
    auto mix = [&key](std::uint64_t v) { key = (key ^ v) * 0x100000001b3ULL; };
    std::vector<std::pair<Node_id, Node_id>> sorted_nodes(node_map.begin(), node_map.end());
    std::sort(sorted_nodes.begin(), sorted_nodes.end());
    for (const auto& [pattern_node, host_node] : sorted_nodes) {
        mix(static_cast<std::uint64_t>(pattern_node));
        mix(static_cast<std::uint64_t>(host_node));
    }
    std::vector<std::pair<Node_id, Edge>> sorted_vars(var_bindings.begin(), var_bindings.end());
    std::sort(sorted_vars.begin(), sorted_vars.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [pattern_var, edge] : sorted_vars) {
        mix(static_cast<std::uint64_t>(pattern_var));
        mix(static_cast<std::uint64_t>(edge.node));
        mix(static_cast<std::uint64_t>(edge.port));
    }
    return key;
}

std::vector<Pattern_match> find_matches(const Graph& host, const Pattern& pattern, std::size_t limit)
{
    const Host_index index(host);
    return Matcher(host, index, pattern, limit).run();
}

std::vector<Pattern_match> find_matches(const Graph& host, const Host_index& index,
                                        const Pattern& pattern, std::size_t limit)
{
    return Matcher(host, index, pattern, limit).run();
}

bool finalise_rewrite(Graph& g, const Graph& host, Node_id first_new_node,
                      const std::vector<Rewired_edge>& rewired, std::uint64_t* canonical_hash_out)
{
    // Histogram only (no span): this runs once per materialised candidate —
    // span records would dominate the trace buffer without adding shape.
    static Histogram& finalise_histogram = candidate_phase_histogram("finalise_rewrite");
    const Scoped_timer_us timer(finalise_histogram);
    try {
        if (!g.is_acyclic()) return false; // the rewrite closed a cycle
        g.eliminate_dead_nodes();

        // The appended nodes always need shapes; the rest of the graph is
        // untouched as long as every splice carries the same shape as the
        // edge it replaced, so the full re-inference pass is skipped.
        bool incremental = g.infer_shapes_appended(first_new_node);
        if (incremental) {
            for (const Rewired_edge& rw : rewired) {
                if (!g.is_alive(rw.after.node)) continue; // splice ended up unused
                if (!edge_shape_known(host, rw.before) || !edge_shape_known(g, rw.after) ||
                    !(host.shape_of(rw.before) == g.shape_of(rw.after))) {
                    incremental = false;
                    break;
                }
            }
        }
        if (!incremental) g.infer_shapes();

        // The epilogue's own cycle check already ran, and dead-node
        // elimination cannot introduce a cycle — skip the re-check.
        g.validate(/*check_acyclic=*/false);
        if (canonical_hash_out != nullptr) *canonical_hash_out = g.canonical_hash();
        return true;
    } catch (const Contract_violation&) {
        // Shape inference rejected this instantiation (the rule does not
        // apply at this site for these operand shapes).
        return false;
    }
}

std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern, const Pattern_match& match)
{
    return apply_match(host, pattern, match, nullptr);
}

std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern,
                                 const Pattern_match& match, std::uint64_t* canonical_hash_out)
{
    Graph out = host;
    out.reserve(host.capacity() + pattern.target.size());
    const Node_id first_new = static_cast<Node_id>(host.capacity());

    // Map source variable index -> bound host edge, then target variable
    // node -> that edge. Target node ids are dense and tiny, so flat
    // vectors beat hash maps here.
    const std::size_t target_slots = pattern.target.capacity();
    std::vector<Edge> target_var_edges(target_slots, Edge{invalid_node, 0});
    for (std::size_t i = 0; i < pattern.target_variables.size(); ++i) {
        const Node_id source_var = pattern.source_variables[i];
        const auto it = match.var_bindings.find(source_var);
        if (it == match.var_bindings.end()) {
            // A variable unused by any matched edge (can happen when the
            // source output *is* the variable); nothing to bind.
            continue;
        }
        target_var_edges[static_cast<std::size_t>(pattern.target_variables[i])] = it->second;
    }

    // Instantiate target nodes in topological order.
    std::vector<Node_id> instantiated(target_slots, invalid_node); // target node -> new host node
    auto resolve = [&](const Edge& target_edge) -> Edge {
        if (is_variable(pattern.target, target_edge.node)) {
            const Edge bound = target_var_edges[static_cast<std::size_t>(target_edge.node)];
            XRL_EXPECTS(bound.node != invalid_node);
            return bound;
        }
        const Node_id mapped = instantiated[static_cast<std::size_t>(target_edge.node)];
        XRL_EXPECTS(mapped != invalid_node);
        return Edge{mapped, target_edge.port};
    };

    try {
        for (const Node_id tid : pattern.target.topo_order()) {
            const Node& tn = pattern.target.node(tid);
            if (tn.kind == Op_kind::input) continue;
            if (tn.kind == Op_kind::constant) {
                XRL_EXPECTS(tn.payload != nullptr);
                const Node_id nid = out.add_constant(*tn.payload, tn.name);
                instantiated[static_cast<std::size_t>(tid)] = nid;
                continue;
            }
            std::vector<Edge> inputs;
            inputs.reserve(tn.inputs.size());
            for (const Edge& e : tn.inputs) inputs.push_back(resolve(e));

            Op_params params = tn.params;
            const auto transfer = pattern.param_transfers.find(tid);
            if (transfer != pattern.param_transfers.end()) {
                const Node_id matched_host = match.node_map.at(transfer->second.from_source_node);
                params = host.node(matched_host).params;
                if (transfer->second.set_activation.has_value())
                    params.activation = *transfer->second.set_activation;
            }
            const Node_id nid = out.add_node(tn.kind, std::move(inputs), std::move(params), tn.name);
            instantiated[static_cast<std::size_t>(tid)] = nid;
        }

        // Rewire each source output to the corresponding target output.
        std::vector<Rewired_edge> rewired;
        rewired.reserve(pattern.source.outputs().size());
        for (std::size_t k = 0; k < pattern.source.outputs().size(); ++k) {
            const Edge src_out = pattern.source.outputs()[k];
            Edge old_edge;
            if (is_variable(pattern.source, src_out.node)) {
                old_edge = match.var_bindings.at(src_out.node);
            } else {
                old_edge = Edge{match.node_map.at(src_out.node), src_out.port};
            }
            const Edge new_edge = resolve(pattern.target.outputs()[k]);
            if (old_edge == new_edge) continue;
            out.replace_all_uses(old_edge, new_edge);
            rewired.push_back({old_edge, new_edge});
        }

        if (!finalise_rewrite(out, host, first_new, rewired, canonical_hash_out))
            return std::nullopt;
    } catch (const Contract_violation&) {
        // Instantiation itself rejected the site (unbound variable or a
        // malformed constant payload).
        return std::nullopt;
    }
    return out;
}

} // namespace xrl
