#include "rules/pattern.h"

#include <algorithm>
#include <unordered_set>

#include "rules/candidate_engine.h"
#include "support/check.h"
#include "support/metrics.h"

namespace xrl {

namespace {

bool is_variable(const Graph& pattern_graph, Node_id id)
{
    return pattern_graph.node(id).kind == Op_kind::input;
}

} // namespace

void Pattern::finalise()
{
    XRL_EXPECTS(!source.outputs().empty());
    XRL_EXPECTS(source.outputs().size() == target.outputs().size());

    source_variables.clear();
    target_variables.clear();
    for (const Node_id id : source.node_ids())
        if (source.node(id).kind == Op_kind::input) source_variables.push_back(id);
    for (const Node_id id : target.node_ids())
        if (target.node(id).kind == Op_kind::input) target_variables.push_back(id);
    XRL_EXPECTS(source_variables.size() == target_variables.size());

    // Every internal source node must be reachable from the outputs: the
    // matcher explores the pattern downward from its output producers.
    // (Unused variables are permitted — generated rules keep a fixed-size
    // variable list even when an identity drops an operand.)
    std::unordered_set<Node_id> reachable;
    std::vector<Node_id> stack;
    for (const Edge& e : source.outputs()) {
        if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : source.node(id).inputs)
            if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    for (const Node_id id : source.node_ids())
        XRL_EXPECTS(reachable.contains(id) || is_variable(source, id));

    // Patterns are immutable once finalised, so the substitution hot path
    // can reuse one topological sort of the target instead of recomputing
    // it per materialised candidate.
    target_order = target.topo_order();
}

const Edge* Pattern_match::find_var(Node_id source_var) const
{
    const auto it = std::lower_bound(
        var_bindings.begin(), var_bindings.end(), source_var,
        [](const std::pair<Node_id, Edge>& entry, Node_id key) { return entry.first < key; });
    if (it == var_bindings.end() || it->first != source_var) return nullptr;
    return &it->second;
}

Node_id Pattern_match::mapped_node(Node_id source_node) const
{
    const auto it = std::lower_bound(
        node_map.begin(), node_map.end(), source_node,
        [](const std::pair<Node_id, Node_id>& entry, Node_id key) { return entry.first < key; });
    if (it == node_map.end() || it->first != source_node) return invalid_node;
    return it->second;
}

void Host_index::rebuild(const Graph& host)
{
    for (auto& bucket : by_kind_) bucket.clear();
    const std::size_t capacity = host.capacity();
    users_.resize(capacity);
    for (auto& list : users_) list.clear();
    kind_of_.assign(capacity, Op_kind::input);
    // One ascending pass reproduces build_users() ordering exactly: each
    // producer's use list ends up sorted by (user, slot).
    for (std::size_t i = 0; i < capacity; ++i) {
        const auto id = static_cast<Node_id>(i);
        if (!host.is_alive(id)) continue;
        const Node& n = host.node(id);
        by_kind_[static_cast<std::size_t>(n.kind)].push_back(id);
        kind_of_[i] = n.kind;
        for (std::size_t slot = 0; slot < n.inputs.size(); ++slot)
            users_[static_cast<std::size_t>(n.inputs[slot].node)].push_back(
                {id, static_cast<std::int32_t>(slot)});
    }
}

void Host_index::apply_delta(const Graph& new_host, const Rewrite_delta& delta)
{
    XRL_EXPECTS(delta.valid);
    const std::size_t capacity = new_host.capacity();
    XRL_EXPECTS(users_.size() <= capacity); // ids never shrink within a trajectory
    users_.resize(capacity);
    kind_of_.resize(capacity, Op_kind::input);
    touched_.clear();

    // Producers whose use lists may hold stale entries: inputs of removed
    // nodes, and splice points whose uses were redirected.
    std::vector<Node_id> affected = delta.stale_use_producers;
    for (const Rewired_edge& rw : delta.rewired) affected.push_back(rw.before.node);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

    // Filter each affected list against the post-rewrite graph: an entry
    // (u, slot) survives where u is alive and still reads this producer at
    // that slot; it moves when the slot was rewired to another producer
    // (consulting the graph makes chained redirects converge); it dies with
    // u. Filtering preserves the (user, slot) order of survivors.
    std::vector<std::pair<Node_id, Edge_use>> moves;
    for (const Node_id producer : affected) {
        auto& list = users_[static_cast<std::size_t>(producer)];
        if (!new_host.is_alive(producer)) {
            // A removed splice point: every surviving use was redirected to
            // the replacement producer, so move those before the `removed`
            // pass below clears this list (dropping them would lose the
            // replacement's uses entirely).
            for (const Edge_use& use : list) {
                if (!new_host.is_alive(use.user)) continue;
                const Edge now =
                    new_host.node(use.user).inputs[static_cast<std::size_t>(use.input_index)];
                moves.emplace_back(now.node, use);
            }
            continue;
        }
        std::size_t write = 0;
        for (const Edge_use& use : list) {
            if (!new_host.is_alive(use.user)) continue;
            const Edge now =
                new_host.node(use.user).inputs[static_cast<std::size_t>(use.input_index)];
            if (now.node == producer) {
                list[write++] = use;
            } else {
                moves.emplace_back(now.node, use);
            }
        }
        list.resize(write);
    }
    for (const auto& [producer, use] : moves) {
        users_[static_cast<std::size_t>(producer)].push_back(use);
        touched_.push_back(producer);
    }

    // Appended nodes: ids are larger than every existing one, so pushing
    // ascending keeps the kind buckets sorted exactly as a rebuild would.
    for (const Node_id added : delta.added) {
        const Node& n = new_host.node(added);
        by_kind_[static_cast<std::size_t>(n.kind)].push_back(added);
        kind_of_[static_cast<std::size_t>(added)] = n.kind;
        for (std::size_t slot = 0; slot < n.inputs.size(); ++slot) {
            users_[static_cast<std::size_t>(n.inputs[slot].node)].push_back(
                {added, static_cast<std::int32_t>(slot)});
            touched_.push_back(n.inputs[slot].node);
        }
    }

    // Removed nodes leave their kind bucket; nothing uses them any more.
    for (const Node_id removed : delta.removed) {
        auto& bucket = by_kind_[static_cast<std::size_t>(
            kind_of_[static_cast<std::size_t>(removed)])];
        const auto it = std::lower_bound(bucket.begin(), bucket.end(), removed);
        XRL_ASSERT(it != bucket.end() && *it == removed);
        bucket.erase(it);
        users_[static_cast<std::size_t>(removed)].clear();
    }

    // Restore build_users() ordering on every list that gained entries.
    std::sort(touched_.begin(), touched_.end());
    touched_.erase(std::unique(touched_.begin(), touched_.end()), touched_.end());
    for (const Node_id id : touched_) {
        auto& list = users_[static_cast<std::size_t>(id)];
        std::sort(list.begin(), list.end(), [](const Edge_use& a, const Edge_use& b) {
            return a.user != b.user ? a.user < b.user : a.input_index < b.input_index;
        });
    }
}

namespace {

/// Backtracking state with an undo log. Bindings live in flat vectors in
/// insertion order — the vectors are their own trail, so rollback is a
/// resize — and lookups are linear scans (patterns have a handful of
/// nodes, where scanning beats hashing and nothing allocates per branch).
struct Match_state {
    std::vector<std::pair<Node_id, Edge>> vars;     // source variable -> host edge
    std::vector<std::pair<Node_id, Node_id>> nodes; // source internal -> host node
    std::vector<Node_id> used_host;                 // parallel to `nodes`

    struct Mark {
        std::size_t vars = 0;
        std::size_t nodes = 0;
    };

    Mark mark() const { return {vars.size(), nodes.size()}; }

    const Edge* find_var(Node_id pattern_var) const
    {
        for (const auto& [var, edge] : vars)
            if (var == pattern_var) return &edge;
        return nullptr;
    }

    Node_id find_node(Node_id pattern_id) const
    {
        for (const auto& [pattern_node, host_node] : nodes)
            if (pattern_node == pattern_id) return host_node;
        return invalid_node;
    }

    bool host_used(Node_id host_id) const
    {
        return std::find(used_host.begin(), used_host.end(), host_id) != used_host.end();
    }

    void bind_var(Node_id pattern_var, const Edge& host_edge)
    {
        vars.emplace_back(pattern_var, host_edge);
    }

    void bind_node(Node_id pattern_id, Node_id host_id)
    {
        nodes.emplace_back(pattern_id, host_id);
        used_host.push_back(host_id);
    }

    void rollback(const Mark& m)
    {
        vars.resize(m.vars);
        nodes.resize(m.nodes);
        used_host.resize(m.nodes);
    }

    void clear()
    {
        vars.clear();
        nodes.clear();
        used_host.clear();
    }
};

/// Per-thread matcher buffers: a Matcher lives for one find_matches call
/// (one rule against one host) but runs once per rule per step, so its
/// working vectors keep their capacity across calls. Results are excluded
/// — they are moved out to the caller.
struct Matcher_scratch {
    Match_state state;
    std::vector<Node_id> roots;
    std::vector<Node_id> output_producers;
    std::vector<std::uint64_t> seen;
};

Matcher_scratch& matcher_scratch()
{
    thread_local Matcher_scratch scratch;
    return scratch;
}

class Matcher {
public:
    Matcher(const Graph& host, const Host_index& index, const Pattern& pattern, std::size_t limit)
        : host_(host), index_(index), pattern_(pattern), limit_(limit),
          scratch_(matcher_scratch()), roots_(scratch_.roots), seen_(scratch_.seen)
    {
        roots_.clear();
        seen_.clear();
        scratch_.output_producers.clear();
        scratch_.state.clear();
        for (const Edge& e : pattern_.source.outputs()) {
            if (std::find(roots_.begin(), roots_.end(), e.node) == roots_.end() &&
                !is_variable(pattern_.source, e.node))
                roots_.push_back(e.node);
        }
    }

    std::vector<Pattern_match> run()
    {
        enumerate_roots(0, scratch_.state);
        return std::move(results_);
    }

private:
    bool params_match(const Node& pattern_node, const Node& host_node, Node_id pattern_id) const
    {
        const auto mode_it = pattern_.param_modes.find(pattern_id);
        const Param_match mode = mode_it == pattern_.param_modes.end() ? Param_match::exact : mode_it->second;
        if (mode == Param_match::exact) return pattern_node.params == host_node.params;
        const auto act_it = pattern_.required_activation.find(pattern_id);
        if (act_it != pattern_.required_activation.end())
            return host_node.params.activation == act_it->second;
        return true;
    }

    // Each match_* call either succeeds with its bindings recorded on the
    // trail, or fails leaving `state` exactly as it found it.

    bool match_edge(Match_state& state, const Edge& pattern_edge, const Edge& host_edge)
    {
        if (is_variable(pattern_.source, pattern_edge.node)) {
            if (const Edge* bound = state.find_var(pattern_edge.node)) return *bound == host_edge;
            state.bind_var(pattern_edge.node, host_edge);
            return true;
        }
        if (pattern_edge.port != host_edge.port) return false;
        return match_node(state, pattern_edge.node, host_edge.node);
    }

    bool match_node(Match_state& state, Node_id pattern_id, Node_id host_id)
    {
        const Node_id existing = state.find_node(pattern_id);
        if (existing != invalid_node) return existing == host_id;
        if (state.host_used(host_id)) return false;

        const Node& pn = pattern_.source.node(pattern_id);
        const Node& hn = host_.node(host_id);
        if (pn.kind != hn.kind) return false;
        if (pn.inputs.size() != hn.inputs.size()) return false;
        if (!params_match(pn, hn, pattern_id)) return false;

        const Match_state::Mark before_bind = state.mark();
        state.bind_node(pattern_id, host_id);

        if (is_commutative(pn.kind) && pn.inputs.size() == 2) {
            // Try both operand orders; backtrack via the undo log.
            const Match_state::Mark after_bind = state.mark();
            if (match_edge(state, pn.inputs[0], hn.inputs[0]) &&
                match_edge(state, pn.inputs[1], hn.inputs[1]))
                return true;
            state.rollback(after_bind);
            if (match_edge(state, pn.inputs[0], hn.inputs[1]) &&
                match_edge(state, pn.inputs[1], hn.inputs[0]))
                return true;
            state.rollback(before_bind);
            return false;
        }

        for (std::size_t slot = 0; slot < pn.inputs.size(); ++slot) {
            if (!match_edge(state, pn.inputs[slot], hn.inputs[slot])) {
                state.rollback(before_bind);
                return false;
            }
        }
        return true;
    }

    void enumerate_roots(std::size_t root_index, Match_state& state)
    {
        if (results_.size() >= limit_) return;
        if (root_index == roots_.size()) {
            finish_match(state);
            return;
        }
        const Node_id root = roots_[root_index];
        const Op_kind kind = pattern_.source.node(root).kind;
        for (const Node_id host_id : index_.of_kind(kind)) {
            if (results_.size() >= limit_) return;
            const Match_state::Mark mark = state.mark();
            if (match_node(state, root, host_id)) {
                enumerate_roots(root_index + 1, state);
                state.rollback(mark);
            }
        }
    }

    void finish_match(const Match_state& state)
    {
        // Equal-params constraints between matched source nodes.
        for (const auto& [a, b] : pattern_.equal_params) {
            const Node& ha = host_.node(state.find_node(a));
            const Node& hb = host_.node(state.find_node(b));
            if (!(ha.params == hb.params)) return;
        }

        // Internal matched nodes that do not produce a pattern output must
        // have all their uses inside the match, and must not be graph
        // outputs (TASO's substitution validity condition).
        const std::vector<Node_id>& matched = state.used_host;
        std::vector<Node_id>& output_producers = scratch_.output_producers;
        output_producers.clear();
        for (const Edge& e : pattern_.source.outputs()) {
            if (!is_variable(pattern_.source, e.node))
                output_producers.push_back(state.find_node(e.node));
        }
        const auto contains = [](const std::vector<Node_id>& ids, Node_id id) {
            return std::find(ids.begin(), ids.end(), id) != ids.end();
        };
        for (const Node_id hn : matched) {
            if (contains(output_producers, hn)) continue;
            for (const Edge_use& use : index_.users()[static_cast<std::size_t>(hn)])
                if (!contains(matched, use.user)) return;
            for (const Edge& out : host_.outputs())
                if (out.node == hn) return;
        }

        // Canonical (sorted-by-pattern-id) bindings; the sort keys are
        // stable node ids, so the result order never depends on discovery
        // order or allocation.
        Pattern_match match;
        match.var_bindings.assign(state.vars.begin(), state.vars.end());
        std::sort(match.var_bindings.begin(), match.var_bindings.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        match.node_map.assign(state.nodes.begin(), state.nodes.end());
        std::sort(match.node_map.begin(), match.node_map.end());
        match.binding_key = match_binding_key(match.var_bindings, match.node_map);

        // Dedup identical matches reached via different search orders. A
        // linear scan over a flat vector: match counts are capped at the
        // per-rule limit, far below hash-set break-even.
        if (std::find(seen_.begin(), seen_.end(), match.binding_key) != seen_.end()) return;
        seen_.push_back(match.binding_key);
        results_.push_back(std::move(match));
    }

    const Graph& host_;
    const Host_index& index_;
    const Pattern& pattern_;
    std::size_t limit_;
    Matcher_scratch& scratch_;
    std::vector<Node_id>& roots_;
    std::vector<std::uint64_t>& seen_;
    std::vector<Pattern_match> results_;
};

bool edge_shape_known(const Graph& g, const Edge& e)
{
    return static_cast<std::size_t>(e.port) < g.node(e.node).output_shapes.size();
}

/// Per-thread scratch for apply_match_into: the buffers are tiny but the
/// function runs once per materialised candidate, so fresh vectors would be
/// the dominant allocation of the engine's hot loop.
struct Apply_scratch {
    std::vector<Edge> target_var_edges;
    std::vector<Node_id> instantiated;
    std::vector<Rewired_edge> rewired;
};

Apply_scratch& apply_scratch()
{
    thread_local Apply_scratch scratch;
    return scratch;
}

} // namespace

std::uint64_t match_binding_key(const std::vector<std::pair<Node_id, Edge>>& var_bindings,
                                const std::vector<std::pair<Node_id, Node_id>>& node_map)
{
    std::uint64_t key = 0x811c9dc5ULL;
    auto mix = [&key](std::uint64_t v) { key = (key ^ v) * 0x100000001b3ULL; };
    for (const auto& [pattern_node, host_node] : node_map) {
        mix(static_cast<std::uint64_t>(pattern_node));
        mix(static_cast<std::uint64_t>(host_node));
    }
    for (const auto& [pattern_var, edge] : var_bindings) {
        mix(static_cast<std::uint64_t>(pattern_var));
        mix(static_cast<std::uint64_t>(edge.node));
        mix(static_cast<std::uint64_t>(edge.port));
    }
    return key;
}

std::vector<Pattern_match> find_matches(const Graph& host, const Pattern& pattern, std::size_t limit)
{
    const Host_index index(host);
    return Matcher(host, index, pattern, limit).run();
}

std::vector<Pattern_match> find_matches(const Graph& host, const Host_index& index,
                                        const Pattern& pattern, std::size_t limit)
{
    return Matcher(host, index, pattern, limit).run();
}

bool finalise_rewrite(Graph& g, const Graph& host, Node_id first_new_node,
                      const std::vector<Rewired_edge>& rewired, std::uint64_t* canonical_hash_out,
                      Rewrite_delta* delta_out)
{
    // Histogram only (no span): this runs once per materialised candidate —
    // span records would dominate the trace buffer without adding shape.
    static Histogram& finalise_histogram = candidate_phase_histogram("finalise_rewrite");
    const Scoped_timer_us timer(finalise_histogram);
    if (delta_out != nullptr) delta_out->valid = false;
    try {
        if (!g.is_acyclic()) return false; // the rewrite closed a cycle
        g.eliminate_dead_nodes();

        // The node set is final after dead-node elimination; record what
        // changed relative to the host while the host is at hand.
        if (delta_out != nullptr) {
            delta_out->removed.clear();
            delta_out->added.clear();
            delta_out->stale_use_producers.clear();
            delta_out->rewired = rewired;
            const std::size_t first =
                first_new_node > 0 ? static_cast<std::size_t>(first_new_node) : 0;
            for (std::size_t i = 0; i < first && i < host.capacity(); ++i) {
                const auto id = static_cast<Node_id>(i);
                if (!host.is_alive(id) || g.is_alive(id)) continue;
                delta_out->removed.push_back(id);
                for (const Edge& e : host.node(id).inputs)
                    delta_out->stale_use_producers.push_back(e.node);
            }
            for (std::size_t i = first; i < g.capacity(); ++i)
                if (g.is_alive(static_cast<Node_id>(i)))
                    delta_out->added.push_back(static_cast<Node_id>(i));
        }

        // The appended nodes always need shapes; the rest of the graph is
        // untouched as long as every splice carries the same shape as the
        // edge it replaced, so the full re-inference pass is skipped.
        bool incremental = g.infer_shapes_appended(first_new_node);
        if (incremental) {
            for (const Rewired_edge& rw : rewired) {
                if (!g.is_alive(rw.after.node)) continue; // splice ended up unused
                if (!edge_shape_known(host, rw.before) || !edge_shape_known(g, rw.after) ||
                    !(host.shape_of(rw.before) == g.shape_of(rw.after))) {
                    incremental = false;
                    break;
                }
            }
        }
        if (!incremental) g.infer_shapes();

        // The epilogue's own cycle check already ran, and dead-node
        // elimination cannot introduce a cycle — skip the re-check.
        g.validate(/*check_acyclic=*/false);
        if (canonical_hash_out != nullptr) *canonical_hash_out = g.canonical_hash();
        if (delta_out != nullptr) delta_out->valid = true;
        return true;
    } catch (const Contract_violation&) {
        // Shape inference rejected this instantiation (the rule does not
        // apply at this site for these operand shapes).
        return false;
    }
}

std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern, const Pattern_match& match)
{
    return apply_match(host, pattern, match, nullptr);
}

std::optional<Graph> apply_match(const Graph& host, const Pattern& pattern,
                                 const Pattern_match& match, std::uint64_t* canonical_hash_out)
{
    Graph out;
    if (!apply_match_into(out, host, pattern, match, canonical_hash_out, nullptr))
        return std::nullopt;
    return out;
}

bool apply_match_into(Graph& out, const Graph& host, const Pattern& pattern,
                      const Pattern_match& match, std::uint64_t* canonical_hash_out,
                      Rewrite_delta* delta_out)
{
    XRL_EXPECTS(!pattern.target_order.empty()); // Pattern::finalise() was called
    // Copy-assignment into a recycled `out` reuses its nested buffers
    // (nodes, inputs, params, names) — the allocation-free hot path. The
    // eighth-of-capacity slack amortises node-array regrowth across pool
    // reuses: the host gains a few ids per accepted rewrite, so an exact
    // reservation would reallocate on every recycle.
    out = host;
    out.reserve(host.capacity() + pattern.target.size() + host.capacity() / 8);
    const Node_id first_new = static_cast<Node_id>(host.capacity());

    // Map source variable index -> bound host edge, then target variable
    // node -> that edge. Target node ids are dense and tiny, so flat
    // vectors beat hash maps here.
    const std::size_t target_slots = pattern.target.capacity();
    Apply_scratch& scratch = apply_scratch();
    std::vector<Edge>& target_var_edges = scratch.target_var_edges;
    target_var_edges.assign(target_slots, Edge{invalid_node, 0});
    for (std::size_t i = 0; i < pattern.target_variables.size(); ++i) {
        const Node_id source_var = pattern.source_variables[i];
        const Edge* bound = match.find_var(source_var);
        if (bound == nullptr) {
            // A variable unused by any matched edge (can happen when the
            // source output *is* the variable); nothing to bind.
            continue;
        }
        target_var_edges[static_cast<std::size_t>(pattern.target_variables[i])] = *bound;
    }

    // Instantiate target nodes in topological order.
    std::vector<Node_id>& instantiated = scratch.instantiated; // target node -> new host node
    instantiated.assign(target_slots, invalid_node);
    auto resolve = [&](const Edge& target_edge) -> Edge {
        if (is_variable(pattern.target, target_edge.node)) {
            const Edge bound = target_var_edges[static_cast<std::size_t>(target_edge.node)];
            XRL_EXPECTS(bound.node != invalid_node);
            return bound;
        }
        const Node_id mapped = instantiated[static_cast<std::size_t>(target_edge.node)];
        XRL_EXPECTS(mapped != invalid_node);
        return Edge{mapped, target_edge.port};
    };

    try {
        for (const Node_id tid : pattern.target_order) {
            const Node& tn = pattern.target.node(tid);
            if (tn.kind == Op_kind::input) continue;
            if (tn.kind == Op_kind::constant) {
                XRL_EXPECTS(tn.payload != nullptr);
                const Node_id nid = out.add_constant(*tn.payload, tn.name);
                instantiated[static_cast<std::size_t>(tid)] = nid;
                continue;
            }
            std::vector<Edge> inputs;
            inputs.reserve(tn.inputs.size());
            for (const Edge& e : tn.inputs) inputs.push_back(resolve(e));

            Op_params params = tn.params;
            const auto transfer = pattern.param_transfers.find(tid);
            if (transfer != pattern.param_transfers.end()) {
                const Node_id matched_host = match.mapped_node(transfer->second.from_source_node);
                XRL_EXPECTS(matched_host != invalid_node);
                params = host.node(matched_host).params;
                if (transfer->second.set_activation.has_value())
                    params.activation = *transfer->second.set_activation;
            }
            const Node_id nid = out.add_node(tn.kind, std::move(inputs), std::move(params), tn.name);
            instantiated[static_cast<std::size_t>(tid)] = nid;
        }

        // Rewire each source output to the corresponding target output.
        std::vector<Rewired_edge>& rewired = scratch.rewired;
        rewired.clear();
        rewired.reserve(pattern.source.outputs().size());
        for (std::size_t k = 0; k < pattern.source.outputs().size(); ++k) {
            const Edge src_out = pattern.source.outputs()[k];
            Edge old_edge;
            if (is_variable(pattern.source, src_out.node)) {
                const Edge* bound = match.find_var(src_out.node);
                XRL_EXPECTS(bound != nullptr);
                old_edge = *bound;
            } else {
                const Node_id mapped = match.mapped_node(src_out.node);
                XRL_EXPECTS(mapped != invalid_node);
                old_edge = Edge{mapped, src_out.port};
            }
            const Edge new_edge = resolve(pattern.target.outputs()[k]);
            if (old_edge == new_edge) continue;
            out.replace_all_uses(old_edge, new_edge);
            rewired.push_back({old_edge, new_edge});
        }

        return finalise_rewrite(out, host, first_new, rewired, canonical_hash_out, delta_out);
    } catch (const Contract_violation&) {
        // Instantiation itself rejected the site (unbound variable or a
        // malformed constant payload).
        return false;
    }
}

} // namespace xrl
