// Bounded, policy-ordered admission queue for Optimization_server.
//
// Three orderings cover the serving scenarios the ROADMAP cares about:
// FIFO for fairness, priority for tiered traffic (interactive vs batch
// compilation requests), earliest-deadline-first for SLA-driven fleets.
// The queue is bounded; overflow either rejects the newcomer outright or
// sheds the worst-ranked queued job to make room for a better-ranked one
// (load shedding under pressure keeps urgent work schedulable).
//
// Deliberately not internally locked: the server's mutex already guards
// every access, and ordering decisions need to see priority/deadline
// fields that coalesced arrivals can raise while a job waits.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "serve/job.h"

namespace xrl {

enum class Queue_policy {
    fifo,              ///< Arrival order.
    priority,          ///< Higher Submit_options::priority first; FIFO ties.
    earliest_deadline, ///< Earliest deadline first; no deadline ranks last.
};

enum class Overflow_policy {
    reject,      ///< A full queue refuses newcomers.
    shed_lowest, ///< Evict the worst-ranked job when the newcomer ranks better.
};

const char* to_string(Queue_policy policy);

struct Job_queue_config {
    Queue_policy policy = Queue_policy::fifo;
    Overflow_policy overflow = Overflow_policy::reject;
    std::size_t capacity = 256; ///< Queued (not running) jobs; must be >= 1.
};

class Job_queue {
public:
    explicit Job_queue(Job_queue_config config);

    const Job_queue_config& config() const { return config_; }
    std::size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    struct Admission {
        bool admitted = false;
        std::shared_ptr<Job> shed; ///< Job evicted to admit the newcomer.
    };

    /// Admit `job` under the capacity bound. On overflow: `reject` refuses
    /// it; `shed_lowest` evicts the worst-ranked queued job if the newcomer
    /// outranks it (the evictee is returned so the server can resolve it),
    /// and refuses the newcomer otherwise.
    Admission push(std::shared_ptr<Job> job);

    /// Remove and return the best-ranked job (policy order, FIFO tie-break).
    /// Ranks are re-evaluated at pop time, so priority/deadline raises from
    /// coalesced arrivals take effect. Null when empty.
    std::shared_ptr<Job> pop_best();

    /// Remove jobs that resolved while queued (handle-cancelled corpses),
    /// so they stop consuming capacity and cannot be shed as if they were
    /// live. Returns them for the server's outcome bookkeeping.
    std::vector<std::shared_ptr<Job>> purge_terminal();

    /// Remove everything (server shutdown).
    std::vector<std::shared_ptr<Job>> drain();

private:
    /// Strict weak order: does `a` run before `b`?
    bool ranks_before(const Job& a, const Job& b) const;

    Job_queue_config config_;
    std::vector<std::shared_ptr<Job>> jobs_;
};

} // namespace xrl
