#include "serve/job.h"

#include <stdexcept>

#include "support/check.h"

namespace xrl {

const char* to_string(Job_state state)
{
    switch (state) {
    case Job_state::queued: return "queued";
    case Job_state::running: return "running";
    case Job_state::done: return "done";
    case Job_state::cancelled: return "cancelled";
    case Job_state::rejected: return "rejected";
    case Job_state::failed: return "failed";
    }
    return "unknown";
}

bool is_terminal(Job_state state)
{
    return state == Job_state::done || state == Job_state::cancelled ||
           state == Job_state::rejected || state == Job_state::failed;
}

Job_state Job::snapshot_state() const
{
    const Lock_guard lock(mutex);
    return state;
}

void Job::withdraw_interest()
{
    const Lock_guard lock(mutex);
    XRL_EXPECTS(interest > 0);
    if (--interest > 0) return; // someone still wants the result
    cancel_requested.store(true, std::memory_order_relaxed);
    // Never started: resolve immediately — the worker that eventually pops
    // this job sees the terminal state and only does bookkeeping. Running
    // jobs stop at the next heartbeat (the server's progress wrapper reads
    // cancel_requested) and resolve through the worker.
    if (state == Job_state::queued) resolve_cancelled_locked();
}

void Job::resolve_cancelled_locked()
{
    state = Job_state::cancelled;
    cancel_requested.store(true, std::memory_order_relaxed);
    result.backend = backend;
    result.best_graph = graph;
    result.cancelled = true;
    finished = Clock::now();
    // Observers never fire again; release them now — an observer closure
    // that captured its own Job_handle would otherwise keep this job alive
    // in a shared_ptr cycle.
    observers.clear();
    changed.notify_all();
}

Job_handle::Job_handle(std::shared_ptr<Job> job, bool coalesced)
    : job_(std::move(job)),
      cancel_ticket_(std::make_shared<std::atomic<bool>>(false)),
      coalesced_(coalesced)
{
}

std::uint64_t Job_handle::id() const
{
    XRL_EXPECTS(job_ != nullptr);
    return job_->id;
}

const std::string& Job_handle::backend() const
{
    XRL_EXPECTS(job_ != nullptr);
    return job_->backend;
}

Job_state Job_handle::poll() const
{
    XRL_EXPECTS(job_ != nullptr);
    return job_->snapshot_state();
}

Optimize_result Job_handle::wait() const
{
    XRL_EXPECTS(job_ != nullptr);
    Unique_lock lock(job_->mutex);
    job_->changed.wait(lock, [this]() XRL_REQUIRES(job_->mutex) { return is_terminal(job_->state); });
    if (job_->state == Job_state::rejected)
        throw std::runtime_error("optimization job " + std::to_string(job_->id) +
                                 " rejected: " + job_->reject_reason);
    if (job_->state == Job_state::failed) std::rethrow_exception(job_->error);
    return job_->result;
}

bool Job_handle::wait_for(double seconds) const
{
    XRL_EXPECTS(job_ != nullptr);
    Unique_lock lock(job_->mutex);
    return job_->changed.wait_for(lock, std::chrono::duration<double>(seconds),
                                  [this]() XRL_REQUIRES(job_->mutex) { return is_terminal(job_->state); });
}

void Job_handle::on_progress(Progress_observer observer)
{
    XRL_EXPECTS(job_ != nullptr);
    XRL_EXPECTS(observer != nullptr);
    const Lock_guard lock(job_->mutex);
    if (is_terminal(job_->state)) return; // no more heartbeats will come
    job_->observers.push_back(std::move(observer));
}

std::optional<Optimize_progress> Job_handle::progress() const
{
    XRL_EXPECTS(job_ != nullptr);
    const Lock_guard lock(job_->mutex);
    return job_->last_progress;
}

void Job_handle::cancel()
{
    XRL_EXPECTS(job_ != nullptr);
    if (cancel_ticket_->exchange(true)) return; // this submission already cancelled
    job_->withdraw_interest();
}

} // namespace xrl
