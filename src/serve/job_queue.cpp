#include "serve/job_queue.h"

#include <algorithm>

#include "support/check.h"

namespace xrl {

const char* to_string(Queue_policy policy)
{
    switch (policy) {
    case Queue_policy::fifo: return "fifo";
    case Queue_policy::priority: return "priority";
    case Queue_policy::earliest_deadline: return "earliest_deadline";
    }
    return "unknown";
}

Job_queue::Job_queue(Job_queue_config config) : config_(config)
{
    XRL_EXPECTS(config_.capacity >= 1);
    jobs_.reserve(std::min<std::size_t>(config_.capacity, 1024));
}

bool Job_queue::ranks_before(const Job& a, const Job& b) const
{
    switch (config_.policy) {
    case Queue_policy::fifo:
        break;
    case Queue_policy::priority:
        if (a.priority != b.priority) return a.priority > b.priority;
        break;
    case Queue_policy::earliest_deadline:
        if (a.has_deadline != b.has_deadline) return a.has_deadline; // a deadline outranks none
        if (a.has_deadline && a.deadline != b.deadline) return a.deadline < b.deadline;
        if (a.priority != b.priority) return a.priority > b.priority;
        break;
    }
    return a.sequence < b.sequence; // FIFO tie-break everywhere
}

Job_queue::Admission Job_queue::push(std::shared_ptr<Job> job)
{
    XRL_EXPECTS(job != nullptr);
    Admission admission;
    if (jobs_.size() >= config_.capacity) {
        if (config_.overflow == Overflow_policy::reject) return admission;
        // shed_lowest: find the worst-ranked queued job; evict it only if
        // the newcomer genuinely outranks it.
        auto worst = jobs_.begin();
        for (auto it = jobs_.begin() + 1; it != jobs_.end(); ++it)
            if (ranks_before(**worst, **it)) worst = it;
        if (!ranks_before(*job, **worst)) return admission; // newcomer is the worst
        admission.shed = std::move(*worst);
        jobs_.erase(worst);
    }
    jobs_.push_back(std::move(job));
    admission.admitted = true;
    return admission;
}

std::shared_ptr<Job> Job_queue::pop_best()
{
    if (jobs_.empty()) return nullptr;
    auto best = jobs_.begin();
    for (auto it = jobs_.begin() + 1; it != jobs_.end(); ++it)
        if (ranks_before(**it, **best)) best = it;
    std::shared_ptr<Job> job = std::move(*best);
    jobs_.erase(best);
    return job;
}

std::vector<std::shared_ptr<Job>> Job_queue::purge_terminal()
{
    std::vector<std::shared_ptr<Job>> purged;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
        if (is_terminal((*it)->snapshot_state())) {
            purged.push_back(std::move(*it));
            it = jobs_.erase(it);
        } else {
            ++it;
        }
    }
    return purged;
}

std::vector<std::shared_ptr<Job>> Job_queue::drain()
{
    std::vector<std::shared_ptr<Job>> all = std::move(jobs_);
    jobs_.clear();
    return all;
}

} // namespace xrl
