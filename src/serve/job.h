// Serving jobs: the unit of work Optimization_server schedules.
//
// A submit() call produces a Job — one (graph, backend, request) with a
// priority, an optional deadline, and a coalesce key — and hands back a
// Job_handle, the caller's view of it: poll / wait / cancel. Several
// handles can share one job: when an identical request arrives while the
// original is still queued or running, the server attaches the newcomer to
// the in-flight job instead of searching twice, and every attached handle
// receives the same result. *Handle* cancellation is interest-counted for
// exactly this reason — cancel() only stops the job (riding the unified
// API's heartbeat cancellation) once every handle attached to it has
// cancelled. The request's own cancellation channels are different: the
// progress callback is deliberately outside the request's identity (like
// the memo key), so if the primary submission's callback — or the time
// budget every coalesced duplicate shares, since budgets *are* part of the
// identity — stops the search, the job resolves cancelled for all waiters,
// each receiving the best-so-far result.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/optimizer_api.h"
#include "ir/graph.h"
#include "support/sync.h"

namespace xrl {

enum class Job_state {
    queued,    ///< Admitted, waiting for a worker.
    running,   ///< A worker is executing the search.
    done,      ///< Finished; result available.
    cancelled, ///< Cancelled (queued: immediately; running: best-so-far result).
    rejected,  ///< Refused admission (queue full) or shed to make room.
    failed,    ///< The backend threw; wait() rethrows.
};

const char* to_string(Job_state state);

/// done / cancelled / rejected / failed — the states a job never leaves.
bool is_terminal(Job_state state);

/// A waiter's view of search progress. Unlike the request's own
/// Progress_callback (which only the primary submission carries, and which
/// can cancel), observers are fan-out: every handle attached to a job —
/// coalesced duplicates included — can register one, and they cannot
/// cancel the search (cancellation stays interest-counted via
/// Job_handle::cancel).
using Progress_observer = std::function<void(const Optimize_progress&)>;

/// Scheduling knobs for one submission. Priority orders the queue under
/// Queue_policy::priority (and breaks ties elsewhere). The deadline orders
/// the queue under Queue_policy::earliest_deadline — and, under *every*
/// policy, clamps the job's wall-clock budget at dequeue to the time
/// remaining: a deadline-carrying job dequeued too late resolves cancelled
/// (best-so-far) instead of burning a worker. The clamp only engages when
/// every coalesced submission carries a deadline; one no-deadline waiter
/// disarms it (that waiter is owed the full search).
struct Submit_options {
    int priority = 0;              ///< Higher runs sooner.
    double deadline_seconds = 0.0; ///< Relative to submit time; 0 = no deadline.
};

/// The shared state behind one scheduled search. Public because the queue,
/// the server, and the handle all operate on it, but user code only ever
/// sees Job_handle.
struct Job {
    using Clock = std::chrono::steady_clock;

    // -- immutable after submit -------------------------------------------
    std::uint64_t id = 0;       ///< Server-unique, 1-based.
    std::uint64_t sequence = 0; ///< Arrival order; the FIFO tie-break.
    std::string backend;
    Graph graph;
    Optimize_request request;
    std::string coalesce_key; ///< Optimization_service::memo_key of the job.
    Clock::time_point submitted{};
    /// Distributed-trace linkage, captured from the submitting thread's
    /// trace context (support/trace.h): the worker re-installs these so
    /// shard-side spans nest under the client/daemon spans. 0 = untraced.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;

    /// Read lock-free by the server's heartbeat wrapper on every search
    /// step; set once all interest is withdrawn.
    std::atomic<bool> cancel_requested{false};

    // -- guarded by mutex -------------------------------------------------
    mutable Mutex mutex{"job", Lock_rank::job};
    Cond_var changed;
    Job_state state XRL_GUARDED_BY(mutex) = Job_state::queued;
    /// Coalesced arrivals may raise this.
    int priority XRL_GUARDED_BY(mutex) = 0;
    /// Coalesced arrivals may tighten this (EDF ordering).
    Clock::time_point deadline XRL_GUARDED_BY(mutex){};
    bool has_deadline XRL_GUARDED_BY(mutex) = false;
    /// Budget-clamp bookkeeping, distinct from the *ordering* deadline
    /// above: the dequeue-time clamp may only engage when every attached
    /// submission opted into deadline semantics, and then only to the
    /// loosest of their deadlines — a no-deadline waiter is owed the full
    /// search, identical to a direct service call.
    bool every_waiter_has_deadline XRL_GUARDED_BY(mutex) = false;
    Clock::time_point latest_deadline XRL_GUARDED_BY(mutex){};
    /// Set at dequeue; clamped running jobs refuse attachments.
    bool budget_clamped XRL_GUARDED_BY(mutex) = false;
    /// Handles that still want the result.
    int interest XRL_GUARDED_BY(mutex) = 1;
    /// Latest heartbeat snapshot.
    std::optional<Optimize_progress> last_progress XRL_GUARDED_BY(mutex);
    /// Fan-out to every waiter.
    std::vector<Progress_observer> observers XRL_GUARDED_BY(mutex);
    Optimize_result result XRL_GUARDED_BY(mutex);     ///< Valid in done / cancelled.
    std::exception_ptr error XRL_GUARDED_BY(mutex);   ///< Valid in failed.
    std::string reject_reason XRL_GUARDED_BY(mutex);  ///< Valid in rejected.
    Clock::time_point started XRL_GUARDED_BY(mutex){};
    Clock::time_point finished XRL_GUARDED_BY(mutex){};

    Job_state snapshot_state() const;

    /// Withdraw one handle's interest. When the last interested handle
    /// cancels: a queued job transitions to `cancelled` on the spot (its
    /// input graph becomes the result, waiters wake immediately); a running
    /// job gets `cancel_requested` set, which the server's heartbeat turns
    /// into a backend stop at the next search step.
    void withdraw_interest();

    /// Resolve a never-started job as cancelled: the input graph becomes
    /// the result and waiters wake. Caller holds `mutex` and has checked
    /// the state is not already terminal (handle cancellation and server
    /// shutdown share this path).
    void resolve_cancelled_locked() XRL_REQUIRES(mutex);
};

/// The caller's view of a submitted job. Copyable; copies share the same
/// underlying job *and* the same cancellation ticket, so cancel() through
/// any copy withdraws that submission's interest exactly once.
class Job_handle {
public:
    Job_handle() = default;
    Job_handle(std::shared_ptr<Job> job, bool coalesced);

    bool valid() const { return job_ != nullptr; }
    std::uint64_t id() const;
    const std::string& backend() const;

    /// True when this submission attached to an earlier identical in-flight
    /// job instead of scheduling its own search.
    bool coalesced() const { return coalesced_; }

    Job_state poll() const;
    bool finished() const { return is_terminal(poll()); }

    /// Block until the job reaches a terminal state. Returns the result for
    /// `done` and `cancelled` (a cancelled search carries its best-so-far
    /// graph, exactly like direct Optimizer::optimize cancellation); throws
    /// std::runtime_error for `rejected` and rethrows the backend's
    /// exception for `failed`.
    Optimize_result wait() const;

    /// wait(), but give up after `seconds`; false = still not terminal.
    bool wait_for(double seconds) const;

    /// Streaming progress for every waiter, coalesced duplicates included:
    /// `observer` is invoked (off this caller's thread, on the search's
    /// heartbeat) for each subsequent progress snapshot of the underlying
    /// job. Unlike the request's on_progress — which only the primary
    /// submission carries — observers attach per handle and cannot cancel
    /// the search. Observers registered after the job resolved never fire;
    /// read progress() for the last snapshot instead.
    void on_progress(Progress_observer observer);

    /// The most recent progress snapshot the underlying search reported,
    /// or nullopt before its first heartbeat (or when it never ran).
    std::optional<Optimize_progress> progress() const;

    /// Withdraw this submission's interest in the result (idempotent across
    /// copies of the handle). The underlying search stops only when every
    /// coalesced submission has cancelled — see Job::withdraw_interest.
    void cancel();

private:
    std::shared_ptr<Job> job_;
    std::shared_ptr<std::atomic<bool>> cancel_ticket_;
    bool coalesced_ = false;
};

} // namespace xrl
