// State_store: checkpointed warm-start state shared across servers, shards,
// and process restarts.
//
// Two kinds of state make the serving fleet warm, and both die with the
// process without this store:
//
//   * trained xrlflow policies — the paper's central asset; retraining one
//     on restart costs minutes of PPO for a result the previous process
//     already had (Policy_store half, consumed by the xrlflow backend
//     through Optimizer_context), and
//   * the Optimization_service memo table — every completed search,
//     persistable since Optimize_result grew a bit-exact serialised form
//     (core/result_serial.h).
//
// One store instance can back a whole Optimization_router fleet: shards
// share it (policies written by one shard are fetched by the next; memo
// snapshots *merge* into the store rather than overwrite it), so a
// replacement shard constructed over the same store starts warm — the
// cross-shard sharing item from the ROADMAP. Across processes, the same
// directory reloads into the next store instance.
//
// Durability model: on-disk state is record files (support/record_file.h)
// — versioned, per-record checksummed, written atomically via temp +
// rename. Loads never throw on damaged content: corrupt, truncated, or
// future-versioned records are skipped and counted in stats(), because a
// warm start is an optimisation and a cold start must always remain
// available. Entries carry timestamps and can be evicted by age.
//
// Sharing contract: memo keys do not cover backend_options, so a store
// directory must only be shared by services configured identically (the
// fleet configuration — which is how the router builds shards anyway).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "core/optimization_service.h"
#include "core/policy_store.h"
#include "support/record_file.h"
#include "support/sync.h"

namespace xrl {

struct State_store_config {
    State_store_config() = default;
    /// The common case: everything default but the directory.
    State_store_config(std::string directory_) : directory(std::move(directory_)) {}

    /// Directory holding the store's files (created on demand):
    /// policies.xrls and memo.xrls.
    std::string directory;

    /// Entries older than this are evicted (at load, on writes, and on
    /// fetch — an expired policy is a miss). 0 = keep forever. Age is
    /// wall-clock: a policy trained for yesterday's traffic patterns is
    /// still valid, but fleets that retrain on a cadence cap staleness
    /// here.
    double max_age_seconds = 0.0;

    /// Seconds since the Unix epoch; defaults to the system clock. Tests
    /// inject a fake clock to exercise age eviction deterministically.
    std::function<double()> clock;
};

/// Damage and traffic counters; every load degradation is visible here
/// rather than fatal anywhere.
struct State_store_stats {
    // Load-time (constructor) results, summed over both files.
    std::size_t policies_loaded = 0;
    std::size_t memo_loaded = 0;
    std::size_t skipped_corrupt = 0; ///< Bad checksum / truncated / malformed.
    std::size_t skipped_version = 0; ///< Future record or file version.
    std::size_t evicted_by_age = 0;  ///< Cumulative, load + runtime.

    // Runtime traffic.
    std::size_t policy_hits = 0;   ///< fetch_policy served from the store.
    std::size_t policy_misses = 0; ///< fetch_policy found nothing usable.
    std::size_t policy_puts = 0;
    std::size_t memo_saved = 0;    ///< Entries merged by save_memo calls.
    std::size_t memo_imported = 0; ///< Entries handed to services by load_memo.
    std::size_t memo_skipped = 0;  ///< Stored entries that failed to deserialise.
    std::size_t snapshots_written = 0; ///< Successful file writes (both kinds).
};

class State_store final : public Policy_store {
public:
    /// Loads whatever the directory holds (missing files = empty store, a
    /// cold start). Throws std::invalid_argument for an empty directory
    /// path — never for file *content*.
    explicit State_store(State_store_config config);

    State_store(const State_store&) = delete;
    State_store& operator=(const State_store&) = delete;

    // -- Policy_store (the xrlflow backend's warm-start hook) --------------

    /// Expired entries count as misses (and are dropped).
    bool fetch_policy(const std::string& key, std::string* blob) override;

    /// Upserts and writes the policy file through atomically, so a crash
    /// right after training never loses the policy it paid for.
    void put_policy(const std::string& key, const std::string& blob) override;

    // -- memo-table snapshot / restore -------------------------------------

    /// Merge `service`'s memo table into the store (newer stamp wins the
    /// key; other shards' entries survive) and write the snapshot
    /// atomically. Safe while the service is actively optimizing — the
    /// export is one consistent locked read. Returns entries merged.
    std::size_t save_memo(const Optimization_service& service);

    /// Import every stored memo entry into `service` (entries that fail to
    /// deserialise are skipped and counted). Returns entries the service
    /// actually inserted.
    std::size_t load_memo(Optimization_service& service);

    State_store_stats stats() const;

    /// Keys currently held, sorted (policy keys are human-readable —
    /// "policy|model=…|device=…|…" — so operators and tests can see what a
    /// store knows without decoding payloads).
    std::vector<std::string> policy_keys() const;
    std::vector<std::string> memo_keys() const;

    const std::string& directory() const { return config_.directory; }
    std::string policy_path() const;
    std::string memo_path() const;

private:
    double now() const { return config_.clock(); }
    void evict_expired_locked(double now_seconds) XRL_REQUIRES(mutex_);
    std::vector<Record> snapshot_records_locked(const std::map<std::string, Record>& map) const
        XRL_REQUIRES(mutex_);
    static void load_file_locked(const std::string& path, std::map<std::string, Record>& into,
                                 std::size_t& loaded, State_store_stats& stats);

    State_store_config config_;

    /// Guards the maps and stats only — never held across file IO, so one
    /// shard's snapshot write cannot stall another shard's fetch_policy on
    /// the optimize hot path. The writer mutexes below serialise writers
    /// per file and are held across copy *and* write, so files always land
    /// in copy order; lock order is writer mutex first, mutex_ inside.
    /// The two writer mutexes share a rank: they never nest (one file per
    /// writer path).
    mutable Mutex mutex_{"state_store", Lock_rank::state_store};
    Mutex policy_writer_mutex_{"state_store_policy_writer", Lock_rank::state_store_writer};
    Mutex memo_writer_mutex_{"state_store_memo_writer", Lock_rank::state_store_writer};
    /// key -> record (payload = checkpoint blob).
    std::map<std::string, Record> policies_ XRL_GUARDED_BY(mutex_);
    /// key -> record (payload = serialised result).
    std::map<std::string, Record> memo_ XRL_GUARDED_BY(mutex_);
    State_store_stats stats_ XRL_GUARDED_BY(mutex_);
};

} // namespace xrl
