// Server telemetry: what the serving fleet is doing, snapshottable.
//
// Every submit, coalesce, rejection, and completion is recorded here;
// stats() on the server folds in live queue depth and worker occupancy.
// Latency percentiles (p50/p95 of submit-to-terminal time) come from a
// bounded reservoir of recent completions, so a long-running server's
// snapshot reflects recent behaviour rather than its whole history, and
// memory stays O(1). The benches and tests drive their acceptance numbers
// (coalesce + cache-hit rate, makespan) off these counters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/job.h"
#include "support/metrics.h"
#include "support/sync.h"

namespace xrl {

struct Backend_stats {
    /// submit() calls naming this backend — including coalesced duplicates
    /// and rejected submissions, so this can exceed completed + cancelled
    /// + failed (the primary-job outcomes below).
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
    double busy_seconds = 0.0; ///< Worker time spent in this backend's searches.
};

/// One consistent snapshot of the server's counters.
struct Server_stats {
    // Admission.
    std::uint64_t submitted = 0; ///< Every submit() call.
    std::uint64_t coalesced = 0; ///< Submits attached to an in-flight duplicate.
    std::uint64_t rejected = 0;  ///< Refused at admission (includes shed).
    std::uint64_t shed = 0;      ///< Evicted from the queue by a better-ranked arrival.

    // Outcomes (primary jobs reaching a terminal state).
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
    std::uint64_t cache_hits = 0; ///< Jobs answered by the service memo cache.

    // Live occupancy at snapshot time.
    std::size_t queue_depth = 0;
    std::size_t running = 0;
    /// Coalescable primaries (queued + running jobs duplicates could still
    /// attach to) — the server's in-flight table size. Load-aware routing
    /// and the wire protocol's stats PDU read fleet pressure off this and
    /// queue_depth rather than re-deriving it.
    std::size_t inflight = 0;

    // High-water marks since construction (Telemetry gauges, fed by the
    // server at every admission and worker transition): how deep the
    // backlog and how wide the worker occupancy have ever been, so a
    // snapshot taken in a quiet moment still shows what the server has
    // absorbed.
    std::size_t peak_queue_depth = 0;
    std::size_t peak_running = 0;

    // Submit-to-terminal latency over the recent-completion reservoir.
    double p50_latency_ms = 0.0;
    double p95_latency_ms = 0.0;

    // Scraper aids: seconds since this Telemetry was constructed (a reset
    // betrays a restart) and a monotonic per-snapshot sequence number so
    // out-of-order scrape replies can be ordered.
    double uptime_seconds = 0.0;
    std::uint64_t snapshot_seq = 0;

    std::map<std::string, Backend_stats> backends;

    /// Fraction of submits that attached to an in-flight duplicate.
    double coalesce_rate() const
    {
        return submitted > 0 ? static_cast<double>(coalesced) / static_cast<double>(submitted) : 0.0;
    }

    /// Fraction of submits answered by the post-hoc memo cache.
    double cache_hit_rate() const
    {
        return submitted > 0 ? static_cast<double>(cache_hits) / static_cast<double>(submitted) : 0.0;
    }

    /// Fraction of submits that never paid for a search: coalesced onto an
    /// in-flight job or served from the memo cache.
    double dedup_rate() const
    {
        return submitted > 0
                   ? static_cast<double>(coalesced + cache_hits) / static_cast<double>(submitted)
                   : 0.0;
    }
};

/// Internally-locked recorder; the server calls it from submit and from
/// worker threads without extra synchronisation.
///
/// Every event is also published into `Metrics_registry::global()` under
/// a `shard` label (`metrics_shard` — the router stamps each slot's stable
/// id here), so `xrlflowctl metrics` reads the same truth as stats():
/// `xrlflow_server_*_total` counters, `xrlflow_server_queue_depth/running/
/// inflight` gauges, and per-backend `xrlflow_job_latency_ms` histograms.
/// Counter pointers are resolved once at construction — the per-event cost
/// is one relaxed atomic add on top of the existing mutex hold.
class Telemetry {
public:
    explicit Telemetry(std::size_t latency_reservoir = 8192, std::string metrics_shard = "0");

    void on_submit(const std::string& backend);
    void on_coalesce();
    void on_reject(bool shed);
    void on_finish(const std::string& backend, Job_state terminal, double latency_seconds,
                   double busy_seconds, bool from_cache);

    /// Occupancy gauge update: the server reports queue depth and running
    /// workers after every admission and worker transition; the high-water
    /// marks in Server_stats come from here. (The live in-flight count is
    /// sampled at snapshot time instead — it only moves with these two.)
    void on_occupancy(std::size_t queue_depth, std::size_t running);

    Server_stats snapshot(std::size_t queue_depth, std::size_t running,
                          std::size_t inflight) const;

private:
    Histogram& latency_histogram_locked(const std::string& backend) XRL_REQUIRES(mutex_);

    mutable Mutex mutex_{"telemetry", Lock_rank::telemetry};
    Server_stats totals_ XRL_GUARDED_BY(mutex_);
    std::size_t reservoir_capacity_;
    /// Ring buffer of recent completions.
    std::vector<double> latencies_ms_ XRL_GUARDED_BY(mutex_);
    std::size_t next_slot_ XRL_GUARDED_BY(mutex_) = 0;

    // Registry series this instance publishes into (stable for the
    // process lifetime — see Metrics_registry).
    std::string metrics_shard_;
    std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
    mutable std::atomic<std::uint64_t> snapshot_seq_{0};
    Counter* submitted_total_ = nullptr;
    Counter* coalesced_total_ = nullptr;
    Counter* rejected_total_ = nullptr;
    Counter* shed_total_ = nullptr;
    Counter* completed_total_ = nullptr;
    Counter* cancelled_total_ = nullptr;
    Counter* failed_total_ = nullptr;
    Counter* cache_hits_total_ = nullptr;
    Gauge* queue_depth_gauge_ = nullptr;
    Gauge* running_gauge_ = nullptr;
    Gauge* inflight_gauge_ = nullptr;
    Gauge* uptime_gauge_ = nullptr;
    /// By backend.
    std::map<std::string, Histogram*> latency_histograms_ XRL_GUARDED_BY(mutex_);
};

} // namespace xrl
