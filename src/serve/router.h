// Optimization_router: one front door for a fleet of Optimization_servers.
//
// The router owns N shards (each a full Optimization_server with its own
// queue, workers, memo cache, and device registry) and routes each submit
// by *device affinity*: a shard declares which accelerators it prefers
// (in production: the machines physically next to those accelerators), and
// a request's resolved Target_device picks among the shards that declared
// it. Requests whose device no shard claims — and ties between several
// claiming shards — spread by rendezvous (highest-random-weight) hashing
// of (model hash, backend, device) against each shard's stable id, so one
// model's traffic for one device always lands on the same shard and keeps
// hitting that shard's memo cache and coalescing window.
//
// Live membership (the fleet resilience layer): add_shard / remove_shard /
// drain_shard / replace_shard are safe under concurrent submit traffic.
// Rendezvous hashing makes membership changes *minimal-movement*: removing
// a shard re-spreads only that shard's keys over the survivors; adding one
// steals only the keys it now wins — every other (model, backend, device)
// keeps its shard, its memo cache, and its coalescing window.
//
// Failure detection: every shard carries a Shard_health circuit breaker
// (serve/shard_health.h) fed by the server's completion hook. Routing
// skips open-breaker and draining shards — their hash slice re-spreads
// deterministically over the healthy set — and half-open shards heal
// through probe admission: the first requests after the open window route
// to the recovering shard as probes, and enough consecutive probe
// successes close the breaker. When *no* candidate is healthy the router
// routes to the steady-state pick anyway: a request is better refused by a
// sick shard than dropped by a healthy router.
//
// Routing determinism: with stable membership and all breakers closed,
// route() is a pure function of the request, so routed results are
// bit-identical to a direct Optimization_service call with the same
// device (the shard runs the same deterministic backend on the same cost
// model).
//
// stats() aggregates per-shard telemetry: counters sum across the fleet;
// the aggregate latency percentiles are the worst shard's (a fleet is as
// late as its slowest member), with per-shard snapshots — and per-shard
// health — alongside.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.h"
#include "serve/shard_health.h"
#include "support/fault_plan.h"
#include "support/sync.h"

namespace xrl {

struct Shard_config {
    Server_config server;

    /// Registered device names this shard serves preferentially. Empty =
    /// no affinity (the shard only receives hash-fallback traffic).
    std::vector<std::string> device_affinity;
};

struct Router_config {
    /// One entry per shard; must be non-empty.
    std::vector<Shard_config> shards;

    /// One warm-start store for the whole fleet: handed to every shard
    /// whose config did not set its own, so policies trained on one shard
    /// are fetched by the others, every shard's drain/shutdown snapshot
    /// merges into the same files, and a replacement shard
    /// (replace_shard) or a restarted fleet starts warm. See
    /// serve/state_store.h for the sharing contract.
    std::shared_ptr<State_store> state_store;

    /// Breaker tuning applied to every shard's health tracker.
    Shard_health_config health;

    /// Deterministic fault injection, handed to every shard whose config
    /// did not set its own plan: shard `i` (stable id N) consumes one
    /// event at site "shard/<N>" per executed job. Tests and benches kill
    /// and heal shards through this; production leaves it null.
    std::shared_ptr<Fault_plan> fault_plan;
};

struct Router_stats {
    std::uint64_t submitted = 0;       ///< Every routed submit.
    std::uint64_t affinity_routed = 0; ///< Sent to a shard that claimed the device.
    std::uint64_t hash_routed = 0;     ///< No shard claimed it; hash fallback.

    /// Submits admitted to a half-open shard as breaker probes.
    std::uint64_t probe_routed = 0;
    /// Submits whose steady-state shard was skipped (open breaker or
    /// draining) and that re-spread to another candidate.
    std::uint64_t breaker_rerouted = 0;

    /// Scraper aids (mirrors Server_stats): seconds since router
    /// construction and a monotonic per-stats() sequence number.
    double uptime_seconds = 0.0;
    std::uint64_t snapshot_seq = 0;

    Server_stats total;                ///< Fleet-wide aggregation (see header note).
    std::vector<Server_stats> shards;  ///< Per-shard snapshots, in shard order.
    std::vector<std::uint64_t> routed_to; ///< Submits routed per shard.
    std::vector<Shard_health_snapshot> health; ///< Per-shard breaker state, in shard order.
};

class Optimization_router {
public:
    /// Builds one Optimization_server per shard. Throws
    /// std::invalid_argument when `config.shards` is empty or a declared
    /// affinity names a device its own shard's registry does not hold
    /// (such a shard could never serve the traffic routed to it).
    explicit Optimization_router(Router_config config);

    Optimization_router(const Optimization_router&) = delete;
    Optimization_router& operator=(const Optimization_router&) = delete;

    std::size_t shard_count() const;

    /// The shard at `index` right now. Administrative: the reference is
    /// invalidated by remove_shard/replace_shard on that index — do not
    /// hold it across membership changes.
    Optimization_server& shard(std::size_t index);

    /// The steady-state routing decision for this request: affinity first
    /// (rendezvous-spread across the shards claiming the device),
    /// rendezvous across the servable fleet otherwise, skipping draining
    /// and open-breaker shards. Pure (no probe admission is consumed);
    /// with healthy stable membership, submit() routes exactly here.
    std::size_t route(const std::string& backend, const Graph& graph,
                      const Optimize_request& request = {}) const;

    /// Route and submit to the chosen shard. Same contract as
    /// Optimization_server::submit (validation, coalescing within the
    /// shard, handle semantics). Safe under concurrent membership changes.
    Job_handle submit(const std::string& backend, const Graph& graph,
                      const Optimize_request& request = {}, const Submit_options& options = {});

    /// Block until every shard is idle (each shard with a state store
    /// snapshots its memo table as it drains).
    void drain();

    /// Snapshot every shard's memo table into its state store now (no-op
    /// for shards without one). Fleet-level checkpoint between the
    /// periodic and drain-time ones.
    void save_state();

    // -- live membership (all safe under concurrent submit traffic) --------

    /// Grow the fleet by one shard; returns its index. The new shard gets
    /// a fresh stable id, so rendezvous hashing moves only the keys it now
    /// wins. Throws std::invalid_argument for an unservable affinity.
    std::size_t add_shard(Shard_config config);

    /// Shrink the fleet: take shard `index` out of rotation, drain its
    /// backlog to completion (in-flight and queued jobs finish; with a
    /// shared store its warm state is snapshotted), then erase it. Its
    /// keys re-spread over the survivors. Refuses (std::invalid_argument)
    /// to remove the last shard. Indices above `index` shift down.
    void remove_shard(std::size_t index);

    /// Flush shard `index`: out of rotation, drain its backlog (snapshot
    /// included), then return it to rotation. The live-traffic form of a
    /// maintenance flush. Call resume() on a paused shard first.
    void drain_shard(std::size_t index);

    /// Tear down shard `index` and build a replacement from the same
    /// config, without leaving rotation order: the outgoing shard is
    /// drained out of rotation first — with a shared store its warm state
    /// lands in the store and the replacement imports it at construction —
    /// and the replacement keeps the stable id, so no keys move. Health
    /// resets: a replacement starts with a clean breaker.
    void replace_shard(std::size_t index);

    Router_stats stats() const;

private:
    /// One live shard: its server, health, routing identity, and
    /// transition flag. Held by shared_ptr so concurrent readers
    /// (stats, drain) stay valid across membership mutations; the server
    /// is shared too, so replace_shard can swap it while a reader still
    /// holds the outgoing one.
    struct Slot {
        Shard_config config;
        std::shared_ptr<Optimization_server> server;
        std::shared_ptr<Shard_health> health;
        std::uint64_t stable_id = 0;
        std::atomic<bool> draining{false};
        std::atomic<std::uint64_t> routed_to{0};
        /// Registry series for this shard (stable for the process
        /// lifetime): submits routed here, and the breaker state gauge
        /// (0 closed / 1 open / 2 half-open), refreshed at stats() time.
        Counter* routed_counter = nullptr;
        Gauge* breaker_gauge = nullptr;
    };

    struct Route_decision {
        std::shared_ptr<Slot> slot;
        bool used_affinity = false;
        bool probe = false;    ///< Admitted to a half-open shard as a probe.
        bool rerouted = false; ///< Steady-state pick skipped for health/draining.
    };

    /// Build a fully-wired slot (store/fault-plan defaults resolved,
    /// health hook chained, affinity validated). Outside any lock — server
    /// construction imports warm state.
    std::shared_ptr<Slot> make_slot(Shard_config shard_config, std::uint64_t stable_id) const;

    /// Build the slot's server from its (already-resolved) config, with
    /// the breaker feed chained in front of the config's own hook.
    /// replace_shard reuses this for the replacement.
    static std::shared_ptr<Optimization_server>
    build_server(const Shard_config& shard_config, const std::shared_ptr<Shard_health>& health);

    /// Under a shared membership lock: pick the target slot.
    /// `consume_probe` lets submit() spend half-open probe budget;
    /// route() previews without consuming.
    Route_decision decide_locked(const std::string& backend, std::uint64_t model_hash,
                                 const std::string& device, bool inline_profile,
                                 bool consume_probe) const XRL_REQUIRES_SHARED(membership_mutex_);

    /// The name the request's device goes by for routing: the inline
    /// profile's name, the named target, or the first shard's default
    /// device.
    std::string routing_device(const Optimize_request& request) const;

    /// Mark `index` draining under the exclusive lock — which waits for
    /// in-flight submits, so afterwards no routed submit can still reach
    /// the slot — and return it (plus its server, read under the same
    /// lock, when requested).
    std::shared_ptr<Slot> begin_drain(std::size_t index,
                                      std::shared_ptr<Optimization_server>* server = nullptr);

    Router_config config_;

    /// Membership lock: submit/route/stats/drain take it shared; add /
    /// remove / replace / drain_shard take it exclusive only for the brief
    /// structural mutation (never while draining a backlog).
    mutable Shared_mutex membership_mutex_{"router_membership", Lock_rank::router_membership};
    std::vector<std::shared_ptr<Slot>> slots_ XRL_GUARDED_BY(membership_mutex_);
    std::uint64_t next_stable_id_ XRL_GUARDED_BY(membership_mutex_) = 0;

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> affinity_routed_{0};
    std::atomic<std::uint64_t> hash_routed_{0};
    std::atomic<std::uint64_t> probe_routed_{0};
    std::atomic<std::uint64_t> breaker_rerouted_{0};

    std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
    mutable std::atomic<std::uint64_t> snapshot_seq_{0};

    // Registry series the router publishes into (resolved once at
    // construction; see support/metrics.h).
    Counter* submitted_counter_ = nullptr;
    Counter* affinity_counter_ = nullptr;
    Counter* hash_counter_ = nullptr;
    Counter* probe_counter_ = nullptr;
    Counter* rerouted_counter_ = nullptr;
    Gauge* shard_count_gauge_ = nullptr;
    Gauge* uptime_gauge_ = nullptr;
};

} // namespace xrl
