// Optimization_router: one front door for a fleet of Optimization_servers.
//
// The ROADMAP's two remaining serving items — sharding across servers and
// multi-device fleets — meet here. The router owns N shards (each a full
// Optimization_server with its own queue, workers, memo cache, and device
// registry) and routes each submit by *device affinity*: a shard declares
// which accelerators it prefers (in production: the machines physically
// next to those accelerators), and a request's resolved Target_device
// picks among the shards that declared it. Requests whose device no shard
// claims — and ties between several claiming shards — fall back to a
// deterministic hash of (model hash, backend, device), so one model's
// traffic for one device always lands on the same shard and keeps hitting
// that shard's memo cache and coalescing window.
//
// Routing is deterministic and stateless (route() is a pure function of
// the request), so routed results are bit-identical to a direct
// Optimization_service call with the same device: the shard runs the same
// deterministic backend on the same cost model.
//
// stats() aggregates per-shard telemetry: counters sum across the fleet;
// the aggregate latency percentiles are the worst shard's (a fleet is as
// late as its slowest member), with per-shard snapshots alongside.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/server.h"

namespace xrl {

struct Shard_config {
    Server_config server;

    /// Registered device names this shard serves preferentially. Empty =
    /// no affinity (the shard only receives hash-fallback traffic).
    std::vector<std::string> device_affinity;
};

struct Router_config {
    /// One entry per shard; must be non-empty.
    std::vector<Shard_config> shards;

    /// One warm-start store for the whole fleet: handed to every shard
    /// whose config did not set its own, so policies trained on one shard
    /// are fetched by the others, every shard's drain/shutdown snapshot
    /// merges into the same files, and a replacement shard
    /// (replace_shard) or a restarted fleet starts warm. See
    /// serve/state_store.h for the sharing contract.
    std::shared_ptr<State_store> state_store;
};

struct Router_stats {
    std::uint64_t submitted = 0;       ///< Every routed submit.
    std::uint64_t affinity_routed = 0; ///< Sent to a shard that claimed the device.
    std::uint64_t hash_routed = 0;     ///< No shard claimed it; hash fallback.

    Server_stats total;                ///< Fleet-wide aggregation (see header note).
    std::vector<Server_stats> shards;  ///< Per-shard snapshots, in shard order.
    std::vector<std::uint64_t> routed_to; ///< Submits routed per shard.
};

class Optimization_router {
public:
    /// Builds one Optimization_server per shard. Throws
    /// std::invalid_argument when `config.shards` is empty or a declared
    /// affinity names a device its own shard's registry does not hold
    /// (such a shard could never serve the traffic routed to it).
    explicit Optimization_router(Router_config config);

    Optimization_router(const Optimization_router&) = delete;
    Optimization_router& operator=(const Optimization_router&) = delete;

    std::size_t shard_count() const { return shards_.size(); }
    Optimization_server& shard(std::size_t index);

    /// The deterministic routing decision for this request: affinity first
    /// (hash-spread across the shards claiming the device), hash across the
    /// whole fleet otherwise. Pure — submit() routes with exactly this.
    std::size_t route(const std::string& backend, const Graph& graph,
                      const Optimize_request& request = {}) const;

    /// Route and submit to the chosen shard. Same contract as
    /// Optimization_server::submit (validation, coalescing within the
    /// shard, handle semantics).
    Job_handle submit(const std::string& backend, const Graph& graph,
                      const Optimize_request& request = {}, const Submit_options& options = {});

    /// Block until every shard is idle (each shard with a state store
    /// snapshots its memo table as it drains).
    void drain();

    /// Snapshot every shard's memo table into its state store now (no-op
    /// for shards without one). Fleet-level checkpoint between the
    /// periodic and drain-time ones.
    void save_state();

    /// Tear down shard `index` and build a replacement from the same
    /// config. The outgoing shard is drained first — with a shared store
    /// its warm state (memo snapshot; policies were written through as
    /// they trained) lands in the store, and the replacement imports it at
    /// construction, so the swap loses no learned state. Administrative:
    /// must not race submit()/stats() traffic to the fleet (dynamic
    /// membership under live traffic is a ROADMAP item).
    void replace_shard(std::size_t index);

    Router_stats stats() const;

private:
    /// The name the request's device goes by for routing: the inline
    /// profile's name, the named target, or shard 0's default device.
    std::string routing_device(const Optimize_request& request) const;

    std::size_t route_hashed(const std::string& backend, std::uint64_t model_hash,
                             const std::string& device, bool inline_profile,
                             bool* used_affinity) const;

    Router_config config_;
    std::vector<std::unique_ptr<Optimization_server>> shards_;

    mutable std::mutex mutex_; ///< Guards the routing counters.
    std::uint64_t submitted_ = 0;
    std::uint64_t affinity_routed_ = 0;
    std::uint64_t hash_routed_ = 0;
    std::vector<std::uint64_t> routed_to_;
};

} // namespace xrl
