#include "serve/shard_health.h"

namespace xrl {

const char* to_string(Breaker_state state)
{
    switch (state) {
    case Breaker_state::closed: return "closed";
    case Breaker_state::open: return "open";
    case Breaker_state::half_open: return "half_open";
    }
    return "?";
}

Shard_health::Shard_health(Shard_health_config config) : config_(std::move(config))
{
    if (config_.failure_threshold == 0) config_.failure_threshold = 1;
    if (config_.half_open_probes == 0) config_.half_open_probes = 1;
}

std::chrono::steady_clock::time_point Shard_health::now() const
{
    return config_.clock ? config_.clock() : std::chrono::steady_clock::now();
}

void Shard_health::advance_locked()
{
    if (state_ != Breaker_state::open) return;
    const auto window = std::chrono::duration<double>(config_.open_seconds);
    if (std::chrono::duration<double>(now() - opened_at_) >= window) {
        state_ = Breaker_state::half_open;
        probes_admitted_ = 0;
        probe_successes_ = 0;
    }
}

void Shard_health::record_success()
{
    const Lock_guard lock(mutex_);
    advance_locked();
    ++successes_;
    consecutive_failures_ = 0;
    if (state_ == Breaker_state::half_open) {
        if (++probe_successes_ >= config_.half_open_probes) state_ = Breaker_state::closed;
    }
    // A late success reaching an *open* breaker (a job admitted before the
    // trip) does not close it — only half-open probes re-earn trust.
}

void Shard_health::record_failure()
{
    const Lock_guard lock(mutex_);
    advance_locked();
    ++failures_;
    ++consecutive_failures_;
    switch (state_) {
    case Breaker_state::closed:
        if (consecutive_failures_ >= config_.failure_threshold) {
            state_ = Breaker_state::open;
            opened_at_ = now();
            ++trips_;
        }
        break;
    case Breaker_state::half_open:
        // A failed probe re-opens immediately and restarts the window.
        state_ = Breaker_state::open;
        opened_at_ = now();
        ++trips_;
        break;
    case Breaker_state::open:
        // Late failures from pre-trip jobs do not push the window out: the
        // recovery schedule stays deterministic from the trip time.
        break;
    }
}

Breaker_state Shard_health::state()
{
    const Lock_guard lock(mutex_);
    advance_locked();
    return state_;
}

bool Shard_health::try_admit_probe()
{
    const Lock_guard lock(mutex_);
    advance_locked();
    if (state_ != Breaker_state::half_open) return false;
    if (probes_admitted_ >= config_.half_open_probes) return false;
    ++probes_admitted_;
    ++probes_total_;
    return true;
}

void Shard_health::reset()
{
    const Lock_guard lock(mutex_);
    state_ = Breaker_state::closed;
    consecutive_failures_ = 0;
    probes_admitted_ = 0;
    probe_successes_ = 0;
    successes_ = 0;
    failures_ = 0;
    trips_ = 0;
    probes_total_ = 0;
}

Shard_health_snapshot Shard_health::snapshot()
{
    const Lock_guard lock(mutex_);
    advance_locked();
    Shard_health_snapshot out;
    out.state = state_;
    out.consecutive_failures = consecutive_failures_;
    out.successes = successes_;
    out.failures = failures_;
    out.trips = trips_;
    out.probes = probes_total_;
    return out;
}

} // namespace xrl
