#include "serve/state_store.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/result_serial.h"

namespace xrl {

namespace {

double system_clock_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

State_store::State_store(State_store_config config) : config_(std::move(config))
{
    if (config_.directory.empty())
        throw std::invalid_argument("State_store: config.directory must be non-empty");
    if (!config_.clock) config_.clock = system_clock_seconds;

    const Lock_guard lock(mutex_);
    load_file_locked(policy_path(), policies_, stats_.policies_loaded, stats_);
    load_file_locked(memo_path(), memo_, stats_.memo_loaded, stats_);
    evict_expired_locked(now());
}

std::string State_store::policy_path() const
{
    return (std::filesystem::path(config_.directory) / "policies.xrls").string();
}

std::string State_store::memo_path() const
{
    return (std::filesystem::path(config_.directory) / "memo.xrls").string();
}

void State_store::load_file_locked(const std::string& path, std::map<std::string, Record>& into,
                                   std::size_t& loaded, State_store_stats& stats)
{
    Record_load_report report;
    for (Record& record : read_record_file(path, &report)) {
        std::string key = record.key;
        into.insert_or_assign(std::move(key), std::move(record));
    }
    loaded += report.loaded;
    stats.skipped_corrupt += report.skipped_corrupt;
    stats.skipped_version += report.skipped_version;
    if (report.header_version_mismatch) ++stats.skipped_version;
}

void State_store::evict_expired_locked(double now_seconds)
{
    if (config_.max_age_seconds <= 0.0) return;
    const double horizon = now_seconds - config_.max_age_seconds;
    for (auto* map : {&policies_, &memo_}) {
        for (auto it = map->begin(); it != map->end();) {
            if (it->second.stamp < horizon) {
                it = map->erase(it);
                ++stats_.evicted_by_age;
            } else {
                ++it;
            }
        }
    }
}

std::vector<Record> State_store::snapshot_records_locked(
    const std::map<std::string, Record>& map) const
{
    std::vector<Record> records;
    records.reserve(map.size());
    for (const auto& [key, record] : map) records.push_back(record);
    return records;
}

bool State_store::fetch_policy(const std::string& key, std::string* blob)
{
    const Lock_guard lock(mutex_);
    evict_expired_locked(now());
    const auto it = policies_.find(key);
    if (it == policies_.end()) {
        ++stats_.policy_misses;
        return false;
    }
    ++stats_.policy_hits;
    if (blob != nullptr) *blob = it->second.payload;
    return true;
}

void State_store::put_policy(const std::string& key, const std::string& blob)
{
    const Lock_guard write_lock(policy_writer_mutex_);
    std::vector<Record> records;
    {
        const Lock_guard lock(mutex_);
        Record record;
        record.stamp = now();
        record.key = key;
        record.payload = blob;
        policies_.insert_or_assign(key, std::move(record));
        ++stats_.policy_puts;
        evict_expired_locked(now());
        records = snapshot_records_locked(policies_);
    }
    write_record_file(policy_path(), records); // IO outside mutex_
    const Lock_guard lock(mutex_);
    ++stats_.snapshots_written;
}

std::size_t State_store::save_memo(const Optimization_service& service)
{
    // The export is the service's own consistent locked read, and the
    // expensive part — serialising every result — runs before any store
    // lock, so concurrent fetch_policy/put_policy never wait on it.
    const std::vector<Optimization_service::Memo_entry> entries = service.export_memo();
    const double stamp = now();
    std::vector<Record> fresh;
    fresh.reserve(entries.size());
    for (const Optimization_service::Memo_entry& entry : entries) {
        Record record;
        record.stamp = stamp;
        record.key = entry.key;
        record.payload = result_to_bytes(entry.result);
        fresh.push_back(std::move(record));
    }

    const Lock_guard write_lock(memo_writer_mutex_);
    std::vector<Record> records;
    {
        const Lock_guard lock(mutex_);
        for (Record& record : fresh) {
            std::string key = record.key;
            memo_.insert_or_assign(std::move(key), std::move(record));
        }
        stats_.memo_saved += entries.size();
        evict_expired_locked(stamp);
        records = snapshot_records_locked(memo_);
    }
    write_record_file(memo_path(), records); // IO outside mutex_
    {
        const Lock_guard lock(mutex_);
        ++stats_.snapshots_written;
    }
    return entries.size();
}

std::size_t State_store::load_memo(Optimization_service& service)
{
    std::vector<Optimization_service::Memo_entry> entries;
    {
        const Lock_guard lock(mutex_);
        evict_expired_locked(now());
        entries.reserve(memo_.size());
        for (const auto& [key, record] : memo_) {
            try {
                entries.push_back({key, result_from_bytes(record.payload)});
            } catch (const std::runtime_error&) {
                // Checksums catch random damage; this catches format drift
                // (a record written by a serialiser this build no longer
                // understands). Either way: skip, count, stay up.
                ++stats_.memo_skipped;
            }
        }
    }
    const std::size_t imported = service.import_memo(entries);
    {
        const Lock_guard lock(mutex_);
        stats_.memo_imported += imported;
    }
    return imported;
}

State_store_stats State_store::stats() const
{
    const Lock_guard lock(mutex_);
    return stats_;
}

namespace {

std::vector<std::string> sorted_keys(const std::map<std::string, Record>& map)
{
    std::vector<std::string> keys;
    keys.reserve(map.size());
    for (const auto& [key, record] : map) keys.push_back(key);
    return keys; // std::map iteration is already sorted
}

} // namespace

std::vector<std::string> State_store::policy_keys() const
{
    const Lock_guard lock(mutex_);
    return sorted_keys(policies_);
}

std::vector<std::string> State_store::memo_keys() const
{
    const Lock_guard lock(mutex_);
    return sorted_keys(memo_);
}

} // namespace xrl
