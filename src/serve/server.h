// Optimization_server: production-style serving in front of the
// superoptimisers.
//
// PR 1's Optimization_service is a synchronous, caller-blocking facade;
// this is the layer that lets many clients share it. The server owns a
// bounded, policy-ordered job queue (serve/job_queue.h) and a configurable
// worker budget executed on the process-wide Thread_pool, and runs every
// job through the service — so the memo cache, the per-backend instance
// pools, and the internally-locked simulator are all shared with direct
// callers.
//
//   submit(backend, graph, request, {priority, deadline}) -> Job_handle
//
// is asynchronous: the handle supports wait / poll / cancel, and
// cancellation rides the unified API's heartbeat path (a running search
// stops at its next step and resolves with its best-so-far graph).
//
// Request coalescing: a submit whose (model hash, backend, target-device
// fingerprint, request fingerprint) matches a job that is still queued or running
// attaches to that job instead of searching again — N identical concurrent
// submits cost one search and produce N identical results. This is
// distinct from (and composes with) the service's post-hoc memo cache,
// which answers duplicates that arrive *after* the original finished. A
// coalesced arrival can raise the primary's priority and tighten its
// deadline, never lower them; its own progress callback is not invoked
// (only the primary submission's runs).
//
// Admission control: the queue is bounded; overflow rejects the newcomer
// or sheds the worst-ranked queued job (Overflow_policy). Rejected handles
// resolve immediately; wait() on them throws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/optimization_service.h"
#include "serve/job.h"
#include "serve/job_queue.h"
#include "serve/state_store.h"
#include "serve/telemetry.h"
#include "support/fault_plan.h"
#include "support/sync.h"
#include "support/thread_pool.h"

namespace xrl {

/// Invoked after a job this server *executed* reaches a terminal state
/// (done / cancelled / failed). Jobs that resolved while still queued
/// (handle cancellation, shedding) never ran here and are not reported.
/// Called outside every server lock; exceptions are swallowed. The router
/// feeds each shard's Shard_health through this.
using Completion_hook = std::function<void(const std::string& backend, Job_state state)>;

struct Server_config {
    /// Forwarded to the owned Optimization_service (device registry,
    /// backend options, memo-cache capacity).
    Service_config service;

    /// Queue policy, overflow policy, and capacity bound.
    Job_queue_config queue;

    /// Jobs executed concurrently; 0 = the shared pool's width (at least
    /// 1). Workers are not dedicated threads — jobs are posted to the
    /// process-wide Thread_pool, which the candidate engines also use.
    std::size_t workers = 0;

    /// Attach identical in-flight submits to the running job.
    bool coalesce = true;

    /// Construct with dispatch suspended (resume() starts execution).
    /// Tests and staged rollouts fill the queue deterministically this way.
    bool start_paused = false;

    /// Warm-start persistence. When set the server imports the store's
    /// memo snapshot at construction, snapshots the service memo table
    /// back on drain() and destruction (and periodically, below), and —
    /// unless `service.policy_store` was set explicitly — hands the store
    /// to training backends as their policy store. Shared: a router
    /// passes one store to every shard.
    std::shared_ptr<State_store> state_store;

    /// Also snapshot the memo table after every N jobs that reach a
    /// terminal state, so long-running servers bound how much warm state
    /// a crash can lose. 0 = snapshot only on drain and shutdown.
    std::size_t snapshot_every = 0;

    /// Observes executed jobs' terminal states (see Completion_hook).
    Completion_hook on_terminal;

    /// `shard` label value for this server's series in
    /// Metrics_registry::global() (xrlflow_server_*, xrlflow_job_latency_ms).
    /// The router stamps each slot's stable shard id here; a standalone
    /// server keeps the default.
    std::string metrics_shard = "0";

    /// Deterministic fault injection (support/fault_plan.h). When set, one
    /// event is consumed at `fault_site` per executed job, just before the
    /// search runs: `fail` makes the job fail as if the backend threw (the
    /// failure is never cached), `delay` stalls the worker first — the
    /// heartbeat goes quiet for the duration. Tests and benches drive
    /// shard-death scenarios through this; production leaves it null.
    std::shared_ptr<Fault_plan> fault_plan;
    std::string fault_site = "server";
};

class Optimization_server {
public:
    explicit Optimization_server(Server_config config = {});

    /// Cancels every queued job, then blocks until in-flight searches
    /// finish. Waiters of queued jobs wake with cancelled results.
    ~Optimization_server();

    Optimization_server(const Optimization_server&) = delete;
    Optimization_server& operator=(const Optimization_server&) = delete;

    /// Schedule an optimisation. Throws std::invalid_argument for a
    /// malformed request (validate_request), an unknown backend, or a
    /// negative deadline — before anything is enqueued. Never blocks on
    /// search work; a rejected submission returns a handle already in
    /// Job_state::rejected.
    Job_handle submit(const std::string& backend, const Graph& graph,
                      const Optimize_request& request = {}, const Submit_options& options = {});

    /// As submit(), with `model_hash` — exactly graph.model_hash() —
    /// precomputed by the caller. The router already paid that full-graph
    /// traversal for its routing decision; this overload keeps it from
    /// being paid twice per routed request.
    Job_handle submit_hashed(std::uint64_t model_hash, const std::string& backend,
                             const Graph& graph, const Optimize_request& request = {},
                             const Submit_options& options = {});

    /// Suspend / resume dispatch. Running jobs are unaffected; queued jobs
    /// wait. resume() is idempotent and kicks the dispatcher.
    void pause();
    void resume();

    /// Block until no job is queued or running, then — with a state store
    /// configured — snapshot the memo table into it, so a drained server's
    /// warm state is on disk before a deployment replaces it. Call
    /// resume() first if the server is paused with work queued, or this
    /// waits forever.
    void drain();

    /// Counters + latency percentiles (internally consistent with each
    /// other) plus queue depth and worker occupancy sampled just before —
    /// a job finishing between the two reads can make occupancy lag the
    /// counters by one.
    Server_stats stats() const;

    std::size_t queue_depth() const;
    std::size_t running() const;

    /// The underlying service (memo cache stats, simulator, direct calls).
    /// Direct optimize() calls are safe alongside server traffic — they
    /// share the memo cache but bypass queueing and coalescing.
    Optimization_service& service() { return service_; }

private:
    void dispatch();
    void execute(const std::shared_ptr<Job>& job);

    /// Resolve `job` as rejected unless it already reached a terminal
    /// state (a shed evictee may have been handle-cancelled first); true
    /// when this call did the rejecting.
    static bool finalise_rejected(const std::shared_ptr<Job>& job, std::string reason);

    /// Telemetry for a job that resolved without ever reaching a worker
    /// (purged corpse or already-terminal shed evictee).
    void record_queued_resolution(const std::shared_ptr<Job>& job);

    /// Under mutex_: attach one more submission to the in-flight job with
    /// this coalesce key, raising its urgency to at least (priority,
    /// deadline). Null when coalescing is off, no such job exists, or the
    /// job is no longer attachable (terminal / cancellation requested).
    std::shared_ptr<Job> try_attach_locked(const std::string& key, int priority,
                                           bool has_deadline, Job::Clock::time_point deadline)
        XRL_REQUIRES(mutex_);

    /// Under mutex_: give back `freeing` worker slots, claim as many
    /// queued jobs as the remaining budget allows (claims count as running
    /// immediately, so running_ never dips to zero while claimable work
    /// remains), and fire idle_ when truly idle. The caller posts the
    /// returned jobs *after* releasing mutex_ — and must not touch `this`
    /// afterwards if it returns empty with running_ at zero, because
    /// idle_ waiters (drain, the destructor) may free the server then.
    std::vector<std::shared_ptr<Job>> claim_replacements_locked(std::size_t freeing)
        XRL_REQUIRES(mutex_);

    Server_config config_;
    Optimization_service service_;
    Thread_pool* pool_;
    std::size_t workers_;
    Telemetry telemetry_;

    mutable Mutex mutex_{"server", Lock_rank::server};
    Cond_var idle_;
    Job_queue queue_ XRL_GUARDED_BY(mutex_);
    /// Coalesce key -> the queued/running job duplicates attach to. Entries
    /// are removed when their job resolves; later duplicates then hit the
    /// service memo cache instead.
    std::unordered_map<std::string, std::shared_ptr<Job>> inflight_ XRL_GUARDED_BY(mutex_);
    std::size_t running_ XRL_GUARDED_BY(mutex_) = 0;
    bool paused_ XRL_GUARDED_BY(mutex_) = false;
    bool shutting_down_ XRL_GUARDED_BY(mutex_) = false;
    std::uint64_t next_id_ XRL_GUARDED_BY(mutex_) = 1;
    std::uint64_t next_sequence_ XRL_GUARDED_BY(mutex_) = 0;
    /// Drives periodic snapshotting.
    std::size_t finished_since_snapshot_ XRL_GUARDED_BY(mutex_) = 0;
};

} // namespace xrl
