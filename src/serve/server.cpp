#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/trace.h"

namespace xrl {

namespace {

double seconds_between(Job::Clock::time_point from, Job::Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/// A configured state store doubles as the training backends' policy store
/// unless the caller wired one explicitly; resolved before the service is
/// constructed from this config.
Server_config with_shared_state(Server_config config)
{
    if (config.state_store != nullptr && config.service.policy_store == nullptr)
        config.service.policy_store = config.state_store;
    return config;
}

} // namespace

Optimization_server::Optimization_server(Server_config config)
    : config_(with_shared_state(std::move(config))),
      service_(config_.service),
      pool_(&Thread_pool::shared()),
      workers_(config_.workers > 0 ? config_.workers : std::max<std::size_t>(pool_->workers(), 1)),
      telemetry_(8192, config_.metrics_shard),
      queue_(config_.queue),
      paused_(config_.start_paused)
{
    // Warm restart: whatever the store holds answers repeats immediately;
    // damaged store content degrades to a cold cache, never a throw.
    if (config_.state_store != nullptr) config_.state_store->load_memo(service_);
}

Optimization_server::~Optimization_server()
{
    std::vector<std::shared_ptr<Job>> orphans;
    {
        const Lock_guard lock(mutex_);
        shutting_down_ = true;
        orphans = queue_.drain();
    }
    for (const std::shared_ptr<Job>& job : orphans) {
        {
            const Lock_guard job_lock(job->mutex);
            if (!is_terminal(job->state)) job->resolve_cancelled_locked();
        }
        // Orphans never reached a worker, so this is their only recording.
        record_queued_resolution(job);
    }
    {
        Unique_lock lock(mutex_);
        idle_.wait(lock, [this]() XRL_REQUIRES(mutex_) { return running_ == 0; });
    }
    // Final snapshot: everything the memo table learned this lifetime is
    // on disk before the service is torn down.
    if (config_.state_store != nullptr) config_.state_store->save_memo(service_);
}

bool Optimization_server::finalise_rejected(const std::shared_ptr<Job>& job, std::string reason)
{
    const Lock_guard job_lock(job->mutex);
    // A queued job can already be terminal (handle-cancelled) by the time
    // it is shed; its waiters saw that outcome — never rewrite it.
    if (is_terminal(job->state)) return false;
    job->state = Job_state::rejected;
    job->reject_reason = std::move(reason);
    job->finished = Job::Clock::now();
    job->observers.clear(); // break potential handle-capture cycles
    job->changed.notify_all();
    return true;
}

std::shared_ptr<Job> Optimization_server::try_attach_locked(const std::string& key, int priority,
                                                            bool has_deadline,
                                                            Job::Clock::time_point deadline)
{
    if (!config_.coalesce) return nullptr;
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return nullptr;
    const std::shared_ptr<Job>& primary = it->second;
    const Lock_guard job_lock(primary->mutex);
    const bool attachable =
        (primary->state == Job_state::queued || primary->state == Job_state::running) &&
        !primary->cancel_requested.load(std::memory_order_relaxed) &&
        // A running search whose budget was actually tightened to a
        // deadline may resolve truncated; a newcomer *without* a deadline
        // is owed a direct-call-identical result, so it schedules its own
        // search instead of attaching. A deadline-carrying newcomer opted
        // into SLA semantics and may attach.
        (!primary->budget_clamped || has_deadline);
    if (!attachable) return nullptr;
    ++primary->interest;
    // A duplicate arrival can only raise urgency (EDF ordering)...
    primary->priority = std::max(primary->priority, priority);
    if (has_deadline && (!primary->has_deadline || deadline < primary->deadline)) {
        primary->has_deadline = true;
        primary->deadline = deadline;
    }
    // ...but the *budget clamp* must honour the least demanding waiter: it
    // stays armed only while every attached submission has a deadline, and
    // tracks the loosest one.
    primary->every_waiter_has_deadline = primary->every_waiter_has_deadline && has_deadline;
    if (has_deadline && deadline > primary->latest_deadline) primary->latest_deadline = deadline;
    return primary;
}

void Optimization_server::record_queued_resolution(const std::shared_ptr<Job>& job)
{
    double latency_seconds = 0.0;
    Job_state terminal;
    {
        const Lock_guard job_lock(job->mutex);
        terminal = job->state;
        latency_seconds = seconds_between(job->submitted, job->finished);
    }
    telemetry_.on_finish(job->backend, terminal, latency_seconds, /*busy_seconds=*/0.0,
                         /*from_cache=*/false);
}

Job_handle Optimization_server::submit(const std::string& backend, const Graph& graph,
                                       const Optimize_request& request,
                                       const Submit_options& options)
{
    return submit_hashed(graph.model_hash(), backend, graph, request, options);
}

Job_handle Optimization_server::submit_hashed(std::uint64_t model_hash, const std::string& backend,
                                              const Graph& graph, const Optimize_request& request,
                                              const Submit_options& options)
{
    validate_request(request, service_.devices()); // budgets + target device
    if (!Optimizer_registry::built_in().contains(backend)) {
        std::ostringstream os;
        os << "unknown optimizer backend '" << backend << "'; registered backends:";
        for (const std::string& name : Optimizer_registry::built_in().names()) os << ' ' << name;
        throw std::invalid_argument(os.str());
    }
    // NaN fails the first comparison; the cap keeps the duration_cast to
    // steady_clock ticks below int64 overflow (1e9 s is ~31 years).
    if (!(options.deadline_seconds >= 0.0) || options.deadline_seconds > 1e9)
        throw std::invalid_argument("invalid Submit_options: deadline_seconds = " +
                                    std::to_string(options.deadline_seconds) +
                                    " (must be in [0, 1e9]; 0 means no deadline)");

    const auto now = Job::Clock::now();
    // The coalesce key carries the resolved device fingerprint: identical
    // graphs targeting different accelerators are different work and must
    // neither coalesce nor share memo entries.
    const std::string key = service_.request_key(model_hash, backend, request);
    bool has_deadline = false;
    Job::Clock::time_point deadline{};
    if (options.deadline_seconds > 0.0) {
        has_deadline = true;
        deadline = now + std::chrono::duration_cast<Job::Clock::duration>(
                             std::chrono::duration<double>(options.deadline_seconds));
    }

    // Fast path: attach to an in-flight duplicate before building
    // anything — a coalesced submit costs a hash probe, not a graph copy.
    {
        const Lock_guard lock(mutex_);
        if (shutting_down_)
            throw std::runtime_error("Optimization_server::submit during shutdown");
        telemetry_.on_submit(backend);
        if (std::shared_ptr<Job> primary =
                try_attach_locked(key, options.priority, has_deadline, deadline)) {
            telemetry_.on_coalesce();
            return Job_handle(std::move(primary), /*coalesced=*/true);
        }
    }

    // Build the job — including the full-graph copy — outside the server
    // mutex, so admission's critical section is map/queue work only and
    // submits never serialize on graph copies.
    std::shared_ptr<Job> job = std::make_shared<Job>();
    job->backend = backend;
    job->graph = graph;
    job->request = request;
    job->coalesce_key = key;
    job->submitted = now;
    // Capture the submitting thread's trace context: the worker thread
    // re-installs it in execute() so shard-side spans join the job's tree.
    const Trace_context trace = current_trace();
    job->trace_id = trace.trace_id;
    job->parent_span = trace.span_id;
    job->priority = options.priority;
    job->has_deadline = has_deadline;
    job->deadline = deadline;
    job->every_waiter_has_deadline = has_deadline;
    job->latest_deadline = deadline;

    std::shared_ptr<Job> shed;
    std::vector<std::shared_ptr<Job>> purged;
    bool coalesced = false;
    bool admitted = false;
    {
        const Lock_guard lock(mutex_);
        if (shutting_down_)
            throw std::runtime_error("Optimization_server::submit during shutdown");

        // An identical submit may have been admitted while the copy ran;
        // attach to it rather than racing it into the queue.
        if (std::shared_ptr<Job> primary =
                try_attach_locked(key, options.priority, has_deadline, deadline)) {
            job = std::move(primary); // the speculative job is discarded
            coalesced = true;
            telemetry_.on_coalesce();
        }

        if (!coalesced) {
            // Jobs that resolved while queued (handle-cancelled) must not
            // consume capacity or be shed as if they were live work.
            purged = queue_.purge_terminal();
            for (const std::shared_ptr<Job>& corpse : purged) {
                const auto it = inflight_.find(corpse->coalesce_key);
                if (it != inflight_.end() && it->second == corpse) inflight_.erase(it);
            }

            job->id = next_id_++;
            job->sequence = next_sequence_++;

            Job_queue::Admission admission = queue_.push(job);
            admitted = admission.admitted;
            shed = std::move(admission.shed);
            if (admitted) {
                inflight_[key] = job;
                if (shed != nullptr) {
                    const auto it = inflight_.find(shed->coalesce_key);
                    if (it != inflight_.end() && it->second == shed) inflight_.erase(it);
                }
                telemetry_.on_occupancy(queue_.size(), running_);
            } else {
                telemetry_.on_reject(/*shed=*/false);
            }
        }
    }

    // Purged corpses never reach a worker; record their outcomes here.
    for (const std::shared_ptr<Job>& corpse : purged) record_queued_resolution(corpse);
    if (shed != nullptr) {
        // The evictee may have resolved (handle cancellation) between the
        // purge above and the eviction; record what actually happened.
        if (finalise_rejected(shed, "shed from a full queue (capacity " +
                                        std::to_string(config_.queue.capacity) +
                                        ") by a better-ranked arrival"))
            telemetry_.on_reject(/*shed=*/true);
        else
            record_queued_resolution(shed);
    }
    if (!coalesced && !admitted)
        finalise_rejected(job, "queue full (capacity " + std::to_string(config_.queue.capacity) +
                                   ", policy " + to_string(config_.queue.policy) + ")");
    if (!coalesced && admitted) dispatch();
    return Job_handle(std::move(job), coalesced);
}

std::vector<std::shared_ptr<Job>> Optimization_server::claim_replacements_locked(std::size_t freeing)
{
    std::vector<std::shared_ptr<Job>> claimed;
    while (!paused_ && !shutting_down_ && (running_ - freeing) + claimed.size() < workers_ &&
           !queue_.empty())
        claimed.push_back(queue_.pop_best());
    running_ = running_ - freeing + claimed.size();
    telemetry_.on_occupancy(queue_.size(), running_);
    if (running_ == 0 && queue_.empty()) idle_.notify_all();
    return claimed;
}

void Optimization_server::dispatch()
{
    std::vector<std::shared_ptr<Job>> claimed;
    {
        const Lock_guard lock(mutex_);
        claimed = claim_replacements_locked(0);
    }
    // Posted outside the lock: with a zero-worker pool, post() degrades to
    // inline execution, and execute() re-enters mutex_.
    for (std::shared_ptr<Job>& job : claimed)
        pool_->post([this, job = std::move(job)] { execute(job); });
}

void Optimization_server::execute(const std::shared_ptr<Job>& job)
{
    bool run_search = false;
    bool clamp_to_deadline = false;
    double deadline_remaining_seconds = 0.0;
    {
        const Lock_guard job_lock(job->mutex);
        if (job->state == Job_state::queued) {
            job->state = Job_state::running;
            job->started = Job::Clock::now();
            run_search = true;
            // The clamp engages only when *every* attached submission asked
            // for deadline semantics, and honours the loosest of their
            // deadlines — a no-deadline waiter is owed the full search.
            // budget_clamped is recorded only when the clamp actually
            // tightens the budget (unlimited, or longer than the time
            // left): a generous deadline stays a no-op and keeps the job
            // attachable to everyone.
            if (job->every_waiter_has_deadline) {
                deadline_remaining_seconds =
                    std::chrono::duration<double>(job->latest_deadline - job->started).count();
                const double budget = job->request.time_budget_seconds;
                if (budget == 0.0 || deadline_remaining_seconds < budget) {
                    clamp_to_deadline = true;
                    job->budget_clamped = true; // deadline-free attachments now refused
                }
            }
        }
        // Otherwise the job resolved while queued (handle cancellation);
        // this worker only does the bookkeeping below.
    }

    bool from_cache = false;
    if (run_search) {
        // Chain cancellation in front of the submitter's own callback: the
        // heartbeat the backends already poll stops the search as soon as
        // every attached handle has withdrawn interest. The same wrapper
        // fans each snapshot out to every waiter: it is recorded on the job
        // (Job_handle::progress) and forwarded to the observers coalesced
        // duplicates registered (Job_handle::on_progress) — only the
        // primary's own callback keeps its cancellation vote.
        Optimize_request request = job->request;
        const Progress_callback user_callback = job->request.on_progress;
        const std::shared_ptr<Job> tracked = job;
        request.on_progress = [tracked, user_callback](const Optimize_progress& progress) {
            std::vector<Progress_observer> observers;
            {
                const Lock_guard job_lock(tracked->mutex);
                tracked->last_progress = progress;
                observers = tracked->observers;
            }
            // Invoked outside the job mutex: an observer may poll() or read
            // progress() through its handle without deadlocking. Observers
            // are fan-out only — one waiter's faulty observer must not
            // fail (or cancel) the search every other waiter shares.
            for (const Progress_observer& observer : observers) {
                try {
                    observer(progress);
                } catch (...) {
                    // Swallowed by contract; the job's outcome belongs to
                    // the search, not to a spectator.
                }
            }
            if (tracked->cancel_requested.load(std::memory_order_relaxed)) return false;
            return user_callback ? user_callback(progress) : true;
        };

        // Queue-aware budget: EDF ordering alone cannot keep a deadline —
        // a job dequeued with little time left would still run its full
        // budget. Clamp the wall-clock budget to the time remaining before
        // the (possibly coalesce-tightened) deadline; a job dequeued past
        // its deadline expires at its first heartbeat and resolves
        // cancelled with its best-so-far (input) graph. Completed clamped
        // runs are identical to unclamped ones (the budget never fired),
        // and cut-short runs are cancelled — never cached — so the memo
        // key's original budget stays honest.
        if (clamp_to_deadline) {
            const double remaining = std::max(deadline_remaining_seconds, 1e-9);
            request.time_budget_seconds = request.time_budget_seconds > 0.0
                                              ? std::min(request.time_budget_seconds, remaining)
                                              : remaining;
        }

        Optimize_result result;
        std::exception_ptr error;
        {
            // Join the job's trace on this worker thread: optimizer-level
            // spans (candidate-engine phases, rollout steps) nest under
            // "shard/execute", which itself parents under the daemon/router
            // span recorded at submit. The scope closes before the terminal
            // transition below, so once a waiter observes the outcome the
            // span is already in the buffer.
            Trace_scope trace_scope(job->trace_id, job->parent_span);
            Span_scope span("shard/execute");
            if (span.active()) {
                span.annotate("job_id", std::to_string(job->id));
                span.annotate("backend", job->backend);
            }
            try {
                // Deterministic fault injection: one event per executed job.
                // `fail` surfaces exactly like a backend throw — Job_state::failed,
                // never cached — so the breaker and retry paths above exercise
                // the same machinery a real sick shard would.
                if (config_.fault_plan != nullptr) {
                    double delay_seconds = 0.0;
                    const Fault_action action =
                        config_.fault_plan->next(config_.fault_site, &delay_seconds);
                    if (action == Fault_action::delay && delay_seconds > 0.0)
                        std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds));
                    if (action == Fault_action::fail)
                        throw std::runtime_error("injected fault: shard '" + config_.fault_site +
                                                 "' failed this job");
                }
                result =
                    service_.optimize_keyed(job->coalesce_key, job->backend, job->graph, request);
            } catch (...) {
                error = std::current_exception();
            }
        }

        Job_state terminal_state;
        {
            const Lock_guard job_lock(job->mutex);
            job->finished = Job::Clock::now();
            if (error != nullptr) {
                job->error = error;
                job->state = Job_state::failed;
            } else {
                from_cache = result.from_cache;
                job->result = std::move(result);
                job->state = job->result.cancelled ? Job_state::cancelled : Job_state::done;
            }
            terminal_state = job->state;
            // Observers never fire after the terminal transition; release them
            // so an observer that captured its own Job_handle cannot keep the
            // job alive in a shared_ptr cycle.
            job->observers.clear();
            // Record telemetry before waking waiters: a caller reading stats()
            // right after wait() returns must see this job counted.
            telemetry_.on_finish(job->backend, job->state,
                                 seconds_between(job->submitted, job->finished),
                                 seconds_between(job->started, job->finished), from_cache);
            job->changed.notify_all();
        }
        // The completion hook sees only jobs that actually ran here, after
        // waiters can already observe the outcome. Outside the job mutex —
        // the hook (breaker bookkeeping, user callbacks) must not deadlock
        // against handle operations.
        if (config_.on_terminal) {
            try {
                config_.on_terminal(job->backend, terminal_state);
            } catch (...) {
                // A spectator must not take down the worker.
            }
        }
    } else {
        // Resolved while queued (handle cancellation); waiters woke back
        // then — this worker only records the outcome.
        record_queued_resolution(job);
    }

    // Periodic snapshotting, while this worker still counts as running —
    // once the slot below is released, an idle-waiting destructor may free
    // the server, so the store must not be touched after that.
    if (config_.state_store != nullptr && config_.snapshot_every > 0) {
        bool snapshot_due = false;
        {
            const Lock_guard lock(mutex_);
            if (++finished_since_snapshot_ >= config_.snapshot_every) {
                finished_since_snapshot_ = 0;
                snapshot_due = true;
            }
        }
        if (snapshot_due) config_.state_store->save_memo(service_);
    }

    std::vector<std::shared_ptr<Job>> claimed;
    {
        const Lock_guard lock(mutex_);
        const auto it = inflight_.find(job->coalesce_key);
        if (it != inflight_.end() && it->second == job) inflight_.erase(it);
        XRL_ASSERT(running_ > 0);
        claimed = claim_replacements_locked(1);
    }
    for (std::shared_ptr<Job>& next : claimed)
        pool_->post([this, next = std::move(next)] { execute(next); });
}

void Optimization_server::pause()
{
    const Lock_guard lock(mutex_);
    paused_ = true;
}

void Optimization_server::resume()
{
    {
        const Lock_guard lock(mutex_);
        paused_ = false;
    }
    dispatch();
}

void Optimization_server::drain()
{
    {
        Unique_lock lock(mutex_);
        idle_.wait(lock, [this]() XRL_REQUIRES(mutex_) { return running_ == 0 && queue_.empty(); });
    }
    if (config_.state_store != nullptr) config_.state_store->save_memo(service_);
}

Server_stats Optimization_server::stats() const
{
    std::size_t depth = 0;
    std::size_t active = 0;
    std::size_t inflight = 0;
    {
        const Lock_guard lock(mutex_);
        depth = queue_.size();
        active = running_;
        inflight = inflight_.size();
    }
    return telemetry_.snapshot(depth, active, inflight);
}

std::size_t Optimization_server::queue_depth() const
{
    const Lock_guard lock(mutex_);
    return queue_.size();
}

std::size_t Optimization_server::running() const
{
    const Lock_guard lock(mutex_);
    return running_;
}

} // namespace xrl
