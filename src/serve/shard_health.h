// Shard_health: per-shard failure tracking and a circuit breaker for the
// router's live-membership routing (serve/router.h).
//
// A shard that starts failing every job would otherwise keep swallowing
// its hash slice of traffic — deterministic routing sends the same work
// back to it forever. The breaker is the classic three-state machine:
//
//   closed     healthy; traffic flows. `failure_threshold` *consecutive*
//              failures trip it open (one success resets the count — a
//              flaky-but-working shard is not torn out of rotation).
//   open       no traffic routed here. After `open_seconds` the breaker
//              advances to half_open on the next observation.
//   half_open  up to `half_open_probes` requests are admitted as probes
//              (try_admit_probe). That many consecutive probe successes
//              close the breaker; any failure re-opens it and restarts
//              the window.
//
// Outcomes are reported by the server's completion hook
// (Server_config::on_terminal): done and cancelled count as successes —
// the shard did its job; the *search* being cancelled says nothing about
// shard health — and failed counts as a failure.
//
// The clock is injectable (the state_store idiom): tests drive the
// open→half_open transition deterministically with a fake clock instead of
// sleeping through real windows. Internally locked; record/state/probe
// calls race freely from shard workers and routing threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "support/sync.h"

namespace xrl {

enum class Breaker_state : std::uint8_t { closed = 0, open = 1, half_open = 2 };

const char* to_string(Breaker_state state);

struct Shard_health_config {
    /// Consecutive failures that trip the breaker open.
    std::uint32_t failure_threshold = 3;

    /// How long an open breaker blocks traffic before probing again.
    double open_seconds = 5.0;

    /// Probes admitted in half_open; that many consecutive successes close
    /// the breaker.
    std::uint32_t half_open_probes = 2;

    /// Monotonic now(); defaults to steady_clock. Tests inject a fake
    /// clock to exercise the open→half_open window deterministically.
    std::function<std::chrono::steady_clock::time_point()> clock;
};

/// One shard's health as the router reports it (Router_stats::health and
/// the stats_ok wire PDU carry these).
struct Shard_health_snapshot {
    std::uint64_t stable_id = 0; ///< The routing id (filled by the router).
    Breaker_state state = Breaker_state::closed;
    bool draining = false; ///< Membership transition (filled by the router).
    std::uint32_t consecutive_failures = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t trips = 0;  ///< Times the breaker opened.
    std::uint64_t probes = 0; ///< Half-open probes admitted, lifetime.
};

class Shard_health {
public:
    explicit Shard_health(Shard_health_config config = {});

    /// A job this shard ran reached done or cancelled.
    void record_success();

    /// A job this shard ran failed.
    void record_failure();

    /// Current breaker state; advances open→half_open when the window has
    /// expired (state is observation-driven, not timer-driven).
    Breaker_state state();

    /// In half_open with probe budget left: consume one probe slot and
    /// return true — the caller routes this request to the shard as a
    /// probe. False otherwise (closed shards take traffic unconditionally;
    /// open shards take none).
    bool try_admit_probe();

    /// Forget everything — a replacement shard starts with clean health.
    void reset();

    Shard_health_snapshot snapshot();

private:
    /// Under mutex_: apply the open→half_open window transition.
    void advance_locked() XRL_REQUIRES(mutex_);

    std::chrono::steady_clock::time_point now() const;

    Shard_health_config config_;
    Mutex mutex_{"shard_health", Lock_rank::shard_health};
    Breaker_state state_ XRL_GUARDED_BY(mutex_) = Breaker_state::closed;
    std::chrono::steady_clock::time_point opened_at_ XRL_GUARDED_BY(mutex_){};
    std::uint32_t consecutive_failures_ XRL_GUARDED_BY(mutex_) = 0;
    std::uint32_t probes_admitted_ XRL_GUARDED_BY(mutex_) = 0;  ///< This half_open round.
    std::uint32_t probe_successes_ XRL_GUARDED_BY(mutex_) = 0;  ///< This half_open round.
    std::uint64_t successes_ XRL_GUARDED_BY(mutex_) = 0;
    std::uint64_t failures_ XRL_GUARDED_BY(mutex_) = 0;
    std::uint64_t trips_ XRL_GUARDED_BY(mutex_) = 0;
    std::uint64_t probes_total_ XRL_GUARDED_BY(mutex_) = 0;
};

} // namespace xrl
