#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace xrl {

namespace {

/// Nearest-rank percentile of an unsorted sample (copied, partially sorted):
/// the smallest value with at least ceil(p * N) samples at or below it. The
/// previous `p * (N - 1)` truncation under-read small reservoirs — p95 of
/// {10, 20} returned 10 — and nearest-rank is exact for N = 1 and N = 2,
/// which the telemetry regression test pins down.
double percentile(std::vector<double> sample, double p)
{
    if (sample.empty()) return 0.0;
    const auto n = static_cast<double>(sample.size());
    const auto ceiled = static_cast<std::size_t>(std::ceil(p * n));
    const std::size_t rank = std::clamp<std::size_t>(ceiled, 1, sample.size());
    std::nth_element(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                     sample.end());
    return sample[rank - 1];
}

} // namespace

Telemetry::Telemetry(std::size_t latency_reservoir, std::string metrics_shard)
    : reservoir_capacity_(latency_reservoir), metrics_shard_(std::move(metrics_shard))
{
    XRL_EXPECTS(reservoir_capacity_ >= 1);
    // Resolve every fixed series once; references stay valid for the
    // process lifetime, so hot-path publishing is one relaxed atomic add.
    Metrics_registry& registry = Metrics_registry::global();
    const Metric_labels shard{{"shard", metrics_shard_}};
    submitted_total_ = &registry.counter("xrlflow_server_submitted_total",
                                         "submit() calls (incl. coalesced/rejected)", shard);
    coalesced_total_ = &registry.counter("xrlflow_server_coalesced_total",
                                         "Submits attached to an in-flight duplicate", shard);
    rejected_total_ = &registry.counter("xrlflow_server_rejected_total",
                                        "Submits refused at admission (incl. shed)", shard);
    shed_total_ = &registry.counter("xrlflow_server_shed_total",
                                    "Queued jobs evicted by a better-ranked arrival", shard);
    completed_total_ =
        &registry.counter("xrlflow_server_completed_total", "Jobs finished successfully", shard);
    cancelled_total_ =
        &registry.counter("xrlflow_server_cancelled_total", "Jobs reaching cancelled", shard);
    failed_total_ = &registry.counter("xrlflow_server_failed_total", "Jobs reaching failed", shard);
    cache_hits_total_ = &registry.counter("xrlflow_server_cache_hits_total",
                                          "Jobs answered by the service memo cache", shard);
    queue_depth_gauge_ =
        &registry.gauge("xrlflow_server_queue_depth", "Jobs waiting in the admission queue", shard);
    running_gauge_ =
        &registry.gauge("xrlflow_server_running", "Jobs currently executing on workers", shard);
    inflight_gauge_ = &registry.gauge("xrlflow_server_inflight",
                                      "Coalescable primaries (queued + running)", shard);
    uptime_gauge_ =
        &registry.gauge("xrlflow_server_uptime_seconds", "Seconds since shard start", shard);
}

Histogram& Telemetry::latency_histogram_locked(const std::string& backend)
{
    auto it = latency_histograms_.find(backend);
    if (it == latency_histograms_.end()) {
        Histogram& h = Metrics_registry::global().histogram(
            "xrlflow_job_latency_ms", "Submit-to-terminal latency", latency_ms_buckets(),
            {{"backend", backend}, {"shard", metrics_shard_}});
        it = latency_histograms_.emplace(backend, &h).first;
    }
    return *it->second;
}

void Telemetry::on_submit(const std::string& backend)
{
    const Lock_guard lock(mutex_);
    ++totals_.submitted;
    ++totals_.backends[backend].submitted;
    submitted_total_->increment();
}

void Telemetry::on_coalesce()
{
    const Lock_guard lock(mutex_);
    ++totals_.coalesced;
    coalesced_total_->increment();
}

void Telemetry::on_reject(bool shed)
{
    const Lock_guard lock(mutex_);
    ++totals_.rejected;
    rejected_total_->increment();
    if (shed) {
        ++totals_.shed;
        shed_total_->increment();
    }
}

void Telemetry::on_finish(const std::string& backend, Job_state terminal, double latency_seconds,
                          double busy_seconds, bool from_cache)
{
    const Lock_guard lock(mutex_);
    Backend_stats& per_backend = totals_.backends[backend];
    switch (terminal) {
    case Job_state::done:
        ++totals_.completed;
        ++per_backend.completed;
        completed_total_->increment();
        break;
    case Job_state::cancelled:
        ++totals_.cancelled;
        ++per_backend.cancelled;
        cancelled_total_->increment();
        break;
    case Job_state::failed:
        ++totals_.failed;
        ++per_backend.failed;
        failed_total_->increment();
        break;
    default:
        XRL_ASSERT(false && "on_finish expects a terminal worker outcome");
    }
    if (from_cache) {
        ++totals_.cache_hits;
        cache_hits_total_->increment();
    }
    per_backend.busy_seconds += busy_seconds;

    const double latency_ms = latency_seconds * 1e3;
    latency_histogram_locked(backend).observe(latency_ms);
    if (latencies_ms_.size() < reservoir_capacity_) {
        latencies_ms_.push_back(latency_ms);
    } else {
        latencies_ms_[next_slot_] = latency_ms;
        next_slot_ = (next_slot_ + 1) % reservoir_capacity_;
    }
}

void Telemetry::on_occupancy(std::size_t queue_depth, std::size_t running)
{
    const Lock_guard lock(mutex_);
    totals_.peak_queue_depth = std::max(totals_.peak_queue_depth, queue_depth);
    totals_.peak_running = std::max(totals_.peak_running, running);
    queue_depth_gauge_->set(static_cast<double>(queue_depth));
    running_gauge_->set(static_cast<double>(running));
}

Server_stats Telemetry::snapshot(std::size_t queue_depth, std::size_t running,
                                 std::size_t inflight) const
{
    const Lock_guard lock(mutex_);
    Server_stats stats = totals_;
    stats.queue_depth = queue_depth;
    stats.running = running;
    stats.inflight = inflight;
    stats.p50_latency_ms = percentile(latencies_ms_, 0.50);
    stats.p95_latency_ms = percentile(latencies_ms_, 0.95);
    const auto elapsed = std::chrono::steady_clock::now() - started_;
    stats.uptime_seconds = std::chrono::duration<double>(elapsed).count();
    stats.snapshot_seq = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Snapshot time is the natural point to refresh the slow-moving gauges.
    queue_depth_gauge_->set(static_cast<double>(queue_depth));
    running_gauge_->set(static_cast<double>(running));
    inflight_gauge_->set(static_cast<double>(inflight));
    uptime_gauge_->set(stats.uptime_seconds);
    return stats;
}

} // namespace xrl
