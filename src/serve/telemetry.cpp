#include "serve/telemetry.h"

#include <algorithm>

#include "support/check.h"

namespace xrl {

namespace {

/// Nearest-rank percentile of an unsorted sample (copied, partially sorted).
double percentile(std::vector<double> sample, double p)
{
    if (sample.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(p * static_cast<double>(sample.size() - 1));
    std::nth_element(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(rank),
                     sample.end());
    return sample[rank];
}

} // namespace

Telemetry::Telemetry(std::size_t latency_reservoir) : reservoir_capacity_(latency_reservoir)
{
    XRL_EXPECTS(reservoir_capacity_ >= 1);
}

void Telemetry::on_submit(const std::string& backend)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.submitted;
    ++totals_.backends[backend].submitted;
}

void Telemetry::on_coalesce()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.coalesced;
}

void Telemetry::on_reject(bool shed)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++totals_.rejected;
    if (shed) ++totals_.shed;
}

void Telemetry::on_finish(const std::string& backend, Job_state terminal, double latency_seconds,
                          double busy_seconds, bool from_cache)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Backend_stats& per_backend = totals_.backends[backend];
    switch (terminal) {
    case Job_state::done:
        ++totals_.completed;
        ++per_backend.completed;
        break;
    case Job_state::cancelled:
        ++totals_.cancelled;
        ++per_backend.cancelled;
        break;
    case Job_state::failed:
        ++totals_.failed;
        ++per_backend.failed;
        break;
    default:
        XRL_ASSERT(false && "on_finish expects a terminal worker outcome");
    }
    if (from_cache) ++totals_.cache_hits;
    per_backend.busy_seconds += busy_seconds;

    const double latency_ms = latency_seconds * 1e3;
    if (latencies_ms_.size() < reservoir_capacity_) {
        latencies_ms_.push_back(latency_ms);
    } else {
        latencies_ms_[next_slot_] = latency_ms;
        next_slot_ = (next_slot_ + 1) % reservoir_capacity_;
    }
}

void Telemetry::on_occupancy(std::size_t queue_depth, std::size_t running)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    totals_.peak_queue_depth = std::max(totals_.peak_queue_depth, queue_depth);
    totals_.peak_running = std::max(totals_.peak_running, running);
}

Server_stats Telemetry::snapshot(std::size_t queue_depth, std::size_t running,
                                 std::size_t inflight) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Server_stats stats = totals_;
    stats.queue_depth = queue_depth;
    stats.running = running;
    stats.inflight = inflight;
    stats.p50_latency_ms = percentile(latencies_ms_, 0.50);
    stats.p95_latency_ms = percentile(latencies_ms_, 0.95);
    return stats;
}

} // namespace xrl
