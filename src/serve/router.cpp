#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "support/check.h"
#include "support/fnv.h"
#include "support/trace.h"

namespace xrl {

namespace {

/// Rendezvous (highest-random-weight) score of one shard for one key. The
/// extra mix decorrelates the FNV chain so nearby stable ids do not win
/// nearby key hashes.
std::uint64_t rendezvous_weight(std::uint64_t key_hash, std::uint64_t stable_id)
{
    return fnv1a_mix(fnv1a_mix(key_hash, stable_id), 0x9e3779b97f4a7c15ULL);
}

} // namespace

Optimization_router::Optimization_router(Router_config config) : config_(std::move(config))
{
    if (config_.shards.empty())
        throw std::invalid_argument("Optimization_router: config.shards must be non-empty");
    Metrics_registry& registry = Metrics_registry::global();
    submitted_counter_ =
        &registry.counter("xrlflow_router_submitted_total", "Submits routed by the router");
    affinity_counter_ = &registry.counter("xrlflow_router_affinity_routed_total",
                                          "Submits sent to a shard claiming the device");
    hash_counter_ = &registry.counter("xrlflow_router_hash_routed_total",
                                      "Submits spread by rendezvous hashing");
    probe_counter_ = &registry.counter("xrlflow_router_probe_routed_total",
                                       "Submits admitted to half-open shards as probes");
    rerouted_counter_ = &registry.counter("xrlflow_router_breaker_rerouted_total",
                                          "Submits re-spread past an open/draining shard");
    shard_count_gauge_ = &registry.gauge("xrlflow_router_shards", "Live shards in the fleet");
    uptime_gauge_ =
        &registry.gauge("xrlflow_router_uptime_seconds", "Seconds since router start");
    slots_.reserve(config_.shards.size());
    for (Shard_config& shard_config : config_.shards)
        slots_.push_back(make_slot(std::move(shard_config), next_stable_id_++));
    config_.shards.clear(); // each config now lives on its slot
    shard_count_gauge_->set(static_cast<double>(slots_.size()));
}

std::shared_ptr<Optimization_router::Slot>
Optimization_router::make_slot(Shard_config shard_config, std::uint64_t stable_id) const
{
    // The fleet store reaches every shard that did not bring its own, so
    // one shard's learned state (policies, memo snapshots) warms the rest.
    if (config_.state_store != nullptr && shard_config.server.state_store == nullptr)
        shard_config.server.state_store = config_.state_store;
    // Likewise the fleet fault plan: each shard consumes events at its own
    // stable-id site, so a plan can kill exactly one shard.
    if (config_.fault_plan != nullptr && shard_config.server.fault_plan == nullptr) {
        shard_config.server.fault_plan = config_.fault_plan;
        shard_config.server.fault_site = "shard/" + std::to_string(stable_id);
    }

    // The stable shard id is the fleet-wide `shard` label: the server's
    // Telemetry series and the router's per-shard series line up on it.
    shard_config.server.metrics_shard = std::to_string(stable_id);

    auto slot = std::make_shared<Slot>();
    slot->stable_id = stable_id;
    slot->health = std::make_shared<Shard_health>(config_.health);
    Metrics_registry& registry = Metrics_registry::global();
    const Metric_labels shard_label{{"shard", shard_config.server.metrics_shard}};
    slot->routed_counter = &registry.counter("xrlflow_router_routed_total",
                                             "Submits routed to this shard", shard_label);
    slot->breaker_gauge =
        &registry.gauge("xrlflow_shard_breaker_state",
                        "Circuit breaker: 0 closed, 1 open, 2 half-open", shard_label);
    slot->config = std::move(shard_config);
    slot->server = build_server(slot->config, slot->health);
    for (const std::string& device : slot->config.device_affinity)
        if (!slot->server->service().devices().contains(device))
            throw std::invalid_argument("Optimization_router: shard " + std::to_string(stable_id) +
                                        " declares affinity for device '" + device +
                                        "' its registry does not hold");
    return slot;
}

std::shared_ptr<Optimization_server>
Optimization_router::build_server(const Shard_config& shard_config,
                                  const std::shared_ptr<Shard_health>& health)
{
    // Chain the breaker feed in front of any hook the config brought: the
    // slot's config keeps only the user hook, so a replacement server
    // re-chains cleanly instead of stacking wrappers.
    Server_config server_config = shard_config.server;
    const Completion_hook user_hook = server_config.on_terminal;
    server_config.on_terminal = [health, user_hook](const std::string& backend, Job_state state) {
        // done and cancelled both mean "the shard did its job"; only a
        // failed execution counts against the breaker.
        if (state == Job_state::failed)
            health->record_failure();
        else
            health->record_success();
        if (user_hook) user_hook(backend, state);
    };
    return std::make_shared<Optimization_server>(std::move(server_config));
}

std::size_t Optimization_router::shard_count() const
{
    Shared_lock lock(membership_mutex_);
    return slots_.size();
}

Optimization_server& Optimization_router::shard(std::size_t index)
{
    Shared_lock lock(membership_mutex_);
    XRL_EXPECTS(index < slots_.size());
    return *slots_[index]->server;
}

std::string Optimization_router::routing_device(const Optimize_request& request) const
{
    const std::string& name = request.device.display_name();
    if (!name.empty()) return name;
    return slots_.front()->server->service().devices().default_device();
}

Optimization_router::Route_decision
Optimization_router::decide_locked(const std::string& backend, std::uint64_t model_hash,
                                   const std::string& device, bool inline_profile,
                                   bool consume_probe) const
{
    XRL_EXPECTS(!slots_.empty());

    // Candidate pool: shards that claimed this device (make_slot
    // guarantees a declared affinity is servable), else the servable
    // fleet. Inline profiles are servable anywhere (shards cache them on
    // demand), as is a name no shard holds (every shard rejects
    // identically; let the hashed one report it).
    std::vector<std::shared_ptr<Slot>> pool;
    for (const std::shared_ptr<Slot>& slot : slots_) {
        const auto& affinity = slot->config.device_affinity;
        if (std::find(affinity.begin(), affinity.end(), device) != affinity.end())
            pool.push_back(slot);
    }
    const bool used_affinity = !pool.empty();
    if (pool.empty()) {
        for (const std::shared_ptr<Slot>& slot : slots_)
            if (inline_profile || slot->server->service().devices().contains(device))
                pool.push_back(slot);
        if (pool.empty()) pool = slots_;
    }

    const std::uint64_t h =
        fnv1a_bytes(fnv1a_bytes(fnv1a_mix(fnv1a_offset, model_hash), backend), device);
    const auto rendezvous_pick = [h](const std::vector<std::shared_ptr<Slot>>& candidates) {
        std::shared_ptr<Slot> best;
        std::uint64_t best_weight = 0;
        for (const std::shared_ptr<Slot>& slot : candidates) {
            const std::uint64_t weight = rendezvous_weight(h, slot->stable_id);
            if (best == nullptr || weight > best_weight ||
                (weight == best_weight && slot->stable_id < best->stable_id)) {
                best = slot;
                best_weight = weight;
            }
        }
        return best;
    };
    // The decision as if every candidate were healthy: rendezvous keeps it
    // stable under membership changes elsewhere in the fleet.
    const std::shared_ptr<Slot> steady = rendezvous_pick(pool);

    // Probe admission first: a half-open shard only re-earns trust through
    // real traffic, so the first submits after its open window route there.
    if (consume_probe)
        for (const std::shared_ptr<Slot>& slot : pool)
            if (!slot->draining.load(std::memory_order_relaxed) && slot->health->try_admit_probe())
                return {slot, used_affinity, /*probe=*/true, /*rerouted=*/slot != steady};

    std::vector<std::shared_ptr<Slot>> healthy;
    for (const std::shared_ptr<Slot>& slot : pool)
        if (!slot->draining.load(std::memory_order_relaxed) &&
            slot->health->state() == Breaker_state::closed)
            healthy.push_back(slot);
    // Nothing healthy: route to the steady pick anyway — better refused by
    // a sick shard than dropped by a healthy router.
    if (healthy.empty()) return {steady, used_affinity, /*probe=*/false, /*rerouted=*/false};
    const std::shared_ptr<Slot> pick = rendezvous_pick(healthy);
    return {pick, used_affinity, /*probe=*/false, /*rerouted=*/pick != steady};
}

std::size_t Optimization_router::route(const std::string& backend, const Graph& graph,
                                       const Optimize_request& request) const
{
    Shared_lock lock(membership_mutex_);
    const Route_decision decision =
        decide_locked(backend, graph.model_hash(), routing_device(request),
                      request.device.profile.has_value(), /*consume_probe=*/false);
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i] == decision.slot) return i;
    XRL_ASSERT(false); // decide_locked only returns members of slots_
    return 0;
}

Job_handle Optimization_router::submit(const std::string& backend, const Graph& graph,
                                       const Optimize_request& request,
                                       const Submit_options& options)
{
    const std::uint64_t model_hash = graph.model_hash(); // paid once: routing + coalesce key
    Span_scope span("router/dispatch");
    Shared_lock lock(membership_mutex_);
    const std::string device = routing_device(request);
    const Route_decision decision = decide_locked(backend, model_hash, device,
                                                  request.device.profile.has_value(),
                                                  /*consume_probe=*/true);
    if (span.active()) {
        span.annotate("backend", backend);
        span.annotate("shard", std::to_string(decision.slot->stable_id));
        span.annotate("device", device);
    }
    // Pin the resolved device onto the request: routing resolved "default"
    // against the first shard's registry, and the executing shard must
    // optimise for *that* device even if its own default differs
    // (heterogeneous shard configs). A shard that cannot serve the pinned
    // name rejects loudly (invalid_argument) instead of silently answering
    // for another device.
    Optimize_request routed = request;
    if (routed.device.is_default()) routed.device = Target_device(device);
    // The shard revalidates (budgets, backend name, device against its own
    // registry) before anything is counted there; count the routing
    // decision only after it accepted the submit.
    Job_handle handle =
        decision.slot->server->submit_hashed(model_hash, backend, graph, routed, options);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    submitted_counter_->increment();
    decision.slot->routed_to.fetch_add(1, std::memory_order_relaxed);
    decision.slot->routed_counter->increment();
    if (decision.used_affinity) {
        affinity_routed_.fetch_add(1, std::memory_order_relaxed);
        affinity_counter_->increment();
    } else {
        hash_routed_.fetch_add(1, std::memory_order_relaxed);
        hash_counter_->increment();
    }
    if (decision.probe) {
        probe_routed_.fetch_add(1, std::memory_order_relaxed);
        probe_counter_->increment();
    }
    if (decision.rerouted) {
        breaker_rerouted_.fetch_add(1, std::memory_order_relaxed);
        rerouted_counter_->increment();
    }
    return handle;
}

void Optimization_router::drain()
{
    // Snapshot the membership, then drain outside the lock: a long drain
    // must not block membership changes (or vice versa).
    std::vector<std::shared_ptr<Optimization_server>> servers;
    {
        Shared_lock lock(membership_mutex_);
        servers.reserve(slots_.size());
        for (const std::shared_ptr<Slot>& slot : slots_) servers.push_back(slot->server);
    }
    for (const std::shared_ptr<Optimization_server>& server : servers) server->drain();
}

void Optimization_router::save_state()
{
    std::vector<std::shared_ptr<Slot>> slots;
    std::vector<std::shared_ptr<Optimization_server>> servers;
    {
        Shared_lock lock(membership_mutex_);
        for (const std::shared_ptr<Slot>& slot : slots_) {
            slots.push_back(slot);
            servers.push_back(slot->server);
        }
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::shared_ptr<State_store>& store = slots[i]->config.server.state_store;
        if (store != nullptr) store->save_memo(servers[i]->service());
    }
}

std::shared_ptr<Optimization_router::Slot>
Optimization_router::begin_drain(std::size_t index, std::shared_ptr<Optimization_server>* server)
{
    // Exclusive: waits for in-flight submits to release the shared lock,
    // so once draining is visible no routed submit can still reach the
    // slot.
    Writer_lock lock(membership_mutex_);
    XRL_EXPECTS(index < slots_.size());
    std::shared_ptr<Slot> slot = slots_[index];
    slot->draining.store(true, std::memory_order_relaxed);
    if (server != nullptr) *server = slot->server;
    return slot;
}

std::size_t Optimization_router::add_shard(Shard_config shard_config)
{
    std::uint64_t stable_id = 0;
    {
        Writer_lock lock(membership_mutex_);
        stable_id = next_stable_id_++;
    }
    // Built outside the lock: server construction imports warm state and
    // must not stall the fleet's routing.
    std::shared_ptr<Slot> slot = make_slot(std::move(shard_config), stable_id);
    Writer_lock lock(membership_mutex_);
    slots_.push_back(std::move(slot));
    return slots_.size() - 1;
}

void Optimization_router::remove_shard(std::size_t index)
{
    std::shared_ptr<Slot> slot;
    std::shared_ptr<Optimization_server> server;
    {
        Writer_lock lock(membership_mutex_);
        XRL_EXPECTS(index < slots_.size());
        if (slots_.size() == 1)
            throw std::invalid_argument(
                "Optimization_router: cannot remove the last shard of the fleet");
        slot = slots_[index];
        server = slot->server;
        slot->draining.store(true, std::memory_order_relaxed);
    }
    // Out of rotation; in-flight and queued jobs finish (waiters get their
    // results) and the shard's warm state snapshots into the store.
    server->drain();
    {
        Writer_lock lock(membership_mutex_);
        const auto it = std::find(slots_.begin(), slots_.end(), slot);
        if (it != slots_.end()) slots_.erase(it);
    }
    // The slot (and its idle server) die with the last reference.
}

void Optimization_router::drain_shard(std::size_t index)
{
    std::shared_ptr<Optimization_server> server;
    std::shared_ptr<Slot> slot = begin_drain(index, &server);
    server->drain();
    slot->draining.store(false, std::memory_order_relaxed);
}

void Optimization_router::replace_shard(std::size_t index)
{
    std::shared_ptr<Optimization_server> outgoing;
    std::shared_ptr<Slot> slot = begin_drain(index, &outgoing);
    // Drain out of rotation: with a shared store the outgoing shard's warm
    // state (memo snapshot; policies were written through as they trained)
    // lands in the store, and the replacement imports it at construction —
    // the swap loses no learned state.
    outgoing->drain();
    std::shared_ptr<Optimization_server> replacement = build_server(slot->config, slot->health);
    {
        Writer_lock lock(membership_mutex_);
        slot->server = std::move(replacement);
    }
    outgoing.reset(); // destructor snapshot + worker teardown
    // A replacement is a fresh process in spirit: clean breaker history.
    slot->health->reset();
    slot->draining.store(false, std::memory_order_relaxed);
}

Router_stats Optimization_router::stats() const
{
    Router_stats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.affinity_routed = affinity_routed_.load(std::memory_order_relaxed);
    out.hash_routed = hash_routed_.load(std::memory_order_relaxed);
    out.probe_routed = probe_routed_.load(std::memory_order_relaxed);
    out.breaker_rerouted = breaker_rerouted_.load(std::memory_order_relaxed);

    std::vector<std::shared_ptr<Slot>> slots;
    std::vector<std::shared_ptr<Optimization_server>> servers;
    {
        Shared_lock lock(membership_mutex_);
        for (const std::shared_ptr<Slot>& slot : slots_) {
            slots.push_back(slot);
            servers.push_back(slot->server);
        }
    }
    out.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
    out.snapshot_seq = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    uptime_gauge_->set(out.uptime_seconds);
    shard_count_gauge_->set(static_cast<double>(slots.size()));

    out.shards.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        out.shards.push_back(servers[i]->stats());
        out.routed_to.push_back(slots[i]->routed_to.load(std::memory_order_relaxed));
        Shard_health_snapshot health = slots[i]->health->snapshot();
        health.stable_id = slots[i]->stable_id;
        health.draining = slots[i]->draining.load(std::memory_order_relaxed);
        // A scrape is the natural refresh point for the breaker gauge —
        // breaker transitions are observation-driven anyway.
        slots[i]->breaker_gauge->set(static_cast<double>(static_cast<int>(health.state)));
        out.health.push_back(health);
    }

    Server_stats& total = out.total;
    for (const Server_stats& s : out.shards) {
        total.submitted += s.submitted;
        total.coalesced += s.coalesced;
        total.rejected += s.rejected;
        total.shed += s.shed;
        total.completed += s.completed;
        total.cancelled += s.cancelled;
        total.failed += s.failed;
        total.cache_hits += s.cache_hits;
        total.queue_depth += s.queue_depth;
        total.running += s.running;
        total.inflight += s.inflight;
        // Summed per-shard high-water marks: an upper bound on the fleet's
        // simultaneous peak (the shards need not have peaked together).
        total.peak_queue_depth += s.peak_queue_depth;
        total.peak_running += s.peak_running;
        // A fleet is as late as its slowest member: report the worst
        // shard's percentiles rather than inventing a merged reservoir.
        total.p50_latency_ms = std::max(total.p50_latency_ms, s.p50_latency_ms);
        total.p95_latency_ms = std::max(total.p95_latency_ms, s.p95_latency_ms);
        // The fleet is as old as its oldest member; the sequence sums so
        // it stays monotonic whichever shard answered.
        total.uptime_seconds = std::max(total.uptime_seconds, s.uptime_seconds);
        total.snapshot_seq += s.snapshot_seq;
        for (const auto& [backend, b] : s.backends) {
            Backend_stats& agg = total.backends[backend];
            agg.submitted += b.submitted;
            agg.completed += b.completed;
            agg.cancelled += b.cancelled;
            agg.failed += b.failed;
            agg.busy_seconds += b.busy_seconds;
        }
    }
    return out;
}

} // namespace xrl
