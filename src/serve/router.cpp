#include "serve/router.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "support/check.h"
#include "support/fnv.h"

namespace xrl {

Optimization_router::Optimization_router(Router_config config) : config_(std::move(config))
{
    if (config_.shards.empty())
        throw std::invalid_argument("Optimization_router: config.shards must be non-empty");
    // The fleet store reaches every shard that did not bring its own, so
    // one shard's learned state (policies, memo snapshots) warms the rest.
    if (config_.state_store != nullptr)
        for (Shard_config& shard_config : config_.shards)
            if (shard_config.server.state_store == nullptr)
                shard_config.server.state_store = config_.state_store;
    shards_.reserve(config_.shards.size());
    for (const Shard_config& shard_config : config_.shards)
        shards_.push_back(std::make_unique<Optimization_server>(shard_config.server));
    for (std::size_t i = 0; i < config_.shards.size(); ++i)
        for (const std::string& device : config_.shards[i].device_affinity)
            if (!shards_[i]->service().devices().contains(device))
                throw std::invalid_argument("Optimization_router: shard " + std::to_string(i) +
                                            " declares affinity for device '" + device +
                                            "' its registry does not hold");
    routed_to_.assign(shards_.size(), 0);
}

Optimization_server& Optimization_router::shard(std::size_t index)
{
    XRL_EXPECTS(index < shards_.size());
    return *shards_[index];
}

std::string Optimization_router::routing_device(const Optimize_request& request) const
{
    const std::string& name = request.device.display_name();
    if (!name.empty()) return name;
    return shards_.front()->service().devices().default_device();
}

std::size_t Optimization_router::route_hashed(const std::string& backend,
                                              std::uint64_t model_hash, const std::string& device,
                                              bool inline_profile, bool* used_affinity) const
{
    // Shards that claimed this device (the constructor guarantees a
    // declared affinity is servable).
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < config_.shards.size(); ++i) {
        const auto& affinity = config_.shards[i].device_affinity;
        if (std::find(affinity.begin(), affinity.end(), device) != affinity.end())
            candidates.push_back(i);
    }
    *used_affinity = !candidates.empty();
    if (candidates.empty()) {
        // Hash fallback — but only across shards that can actually serve
        // the device: heterogeneous fleets may register different devices
        // per shard. Inline profiles are servable anywhere (shards cache
        // them on demand), as is a name no shard holds (every shard
        // rejects identically; let the hashed one report it).
        for (std::size_t i = 0; i < shards_.size(); ++i)
            if (inline_profile || shards_[i]->service().devices().contains(device))
                candidates.push_back(i);
        if (candidates.empty())
            for (std::size_t i = 0; i < shards_.size(); ++i) candidates.push_back(i);
    }

    // Deterministic spread: the same (model, backend, device) always lands
    // on the same candidate, so its repeats keep hitting one shard's memo
    // cache and coalescing window.
    const std::uint64_t h =
        fnv1a_bytes(fnv1a_bytes(fnv1a_mix(fnv1a_offset, model_hash), backend), device);
    return candidates[h % candidates.size()];
}

std::size_t Optimization_router::route(const std::string& backend, const Graph& graph,
                                       const Optimize_request& request) const
{
    bool used_affinity = false;
    return route_hashed(backend, graph.model_hash(), routing_device(request),
                        request.device.profile.has_value(), &used_affinity);
}

Job_handle Optimization_router::submit(const std::string& backend, const Graph& graph,
                                       const Optimize_request& request,
                                       const Submit_options& options)
{
    bool used_affinity = false;
    const std::string device = routing_device(request);
    const std::uint64_t model_hash = graph.model_hash(); // paid once: routing + coalesce key
    const std::size_t target = route_hashed(backend, model_hash, device,
                                            request.device.profile.has_value(), &used_affinity);
    // Pin the resolved device onto the request: routing resolved "default"
    // against shard 0's registry, and the executing shard must optimise for
    // *that* device even if its own default differs (heterogeneous shard
    // configs). A shard that cannot serve the pinned name rejects loudly
    // (invalid_argument) instead of silently answering for another device.
    Optimize_request routed = request;
    if (routed.device.is_default()) routed.device = Target_device(device);
    // The shard revalidates (budgets, backend name, device against its own
    // registry) before anything is counted there; count the routing
    // decision only after it accepted the submit.
    Job_handle handle = shards_[target]->submit_hashed(model_hash, backend, graph, routed, options);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        ++routed_to_[target];
        if (used_affinity)
            ++affinity_routed_;
        else
            ++hash_routed_;
    }
    return handle;
}

void Optimization_router::drain()
{
    for (const std::unique_ptr<Optimization_server>& shard : shards_) shard->drain();
}

void Optimization_router::save_state()
{
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const std::shared_ptr<State_store>& store = config_.shards[i].server.state_store;
        if (store != nullptr) store->save_memo(shards_[i]->service());
    }
}

void Optimization_router::replace_shard(std::size_t index)
{
    XRL_EXPECTS(index < shards_.size());
    shards_[index]->drain(); // snapshots into the shared store, if any
    shards_[index].reset();  // destructor snapshot + worker teardown
    shards_[index] = std::make_unique<Optimization_server>(config_.shards[index].server);
}

Router_stats Optimization_router::stats() const
{
    Router_stats out;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        out.submitted = submitted_;
        out.affinity_routed = affinity_routed_;
        out.hash_routed = hash_routed_;
        out.routed_to = routed_to_;
    }
    out.shards.reserve(shards_.size());
    for (const std::unique_ptr<Optimization_server>& shard : shards_)
        out.shards.push_back(shard->stats());

    Server_stats& total = out.total;
    for (const Server_stats& s : out.shards) {
        total.submitted += s.submitted;
        total.coalesced += s.coalesced;
        total.rejected += s.rejected;
        total.shed += s.shed;
        total.completed += s.completed;
        total.cancelled += s.cancelled;
        total.failed += s.failed;
        total.cache_hits += s.cache_hits;
        total.queue_depth += s.queue_depth;
        total.running += s.running;
        total.inflight += s.inflight;
        // Summed per-shard high-water marks: an upper bound on the fleet's
        // simultaneous peak (the shards need not have peaked together).
        total.peak_queue_depth += s.peak_queue_depth;
        total.peak_running += s.peak_running;
        // A fleet is as late as its slowest member: report the worst
        // shard's percentiles rather than inventing a merged reservoir.
        total.p50_latency_ms = std::max(total.p50_latency_ms, s.p50_latency_ms);
        total.p95_latency_ms = std::max(total.p95_latency_ms, s.p95_latency_ms);
        for (const auto& [backend, b] : s.backends) {
            Backend_stats& agg = total.backends[backend];
            agg.submitted += b.submitted;
            agg.completed += b.completed;
            agg.cancelled += b.cancelled;
            agg.failed += b.failed;
            agg.busy_seconds += b.busy_seconds;
        }
    }
    return out;
}

} // namespace xrl
