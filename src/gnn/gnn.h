// The graph neural network of §3.4: one edge-aware node-update layer
// (Eq. 6), k graph-attention layers (Eq. 7), and a final global-update
// readout (Eq. 8) that produces one embedding per member graph of the
// meta-graph.
#pragma once

#include <vector>

#include "gnn/encoding.h"
#include "nn/adam.h"
#include "nn/layers.h"

namespace xrl {

struct Gnn_config {
    std::int64_t hidden_dim = 32;   ///< Node embedding width.
    std::int64_t global_dim = 32;   ///< Graph embedding width.
    int num_gat_layers = 5;         ///< Paper Table 4: k = 5.
    float leaky_slope = 0.2F;       ///< GAT attention slope.
};

/// Eq. 6: h'_i = relu(W [sum of incoming edge attrs || h_i]) — learns each
/// operator's "kernel launch profile" from its type and operand shapes.
class Node_update_layer {
public:
    Node_update_layer(std::int64_t node_dim, std::int64_t out_dim, Rng& rng);

    Var operator()(Tape& tape, Var node_features, const Encoded_graph& enc);

    std::vector<Parameter*> parameters() { return linear_.parameters(); }

private:
    Linear linear_;
};

/// Eq. 7: graph attention — alpha_ij = softmax_j(leaky_relu(a^T [Wh_i || Wh_j])),
/// h'_i = relu(sum_j alpha_ij W h_j), over dataflow edges plus self loops.
class Gat_layer {
public:
    Gat_layer(std::int64_t dim, float leaky_slope, Rng& rng);

    Var operator()(Tape& tape, Var h, const Encoded_graph& enc);

    std::vector<Parameter*> parameters();

private:
    Linear w_;
    Parameter attention_;
    float leaky_slope_;
};

/// Eq. 8: g' = relu(W [sum_N h || g]) with g initialised to zero — one
/// embedding row per member graph.
class Global_update_layer {
public:
    Global_update_layer(std::int64_t node_dim, std::int64_t global_dim, Rng& rng);

    Var operator()(Tape& tape, Var h, const Encoded_graph& enc);

    std::vector<Parameter*> parameters() { return linear_.parameters(); }

private:
    Linear linear_;
    std::int64_t global_dim_;
};

/// Full encoder: meta-graph in, (node embeddings, per-graph embeddings) out.
class Gnn_encoder {
public:
    Gnn_encoder(const Gnn_config& config, Rng& rng);

    struct Output {
        Var node_embeddings;   ///< N x hidden.
        Var graph_embeddings;  ///< num_graphs x global_dim.
    };

    Output operator()(Tape& tape, const Encoded_graph& enc);

    std::vector<Parameter*> parameters();

    const Gnn_config& config() const { return config_; }

private:
    Gnn_config config_;
    Node_update_layer node_update_;
    std::vector<Gat_layer> gat_layers_;
    Global_update_layer global_update_;
};

/// One-hot node-kind matrix (N x op_kind_count) for an encoding.
Tensor one_hot_node_features(const Encoded_graph& enc);

} // namespace xrl
