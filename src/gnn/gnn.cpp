#include "gnn/gnn.h"

#include "support/check.h"

namespace xrl {

Tensor one_hot_node_features(const Encoded_graph& enc)
{
    const auto n = static_cast<std::int64_t>(enc.node_kinds.size());
    Tensor features(Shape{n, op_kind_count()});
    for (std::int64_t i = 0; i < n; ++i)
        features.at(i * op_kind_count() + enc.node_kinds[static_cast<std::size_t>(i)]) = 1.0F;
    return features;
}

Node_update_layer::Node_update_layer(std::int64_t node_dim, std::int64_t out_dim, Rng& rng)
    : linear_(edge_feature_dim + node_dim, out_dim, rng)
{
}

Var Node_update_layer::operator()(Tape& tape, Var node_features, const Encoded_graph& enc)
{
    // Sum of incoming edge attributes per node. Nodes without inputs
    // (sources) aggregate to zero.
    const Var edge_attrs = tape.constant(enc.edge_features);
    const Var aggregated = tape.segment_sum(edge_attrs, enc.edge_dst, enc.num_nodes);
    const Var joined = tape.concat_cols(aggregated, node_features);
    return tape.relu(linear_(tape, joined));
}

Gat_layer::Gat_layer(std::int64_t dim, float leaky_slope, Rng& rng)
    : w_(dim, dim, rng),
      attention_(Tensor::random_uniform({2 * dim, 1}, rng, -0.1F, 0.1F)),
      leaky_slope_(leaky_slope)
{
}

std::vector<Parameter*> Gat_layer::parameters()
{
    auto params = w_.parameters();
    params.push_back(&attention_);
    return params;
}

Var Gat_layer::operator()(Tape& tape, Var h, const Encoded_graph& enc)
{
    const Var hw = w_(tape, h);
    const Var src_h = tape.gather_rows(hw, enc.attn_src);
    const Var dst_h = tape.gather_rows(hw, enc.attn_dst);
    const Var pair = tape.concat_cols(src_h, dst_h);
    const Var scores =
        tape.leaky_relu(tape.matmul(pair, tape.param(attention_)), leaky_slope_);
    const Var alpha = tape.segment_softmax(scores, enc.attn_dst, enc.num_nodes);
    const Var weighted = tape.mul(src_h, alpha); // (E x d) * (E x 1) broadcast
    const Var mixed = tape.segment_sum(weighted, enc.attn_dst, enc.num_nodes);
    return tape.relu(mixed);
}

Global_update_layer::Global_update_layer(std::int64_t node_dim, std::int64_t global_dim, Rng& rng)
    : linear_(node_dim + global_dim, global_dim, rng), global_dim_(global_dim)
{
}

Var Global_update_layer::operator()(Tape& tape, Var h, const Encoded_graph& enc)
{
    const Var pooled = tape.segment_sum(h, enc.node_graph, enc.num_graphs);
    // Global attribute initialised to zero for every graph (§3.3.2).
    const Var zero_globals = tape.constant(Tensor(Shape{enc.num_graphs, global_dim_}));
    const Var joined = tape.concat_cols(pooled, zero_globals);
    return tape.relu(linear_(tape, joined));
}

Gnn_encoder::Gnn_encoder(const Gnn_config& config, Rng& rng)
    : config_(config),
      node_update_(op_kind_count(), config.hidden_dim, rng),
      global_update_(config.hidden_dim, config.global_dim, rng)
{
    XRL_EXPECTS(config.num_gat_layers >= 1);
    gat_layers_.reserve(static_cast<std::size_t>(config.num_gat_layers));
    for (int i = 0; i < config.num_gat_layers; ++i)
        gat_layers_.emplace_back(config.hidden_dim, config.leaky_slope, rng);
}

Gnn_encoder::Output Gnn_encoder::operator()(Tape& tape, const Encoded_graph& enc)
{
    XRL_EXPECTS(enc.num_nodes > 0);
    Var h = tape.constant(one_hot_node_features(enc));
    h = node_update_(tape, h, enc);
    for (Gat_layer& gat : gat_layers_) h = gat(tape, h, enc);
    const Var graph_embeddings = global_update_(tape, h, enc);
    return {h, graph_embeddings};
}

std::vector<Parameter*> Gnn_encoder::parameters()
{
    std::vector<Parameter*> out;
    for (Parameter* p : node_update_.parameters()) out.push_back(p);
    for (Gat_layer& gat : gat_layers_)
        for (Parameter* p : gat.parameters()) out.push_back(p);
    for (Parameter* p : global_update_.parameters()) out.push_back(p);
    return out;
}

} // namespace xrl
