// Graph -> GNN input encoding (§3.3.2).
//
// Node attributes: one-hot operator kind (~40 kinds). Edge attributes: the
// carried tensor's shape, zero-padded to rank 4 on the leading dimensions
// and normalised by the constant M = 4096 (Table 4). The global attribute
// starts at zero and is produced by the learnable global-update layer.
//
// A *meta-graph* batches the current graph and all candidate graphs into
// one disjoint union — one GNN call embeds every graph of the state.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.h"
#include "tensor/tensor.h"

namespace xrl {

constexpr std::int64_t edge_feature_dim = 4;
constexpr float edge_normaliser = 4096.0F; ///< Paper Table 4: M.

/// Compact GNN input (one-hot expansion happens inside the encoder).
struct Encoded_graph {
    std::vector<std::int32_t> node_kinds;       ///< N: operator-kind index per node.
    Tensor edge_features;                       ///< E x 4: normalised shapes.
    std::vector<std::int64_t> edge_src;         ///< E: producer node row.
    std::vector<std::int64_t> edge_dst;         ///< E: consumer node row.
    std::vector<std::int64_t> attn_src;         ///< E + N: dataflow + self loops.
    std::vector<std::int64_t> attn_dst;
    std::vector<std::int64_t> node_graph;       ///< N: which member graph owns the node.
    std::int64_t num_nodes = 0;
    std::int64_t num_graphs = 0;

    /// Approximate retained bytes (buffer-size accounting for tests).
    std::size_t memory_bytes() const;
};

/// Encode a single graph (member index 0).
Encoded_graph encode_graph_for_gnn(const Graph& graph);

/// Encode the meta-graph: member 0 is the current graph, members 1..K the
/// candidates.
Encoded_graph encode_meta_graph(const Graph& current, const std::vector<const Graph*>& candidates);

/// Reusable meta-graph encoder for the rollout hot loop: produces exactly
/// the Encoded_graph encode_meta_graph would (bit-identical — the parity
/// test in test_gnn holds it to that), but the output vectors and the
/// row-mapping scratch persist across encode() calls, so a steady-state
/// step reuses warm buffers instead of reallocating the whole encoding.
/// Single-owner, like the candidate engine's step mode.
class Meta_encoder {
public:
    /// Encode one state. The returned reference is invalidated by the next
    /// encode() call; copy it (e.g. into a PPO transition) to keep it.
    const Encoded_graph& encode(const Graph& current,
                                const std::vector<const Graph*>& candidates);

private:
    Encoded_graph enc_;
    std::vector<float> edge_rows_;
    std::vector<std::int64_t> row_of_; ///< Node_id -> meta-graph row scratch.
};

} // namespace xrl
