#include "gnn/encoding.h"

#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {

namespace {

/// `row_of` is caller-provided scratch (Node_id -> meta-graph row) so the
/// hot loop's Meta_encoder can keep it warm across steps.
void append_graph(Encoded_graph& enc, const Graph& graph, std::int64_t member,
                  std::vector<float>& edge_rows, std::vector<std::int64_t>& row_of)
{
    row_of.assign(graph.capacity(), -1);
    for (const Node_id id : graph.topo_order()) {
        row_of[static_cast<std::size_t>(id)] = enc.num_nodes;
        enc.node_kinds.push_back(static_cast<std::int32_t>(graph.node(id).kind));
        enc.node_graph.push_back(member);
        ++enc.num_nodes;
    }
    for (const Node_id id : graph.node_ids()) {
        const Node& n = graph.node(id);
        const std::int64_t dst = row_of[static_cast<std::size_t>(id)];
        for (const Edge& e : n.inputs) {
            const std::int64_t src = row_of[static_cast<std::size_t>(e.node)];
            XRL_ASSERT(src >= 0 && dst >= 0);
            enc.edge_src.push_back(src);
            enc.edge_dst.push_back(dst);
            // Shape of the carried tensor, leading-padded to rank 4 and
            // normalised by M.
            const Shape& shape = graph.shape_of(e);
            float padded[edge_feature_dim] = {0.0F, 0.0F, 0.0F, 0.0F};
            const std::size_t offset =
                shape.size() >= edge_feature_dim ? 0 : edge_feature_dim - shape.size();
            for (std::size_t d = 0; d < shape.size() && d + offset < edge_feature_dim; ++d)
                padded[d + offset] = static_cast<float>(shape[d]) / edge_normaliser;
            for (const float f : padded) edge_rows.push_back(f);
        }
    }
}

/// `edge_rows` is copied (not moved) into the feature tensor so the
/// caller's buffer survives for the next encode.
void finalise(Encoded_graph& enc, const std::vector<float>& edge_rows)
{
    const auto num_edges = static_cast<std::int64_t>(enc.edge_src.size());
    enc.edge_features = Tensor(Shape{num_edges, edge_feature_dim}, edge_rows);
    // Attention connectivity: dataflow edges + one self loop per node so
    // every node attends at least to itself.
    enc.attn_src = enc.edge_src;
    enc.attn_dst = enc.edge_dst;
    for (std::int64_t i = 0; i < enc.num_nodes; ++i) {
        enc.attn_src.push_back(i);
        enc.attn_dst.push_back(i);
    }
}

void clear_encoding(Encoded_graph& enc)
{
    enc.node_kinds.clear();
    enc.node_graph.clear();
    enc.edge_src.clear();
    enc.edge_dst.clear();
    enc.attn_src.clear();
    enc.attn_dst.clear();
    enc.num_nodes = 0;
    enc.num_graphs = 0;
}

Histogram& encode_histogram()
{
    return Metrics_registry::global().histogram(
        "xrlflow_rollout_phase_us", "RL rollout time by phase", duration_us_buckets(),
        {{"phase", "gnn_encode"}});
}

} // namespace

std::size_t Encoded_graph::memory_bytes() const
{
    return node_kinds.size() * sizeof(std::int32_t) +
           static_cast<std::size_t>(edge_features.volume()) * sizeof(float) +
           (edge_src.size() + edge_dst.size() + attn_src.size() + attn_dst.size() +
            node_graph.size()) *
               sizeof(std::int64_t);
}

Encoded_graph encode_graph_for_gnn(const Graph& graph)
{
    Encoded_graph enc;
    std::vector<float> edge_rows;
    std::vector<std::int64_t> row_of;
    append_graph(enc, graph, 0, edge_rows, row_of);
    enc.num_graphs = 1;
    finalise(enc, edge_rows);
    return enc;
}

Encoded_graph encode_meta_graph(const Graph& current, const std::vector<const Graph*>& candidates)
{
    Meta_encoder encoder;
    return encoder.encode(current, candidates);
}

const Encoded_graph& Meta_encoder::encode(const Graph& current,
                                          const std::vector<const Graph*>& candidates)
{
    static Histogram& phase_histogram = encode_histogram();
    const Scoped_timer_us timer(phase_histogram);
    const Span_scope span("rollout/gnn_encode");
    clear_encoding(enc_);
    edge_rows_.clear();
    append_graph(enc_, current, 0, edge_rows_, row_of_);
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        XRL_EXPECTS(candidates[k] != nullptr);
        append_graph(enc_, *candidates[k], static_cast<std::int64_t>(k + 1), edge_rows_, row_of_);
    }
    enc_.num_graphs = static_cast<std::int64_t>(candidates.size()) + 1;
    finalise(enc_, edge_rows_);
    return enc_;
}

} // namespace xrl
