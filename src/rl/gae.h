// Generalised Advantage Estimation (Schulman et al., 2015) — Eq. 3's
// A^{pi_theta_k} terms.
#pragma once

#include <cstdint>
#include <vector>

namespace xrl {

struct Gae_config {
    double gamma = 0.99;
    double lambda = 0.95;
};

struct Gae_result {
    std::vector<double> advantages;
    std::vector<double> returns; ///< advantage + value (the V_target of Eq. 4).
};

/// Compute GAE over a flat buffer of (possibly several) episodes; `dones`
/// marks episode boundaries. Terminal states bootstrap with value 0.
Gae_result compute_gae(const std::vector<double>& rewards, const std::vector<double>& values,
                       const std::vector<std::uint8_t>& dones, const Gae_config& config);

/// Normalise advantages to zero mean / unit variance (a standard PPO
/// implementation detail; no-op for fewer than two elements).
void normalise_advantages(std::vector<double>& advantages);

} // namespace xrl
