// Masked categorical distribution over a padded action space (§3.3.2):
// invalid entries receive a large negative logit, which "effectively turns
// the gradients to zero if they correspond to an invalid action".
#pragma once

#include <cstdint>
#include <vector>

#include "nn/autograd.h"
#include "support/rng.h"

namespace xrl {

constexpr float masked_logit_penalty = -1e9F;

/// Differentiable pieces of a masked categorical built on the tape.
struct Categorical_vars {
    Var log_probs;  ///< (A x 1) log-probabilities (masked entries ~ -1e9).
    Var entropy;    ///< 1x1 entropy over the valid entries.
};

/// Build masked log-softmax + entropy from a column of logits.
Categorical_vars masked_categorical(Tape& tape, Var logits_col,
                                    const std::vector<std::uint8_t>& mask);

/// Sample an action index from masked logit *values* (no tape involvement).
int sample_masked(const Tensor& logits_col, const std::vector<std::uint8_t>& mask, Rng& rng);

/// Argmax over the valid entries.
int argmax_masked(const Tensor& logits_col, const std::vector<std::uint8_t>& mask);

/// Probabilities from masked logit values (for tests / diagnostics).
std::vector<double> masked_probabilities(const Tensor& logits_col,
                                         const std::vector<std::uint8_t>& mask);

} // namespace xrl
