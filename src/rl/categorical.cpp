#include "rl/categorical.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"

namespace xrl {

namespace {

Tensor mask_column(const std::vector<std::uint8_t>& mask)
{
    Tensor t(Shape{static_cast<std::int64_t>(mask.size()), 1});
    for (std::size_t i = 0; i < mask.size(); ++i) t.at(static_cast<std::int64_t>(i)) = mask[i] ? 1.0F : 0.0F;
    return t;
}

Tensor penalty_column(const std::vector<std::uint8_t>& mask)
{
    Tensor t(Shape{static_cast<std::int64_t>(mask.size()), 1});
    for (std::size_t i = 0; i < mask.size(); ++i)
        t.at(static_cast<std::int64_t>(i)) = mask[i] ? 0.0F : masked_logit_penalty;
    return t;
}

} // namespace

Categorical_vars masked_categorical(Tape& tape, Var logits_col, const std::vector<std::uint8_t>& mask)
{
    XRL_EXPECTS(tape.value(logits_col).rank() == 2 && tape.value(logits_col).dim(1) == 1);
    XRL_EXPECTS(static_cast<std::int64_t>(mask.size()) == tape.value(logits_col).dim(0));
    XRL_EXPECTS(std::any_of(mask.begin(), mask.end(), [](std::uint8_t m) { return m != 0; }));

    const Var masked = tape.add(logits_col, tape.constant(penalty_column(mask)));

    // Numerically stable log-sum-exp with a detached max shift (a constant
    // shift leaves the gradient exact).
    float max_v = -std::numeric_limits<float>::infinity();
    const Tensor& mv = tape.value(masked);
    for (std::int64_t i = 0; i < mv.volume(); ++i) max_v = std::max(max_v, mv.at(i));
    const Var shifted = tape.add(masked, tape.constant(Tensor(Shape{1, 1}, {-max_v})));
    const Var lse = tape.add(tape.log(tape.sum_all(tape.exp(shifted))),
                             tape.constant(Tensor(Shape{1, 1}, {max_v})));
    const Var log_probs = tape.add(masked, tape.neg(lse)); // (A,1) + (1,1) broadcast

    const Var mask_const = tape.constant(mask_column(mask));
    const Var probs = tape.mul(tape.exp(log_probs), mask_const);
    const Var entropy = tape.neg(tape.sum_all(tape.mul(tape.mul(probs, log_probs), mask_const)));
    return {log_probs, entropy};
}

std::vector<double> masked_probabilities(const Tensor& logits_col,
                                         const std::vector<std::uint8_t>& mask)
{
    XRL_EXPECTS(static_cast<std::int64_t>(mask.size()) == logits_col.volume());
    double max_v = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < mask.size(); ++i)
        if (mask[i] != 0) max_v = std::max(max_v, static_cast<double>(logits_col.at(static_cast<std::int64_t>(i))));
    std::vector<double> probs(mask.size(), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] == 0) continue;
        probs[i] = std::exp(static_cast<double>(logits_col.at(static_cast<std::int64_t>(i))) - max_v);
        total += probs[i];
    }
    XRL_ENSURES(total > 0.0);
    for (double& p : probs) p /= total;
    return probs;
}

int sample_masked(const Tensor& logits_col, const std::vector<std::uint8_t>& mask, Rng& rng)
{
    const auto probs = masked_probabilities(logits_col, mask);
    return static_cast<int>(rng.sample_weights(probs));
}

int argmax_masked(const Tensor& logits_col, const std::vector<std::uint8_t>& mask)
{
    int best = -1;
    float best_v = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] == 0) continue;
        const float v = logits_col.at(static_cast<std::int64_t>(i));
        if (v > best_v) {
            best_v = v;
            best = static_cast<int>(i);
        }
    }
    XRL_ENSURES(best >= 0);
    return best;
}

} // namespace xrl
