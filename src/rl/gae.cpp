#include "rl/gae.h"

#include <cmath>

#include "support/check.h"

namespace xrl {

Gae_result compute_gae(const std::vector<double>& rewards, const std::vector<double>& values,
                       const std::vector<std::uint8_t>& dones, const Gae_config& config)
{
    XRL_EXPECTS(rewards.size() == values.size() && rewards.size() == dones.size());
    const std::size_t n = rewards.size();
    Gae_result result;
    result.advantages.resize(n, 0.0);
    result.returns.resize(n, 0.0);

    double running = 0.0;
    for (std::size_t i = n; i-- > 0;) {
        const bool terminal = dones[i] != 0;
        const double next_value = (terminal || i + 1 == n) ? 0.0 : values[i + 1];
        if (terminal) running = 0.0;
        const double delta = rewards[i] + config.gamma * next_value - values[i];
        running = delta + config.gamma * config.lambda * (terminal ? 0.0 : running);
        result.advantages[i] = running;
        result.returns[i] = running + values[i];
    }
    return result;
}

void normalise_advantages(std::vector<double>& advantages)
{
    if (advantages.size() < 2) return;
    double mean = 0.0;
    for (const double a : advantages) mean += a;
    mean /= static_cast<double>(advantages.size());
    double var = 0.0;
    for (const double a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(advantages.size());
    const double std_dev = std::sqrt(var) + 1e-8;
    for (double& a : advantages) a = (a - mean) / std_dev;
}

} // namespace xrl
