#include "optimizers/taso/taso_optimizer.h"

#include <chrono>
#include <queue>
#include <unordered_set>

#include "support/check.h"

namespace xrl {

namespace {

struct Queued_graph {
    double cost;
    std::size_t order; // FIFO tie-break for determinism
    Graph graph;
};

struct Cost_greater {
    bool operator()(const Queued_graph& a, const Queued_graph& b) const
    {
        if (a.cost != b.cost) return a.cost > b.cost;
        return a.order > b.order;
    }
};

} // namespace

Taso_result optimise_taso_with_cost(const Graph& input, const Rule_set& rules,
                                    const Graph_cost_fn& cost, const Taso_config& config)
{
    const auto start = std::chrono::steady_clock::now();

    Taso_result result;
    result.initial_cost_ms = cost(input);
    result.best_graph = input;
    result.best_cost_ms = result.initial_cost_ms;

    std::priority_queue<Queued_graph, std::vector<Queued_graph>, Cost_greater> queue;
    std::unordered_set<std::uint64_t> seen;
    std::size_t order = 0;
    queue.push({result.initial_cost_ms, order++, input});
    seen.insert(input.canonical_hash());

    while (!queue.empty() && result.iterations < config.budget) {
        Queued_graph current = queue.top();
        queue.pop();
        ++result.iterations;

        for (const auto& rule : rules) {
            for (Graph& candidate : rule->apply_all(current.graph, config.max_candidates_per_step)) {
                ++result.candidates_generated;
                const std::uint64_t hash = candidate.canonical_hash();
                if (!seen.insert(hash).second) continue;
                const double candidate_cost = cost(candidate);
                if (candidate_cost < result.best_cost_ms) {
                    result.best_cost_ms = candidate_cost;
                    result.best_graph = candidate;
                }
                if (candidate_cost < config.alpha * result.best_cost_ms &&
                    queue.size() < config.max_queue)
                    queue.push({candidate_cost, order++, std::move(candidate)});
            }
        }
    }

    result.optimisation_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

Taso_result optimise_taso(const Graph& input, const Rule_set& rules, const Cost_model& cost,
                          const Taso_config& config)
{
    return optimise_taso_with_cost(
        input, rules, [&cost](const Graph& g) { return cost.graph_cost_ms(g); }, config);
}

} // namespace xrl
