#include "optimizers/taso/taso_optimizer.h"

#include <chrono>
#include <queue>
#include <unordered_set>

#include "rules/candidate_engine.h"
#include "support/check.h"

namespace xrl {

namespace {

struct Queued_graph {
    double cost;
    std::size_t order; // FIFO tie-break for determinism
    Graph graph;
};

struct Cost_greater {
    bool operator()(const Queued_graph& a, const Queued_graph& b) const
    {
        if (a.cost != b.cost) return a.cost > b.cost;
        return a.order > b.order;
    }
};

} // namespace

Taso_result optimise_taso_with_cost(const Graph& input, const Rule_set& rules,
                                    const Graph_cost_fn& cost, const Taso_config& config)
{
    const auto start = std::chrono::steady_clock::now();

    Taso_result result;
    result.initial_cost_ms = cost(input);
    result.best_graph = input;
    result.best_cost_ms = result.initial_cost_ms;

    std::priority_queue<Queued_graph, std::vector<Queued_graph>, Cost_greater> queue;
    std::unordered_set<std::uint64_t> seen;
    std::size_t order = 0;
    queue.push({result.initial_cost_ms, order++, input});
    seen.insert(input.canonical_hash());
    result.rule_candidates.assign(rules.size(), 0);

    // One engine for the whole search: matching fans out across the rule
    // corpus with a shared per-step op-kind index, and a candidate is only
    // materialised after its match-site fingerprint survived dedup. The
    // cross-iteration `seen` cache stays here — it spans queue pops.
    const Candidate_engine engine(rules,
                                  Candidate_engine_config{config.max_candidates_per_step, 0});

    while (!queue.empty() && result.iterations < config.budget) {
        if (config.heartbeat && !config.heartbeat(result.iterations, result.best_cost_ms)) {
            result.stopped_early = true;
            break;
        }
        Queued_graph current = queue.top();
        queue.pop();
        ++result.iterations;

        for (Rewrite_candidate& record : engine.enumerate(current.graph)) {
            std::uint64_t hash = 0;
            std::optional<Graph> candidate = engine.materialize(current.graph, record, &hash);
            if (!candidate.has_value()) continue;
            ++result.candidates_generated;
            if (!seen.insert(hash).second) continue;
            ++result.rule_candidates[record.rule_index];
            const double candidate_cost = cost(*candidate);
            if (candidate_cost < result.best_cost_ms) {
                result.best_cost_ms = candidate_cost;
                result.best_graph = *candidate;
            }
            if (candidate_cost < config.alpha * result.best_cost_ms &&
                queue.size() < config.max_queue)
                queue.push({candidate_cost, order++, std::move(*candidate)});
        }
    }

    result.optimisation_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

Taso_result optimise_taso(const Graph& input, const Rule_set& rules, const Cost_model& cost,
                          const Taso_config& config)
{
    return optimise_taso_with_cost(
        input, rules, [&cost](const Graph& g) { return cost.graph_cost_ms(g); }, config);
}

namespace {

class Taso_backend final : public Optimizer {
public:
    explicit Taso_backend(const Optimizer_context& context) : context_(context)
    {
        base_.alpha = context.option_or("taso.alpha", base_.alpha);
        base_.budget = static_cast<int>(context.option_or("taso.budget", base_.budget));
        base_.max_candidates_per_step = static_cast<std::size_t>(
            context.option_or("taso.max_candidates_per_step",
                              static_cast<double>(base_.max_candidates_per_step)));
        base_.max_queue = static_cast<std::size_t>(
            context.option_or("taso.max_queue", static_cast<double>(base_.max_queue)));
    }

    std::string name() const override { return "taso"; }

    Optimize_result optimize(const Graph& graph, const Optimize_request& request) override
    {
        Taso_config config = base_;
        if (request.iteration_budget > 0) config.budget = request.iteration_budget;
        const Progress_driver driver(name(), request);
        config.heartbeat = driver.heartbeat();

        // The cost model is per request, not per backend instance: the same
        // instance serves every device in the fleet.
        const Cost_model& cost = context_.cost_for(request);
        const Taso_result inner = optimise_taso(graph, *context_.rules, cost, config);

        Optimize_result result;
        result.backend = name();
        result.device = cost.device().name;
        result.best_graph = inner.best_graph;
        result.initial_ms = inner.initial_cost_ms;
        result.final_ms = inner.best_cost_ms;
        result.steps = inner.iterations;
        result.wall_seconds = inner.optimisation_seconds;
        result.cancelled = inner.stopped_early;
        for (std::size_t i = 0; i < inner.rule_candidates.size(); ++i)
            if (inner.rule_candidates[i] > 0)
                result.rule_counts[(*context_.rules)[i]->name()] = inner.rule_candidates[i];
        result.metadata["candidates_generated"] = inner.candidates_generated;
        result.metadata["alpha"] = config.alpha;
        return result;
    }

private:
    Optimizer_context context_;
    Taso_config base_;
};

} // namespace

void register_taso_backend(Optimizer_registry& registry)
{
    registry.add("taso", [](const Optimizer_context& context) -> std::unique_ptr<Optimizer> {
        return std::make_unique<Taso_backend>(context);
    });
}

} // namespace xrl
