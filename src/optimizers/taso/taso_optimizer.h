// TASO's cost-based backtracking search (Jia et al., SOSP'19).
//
// The greedy baseline of the paper's evaluation: a priority queue of
// candidate graphs ordered by cost-model estimate; at each step the
// cheapest graph is dequeued, every rewrite rule is applied at every
// location, and candidates within `alpha` of the best cost are enqueued.
// Backtracking tolerance alpha > 1 admits slightly-worse intermediates but
// (as the paper argues, §2.2.2) cannot plan for long-term gains.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimizer_api.h"
#include "cost/cost_model.h"
#include "ir/graph.h"
#include "rules/rule.h"

namespace xrl {

struct Taso_config {
    double alpha = 1.05;          ///< Backtracking threshold.
    int budget = 100;             ///< Queue pops before giving up.
    std::size_t max_candidates_per_step = 1000;
    std::size_t max_queue = 10000;
    Search_heartbeat heartbeat;   ///< Checked once per queue pop; false stops the search.
};

struct Taso_result {
    Graph best_graph;
    double initial_cost_ms = 0.0;
    double best_cost_ms = 0.0;
    int iterations = 0;
    int candidates_generated = 0;
    double optimisation_seconds = 0.0;
    bool stopped_early = false;       ///< Heartbeat asked the search to stop.
    std::vector<int> rule_candidates; ///< Novel candidates admitted per rule index.
};

/// Run the search; `cost` supplies the ranking signal (the TASO cost model
/// by default; PET substitutes its element-wise-blind variant).
Taso_result optimise_taso(const Graph& input, const Rule_set& rules, const Cost_model& cost,
                          const Taso_config& config = {});

/// Generic cost callback variant (used by the PET emulation).
using Graph_cost_fn = std::function<double(const Graph&)>;
Taso_result optimise_taso_with_cost(const Graph& input, const Rule_set& rules,
                                    const Graph_cost_fn& cost, const Taso_config& config);

/// Register the "taso" backend. Options: "taso.alpha", "taso.budget",
/// "taso.max_candidates_per_step", "taso.max_queue".
void register_taso_backend(Optimizer_registry& registry);

} // namespace xrl
