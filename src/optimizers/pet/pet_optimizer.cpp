#include "optimizers/pet/pet_optimizer.h"

#include <unordered_set>

#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {

namespace {

bool pet_counts_op(Op_kind kind)
{
    switch (kind) {
    case Op_kind::matmul:
    case Op_kind::conv2d:
    case Op_kind::max_pool2d:
    case Op_kind::avg_pool2d:
    case Op_kind::global_avg_pool:
    case Op_kind::batch_norm:
    case Op_kind::layer_norm:
    case Op_kind::softmax:
    case Op_kind::reduce_sum:
    case Op_kind::reduce_mean:
    case Op_kind::embedding:
        return true;
    default:
        return false; // element-wise + data movement: invisible to PET
    }
}

class Pet_spatial_split_rule final : public Rewrite_rule {
public:
    Pet_spatial_split_rule() : Rewrite_rule("pet-spatial-split") {}

    void apply_all_into(const Graph& host, std::size_t limit, Graph_batch& out) const override
    {
        for (const Node_id id : host.node_ids()) {
            if (out.size() >= limit) break;
            const Node& conv = host.node(id);
            if (conv.kind != Op_kind::conv2d) continue;
            if (conv.params.stride_h != 1 || conv.params.stride_w != 1) continue;
            const Shape& out_shape = host.shape_of({id, 0});
            if (out_shape[2] < 4) continue; // too small to be worth splitting
            if (auto g = split_conv(host, id); g.has_value()) {
                out.next() = std::move(*g);
                out.keep();
            }
        }
    }

private:
    static std::optional<Graph> split_conv(const Graph& host, Node_id conv_id)
    {
        Graph g = host;
        const Edge x = g.node(conv_id).inputs[0];
        const Edge w = g.node(conv_id).inputs[1];
        const Op_params conv_params = g.node(conv_id).params;
        const Shape w_shape = g.shape_of(w);
        const Shape out_shape = g.shape_of({conv_id, 0});
        const std::int64_t r = w_shape[2];
        const std::int64_t oh = out_shape[2];
        const std::int64_t h1 = oh / 2;

        Op_params pad_params;
        pad_params.pads_before = {0, 0, conv_params.pad_h, conv_params.pad_w};
        pad_params.pads_after = {0, 0, conv_params.pad_h, conv_params.pad_w};
        const Node_id padded = g.add_node(Op_kind::pad, {x}, pad_params);

        Op_params top_params;
        top_params.axis = 2;
        top_params.begin = 0;
        top_params.end = h1 + r - 1;
        const Node_id top = g.add_node(Op_kind::slice, {{padded, 0}}, top_params);

        Op_params bottom_params;
        bottom_params.axis = 2;
        bottom_params.begin = h1;
        bottom_params.end = oh + r - 1;
        const Node_id bottom = g.add_node(Op_kind::slice, {{padded, 0}}, bottom_params);

        Op_params piece_conv = conv_params;
        piece_conv.pad_h = 0;
        piece_conv.pad_w = 0;
        const Node_id conv_top = g.add_node(Op_kind::conv2d, {{top, 0}, w}, piece_conv);
        const Node_id conv_bottom = g.add_node(Op_kind::conv2d, {{bottom, 0}, w}, piece_conv);

        Op_params cat_params;
        cat_params.axis = 2;
        const Node_id cat =
            g.add_node(Op_kind::concat, {{conv_top, 0}, {conv_bottom, 0}}, cat_params);

        g.replace_all_uses({conv_id, 0}, {cat, 0});
        if (!finalise_rewrite(g, host, static_cast<Node_id>(host.capacity()),
                              {{{conv_id, 0}, {cat, 0}}}))
            return std::nullopt;
        return g;
    }
};

} // namespace

double pet_graph_cost_ms(const Cost_model& cost, const Graph& g)
{
    std::unordered_set<Node_id> reachable;
    std::vector<Node_id> stack;
    for (const Edge& e : g.outputs())
        if (reachable.insert(e.node).second) stack.push_back(e.node);
    while (!stack.empty()) {
        const Node_id id = stack.back();
        stack.pop_back();
        for (const Edge& e : g.node(id).inputs)
            if (reachable.insert(e.node).second) stack.push_back(e.node);
    }
    // PET predicts latency from flop counts of the compute-heavy kernels:
    // element-wise/data-movement ops are invisible (§2.2.2) and so are
    // kernel-launch overheads and occupancy effects. This blindness is what
    // makes PET shape-sensitive: it cannot see the wins (or losses) of
    // launch-bound graphs such as grouped-convolution ResNext.
    const Device_profile& device = cost.device();
    double total = 0.0;
    for (const Node_id id : reachable) {
        const Op_kind kind = g.node(id).kind;
        if (!pet_counts_op(kind)) continue;
        total += static_cast<double>(node_flops(g, id)) /
                 (device.efficiency(kind) * device.flops_per_ms);
    }
    return total;
}

std::unique_ptr<Rewrite_rule> make_pet_spatial_split_rule()
{
    return std::make_unique<Pet_spatial_split_rule>();
}

Pet_result optimise_pet(const Graph& input, const Cost_model& cost, const Taso_config& config)
{
    Rule_set rules = standard_rule_corpus();
    rules.push_back(make_pet_spatial_split_rule());

    const Taso_result inner = optimise_taso_with_cost(
        input, rules, [&cost](const Graph& g) { return pet_graph_cost_ms(cost, g); }, config);

    Pet_result result;
    result.best_graph = inner.best_graph;
    result.pet_cost_ms = inner.best_cost_ms;
    result.honest_cost_ms = cost.graph_cost_ms(inner.best_graph);
    result.iterations = inner.iterations;
    result.optimisation_seconds = inner.optimisation_seconds;
    result.stopped_early = inner.stopped_early;
    for (std::size_t i = 0; i < inner.rule_candidates.size(); ++i)
        if (inner.rule_candidates[i] > 0)
            result.rule_candidates[rules[i]->name()] = inner.rule_candidates[i];
    return result;
}

namespace {

class Pet_backend final : public Optimizer {
public:
    explicit Pet_backend(const Optimizer_context& context) : context_(context)
    {
        base_.alpha = context.option_or("pet.alpha", base_.alpha);
        base_.budget = static_cast<int>(context.option_or("pet.budget", base_.budget));
    }

    std::string name() const override { return "pet"; }

    Optimize_result optimize(const Graph& graph, const Optimize_request& request) override
    {
        Taso_config config = base_;
        if (request.iteration_budget > 0) config.budget = request.iteration_budget;
        const Progress_driver driver(name(), request);
        config.heartbeat = driver.heartbeat();

        const Cost_model& cost = context_.cost_for(request);
        const Pet_result inner = optimise_pet(graph, cost, config);

        // The unified latency fields report the *honest* cost model — PET's
        // own element-wise-blind estimate is only metadata, because trusting
        // it is exactly the failure mode the paper documents (§2.2.2).
        Optimize_result result;
        result.backend = name();
        result.device = cost.device().name;
        result.best_graph = inner.best_graph;
        result.initial_ms = cost.graph_cost_ms(graph);
        result.final_ms = inner.honest_cost_ms;
        result.steps = inner.iterations;
        result.wall_seconds = inner.optimisation_seconds;
        result.cancelled = inner.stopped_early;
        result.rule_counts = inner.rule_candidates;
        result.metadata["pet_believed_ms"] = inner.pet_cost_ms;
        result.metadata["honest_ms"] = inner.honest_cost_ms;
        return result;
    }

private:
    Optimizer_context context_;
    Taso_config base_;
};

} // namespace

void register_pet_backend(Optimizer_registry& registry)
{
    registry.add("pet", [](const Optimizer_context& context) -> std::unique_ptr<Optimizer> {
        return std::make_unique<Pet_backend>(context);
    });
}

} // namespace xrl
