// PET-style optimiser (Wang et al., OSDI'21), simplified.
//
// Reproduces the two properties of PET the paper leans on in §2.2.2 and
// Table 2:
//   1. PET's cost model "ignores all element-wise operators' runtime" —
//      implemented as an element-wise-and-data-movement-blind graph cost.
//   2. PET performs *partially equivalent* transformations. Our stand-in is
//      spatial splitting of convolutions with halo recomputation: the split
//      introduces correction work (pad/slice/concat kernels) that PET's
//      cost model believes is free, so PET over-applies it on branch-heavy
//      graphs (ResNeXt) and pays at end-to-end time — the paper's observed
//      shape sensitivity.
#pragma once

#include <map>
#include <memory>

#include "cost/cost_model.h"
#include "optimizers/taso/taso_optimizer.h"
#include "rules/rule.h"

namespace xrl {

/// PET's graph cost: sum of op costs over compute-heavy kernels only;
/// element-wise and data-movement operators are free.
double pet_graph_cost_ms(const Cost_model& cost, const Graph& graph);

/// Spatial-split transform: conv2d(x) -> concat_h(conv2d(top+halo),
/// conv2d(bottom+halo)). Exact on values; "partially equivalent" in PET's
/// sense because the halo rows are recomputed and corrected via explicit
/// pad/slice kernels.
std::unique_ptr<Rewrite_rule> make_pet_spatial_split_rule();

struct Pet_result {
    Graph best_graph;
    double pet_cost_ms = 0.0;      ///< What PET believes it achieved.
    double honest_cost_ms = 0.0;   ///< Full cost model of the same graph.
    int iterations = 0;
    double optimisation_seconds = 0.0;
    bool stopped_early = false;    ///< Heartbeat asked the search to stop.

    /// Novel candidates admitted per rule name (corpus + spatial split).
    std::map<std::string, int> rule_candidates;
};

/// TASO-style backtracking search driven by PET's blind cost model over the
/// standard corpus plus the spatial-split transform. The heartbeat in
/// `config` is honoured exactly as in optimise_taso.
Pet_result optimise_pet(const Graph& input, const Cost_model& cost,
                        const Taso_config& config = {});

/// Register the "pet" backend. Shares TASO's search knobs under the "pet."
/// prefix: "pet.alpha", "pet.budget".
void register_pet_backend(Optimizer_registry& registry);

} // namespace xrl
