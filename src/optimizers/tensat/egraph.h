// E-graph: the equality-saturation data structure used by Tensat
// (Yang et al., MLSys'21), the paper's second baseline (§2.2.1, Figure 8).
//
// E-classes group equivalent expressions; e-nodes are operators over
// e-class children. Rewrite rules are applied non-destructively (both sides
// coexist) until saturation or a node limit — the limit is the reason the
// paper notes Tensat "cannot guarantee that its optimised tensor graph
// structure is optimal".
//
// Multi-output operators (split) are represented by a tuple-valued e-class
// plus projection e-nodes selecting one port.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"
#include "ir/graph.h"

namespace xrl {

using Eclass_id = std::int32_t;

/// An operator over e-class operands.
struct E_node {
    Op_kind kind = Op_kind::input;
    Op_params params;
    std::vector<Eclass_id> children;

    /// For leaves (input/weight): the originating graph node, preserving
    /// source identity through extraction.
    std::int64_t leaf_id = -1;

    /// For leaves: their shape (non-leaves infer from children).
    Shape leaf_shape;

    /// Constant payload (shared with the source graph).
    std::shared_ptr<const Tensor> payload;

    /// >= 0: this node projects output port `proj_port` of children[0]
    /// (a tuple-valued class). kind is ignored for projections.
    std::int32_t proj_port = -1;
};

bool enode_equal(const E_node& a, const E_node& b);
std::uint64_t enode_hash(const E_node& n);

class E_graph {
public:
    /// Add a node (children canonicalised). Returns the class containing it
    /// (existing class when hash-consing finds a duplicate). Computes and
    /// checks the class shape.
    Eclass_id add(E_node node);

    /// Canonical representative of a class.
    Eclass_id find(Eclass_id id) const;

    /// Union two classes; returns true when they were distinct. The graph
    /// becomes dirty until rebuild() restores congruence.
    bool merge(Eclass_id a, Eclass_id b);

    /// Restore the congruence invariant after merges (upward merging until
    /// fixpoint).
    void rebuild();

    std::size_t num_classes() const;
    std::size_t num_nodes() const;

    /// E-nodes of a (canonical) class.
    const std::vector<E_node>& class_nodes(Eclass_id id) const;

    /// Output shapes of the class value (size > 1 for tuple classes).
    const std::vector<Shape>& class_shapes(Eclass_id id) const;

    /// All canonical class ids.
    std::vector<Eclass_id> canonical_classes() const;

    /// Compute the shapes an e-node would produce (also used before add).
    std::vector<Shape> infer_enode_shapes(const E_node& node) const;

private:
    E_node canonicalise(E_node node) const;

    mutable std::vector<Eclass_id> parent_;
    std::vector<std::vector<E_node>> nodes_;   // indexed by class id; only roots own nodes
    std::vector<std::vector<Shape>> shapes_;   // indexed by class id (root authoritative)
    std::unordered_map<std::uint64_t, std::vector<std::pair<E_node, Eclass_id>>> hashcons_;
    bool dirty_ = false;
};

// ---------------------------------------------------------------------------
// Graph <-> e-graph conversion and extraction
// ---------------------------------------------------------------------------

struct Egraph_encoding {
    E_graph egraph;
    std::vector<Eclass_id> roots;  ///< One class per graph output.
};

/// Encode a computation graph into a fresh e-graph.
Egraph_encoding encode_graph(const Graph& graph);

/// Greedy minimum-cost extraction: per-class best e-node by (op cost + sum
/// of child class costs), iterated to fixpoint, then materialised as a
/// Graph. Returns std::nullopt if some root has no finite-cost derivation
/// (cannot happen for encodings of real graphs).
std::optional<Graph> extract_best(const E_graph& egraph, const std::vector<Eclass_id>& roots,
                                  const Cost_model& cost);

} // namespace xrl
