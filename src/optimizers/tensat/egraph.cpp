#include "optimizers/tensat/egraph.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "ir/shape_inference.h"
#include "support/check.h"

namespace xrl {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 0x100000001b3ULL;
}

} // namespace

bool enode_equal(const E_node& a, const E_node& b)
{
    return a.kind == b.kind && a.params == b.params && a.children == b.children &&
           a.leaf_id == b.leaf_id && a.proj_port == b.proj_port && a.payload == b.payload;
}

std::uint64_t enode_hash(const E_node& n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = mix(h, static_cast<std::uint64_t>(n.kind));
    h = mix(h, hash_params(n.params));
    for (const Eclass_id c : n.children) h = mix(h, static_cast<std::uint64_t>(c));
    h = mix(h, static_cast<std::uint64_t>(n.leaf_id + 1));
    h = mix(h, static_cast<std::uint64_t>(n.proj_port + 1));
    h = mix(h, reinterpret_cast<std::uintptr_t>(n.payload.get()));
    return h;
}

Eclass_id E_graph::find(Eclass_id id) const
{
    while (parent_[static_cast<std::size_t>(id)] != id) {
        // Path halving.
        parent_[static_cast<std::size_t>(id)] =
            parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(id)])];
        id = parent_[static_cast<std::size_t>(id)];
    }
    return id;
}

E_node E_graph::canonicalise(E_node node) const
{
    for (Eclass_id& c : node.children) c = find(c);
    return node;
}

std::vector<Shape> E_graph::infer_enode_shapes(const E_node& node) const
{
    if (node.proj_port >= 0) {
        XRL_EXPECTS(node.children.size() == 1);
        const auto& tuple_shapes = class_shapes(node.children[0]);
        XRL_EXPECTS(node.proj_port < static_cast<std::int32_t>(tuple_shapes.size()));
        return {tuple_shapes[static_cast<std::size_t>(node.proj_port)]};
    }
    if (is_source(node.kind)) {
        if (node.kind == Op_kind::constant) {
            XRL_EXPECTS(node.payload != nullptr);
            return {node.payload->shape()};
        }
        return {node.leaf_shape};
    }
    // Build a throwaway graph: one input per child carrying the child's
    // (single-output) shape, then the node itself; reuse shape inference.
    Graph g;
    std::vector<Edge> inputs;
    inputs.reserve(node.children.size());
    for (const Eclass_id c : node.children) {
        const auto& child_shapes = class_shapes(c);
        XRL_EXPECTS(child_shapes.size() == 1);
        const Node_id in = g.add_node(Op_kind::input, {});
        g.node_mut(in).output_shapes = {child_shapes.front()};
        inputs.push_back({in, 0});
    }
    const Node_id id = g.add_node(node.kind, std::move(inputs), node.params);
    return infer_output_shapes(g, id);
}

Eclass_id E_graph::add(E_node node)
{
    node = canonicalise(node);
    const std::uint64_t h = enode_hash(node);
    const auto bucket = hashcons_.find(h);
    if (bucket != hashcons_.end()) {
        for (const auto& [existing, cls] : bucket->second)
            if (enode_equal(existing, node)) return find(cls);
    }
    const std::vector<Shape> shapes = infer_enode_shapes(node);
    const auto id = static_cast<Eclass_id>(parent_.size());
    parent_.push_back(id);
    nodes_.push_back({node});
    shapes_.push_back(shapes);
    hashcons_[h].emplace_back(std::move(node), id);
    return id;
}

bool E_graph::merge(Eclass_id a, Eclass_id b)
{
    a = find(a);
    b = find(b);
    if (a == b) return false;
    // Equivalent values must agree on shape — a safety net against unsound
    // rewrites.
    XRL_EXPECTS(shapes_[static_cast<std::size_t>(a)] == shapes_[static_cast<std::size_t>(b)]);
    if (nodes_[static_cast<std::size_t>(a)].size() < nodes_[static_cast<std::size_t>(b)].size())
        std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    auto& na = nodes_[static_cast<std::size_t>(a)];
    auto& nb = nodes_[static_cast<std::size_t>(b)];
    na.insert(na.end(), std::make_move_iterator(nb.begin()), std::make_move_iterator(nb.end()));
    nb.clear();
    dirty_ = true;
    return true;
}

void E_graph::rebuild()
{
    if (!dirty_) return;
    // Whole-graph repair: recanonicalise every e-node, dedup within class,
    // re-hashcons globally, merging classes that now share a node. Repeat
    // until a fixpoint (upward merging).
    bool changed = true;
    while (changed) {
        changed = false;
        hashcons_.clear();
        for (std::size_t cls = 0; cls < nodes_.size(); ++cls) {
            if (find(static_cast<Eclass_id>(cls)) != static_cast<Eclass_id>(cls)) continue;
            auto& list = nodes_[cls];
            std::vector<E_node> unique_nodes;
            for (E_node& n : list) {
                E_node canon = canonicalise(std::move(n));
                bool duplicate = false;
                for (const E_node& u : unique_nodes)
                    if (enode_equal(u, canon)) {
                        duplicate = true;
                        break;
                    }
                if (!duplicate) unique_nodes.push_back(std::move(canon));
            }
            list = std::move(unique_nodes);
        }
        for (std::size_t cls = 0; cls < nodes_.size(); ++cls) {
            if (find(static_cast<Eclass_id>(cls)) != static_cast<Eclass_id>(cls)) continue;
            for (const E_node& n : nodes_[cls]) {
                const std::uint64_t h = enode_hash(n);
                auto& bucket = hashcons_[h];
                bool merged_here = false;
                for (const auto& [existing, other] : bucket) {
                    if (enode_equal(existing, n) && find(other) != static_cast<Eclass_id>(cls)) {
                        merge(static_cast<Eclass_id>(cls), other);
                        changed = true;
                        merged_here = true;
                        break;
                    }
                }
                if (!merged_here) bucket.emplace_back(n, static_cast<Eclass_id>(cls));
            }
            if (changed) break; // class list mutated by merge; restart scan
        }
    }
    dirty_ = false;
}

std::size_t E_graph::num_classes() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < parent_.size(); ++i)
        if (find(static_cast<Eclass_id>(i)) == static_cast<Eclass_id>(i)) ++count;
    return count;
}

std::size_t E_graph::num_nodes() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        if (find(static_cast<Eclass_id>(i)) == static_cast<Eclass_id>(i)) count += nodes_[i].size();
    return count;
}

const std::vector<E_node>& E_graph::class_nodes(Eclass_id id) const
{
    return nodes_[static_cast<std::size_t>(find(id))];
}

const std::vector<Shape>& E_graph::class_shapes(Eclass_id id) const
{
    return shapes_[static_cast<std::size_t>(find(id))];
}

std::vector<Eclass_id> E_graph::canonical_classes() const
{
    std::vector<Eclass_id> out;
    for (std::size_t i = 0; i < parent_.size(); ++i)
        if (find(static_cast<Eclass_id>(i)) == static_cast<Eclass_id>(i))
            out.push_back(static_cast<Eclass_id>(i));
    return out;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

Egraph_encoding encode_graph(const Graph& graph)
{
    Egraph_encoding enc;
    // Per (node, port): e-class carrying that value.
    std::unordered_map<std::int64_t, Eclass_id> value_class;
    auto key = [](Node_id node, std::int32_t port) {
        return (static_cast<std::int64_t>(node) << 8) | port;
    };

    for (const Node_id id : graph.topo_order()) {
        const Node& n = graph.node(id);
        E_node enode;
        enode.kind = n.kind;
        enode.params = n.params;
        if (is_source(n.kind)) {
            enode.leaf_id = id;
            if (n.kind == Op_kind::constant)
                enode.payload = n.payload;
            else
                enode.leaf_shape = n.output_shapes.front();
        } else {
            for (const Edge& e : n.inputs)
                enode.children.push_back(value_class.at(key(e.node, e.port)));
        }
        const Eclass_id cls = enc.egraph.add(std::move(enode));

        if (num_outputs(n) == 1) {
            value_class[key(id, 0)] = cls;
        } else {
            for (std::int32_t port = 0; port < num_outputs(n); ++port) {
                E_node proj;
                proj.kind = Op_kind::identity;
                proj.children = {cls};
                proj.proj_port = port;
                value_class[key(id, port)] = enc.egraph.add(std::move(proj));
            }
        }
    }
    for (const Edge& e : graph.outputs()) enc.roots.push_back(value_class.at(key(e.node, e.port)));
    return enc;
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

namespace {

/// Isolated cost of instantiating one e-node (0 for projections/leaves).
double enode_cost_ms(const E_graph& eg, const E_node& n, const Cost_model& cost)
{
    if (n.proj_port >= 0 || is_source(n.kind)) return 0.0;
    Graph g;
    std::vector<Edge> inputs;
    for (const Eclass_id c : n.children) {
        const auto& shapes = eg.class_shapes(c);
        const Node_id in = g.add_node(Op_kind::input, {});
        g.node_mut(in).output_shapes = {shapes.front()};
        inputs.push_back({in, 0});
    }
    const Node_id id = g.add_node(n.kind, std::move(inputs), n.params);
    g.node_mut(id).output_shapes = infer_output_shapes(g, id);
    return cost.op_cost_ms(g, id);
}

} // namespace

std::optional<Graph> extract_best(const E_graph& eg, const std::vector<Eclass_id>& roots,
                                  const Cost_model& cost)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    const auto classes = eg.canonical_classes();

    // Dense maps keyed by canonical class id.
    std::unordered_map<Eclass_id, double> best_cost;
    std::unordered_map<Eclass_id, const E_node*> best_node;
    for (const Eclass_id c : classes) best_cost[c] = inf;

    // Fixpoint iteration (greedy bottom-up costs; handles the DAG/cycle
    // structure of e-graphs safely).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Eclass_id c : classes) {
            for (const E_node& n : eg.class_nodes(c)) {
                double total = enode_cost_ms(eg, n, cost);
                bool feasible = true;
                for (const Eclass_id child : n.children) {
                    const double child_cost = best_cost[eg.find(child)];
                    if (child_cost == inf) {
                        feasible = false;
                        break;
                    }
                    total += child_cost;
                }
                if (!feasible) continue;
                if (total < best_cost[c] - 1e-12) {
                    best_cost[c] = total;
                    best_node[c] = &n;
                    changed = true;
                }
            }
        }
    }

    for (const Eclass_id r : roots)
        if (best_cost[eg.find(r)] == inf) return std::nullopt;

    // Materialise the chosen derivation.
    Graph out;
    std::unordered_map<Eclass_id, Edge> built;

    // Recursive build with explicit stack (post-order).
    std::function<Edge(Eclass_id)> build = [&](Eclass_id c) -> Edge {
        c = eg.find(c);
        const auto it = built.find(c);
        if (it != built.end()) return it->second;
        const E_node& n = *best_node.at(c);

        Edge result;
        if (n.proj_port >= 0) {
            const Edge tuple = build(n.children[0]);
            result = Edge{tuple.node, n.proj_port};
        } else if (is_source(n.kind)) {
            Node_id id;
            if (n.kind == Op_kind::constant) {
                id = out.add_node(Op_kind::constant, {});
                out.node_mut(id).payload = n.payload;
            } else {
                id = out.add_node(n.kind, {});
                out.node_mut(id).output_shapes = {n.leaf_shape};
            }
            result = Edge{id, 0};
        } else {
            std::vector<Edge> inputs;
            inputs.reserve(n.children.size());
            for (const Eclass_id child : n.children) inputs.push_back(build(child));
            const Node_id id = out.add_node(n.kind, std::move(inputs), n.params);
            result = Edge{id, 0};
        }
        built.emplace(c, result);
        return result;
    };

    std::vector<Edge> outputs;
    outputs.reserve(roots.size());
    for (const Eclass_id r : roots) outputs.push_back(build(r));
    out.set_outputs(std::move(outputs));
    out.infer_shapes();
    out.validate();
    return out;
}

} // namespace xrl
