// Tensat-style equality-saturation optimiser (the paper's Figure 8
// baseline).
//
// Single-output declarative patterns are applied as e-graph rewrites until
// saturation, an iteration cap, or the node limit (10000 in Tensat's
// default setting, which the paper notes keeps the e-graph far from
// saturated on real models). Multi-output rules — Tensat's "multi-pattern
// rewrite rules" — are limited to k applications (k = 1 by default, the
// setting the paper identifies as the reason Tensat under-performs on
// BERT-style attention stacks).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/optimizer_api.h"
#include "cost/cost_model.h"
#include "optimizers/tensat/egraph.h"
#include "rules/rule.h"

namespace xrl {

struct Tensat_config {
    int max_iterations = 10;
    std::size_t node_limit = 10000;
    int multi_pattern_limit_k = 1;        ///< Tensat's k (§4.6).
    std::size_t match_limit_per_rule = 2000;
    /// Checked per saturation iteration. Equality saturation has no running
    /// best (extraction happens once at the end), so the cost argument
    /// reports the initial cost on every call.
    Search_heartbeat heartbeat;
};

struct Tensat_result {
    Graph best_graph;
    double initial_cost_ms = 0.0;
    double best_cost_ms = 0.0;
    int iterations = 0;
    bool saturated = false;
    std::size_t egraph_nodes = 0;
    std::size_t egraph_classes = 0;
    double optimisation_seconds = 0.0;
    bool stopped_early = false;                      ///< Heartbeat stopped saturation.
    std::map<std::string, int> unions_per_pattern;   ///< E-graph unions per pattern name.
};

/// Find all matches of a single-output pattern in the e-graph and splice in
/// the target, merging it with each matched class. Returns the number of
/// unions performed. (Exposed for tests.)
int apply_pattern_to_egraph(E_graph& egraph, const Pattern& pattern, std::size_t match_limit);

/// True when the pattern can run as an e-graph rewrite (single output, no
/// multi-output operators in either side).
bool is_egraph_compatible(const Pattern& pattern);

Tensat_result optimise_tensat(const Graph& input, const std::vector<Pattern>& patterns,
                              const Rule_set& multi_pattern_rules, const Cost_model& cost,
                              const Tensat_config& config = {});

/// Register the "tensat" backend (curated patterns + the bespoke
/// multi-output merge rules as k-limited multi-pattern rewrites). Options:
/// "tensat.max_iterations", "tensat.node_limit", "tensat.k",
/// "tensat.match_limit_per_rule".
void register_tensat_backend(Optimizer_registry& registry);

} // namespace xrl
