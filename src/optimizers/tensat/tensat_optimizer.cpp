#include "optimizers/tensat/tensat_optimizer.h"

#include <chrono>
#include <functional>
#include <unordered_map>

#include "rules/bespoke_rules.h"
#include "rules/candidate_engine.h"
#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {

namespace {

bool is_pattern_variable(const Graph& g, Node_id id)
{
    return g.node(id).kind == Op_kind::input;
}

/// A successful e-match. Matched operator parameters are stored by value:
/// the e-graph is mutated after matching, so pointers into it would dangle.
struct Ematch {
    std::unordered_map<Node_id, Eclass_id> vars;        // pattern var -> class
    std::unordered_map<Node_id, Eclass_id> node_class;  // pattern node -> class
    std::unordered_map<Node_id, Op_params> node_params; // pattern node -> matched params
};

/// Recursive e-matching with continuations: pattern DAGs are explored
/// depth-first; every e-node of a class is a branch point.
class E_matcher {
public:
    E_matcher(const E_graph& eg, const Pattern& pattern, std::size_t limit)
        : eg_(eg), pattern_(pattern), limit_(limit)
    {
    }

    std::vector<Ematch> run()
    {
        const Edge root = pattern_.source.outputs().front();
        XRL_EXPECTS(!is_pattern_variable(pattern_.source, root.node));
        for (const Eclass_id cls : eg_.canonical_classes()) {
            if (results_.size() >= limit_) break;
            match_pattern_node(root.node, cls, Ematch{},
                               [this](Ematch done) { complete(std::move(done)); });
        }
        return std::move(results_);
    }

private:
    using Continuation = std::function<void(Ematch)>;

    bool params_ok(const Node& pattern_node, const E_node& enode, Node_id pattern_id) const
    {
        const auto mode_it = pattern_.param_modes.find(pattern_id);
        const Param_match mode =
            mode_it == pattern_.param_modes.end() ? Param_match::exact : mode_it->second;
        if (mode == Param_match::exact) return pattern_node.params == enode.params;
        const auto act_it = pattern_.required_activation.find(pattern_id);
        if (act_it != pattern_.required_activation.end())
            return enode.params.activation == act_it->second;
        return true;
    }

    void match_pattern_node(Node_id pid, Eclass_id cls, Ematch state, const Continuation& k)
    {
        if (results_.size() >= limit_) return;
        cls = eg_.find(cls);
        const auto bound = state.node_class.find(pid);
        if (bound != state.node_class.end()) {
            if (eg_.find(bound->second) == cls) k(std::move(state));
            return;
        }
        const Node& pn = pattern_.source.node(pid);
        for (const E_node& enode : eg_.class_nodes(cls)) {
            if (results_.size() >= limit_) return;
            if (enode.proj_port >= 0) continue;
            if (enode.kind != pn.kind) continue;
            if (enode.children.size() != pn.inputs.size()) continue;
            if (!params_ok(pn, enode, pid)) continue;

            Ematch next = state;
            next.node_class[pid] = cls;
            next.node_params[pid] = enode.params;

            if (is_commutative(pn.kind) && pn.inputs.size() == 2) {
                match_slots(pid, {enode.children[0], enode.children[1]}, 0, next, k);
                match_slots(pid, {enode.children[1], enode.children[0]}, 0, next, k);
            } else {
                match_slots(pid, enode.children, 0, next, k);
            }
        }
    }

    void match_slots(Node_id pid, const std::vector<Eclass_id>& children, std::size_t slot,
                     Ematch state, const Continuation& k)
    {
        const Node& pn = pattern_.source.node(pid);
        if (slot == pn.inputs.size()) {
            k(std::move(state));
            return;
        }
        const Edge pedge = pn.inputs[slot];
        const Eclass_id child_cls = eg_.find(children[slot]);
        if (is_pattern_variable(pattern_.source, pedge.node)) {
            const auto it = state.vars.find(pedge.node);
            if (it != state.vars.end() && eg_.find(it->second) != child_cls) return;
            state.vars[pedge.node] = child_cls;
            match_slots(pid, children, slot + 1, std::move(state), k);
            return;
        }
        match_pattern_node(pedge.node, child_cls, std::move(state),
                           [this, pid, &children, slot, &k](Ematch done) {
                               match_slots(pid, children, slot + 1, std::move(done), k);
                           });
    }

    void complete(Ematch state)
    {
        if (results_.size() >= limit_) return;
        for (const Node_id pid : pattern_.source.node_ids()) {
            if (is_pattern_variable(pattern_.source, pid)) continue;
            if (!state.node_class.contains(pid)) return;
        }
        for (const auto& [a, b] : pattern_.equal_params)
            if (!(state.node_params.at(a) == state.node_params.at(b))) return;
        results_.push_back(std::move(state));
    }

    const E_graph& eg_;
    const Pattern& pattern_;
    std::size_t limit_;
    std::vector<Ematch> results_;
};

} // namespace

bool is_egraph_compatible(const Pattern& pattern)
{
    if (pattern.source.outputs().size() != 1) return false;
    for (const Graph* g : {&pattern.source, &pattern.target})
        for (const Node_id id : g->node_ids())
            if (g->node(id).kind == Op_kind::split || g->node(id).kind == Op_kind::constant)
                return false;
    return true;
}

int apply_pattern_to_egraph(E_graph& eg, const Pattern& pattern, std::size_t match_limit)
{
    const std::vector<Ematch> matches = E_matcher(eg, pattern, match_limit).run();
    int unions = 0;
    for (const Ematch& m : matches) {
        std::unordered_map<Node_id, Eclass_id> instantiated;
        Eclass_id root_cls = -1;
        try {
            for (const Node_id tid : pattern.target.topo_order()) {
                const Node& tn = pattern.target.node(tid);
                if (tn.kind == Op_kind::input) {
                    for (std::size_t i = 0; i < pattern.target_variables.size(); ++i) {
                        if (pattern.target_variables[i] != tid) continue;
                        const auto it = m.vars.find(pattern.source_variables[i]);
                        if (it != m.vars.end()) instantiated[tid] = it->second;
                    }
                    continue;
                }
                E_node enode;
                enode.kind = tn.kind;
                enode.params = tn.params;
                const auto transfer = pattern.param_transfers.find(tid);
                if (transfer != pattern.param_transfers.end()) {
                    enode.params = m.node_params.at(transfer->second.from_source_node);
                    if (transfer->second.set_activation.has_value())
                        enode.params.activation = *transfer->second.set_activation;
                }
                for (const Edge& e : tn.inputs) {
                    const auto it = instantiated.find(e.node);
                    XRL_EXPECTS(it != instantiated.end());
                    enode.children.push_back(it->second);
                }
                instantiated[tid] = eg.add(std::move(enode));
            }
            const Edge target_out = pattern.target.outputs().front();
            if (is_pattern_variable(pattern.target, target_out.node)) {
                // Target collapses to a variable (elimination rules).
                const auto it = instantiated.find(target_out.node);
                if (it == instantiated.end()) continue;
                root_cls = it->second;
            } else {
                root_cls = instantiated.at(target_out.node);
            }
        } catch (const Contract_violation&) {
            continue; // shape inference rejected this instantiation
        }
        const Edge source_out = pattern.source.outputs().front();
        const Eclass_id matched_cls = m.node_class.at(source_out.node);
        if (eg.merge(matched_cls, root_cls)) ++unions;
    }
    return unions;
}

Tensat_result optimise_tensat(const Graph& input, const std::vector<Pattern>& patterns,
                              const Rule_set& multi_pattern_rules, const Cost_model& cost,
                              const Tensat_config& config)
{
    const auto start = std::chrono::steady_clock::now();
    Tensat_result result;
    result.initial_cost_ms = cost.graph_cost_ms(input);

    // Multi-pattern rules: Tensat bounds their application to k rounds
    // (k = 1 by default); we apply them greedily up to k times before
    // encoding, which reproduces the BERT-vs-convnet behaviour of §4.6.
    // Candidates come from the shared engine (deduped, deterministic
    // order), which cannot change the greedy winner: duplicates tie on
    // cost and the strict comparison keeps the first occurrence.
    const Candidate_engine seed_engine(multi_pattern_rules, Candidate_engine_config{64, 0});
    Graph seeded = input;
    for (int round = 0; round < config.multi_pattern_limit_k; ++round) {
        Graph best = seeded;
        double best_cost = cost.graph_cost_ms(seeded);
        bool improved = false;
        for (Engine_candidate& candidate : seed_engine.generate(seeded).candidates) {
            const double c = cost.graph_cost_ms(candidate.graph);
            if (c < best_cost) {
                best_cost = c;
                best = std::move(candidate.graph);
                improved = true;
            }
        }
        if (!improved) break;
        seeded = std::move(best);
    }

    Egraph_encoding enc = encode_graph(seeded);

    std::vector<Pattern> usable;
    for (const Pattern& p : patterns)
        if (is_egraph_compatible(p)) usable.push_back(p);

    result.saturated = false;
    for (int iter = 0; iter < config.max_iterations; ++iter) {
        if (config.heartbeat && !config.heartbeat(result.iterations, result.initial_cost_ms)) {
            result.stopped_early = true;
            break;
        }
        ++result.iterations;
        const std::size_t nodes_before = enc.egraph.num_nodes();
        int unions = 0;
        for (const Pattern& p : usable) {
            const int made = apply_pattern_to_egraph(enc.egraph, p, config.match_limit_per_rule);
            if (made > 0) result.unions_per_pattern[p.name] += made;
            unions += made;
            if (enc.egraph.num_nodes() > config.node_limit) break;
        }
        enc.egraph.rebuild();
        if (enc.egraph.num_nodes() > config.node_limit) break;
        if (unions == 0 && enc.egraph.num_nodes() == nodes_before) {
            result.saturated = true;
            break;
        }
    }

    result.egraph_nodes = enc.egraph.num_nodes();
    result.egraph_classes = enc.egraph.num_classes();

    auto extracted = extract_best(enc.egraph, enc.roots, cost);
    XRL_ENSURES(extracted.has_value());
    result.best_graph = std::move(*extracted);
    result.best_cost_ms = cost.graph_cost_ms(result.best_graph);
    // Defensive: extraction should never lose to its own seed.
    if (result.best_cost_ms > cost.graph_cost_ms(seeded)) {
        result.best_graph = std::move(seeded);
        result.best_cost_ms = cost.graph_cost_ms(result.best_graph);
    }
    result.optimisation_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

namespace {

class Tensat_backend final : public Optimizer {
public:
    explicit Tensat_backend(const Optimizer_context& context)
        : context_(context), patterns_(curated_patterns())
    {
        base_.max_iterations =
            static_cast<int>(context.option_or("tensat.max_iterations", base_.max_iterations));
        base_.node_limit = static_cast<std::size_t>(
            context.option_or("tensat.node_limit", static_cast<double>(base_.node_limit)));
        base_.multi_pattern_limit_k =
            static_cast<int>(context.option_or("tensat.k", base_.multi_pattern_limit_k));
        base_.match_limit_per_rule = static_cast<std::size_t>(context.option_or(
            "tensat.match_limit_per_rule", static_cast<double>(base_.match_limit_per_rule)));
        // Tensat's multi-pattern rewrites: the multi-output merges the
        // single-output e-graph cannot express (§4.6).
        multi_pattern_rules_.push_back(make_merge_matmul_shared_lhs_rule());
        multi_pattern_rules_.push_back(make_merge_conv_shared_input_rule());
    }

    std::string name() const override { return "tensat"; }

    Optimize_result optimize(const Graph& graph, const Optimize_request& request) override
    {
        Tensat_config config = base_;
        if (request.iteration_budget > 0) config.max_iterations = request.iteration_budget;
        const Progress_driver driver(name(), request);
        config.heartbeat = driver.heartbeat();

        const Cost_model& cost = context_.cost_for(request);
        const Tensat_result inner =
            optimise_tensat(graph, patterns_, multi_pattern_rules_, cost, config);

        Optimize_result result;
        result.backend = name();
        result.device = cost.device().name;
        result.best_graph = inner.best_graph;
        result.initial_ms = inner.initial_cost_ms;
        result.final_ms = inner.best_cost_ms;
        result.steps = inner.iterations;
        result.wall_seconds = inner.optimisation_seconds;
        result.cancelled = inner.stopped_early;
        result.rule_counts = inner.unions_per_pattern;
        result.metadata["egraph_nodes"] = static_cast<double>(inner.egraph_nodes);
        result.metadata["egraph_classes"] = static_cast<double>(inner.egraph_classes);
        result.metadata["saturated"] = inner.saturated ? 1.0 : 0.0;
        result.metadata["multi_pattern_k"] = config.multi_pattern_limit_k;
        return result;
    }

private:
    Optimizer_context context_;
    Tensat_config base_;
    std::vector<Pattern> patterns_;
    Rule_set multi_pattern_rules_;
};

} // namespace

void register_tensat_backend(Optimizer_registry& registry)
{
    registry.add("tensat", [](const Optimizer_context& context) -> std::unique_ptr<Optimizer> {
        return std::make_unique<Tensat_backend>(context);
    });
}

} // namespace xrl
