#include "env/environment.h"

#include <unordered_set>

#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {

Environment::Environment(Graph initial, const Rule_set& rules, E2e_simulator& simulator,
                         Env_config config)
    : initial_(std::move(initial)),
      current_(initial_),
      rules_(&rules),
      simulator_(&simulator),
      config_(std::move(config)),
      rule_counts_(rules.size(), 0)
{
    XRL_EXPECTS(config_.max_candidates > 0);
    XRL_EXPECTS(config_.feedback_frequency >= 1);
    if (config_.use_candidate_engine)
        engine_ = std::make_unique<Candidate_engine>(
            rules, Candidate_engine_config{config_.per_rule_limit, config_.engine_threads,
                                           config_.verify_incremental_index});
    reset();
}

void Environment::reset()
{
    current_ = initial_;
    steps_ = 0;
    done_ = false;
    initial_latency_ms_ = simulator_->measure_ms(current_);
    last_latency_ms_ = initial_latency_ms_;
    regenerate_candidates(nullptr);
    if (candidates_.empty()) done_ = true;
}

void Environment::regenerate_candidates(const Candidate_engine::Step_candidate* via)
{
    candidates_.clear();
    if (engine_ != nullptr) {
        // Engine path: candidates beyond the action-space cap are counted
        // but never materialised (the GNN only observes the capped set).
        // The step graphs live in the engine's pool until the next call.
        const Candidate_engine::Step_generated& generated = engine_->generate_step(
            current_, static_cast<std::size_t>(config_.max_candidates), via);
        last_step_ = &generated;
        truncated_ += generated.truncated;
        candidates_.reserve(generated.candidates.size());
        for (const Candidate_engine::Step_candidate& candidate : generated.candidates)
            candidates_.push_back({candidate.graph, candidate.rule_index});
    } else {
        // Two passes so candidates_ can point into legacy_graphs_ without
        // reallocation invalidating earlier pointers.
        legacy_graphs_.clear();
        std::vector<int> rule_of;
        std::unordered_set<std::uint64_t> seen;
        seen.insert(current_.canonical_hash());
        for (std::size_t rule_index = 0; rule_index < rules_->size(); ++rule_index) {
            for (Graph& candidate :
                 (*rules_)[rule_index]->apply_all(current_, config_.per_rule_limit)) {
                if (!seen.insert(candidate.canonical_hash()).second) continue;
                if (legacy_graphs_.size() >= static_cast<std::size_t>(config_.max_candidates)) {
                    ++truncated_;
                    continue;
                }
                legacy_graphs_.push_back(std::move(candidate));
                rule_of.push_back(static_cast<int>(rule_index));
            }
        }
        candidates_.reserve(legacy_graphs_.size());
        for (std::size_t i = 0; i < legacy_graphs_.size(); ++i)
            candidates_.push_back({&legacy_graphs_[i], rule_of[i]});
    }
    candidate_observations_ += static_cast<std::int64_t>(candidates_.size());
    ++candidate_steps_;
}

std::vector<std::uint8_t> Environment::action_mask() const
{
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(action_space()), 0);
    for (std::size_t i = 0; i < candidates_.size(); ++i) mask[i] = 1;
    mask.back() = 1; // No-Op is always legal
    return mask;
}

double Environment::default_reward(const Reward_context& ctx) const
{
    if (!ctx.measured) return config_.exploration_reward;
    // Eq. 2: percentage latency improvement against the previous
    // measurement, normalised by the initial latency.
    return (ctx.previous_latency_ms - ctx.current_latency_ms) / ctx.initial_latency_ms * 100.0;
}

void Environment::register_reward_callback(Reward_callback callback)
{
    reward_callback_ = std::move(callback);
}

double Environment::measure_current()
{
    return simulator_->measure_ms(current_);
}

Env_step Environment::step(int action)
{
    static Histogram& phase_histogram = Metrics_registry::global().histogram(
        "xrlflow_rollout_phase_us", "RL rollout time by phase", duration_us_buckets(),
        {{"phase", "env_step"}});
    const Scoped_timer_us timer(phase_histogram);
    const Span_scope span("rollout/env_step");
    XRL_EXPECTS(!done_);
    Env_step result;

    const bool is_noop = action == noop_action();
    const bool is_valid_candidate =
        action >= 0 && action < static_cast<int>(candidates_.size());

    if (!is_noop && !is_valid_candidate) {
        if (config_.invalid_policy == Invalid_action_policy::penalise) {
            // §3.3.2's alternative: punish and terminate.
            done_ = true;
            result.done = true;
            result.reward = -1.0;
            return result;
        }
        XRL_EXPECTS(false && "invalid action with masking enabled");
    }

    ++steps_;
    bool terminal = false;
    if (is_noop) {
        terminal = true;
    } else {
        const Candidate& chosen = candidates_[static_cast<std::size_t>(action)];
        // Copy out of the pool slot before regeneration recycles it.
        current_ = *chosen.graph;
        ++rule_counts_[static_cast<std::size_t>(chosen.rule_index)];
        const Candidate_engine::Step_candidate* via =
            engine_ != nullptr && last_step_ != nullptr
                ? &last_step_->candidates[static_cast<std::size_t>(action)]
                : nullptr;
        regenerate_candidates(via);
        if (candidates_.empty()) terminal = true;
        if (steps_ >= config_.max_steps) terminal = true;
    }

    Reward_context ctx;
    ctx.initial_latency_ms = initial_latency_ms_;
    ctx.previous_latency_ms = last_latency_ms_;
    ctx.step = steps_;
    ctx.measured = terminal || (steps_ % config_.feedback_frequency == 0);
    if (ctx.measured) {
        ctx.current_latency_ms = simulator_->measure_ms(current_);
        last_latency_ms_ = ctx.current_latency_ms;
        result.measured = true;
        result.latency_ms = ctx.current_latency_ms;
    } else {
        ctx.current_latency_ms = last_latency_ms_;
    }

    result.reward = reward_callback_ ? reward_callback_(ctx) : default_reward(ctx);
    done_ = terminal;
    result.done = terminal;
    return result;
}

double Environment::mean_candidates_per_step() const
{
    if (candidate_steps_ == 0) return 0.0;
    return static_cast<double>(candidate_observations_) / static_cast<double>(candidate_steps_);
}

} // namespace xrl
