// The OpenAI-Gym-style environment of §3.3.1.
//
// reset() returns to the unoptimised graph; step(action) applies the chosen
// candidate substitution and regenerates the candidate set. The action
// space is padded to a constant (max_candidates) plus a final No-Op action,
// with a boolean mask marking the live entries (§3.3.2 invalid action
// masking). The reward is Eq. 2 — percentage latency improvement, measured
// by the end-to-end simulator every `feedback_frequency` steps and at
// termination; a small constant (0.1) rewards continued exploration in
// between (§3.3.3). A user callback can replace the default reward.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cost/e2e_simulator.h"
#include "ir/graph.h"
#include "rules/candidate_engine.h"
#include "rules/rule.h"

namespace xrl {

/// How the environment treats an action pointing at a padded slot.
enum class Invalid_action_policy {
    forbid,   ///< Caller masks; an invalid action is a contract violation.
    penalise, ///< Invalid action => reward -1 and episode termination
              ///< (the alternative the paper found slower to train).
};

struct Env_config {
    int max_candidates = 63;       ///< Padded action space is this + 1 (No-Op).
    int feedback_frequency = 5;    ///< Table 4: N.
    double exploration_reward = 0.1;
    int max_steps = 64;
    std::size_t per_rule_limit = 16;
    Invalid_action_policy invalid_policy = Invalid_action_policy::forbid;

    /// Candidate generation backend. The engine (default) shares one
    /// op-kind index across the rule corpus, dedups by fingerprint before
    /// materialising, stops materialising at max_candidates, recycles
    /// candidate graphs through a pool, and patches its host index
    /// incrementally across steps; the legacy per-rule apply_all scan is
    /// kept for A/B benchmarking.
    bool use_candidate_engine = true;
    std::size_t engine_threads = 0; ///< Candidate_engine_config::threads.

    /// Passed to Candidate_engine_config: rebuild-and-compare the host
    /// index after every incremental patch (defaults on in debug builds).
    bool verify_incremental_index =
#ifndef NDEBUG
        true;
#else
        false;
#endif
};

/// One applicable substitution. `graph` points into environment-owned
/// storage (the engine's step pool or the legacy scan's buffer) and is
/// invalidated by the next step()/reset().
struct Candidate {
    const Graph* graph = nullptr;
    int rule_index = -1;
};

struct Env_step {
    double reward = 0.0;
    bool done = false;
    bool measured = false;       ///< True when the E2E simulator ran this step.
    double latency_ms = 0.0;     ///< Last measured latency (when measured).
};

struct Reward_context {
    double initial_latency_ms = 0.0;
    double previous_latency_ms = 0.0;
    double current_latency_ms = 0.0;
    bool measured = false;
    int step = 0;
};

using Reward_callback = std::function<double(const Reward_context&)>;

class Environment {
public:
    /// `rules` and `simulator` must outlive the environment.
    Environment(Graph initial, const Rule_set& rules, E2e_simulator& simulator,
                Env_config config = {});

    // -- episode control ------------------------------------------------------

    void reset();
    Env_step step(int action);
    bool done() const { return done_; }
    int steps_taken() const { return steps_; }

    // -- state ----------------------------------------------------------------

    const Graph& current_graph() const { return current_; }
    const std::vector<Candidate>& candidates() const { return candidates_; }

    int action_space() const { return config_.max_candidates + 1; }
    int noop_action() const { return config_.max_candidates; }

    /// Boolean mask over the padded action space (candidates + No-Op).
    std::vector<std::uint8_t> action_mask() const;

    // -- measurement / stats ---------------------------------------------------

    double initial_latency_ms() const { return initial_latency_ms_; }
    double last_latency_ms() const { return last_latency_ms_; }

    /// Latency of the current graph right now (one noisy measurement).
    double measure_current();

    /// Count of applications per rule over the whole lifetime (Figure 5).
    const std::vector<int>& rule_application_counts() const { return rule_counts_; }

    /// Average candidates per step since construction (Table 3 "complexity").
    double mean_candidates_per_step() const;

    /// Candidates dropped because the set exceeded max_candidates (with
    /// the engine: candidate records left unmaterialised at the cap).
    std::size_t truncated_candidates() const { return truncated_; }

    const Rule_set& rules() const { return *rules_; }

    /// The engine backend (null on the legacy path) — pool/arena statistics
    /// for the bench artifacts and the index for the A/B parity gate.
    const Candidate_engine* engine() const { return engine_.get(); }

    /// Replace the default Eq. 2 reward.
    void register_reward_callback(Reward_callback callback);

private:
    /// `via`: the step candidate just applied to current_ (null on reset),
    /// enabling the engine's incremental index patch.
    void regenerate_candidates(const Candidate_engine::Step_candidate* via);
    double default_reward(const Reward_context& ctx) const;

    Graph initial_;
    Graph current_;
    const Rule_set* rules_;
    E2e_simulator* simulator_;
    Env_config config_;
    std::unique_ptr<Candidate_engine> engine_; ///< Null when legacy scan requested.

    std::vector<Candidate> candidates_;
    /// Engine path: the step candidates backing candidates_ (for the next
    /// step's `via`). Legacy path: owning storage for the scanned graphs.
    const Candidate_engine::Step_generated* last_step_ = nullptr;
    std::vector<Graph> legacy_graphs_;
    std::vector<int> rule_counts_;
    Reward_callback reward_callback_;

    bool done_ = true;
    int steps_ = 0;
    double initial_latency_ms_ = 0.0;
    double last_latency_ms_ = 0.0;
    std::size_t truncated_ = 0;
    std::int64_t candidate_observations_ = 0;
    std::int64_t candidate_steps_ = 0;
};

} // namespace xrl
