// xrlflowd: the network serving daemon.
//
// Fronts an Optimization_router fleet with the framed wire protocol
// (src/net). Binds, prints the bound address, and serves until SIGTERM or
// SIGINT — on which it stops accepting, finishes admitted work, snapshots
// warm state (with --state-dir), and exits 0. CI's loopback job starts
// this with --port 0 --port-file so the ephemeral port can be read back.
//
//   xrlflowd [--host H] [--port P] [--port-file PATH] [--shards N]
//            [--workers N] [--max-connections N] [--state-dir DIR]
//            [--snapshot-every N] [--smoke]
//
// --smoke shrinks every backend's search budget to the test scale the
// suite uses, so a CI daemon answers in milliseconds, not minutes.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "net/daemon.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int)
{
    g_stop.store(true);
}

[[noreturn]] void usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--host H] [--port P] [--port-file PATH] [--shards N]\n"
                 "          [--workers N] [--max-connections N] [--state-dir DIR]\n"
                 "          [--snapshot-every N] [--smoke]\n",
                 argv0);
    std::exit(2);
}

/// The test-scale budgets the suite uses (tests/test_state_store.cpp);
/// keeps a CI daemon's searches in the milliseconds.
void apply_smoke_options(xrl::Service_config& config)
{
    config.backend_options["taso.budget"] = 15;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 1;
    config.backend_options["xrlflow.max_steps"] = 4;
    config.backend_options["xrlflow.hidden_dim"] = 8;
    config.backend_options["xrlflow.max_candidates"] = 15;
}

} // namespace

int main(int argc, char** argv)
{
    xrl::Daemon_config config;
    std::string port_file;
    std::string state_dir;
    std::size_t shards = 1;
    std::size_t workers = 0;
    std::size_t snapshot_every = 0;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--host") {
            config.host = value();
        } else if (arg == "--port") {
            config.port = static_cast<std::uint16_t>(std::stoul(value()));
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--shards") {
            shards = std::stoul(value());
        } else if (arg == "--workers") {
            workers = std::stoul(value());
        } else if (arg == "--max-connections") {
            config.max_connections = std::stoul(value());
        } else if (arg == "--state-dir") {
            state_dir = value();
        } else if (arg == "--snapshot-every") {
            snapshot_every = std::stoul(value());
        } else if (arg == "--smoke") {
            smoke = true;
        } else {
            usage(argv[0]);
        }
    }
    if (shards == 0) usage(argv[0]);

    config.router.shards.resize(shards);
    for (xrl::Shard_config& shard : config.router.shards) {
        shard.server.workers = workers;
        shard.server.snapshot_every = snapshot_every;
        if (smoke) apply_smoke_options(shard.server.service);
    }
    if (!state_dir.empty()) {
        xrl::State_store_config store_config;
        store_config.directory = state_dir;
        config.state_store = std::make_shared<xrl::State_store>(std::move(store_config));
    }

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    try {
        xrl::Daemon daemon(std::move(config));
        if (!port_file.empty()) {
            std::ofstream out(port_file, std::ios::trunc);
            out << daemon.port() << "\n";
        }
        std::printf("xrlflowd listening on %s:%u (%zu shard%s)\n", daemon.host().c_str(),
                    static_cast<unsigned>(daemon.port()), shards, shards == 1 ? "" : "s");
        std::fflush(stdout);

        while (!g_stop.load()) std::this_thread::sleep_for(std::chrono::milliseconds(50));

        std::printf("xrlflowd: draining and snapshotting...\n");
        std::fflush(stdout);
        daemon.stop();
    } catch (const std::exception& error) {
        std::fprintf(stderr, "xrlflowd: %s\n", error.what());
        return 1;
    }
    std::printf("xrlflowd: stopped\n");
    return 0;
}
