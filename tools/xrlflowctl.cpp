// xrlflowctl: the command-line client for a running xrlflowd daemon.
//
//   xrlflowctl --port P [--host H] <subcommand> ...
//
// A <graph> argument is either a path to a text graph file
// (ir/graph_io.h format) or one of the built-in models: quickstart, bert,
// vit — so a daemon can be smoke-tested with no files on disk.
//
//   optimize <backend> <graph> [--budget S] [--iterations N]
//            [--seed N] [--device NAME] [--priority P] [--deadline S]
//            [--out FILE] [--progress] [--verify-local] [--smoke]
//       Submit one graph, long-poll to completion, print the result
//       summary (and save the optimised graph with --out). --verify-local
//       re-runs the same request in-process and fails unless the remote
//       result is bit-identical (modulo wall-clock fields) — the parity
//       check CI's loopback job leans on. --smoke must match the daemon's.
//
//   batch <backend> <graph>... [--budget S] [--deadline S] [--priority P]
//       One deployment submit: every graph under a shared wall budget and
//       deadline. Waits for all entries and prints the per-model summary.
//
//   stats
//       Fleet + wire counters from the daemon, including per-shard breaker
//       health and the daemon's protocol version.
//
//   metrics
//       The daemon's full metric registry in Prometheus text exposition —
//       pipe to a file and point promtool/Prometheus at it.
//
//   trace <job-id|all> [--out FILE]
//       Spans recorded on the daemon for one wire job (or the whole span
//       buffer with `all`), written as a Chrome trace-event JSON array —
//       load it in Perfetto (ui.perfetto.dev) or chrome://tracing. Without
//       --out the JSON goes to stdout. The daemon records spans only when
//       started with XRLFLOW_TRACE=1.
//
//   optimize ... --trace-out FILE
//       Additionally fetch the submitted job's spans after completion and
//       write them — merged with this client's own spans — to FILE.
//
//   drain
//       Block until the fleet is idle and its warm state is snapshotted.
//
// --port-file PATH reads the port a daemon wrote with its own
// --port-file (CI's ephemeral-port handshake).
//
// --retries N retries transient failures (transport errors, retryable
// protocol errors — see PROTOCOL.md "Retry semantics") up to N extra
// attempts with capped exponential backoff; --retry-deadline S bounds the
// total wall time spent retrying.
//
// Exit codes: 0 success, 1 local failure (parity mismatch, bad graph
// file), 2 usage, 3 transient failure (retryable — rerunning may succeed),
// 4 permanent failure (the daemon rejected the request; rerunning the same
// command will fail the same way). Scripts can branch on 3 vs 4.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/optimization_service.h"
#include "core/result_serial.h"
#include "ir/graph_io.h"
#include "models/models.h"
#include "net/client.h"
#include "support/trace.h"

namespace {

[[noreturn]] void usage()
{
    std::fprintf(stderr,
                 "usage: xrlflowctl --port P [--host H] [--port-file PATH]\n"
                 "                  [--retries N] [--retry-deadline S] <subcommand>\n"
                 "  optimize <backend> <graph> [--budget S] [--iterations N] [--seed N]\n"
                 "           [--device NAME] [--priority P] [--deadline S] [--out FILE]\n"
                 "           [--progress] [--verify-local] [--smoke] [--trace-out FILE]\n"
                 "  batch <backend> <graph>... [--budget S] [--deadline S] [--priority P]\n"
                 "  stats\n"
                 "  metrics\n"
                 "  trace <job-id|all> [--out FILE]\n"
                 "  drain\n"
                 "<graph> is a text graph file or a built-in model: quickstart, bert, vit\n"
                 "exit codes: 0 ok, 1 local failure, 2 usage, 3 transient (retryable),\n"
                 "            4 permanent (resending the same request cannot succeed)\n");
    std::exit(2);
}

/// Mirror of the daemon's --smoke budgets; --verify-local needs the local
/// reference service configured exactly like the daemon's shards.
void apply_smoke_options(xrl::Service_config& config)
{
    config.backend_options["taso.budget"] = 15;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 1;
    config.backend_options["xrlflow.max_steps"] = 4;
    config.backend_options["xrlflow.hidden_dim"] = 8;
    config.backend_options["xrlflow.max_candidates"] = 15;
}

/// A graph argument: an on-disk text graph, or a built-in zoo model so a
/// daemon can be exercised with nothing on disk.
xrl::Graph resolve_graph(const std::string& spec)
{
    if (std::filesystem::exists(spec)) return xrl::load_graph(spec);
    if (spec == "quickstart") return xrl::make_dense_layer_example();
    if (spec == "bert") return xrl::make_bert(xrl::Scale::smoke, 32);
    if (spec == "vit") return xrl::make_vit(xrl::Scale::smoke, 64);
    throw std::runtime_error("no such graph file or built-in model: " + spec +
                             " (built-ins: quickstart, bert, vit)");
}

/// Bit-exact comparison form: zero the fields that measure wall time (they
/// legitimately differ between a remote and a local run of the same
/// deterministic search) and the cache marker, keep everything else.
std::string comparable_bytes(xrl::Optimize_result result)
{
    result.wall_seconds = 0.0;
    result.from_cache = false;
    result.metadata.erase("training_seconds");
    return xrl::result_to_bytes(result);
}

void print_result(const xrl::Optimize_result& result)
{
    std::printf("backend            %s\n", result.backend.c_str());
    std::printf("device             %s\n", result.device.c_str());
    std::printf("initial -> final   %.4f ms -> %.4f ms  (%.3fx)\n", result.initial_ms,
                result.final_ms, result.speedup());
    std::printf("steps              %d%s\n", result.steps, result.cancelled ? "  [cancelled]" : "");
    std::printf("wall               %.3f s%s\n", result.wall_seconds,
                result.from_cache ? "  [memo hit]" : "");
}

void write_trace_file(const std::string& path, const std::vector<xrl::Trace_span>& spans)
{
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write trace file: " + path);
    xrl::write_chrome_trace(out, spans);
}

struct Optimize_args {
    std::string backend;
    std::vector<std::string> graph_files;
    xrl::Optimize_request request;
    xrl::Submit_options options;
    double batch_budget = 0.0;
    std::string out_file;
    std::string trace_out_file;
    bool progress = false;
    bool verify_local = false;
    bool smoke = false;
};

} // namespace

int main(int argc, char** argv)
{
    xrl::Client_config client_config;
    client_config.client_name = "xrlflowctl";
    std::string subcommand;
    Optimize_args args;

    int i = 1;
    const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage();
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host") {
            client_config.host = value();
        } else if (arg == "--port") {
            client_config.port = static_cast<std::uint16_t>(std::stoul(value()));
        } else if (arg == "--port-file") {
            std::ifstream in(value());
            unsigned port = 0;
            if (!(in >> port)) {
                std::fprintf(stderr, "xrlflowctl: cannot read port from --port-file\n");
                return 1;
            }
            client_config.port = static_cast<std::uint16_t>(port);
        } else if (arg == "--retries") {
            client_config.retry.max_attempts = 1 + static_cast<std::uint32_t>(std::stoul(value()));
        } else if (arg == "--retry-deadline") {
            client_config.retry.deadline_seconds = std::stod(value());
        } else if (arg == "--budget") {
            args.batch_budget = std::stod(value());
            args.request.time_budget_seconds = args.batch_budget;
        } else if (arg == "--iterations") {
            args.request.iteration_budget = std::stoi(value());
        } else if (arg == "--seed") {
            args.request.seed = std::stoull(value());
        } else if (arg == "--device") {
            args.request.device = xrl::Target_device(value());
        } else if (arg == "--priority") {
            args.options.priority = std::stoi(value());
        } else if (arg == "--deadline") {
            args.options.deadline_seconds = std::stod(value());
        } else if (arg == "--out") {
            args.out_file = value();
        } else if (arg == "--trace-out") {
            args.trace_out_file = value();
        } else if (arg == "--progress") {
            args.progress = true;
        } else if (arg == "--verify-local") {
            args.verify_local = true;
        } else if (arg == "--smoke") {
            args.smoke = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
        } else if (subcommand.empty()) {
            subcommand = arg;
        } else if (args.backend.empty() && (subcommand == "optimize" || subcommand == "batch")) {
            args.backend = arg;
        } else {
            args.graph_files.push_back(arg);
        }
    }
    if (subcommand.empty() || client_config.port == 0) usage();

    try {
        xrl::Client client(client_config);

        if (subcommand == "optimize") {
            if (args.backend.empty() || args.graph_files.size() != 1) usage();
            // --trace-out implies tracing for this process; the daemon
            // records its side only when started with XRLFLOW_TRACE=1.
            if (!args.trace_out_file.empty()) xrl::set_trace_enabled(true);
            const xrl::Graph graph = resolve_graph(args.graph_files[0]);

            xrl::Progress_observer observer;
            if (args.progress)
                observer = [](const xrl::Optimize_progress& p) {
                    std::fprintf(stderr, "  [%s] step %d, best %.4f ms, %.2fs elapsed\n",
                                 p.backend.c_str(), p.step, p.best_ms, p.elapsed_seconds);
                };

            const xrl::Optimize_result remote =
                client.optimize(args.backend, graph, args.request, args.options, observer);
            print_result(remote);
            if (!args.out_file.empty()) {
                xrl::save_graph(args.out_file, remote.best_graph);
                std::printf("saved optimised graph to %s\n", args.out_file.c_str());
            }

            if (!args.trace_out_file.empty()) {
                // The daemon's spans for this job, merged with the spans
                // this process recorded under the same trace id.
                const xrl::Trace_ok remote_trace =
                    client.trace(/*job_id=*/0, client.last_trace_id());
                std::vector<xrl::Trace_span> spans =
                    xrl::Trace_buffer::global().spans_for(client.last_trace_id());
                spans.insert(spans.end(), remote_trace.spans.begin(),
                             remote_trace.spans.end());
                write_trace_file(args.trace_out_file, spans);
                std::printf("saved %zu trace spans to %s (trace id %llx)\n", spans.size(),
                            args.trace_out_file.c_str(),
                            static_cast<unsigned long long>(client.last_trace_id()));
            }

            if (args.verify_local) {
                xrl::Service_config service_config;
                if (args.smoke) apply_smoke_options(service_config);
                xrl::Optimization_service reference(service_config);
                const xrl::Optimize_result local =
                    reference.optimize(args.backend, graph, args.request);
                if (comparable_bytes(remote) != comparable_bytes(local)) {
                    std::fprintf(stderr, "PARITY MISMATCH: remote result differs from local "
                                         "Optimization_service result\n");
                    return 1;
                }
                std::printf("parity              ok (bit-identical to local service)\n");
            }
        } else if (subcommand == "batch") {
            if (args.backend.empty() || args.graph_files.empty()) usage();
            xrl::Batch_submit batch;
            batch.budget_seconds = args.batch_budget;
            batch.deadline_seconds = args.options.deadline_seconds;
            batch.priority = args.options.priority;
            for (const std::string& file : args.graph_files) {
                xrl::Batch_submit::Entry entry;
                entry.backend = args.backend;
                xrl::Optimize_request request = args.request;
                request.time_budget_seconds = 0.0; // the batch budget is shared
                entry.request = request;
                entry.graph = resolve_graph(file);
                batch.entries.push_back(std::move(entry));
            }
            const xrl::Batch_ok submitted = client.batch_submit(batch);
            for (std::size_t n = 0; n < submitted.jobs.size(); ++n) {
                const xrl::Optimize_result result = client.wait(submitted.jobs[n].job_id);
                std::printf("%-28s %.4f -> %.4f ms (%.3fx)%s\n", args.graph_files[n].c_str(),
                            result.initial_ms, result.final_ms, result.speedup(),
                            submitted.jobs[n].coalesced ? "  [coalesced]" : "");
            }
        } else if (subcommand == "stats") {
            const xrl::Stats_ok stats = client.stats();
            const xrl::Server_stats& t = stats.router.total;
            std::printf("server              %s (protocol v%u negotiated, daemon speaks v%u, "
                        "%u shard%s)\n",
                        client.server_name().c_str(), client.negotiated_version(),
                        client.server_protocol_version(), client.shard_count(),
                        client.shard_count() == 1 ? "" : "s");
            std::printf("submitted           %llu (coalesced %llu, rejected %llu)\n",
                        static_cast<unsigned long long>(t.submitted),
                        static_cast<unsigned long long>(t.coalesced),
                        static_cast<unsigned long long>(t.rejected));
            std::printf("completed           %llu (cache hits %llu, cancelled %llu, failed %llu)\n",
                        static_cast<unsigned long long>(t.completed),
                        static_cast<unsigned long long>(t.cache_hits),
                        static_cast<unsigned long long>(t.cancelled),
                        static_cast<unsigned long long>(t.failed));
            std::printf("occupancy           queue %zu, running %zu, inflight %zu "
                        "(peaks: queue %zu, running %zu)\n",
                        t.queue_depth, t.running, t.inflight, t.peak_queue_depth, t.peak_running);
            std::printf("latency             p50 %.1f ms, p95 %.1f ms\n", t.p50_latency_ms,
                        t.p95_latency_ms);
            std::printf("wire                conns %llu active / %llu accepted / %llu rejected, "
                        "frames %llu, protocol errors %llu\n",
                        static_cast<unsigned long long>(stats.daemon.connections_active),
                        static_cast<unsigned long long>(stats.daemon.connections_accepted),
                        static_cast<unsigned long long>(stats.daemon.connections_rejected),
                        static_cast<unsigned long long>(stats.daemon.frames_received),
                        static_cast<unsigned long long>(stats.daemon.protocol_errors));
            std::printf("wire jobs           %llu submitted, %llu retained, %llu deduplicated\n",
                        static_cast<unsigned long long>(stats.daemon.jobs_submitted),
                        static_cast<unsigned long long>(stats.daemon.jobs_retained),
                        static_cast<unsigned long long>(stats.daemon.jobs_deduplicated));
            std::printf("routing             %llu probes, %llu rerouted around "
                        "unhealthy shards\n",
                        static_cast<unsigned long long>(stats.router.probe_routed),
                        static_cast<unsigned long long>(stats.router.breaker_rerouted));
            for (std::size_t n = 0; n < stats.router.health.size(); ++n) {
                const xrl::Shard_health_snapshot& h = stats.router.health[n];
                std::printf("shard %-13zu id %llu, breaker %s%s, %llu ok / %llu failed, "
                            "%llu trip%s, %llu probe%s\n",
                            n, static_cast<unsigned long long>(h.stable_id),
                            xrl::to_string(h.state), h.draining ? " [draining]" : "",
                            static_cast<unsigned long long>(h.successes),
                            static_cast<unsigned long long>(h.failures),
                            static_cast<unsigned long long>(h.trips), h.trips == 1 ? "" : "s",
                            static_cast<unsigned long long>(h.probes), h.probes == 1 ? "" : "s");
            }
        } else if (subcommand == "metrics") {
            const xrl::Metrics_ok metrics = client.metrics();
            std::fputs(metrics.exposition.c_str(), stdout);
        } else if (subcommand == "trace") {
            if (args.graph_files.size() + (args.backend.empty() ? 0 : 1) != 1) usage();
            // "trace <arg>": the positional lands in `backend` because the
            // parser treats the first non-flag after the subcommand name
            // generically; accept it from either slot.
            const std::string spec =
                args.backend.empty() ? args.graph_files[0] : args.backend;
            const std::uint64_t job_id = spec == "all" ? 0 : std::stoull(spec);
            const xrl::Trace_ok trace = client.trace(job_id);
            if (args.out_file.empty()) {
                xrl::write_chrome_trace(std::cout, trace.spans);
            } else {
                write_trace_file(args.out_file, trace.spans);
                std::printf("saved %zu trace spans to %s (trace id %llx)\n",
                            trace.spans.size(), args.out_file.c_str(),
                            static_cast<unsigned long long>(trace.trace_id));
            }
        } else if (subcommand == "drain") {
            client.drain();
            std::printf("fleet drained and snapshotted\n");
        } else {
            usage();
        }
    } catch (const xrl::Protocol_error& error) {
        std::fprintf(stderr, "xrlflowctl: %s error [%s, %s]: %s\n",
                     error.remote() ? "daemon" : "protocol", xrl::to_string(error.code()),
                     error.retryable() ? "transient" : "permanent", error.what());
        return error.retryable() ? 3 : 4;
    } catch (const xrl::Net_error& error) {
        // Transport failures are transient by nature: the daemon may be
        // restarting, the route flapping.
        std::fprintf(stderr, "xrlflowctl: network error [%s]: %s\n",
                     xrl::to_string(error.kind()), error.what());
        return 3;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "xrlflowctl: %s\n", error.what());
        return 1;
    }
    return 0;
}
