#!/usr/bin/env bash
# Run clang-tidy (policy in .clang-tidy) over every project source in the
# cmake compilation database.
#
#   tools/lint.sh [build-dir]     default build dir: ./build
#
# The build dir must have been configured already — any cmake run works,
# since the top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS. Exits
# non-zero on the first finding (WarningsAsErrors: '*'); CI uploads the log.
set -u -o pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
    echo "lint.sh: $tidy not found on PATH." >&2
    echo "lint.sh: install clang-tidy (or set CLANG_TIDY) to lint locally;" >&2
    echo "lint.sh: the clang-tidy CI job runs this script on every PR." >&2
    exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "lint.sh: $db not found; configure first: cmake -B $build_dir -S ." >&2
    exit 1
fi

# Project sources only: everything in the database except external/ and the
# build tree itself (gtest/benchmark sources never appear — they are
# imported targets — but keep the filter defensive).
mapfile -t files < <(python3 - "$db" <<'EOF'
import json, sys
seen = []
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/external/" in f or "/build" in f:
        continue
    if f not in seen:
        seen.append(f)
print("\n".join(seen))
EOF
)

if [ "${#files[@]}" -eq 0 ]; then
    echo "lint.sh: no project sources in $db" >&2
    exit 1
fi

echo "lint.sh: linting ${#files[@]} files with $tidy"
jobs="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${files[@]}" \
    | xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet
status=$?
if [ "$status" -eq 0 ]; then
    echo "lint.sh: clean"
fi
exit "$status"
