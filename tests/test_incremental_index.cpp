// A/B differential gate for the incremental Host_index.
//
// Step mode patches the persistent index from each chosen rewrite's
// Rewrite_delta instead of rebuilding it. These rollouts fuzz that fast
// path: after *every* rewrite the patched index must be identical to one
// rebuilt from scratch. Two layers of checking:
//   - `verify_incremental_index = true` (set explicitly — release builds
//     default it off) makes the engine rebuild + assert after each patch;
//   - the test also compares `engine.step_index()` against its own fresh
//     Host_index, so a bug in the engine's internal verify cannot hide one
//     in the patch.
// The rollouts deliberately mix patch and rebuild steps (dropped `via`,
// bespoke candidates with no delta) so both paths stay covered. Runs under
// ASan and TSan in CI (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <cstdint>

#include "models/models.h"
#include "rules/candidate_engine.h"
#include "rules/corpus.h"
#include "rules/pattern.h"

namespace xrl {
namespace {

/// Deterministic fuzz source — fixed constants, so every platform and
/// sanitizer build walks the exact same rollout.
struct Lcg {
    std::uint64_t state;
    std::uint64_t next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }
};

void run_ab_rollout(const Graph& initial, std::uint64_t seed, int steps)
{
    const Rule_set rules = standard_rule_corpus();
    Candidate_engine_config config;
    config.per_rule_limit = 4;
    config.threads = 1;
    config.verify_incremental_index = true;
    Candidate_engine engine(rules, config);

    Lcg rng{seed};
    Graph host = initial;
    const Candidate_engine::Step_candidate* via = nullptr;
    Candidate_engine::Step_candidate chosen;
    int rewrites = 0;
    for (int step = 0; step < steps; ++step) {
        const Candidate_engine::Step_generated& generated =
            engine.generate_step(host, 32, via);

        // External A/B check, independent of the engine's internal verify.
        const Host_index* incremental = engine.step_index();
        ASSERT_NE(incremental, nullptr);
        const Host_index fresh(host);
        ASSERT_TRUE(incremental->equals(fresh)) << "diverged at step " << step;

        if (generated.candidates.empty()) {
            // Dead end: restart from the initial graph so every rollout
            // really exercises `steps` generations.
            host = initial;
            via = nullptr;
            continue;
        }
        const std::size_t pick = rng.next() % generated.candidates.size();
        chosen = generated.candidates[pick];
        // Copy out of the pool slot before the next call recycles it;
        // `chosen.delta` stays valid until then and is read first.
        host = *chosen.graph;
        ++rewrites;
        // Drop `via` occasionally so the rebuild path stays fuzzed too.
        via = rng.next() % 16 == 0 ? nullptr : &chosen;
    }
    EXPECT_GT(rewrites, 0) << "rollout never applied a rewrite";
}

TEST(Incremental_index, MatchesRebuildOnBertRollout)
{
    run_ab_rollout(make_bert(Scale::smoke, 32), 0x9e3779b97f4a7c15ULL, 200);
}

TEST(Incremental_index, MatchesRebuildOnInceptionRollout)
{
    run_ab_rollout(make_inception_v3(Scale::smoke), 0xbf58476d1ce4e5b9ULL, 200);
}

TEST(Incremental_index, MatchesRebuildOnResnet18Rollout)
{
    run_ab_rollout(make_resnet18(Scale::smoke), 0x94d049bb133111ebULL, 200);
}

TEST(Incremental_index, MatchesRebuildOnDalleRollout)
{
    run_ab_rollout(make_dalle(Scale::smoke, 32), 0xd6e8feb86659fd93ULL, 200);
}

} // namespace
} // namespace xrl
