// Optimization_server: coalescing correctness, queue-policy ordering,
// cancellation (queued and mid-search), bounded-queue admission control,
// telemetry counters, request validation, and bit-identical parity with
// direct Optimization_service::optimize calls.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/optimization_service.h"
#include "ir/builder.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/telemetry.h"

namespace xrl {
namespace {

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

/// A richer graph so searches take more than one step (and heartbeats fire).
Graph projection_graph()
{
    Graph_builder b;
    const Edge x = b.input({8, 32}, "x");
    const Edge wq = b.weight({32, 16});
    const Edge wk = b.weight({32, 16});
    const Edge y = b.add(b.relu(b.matmul(x, wq)), b.relu(b.matmul(x, wk)));
    return b.finish({y});
}

/// Structurally distinct variants (different widths => different hashes).
Graph variant_graph(int n)
{
    Graph_builder b;
    const Edge x = b.input({4, 24 + n}, "x");
    const Edge w = b.weight({24 + n, 12});
    return b.finish({b.relu(b.matmul(x, w))});
}

/// Smoke-scale backend budgets shared by every test (plumbing, not quality).
Service_config smoke_service()
{
    Service_config config;
    config.backend_options["taso.budget"] = 15;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 0;
    config.backend_options["xrlflow.max_steps"] = 6;
    return config;
}

Server_config smoke_server()
{
    Server_config config;
    config.service = smoke_service();
    return config;
}

/// A progress-callback gate: the search blocks at its first heartbeat until
/// release(), so tests can hold a job in the `running` state.
struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool entered = false;
    bool released = false;

    Progress_callback callback()
    {
        return [this](const Optimize_progress&) {
            std::unique_lock<std::mutex> lock(mutex);
            if (!entered) {
                entered = true;
                cv.notify_all();
            }
            cv.wait(lock, [this] { return released; });
            return true;
        };
    }

    void await_entered()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return entered; });
    }

    void release()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex);
            released = true;
        }
        cv.notify_all();
    }
};

/// Records the order in which searches *start* (first heartbeat per job).
struct Start_order {
    std::mutex mutex;
    std::vector<std::string> tags;

    Progress_callback tagged(std::string tag)
    {
        auto first = std::make_shared<bool>(true);
        return [this, tag = std::move(tag), first](const Optimize_progress&) {
            const std::lock_guard<std::mutex> lock(mutex);
            if (*first) {
                tags.push_back(tag);
                *first = false;
            }
            return true;
        };
    }
};

// ---------------------------------------------------------------------------
// Parity with direct Optimization_service calls
// ---------------------------------------------------------------------------

TEST(OptimizationServer, ResultsBitIdenticalToDirectServiceCalls)
{
    Optimization_service direct(smoke_service());
    Optimization_server server(smoke_server());
    const Graph g = quickstart_graph();

    for (const std::string& backend : direct.backends()) {
        const Optimize_result reference = direct.optimize(backend, g);
        const Optimize_result served = server.submit(backend, g).wait();
        EXPECT_EQ(served.best_graph.canonical_hash(), reference.best_graph.canonical_hash())
            << backend;
        EXPECT_EQ(served.final_ms, reference.final_ms) << backend;
        EXPECT_EQ(served.initial_ms, reference.initial_ms) << backend;
        EXPECT_EQ(served.steps, reference.steps) << backend;
        EXPECT_EQ(served.backend, backend);
    }
}

// ---------------------------------------------------------------------------
// Coalescing
// ---------------------------------------------------------------------------

TEST(OptimizationServer, IdenticalInFlightSubmitsCoalesceIntoOneSearch)
{
    Optimization_server server(smoke_server());
    const Graph g = projection_graph();

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    const Job_handle primary = server.submit("taso", g, gated);
    gate.await_entered(); // the search is now running

    // Same memo key (the callback is deliberately not part of it).
    std::vector<Job_handle> duplicates;
    for (int i = 0; i < 3; ++i) duplicates.push_back(server.submit("taso", g));
    EXPECT_FALSE(primary.coalesced());
    for (const Job_handle& handle : duplicates) EXPECT_TRUE(handle.coalesced());

    gate.release();
    const Optimize_result first = primary.wait();
    for (const Job_handle& handle : duplicates) {
        const Optimize_result result = handle.wait();
        EXPECT_EQ(result.best_graph.canonical_hash(), first.best_graph.canonical_hash());
        EXPECT_EQ(result.final_ms, first.final_ms);
    }

    // One search ran for four submissions.
    EXPECT_EQ(server.service().cache_misses(), 1u);
    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.coalesced, 3u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_DOUBLE_EQ(stats.coalesce_rate(), 0.75);
}

TEST(OptimizationServer, PostHocDuplicateHitsMemoCacheNotCoalescing)
{
    Optimization_server server(smoke_server());
    const Graph g = quickstart_graph();

    const Optimize_result first = server.submit("taso", g).wait();
    EXPECT_FALSE(first.from_cache);
    server.drain();

    const Job_handle later = server.submit("taso", g);
    const Optimize_result replay = later.wait();
    EXPECT_FALSE(later.coalesced()); // the original already resolved
    EXPECT_TRUE(replay.from_cache);
    EXPECT_EQ(replay.best_graph.canonical_hash(), first.best_graph.canonical_hash());

    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.coalesced, 0u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_DOUBLE_EQ(stats.dedup_rate(), 0.5);
}

TEST(OptimizationServer, CoalescedJobStopsOnlyWhenEveryHandleCancels)
{
    Server_config config = smoke_server();
    config.workers = 1;
    Optimization_server server(config);
    const Graph g = projection_graph();

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    Job_handle primary = server.submit("taso", g, gated);
    gate.await_entered();
    const Job_handle attached = server.submit("taso", g);
    ASSERT_TRUE(attached.coalesced());

    primary.cancel(); // one of two interested parties — must NOT stop the job
    gate.release();
    const Optimize_result result = attached.wait();
    EXPECT_FALSE(result.cancelled);
    EXPECT_EQ(server.stats().completed, 1u);
}

// ---------------------------------------------------------------------------
// Queue policies
// ---------------------------------------------------------------------------

TEST(OptimizationServer, FifoPolicyRunsInArrivalOrder)
{
    Server_config config = smoke_server();
    config.workers = 1;
    Optimization_server server(config);

    Gate gate;
    Optimize_request blocker;
    blocker.on_progress = gate.callback();
    server.submit("taso", projection_graph(), blocker);
    gate.await_entered(); // the single worker is now occupied

    Start_order order;
    Optimize_request first_request;
    first_request.on_progress = order.tagged("first");
    Optimize_request second_request;
    second_request.on_progress = order.tagged("second");
    server.submit("taso", variant_graph(1), first_request);
    server.submit("taso", variant_graph(2), second_request);

    gate.release();
    server.drain();
    EXPECT_EQ(order.tags, (std::vector<std::string>{"first", "second"}));
}

TEST(OptimizationServer, PriorityPolicyRunsHigherPriorityFirst)
{
    Server_config config = smoke_server();
    config.workers = 1;
    config.queue.policy = Queue_policy::priority;
    Optimization_server server(config);

    Gate gate;
    Optimize_request blocker;
    blocker.on_progress = gate.callback();
    server.submit("taso", projection_graph(), blocker);
    gate.await_entered();

    Start_order order;
    Optimize_request low_request;
    low_request.on_progress = order.tagged("low");
    Optimize_request high_request;
    high_request.on_progress = order.tagged("high");
    server.submit("taso", variant_graph(1), low_request, {.priority = 0});
    server.submit("taso", variant_graph(2), high_request, {.priority = 10});

    gate.release();
    server.drain();
    EXPECT_EQ(order.tags, (std::vector<std::string>{"high", "low"}));
}

TEST(OptimizationServer, EarliestDeadlinePolicyRunsTightestDeadlineFirst)
{
    Server_config config = smoke_server();
    config.workers = 1;
    config.queue.policy = Queue_policy::earliest_deadline;
    Optimization_server server(config);

    Gate gate;
    Optimize_request blocker;
    blocker.on_progress = gate.callback();
    server.submit("taso", projection_graph(), blocker);
    gate.await_entered();

    Start_order order;
    Optimize_request relaxed_request;
    relaxed_request.on_progress = order.tagged("relaxed");
    Optimize_request urgent_request;
    urgent_request.on_progress = order.tagged("urgent");
    server.submit("taso", variant_graph(1), relaxed_request, {.deadline_seconds = 60.0});
    server.submit("taso", variant_graph(2), urgent_request, {.deadline_seconds = 1.0});

    gate.release();
    server.drain();
    EXPECT_EQ(order.tags, (std::vector<std::string>{"urgent", "relaxed"}));
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(OptimizationServer, CancellingQueuedJobResolvesImmediatelyWithoutSearching)
{
    Server_config config = smoke_server();
    config.start_paused = true;
    Optimization_server server(config);
    const Graph g = quickstart_graph();

    Job_handle handle = server.submit("taso", g);
    EXPECT_EQ(handle.poll(), Job_state::queued);
    handle.cancel();
    EXPECT_EQ(handle.poll(), Job_state::cancelled);
    const Optimize_result result = handle.wait(); // no blocking: already terminal
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.best_graph.canonical_hash(), g.canonical_hash());

    server.resume();
    server.drain();
    EXPECT_EQ(server.service().cache_misses(), 0u); // no search ever ran
    EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(OptimizationServer, CancellingRunningJobStopsViaHeartbeat)
{
    Server_config config = smoke_server();
    config.service.backend_options["taso.budget"] = 200;
    Optimization_server server(config);
    const Graph g = projection_graph();

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    Job_handle handle = server.submit("taso", g, gated);
    gate.await_entered();
    EXPECT_EQ(handle.poll(), Job_state::running);

    handle.cancel();
    gate.release();
    const Optimize_result result = handle.wait();
    EXPECT_TRUE(result.cancelled);
    EXPECT_LT(result.steps, 200); // stopped well before the budget
    EXPECT_NO_THROW(result.best_graph.validate());
    EXPECT_EQ(handle.poll(), Job_state::cancelled);
    // Cancelled searches are never cached (same contract as the service).
    EXPECT_EQ(server.service().cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(OptimizationServer, BoundedQueueRejectsOverflow)
{
    Server_config config = smoke_server();
    config.start_paused = true;
    config.workers = 1;
    config.queue.capacity = 2;
    Optimization_server server(config);

    const Job_handle a = server.submit("taso", variant_graph(1));
    const Job_handle b = server.submit("taso", variant_graph(2));
    const Job_handle c = server.submit("taso", variant_graph(3));
    EXPECT_EQ(a.poll(), Job_state::queued);
    EXPECT_EQ(b.poll(), Job_state::queued);
    EXPECT_EQ(c.poll(), Job_state::rejected);
    EXPECT_THROW(c.wait(), std::runtime_error);

    server.resume();
    server.drain();
    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST(OptimizationServer, ShedLowestEvictsWorstRankedForBetterArrival)
{
    Server_config config = smoke_server();
    config.start_paused = true;
    config.queue.capacity = 1;
    config.queue.policy = Queue_policy::priority;
    config.queue.overflow = Overflow_policy::shed_lowest;
    Optimization_server server(config);

    const Job_handle low = server.submit("taso", variant_graph(1), {}, {.priority = 0});
    const Job_handle high = server.submit("taso", variant_graph(2), {}, {.priority = 5});
    EXPECT_EQ(low.poll(), Job_state::rejected); // shed to make room
    EXPECT_EQ(high.poll(), Job_state::queued);
    EXPECT_THROW(low.wait(), std::runtime_error);

    // A *worse*-ranked newcomer is rejected instead of shedding the queue.
    const Job_handle worse = server.submit("taso", variant_graph(3), {}, {.priority = 1});
    EXPECT_EQ(worse.poll(), Job_state::rejected);
    EXPECT_EQ(high.poll(), Job_state::queued);

    server.resume();
    server.drain();
    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.rejected, 2u);
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(OptimizationServer, CancelledQueuedJobsDoNotConsumeQueueCapacity)
{
    Server_config config = smoke_server();
    config.start_paused = true;
    config.workers = 1;
    config.queue.capacity = 2;
    Optimization_server server(config);

    Job_handle a = server.submit("taso", variant_graph(1));
    Job_handle b = server.submit("taso", variant_graph(2));
    a.cancel();
    b.cancel();
    // Both slots are corpses; a live submission must still be admitted.
    const Job_handle c = server.submit("taso", variant_graph(3));
    EXPECT_EQ(c.poll(), Job_state::queued);

    server.resume();
    server.drain();
    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.cancelled, 2u);
    EXPECT_EQ(stats.completed, 1u);
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

TEST(OptimizationServer, TelemetryCountsAddUpAcrossMixedOutcomes)
{
    Server_config config = smoke_server();
    Optimization_server server(config);
    const Graph g = quickstart_graph();

    server.submit("taso", g).wait();      // search
    server.submit("taso", g).wait();      // memo hit
    server.submit("pet", quickstart_graph()).wait();
    Job_handle cancelled = server.submit("tensat", projection_graph());
    cancelled.cancel();
    server.drain();

    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.completed + stats.cancelled + stats.coalesced, 4u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
    EXPECT_GT(stats.p95_latency_ms, 0.0);
    EXPECT_GE(stats.backends.at("taso").submitted, 2u);
    EXPECT_GE(stats.backends.at("taso").busy_seconds, 0.0);
    EXPECT_GT(stats.dedup_rate(), 0.0);
}

TEST(OptimizationServer, OccupancyGaugesTrackQueueDepthInflightAndPeaks)
{
    Server_config config = smoke_server();
    config.start_paused = true;
    Optimization_server server(config);

    std::vector<Job_handle> handles;
    for (int n = 0; n < 3; ++n) handles.push_back(server.submit("taso", variant_graph(n)));

    // Paused: everything sits in the queue, coalescable, nothing running.
    Server_stats stats = server.stats();
    EXPECT_EQ(stats.queue_depth, 3u);
    EXPECT_EQ(stats.inflight, 3u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_GE(stats.peak_queue_depth, 3u);

    server.resume();
    for (const Job_handle& handle : handles) handle.wait();
    server.drain();

    // Quiet again — but the high-water marks remember the burst.
    stats = server.stats();
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.running, 0u);
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_GE(stats.peak_queue_depth, 3u);
    EXPECT_GE(stats.peak_running, 1u);
}

// ---------------------------------------------------------------------------
// Validation (surfaced through both entry points)
// ---------------------------------------------------------------------------

TEST(RequestValidation, MalformedRequestsRejectedByServiceAndServer)
{
    Optimization_service service(smoke_service());
    Optimization_server server(smoke_server());
    const Graph g = quickstart_graph();

    Optimize_request negative_time;
    negative_time.time_budget_seconds = -1.0;
    EXPECT_THROW(service.optimize("taso", g, negative_time), std::invalid_argument);
    EXPECT_THROW(server.submit("taso", g, negative_time), std::invalid_argument);

    Optimize_request negative_iterations;
    negative_iterations.iteration_budget = -3;
    EXPECT_THROW(service.optimize("taso", g, negative_iterations), std::invalid_argument);
    EXPECT_THROW(server.submit("taso", g, negative_iterations), std::invalid_argument);

    Optimize_request nan_budget;
    nan_budget.time_budget_seconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(service.optimize("taso", g, nan_budget), std::invalid_argument);
    EXPECT_THROW(server.submit("taso", g, nan_budget), std::invalid_argument);

    EXPECT_THROW(server.submit("nope", g), std::invalid_argument);
    EXPECT_THROW(server.submit("taso", g, {}, {.deadline_seconds = -2.0}), std::invalid_argument);
    EXPECT_THROW(service.optimize_all(g, {}, 0), std::invalid_argument);

    // Nothing above was enqueued or counted as a miss.
    EXPECT_EQ(server.queue_depth(), 0u);
    EXPECT_EQ(service.cache_misses(), 0u);
}

// ---------------------------------------------------------------------------
// Per-device isolation on one server
// ---------------------------------------------------------------------------

TEST(OptimizationServer, SameGraphOnDifferentDevicesNeverCoalescesOrSharesCache)
{
    Optimization_server server(smoke_server());
    const Graph g = projection_graph();

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    const Job_handle primary = server.submit("taso", g, gated); // default device (gtx1080)
    gate.await_entered();

    // Same graph, same backend, same budgets — but a different target
    // device: different work, must not attach to the in-flight job.
    Optimize_request on_a100;
    on_a100.device = "a100-sim";
    const Job_handle other_device = server.submit("taso", g, on_a100);
    EXPECT_FALSE(other_device.coalesced());

    // The identical-device duplicate still coalesces.
    const Job_handle same_device = server.submit("taso", g);
    EXPECT_TRUE(same_device.coalesced());

    gate.release();
    const Optimize_result gtx = primary.wait();
    const Optimize_result a100 = other_device.wait();
    server.drain();
    EXPECT_EQ(gtx.device, "gtx1080-sim");
    EXPECT_EQ(a100.device, "a100-sim");
    EXPECT_NE(gtx.final_ms, a100.final_ms);

    // Two real searches ran (one per device); and each device replays from
    // its own memo entry afterwards.
    EXPECT_EQ(server.service().cache_misses(), 2u);
    EXPECT_TRUE(server.submit("taso", g).wait().from_cache);
    EXPECT_TRUE(server.submit("taso", g, on_a100).wait().from_cache);
    const Server_stats stats = server.stats();
    EXPECT_EQ(stats.coalesced, 1u);
    EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(OptimizationServer, UnknownDeviceRejectedBeforeEnqueue)
{
    Optimization_server server(smoke_server());
    Optimize_request request;
    request.device = "h100-sim";
    EXPECT_THROW(server.submit("taso", quickstart_graph(), request), std::invalid_argument);
    EXPECT_EQ(server.queue_depth(), 0u);
    EXPECT_EQ(server.stats().submitted, 0u);
}

// ---------------------------------------------------------------------------
// Streaming progress
// ---------------------------------------------------------------------------

TEST(OptimizationServer, ProgressSnapshotsReachEveryCoalescedWaiter)
{
    Server_config config = smoke_server();
    config.service.backend_options["taso.budget"] = 25;
    Optimization_server server(config);
    const Graph g = projection_graph();

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    Job_handle primary = server.submit("taso", g, gated);
    gate.await_entered(); // at least one snapshot has been recorded

    // A coalesced duplicate — whose own request carries no callback at all
    // — can watch the shared search.
    Job_handle attached = server.submit("taso", g);
    ASSERT_TRUE(attached.coalesced());
    auto observed = std::make_shared<std::atomic<int>>(0);
    attached.on_progress([observed](const Optimize_progress& progress) {
        EXPECT_EQ(progress.backend, "taso");
        observed->fetch_add(1);
    });

    // The last snapshot is poll-able mid-flight from *any* handle.
    EXPECT_TRUE(primary.progress().has_value());
    EXPECT_TRUE(attached.progress().has_value());

    gate.release();
    const Optimize_result result = attached.wait();
    server.drain();
    EXPECT_FALSE(result.cancelled);
    EXPECT_GT(observed->load(), 0); // the waiter streamed snapshots it never asked the backend for
    EXPECT_GE(attached.progress()->step, 0);

    // After the job resolves, late observers are a no-op (never fire).
    attached.on_progress([observed](const Optimize_progress&) { observed->fetch_add(1000); });
    EXPECT_LT(observed->load(), 1000);
}

// ---------------------------------------------------------------------------
// Queue-aware budgets
// ---------------------------------------------------------------------------

TEST(OptimizationServer, DequeuePastDeadlineClampsBudgetToNothing)
{
    Server_config config = smoke_server();
    config.service.backend_options["taso.budget"] = 100000; // would run ~forever
    config.start_paused = true;
    config.queue.policy = Queue_policy::earliest_deadline;
    Optimization_server server(config);

    Job_handle handle =
        server.submit("taso", projection_graph(), {}, {.deadline_seconds = 0.01});
    std::this_thread::sleep_for(std::chrono::milliseconds(30)); // deadline passes while queued
    server.resume();
    const Optimize_result result = handle.wait();
    server.drain();

    // EDF only ordered the queue before; now the dequeue clamps the wall
    // budget to the time remaining — here none — so the search stops at
    // its first heartbeat instead of running its 100000-iteration budget.
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.steps, 0);
    EXPECT_EQ(result.best_graph.canonical_hash(), projection_graph().canonical_hash());
    EXPECT_EQ(server.service().cache_size(), 0u); // cut-short runs are never cached
}

TEST(OptimizationServer, NoDeadlineWaiterDisarmsTheClampAndGetsTheFullSearch)
{
    Server_config config = smoke_server();
    config.start_paused = true;
    config.queue.policy = Queue_policy::earliest_deadline;
    Optimization_server server(config);
    const Graph g = projection_graph();

    // The primary asked for a deadline that will expire while queued; the
    // coalesced duplicate asked for none. The duplicate is owed a result
    // identical to a direct call, so the dequeue-time clamp must not
    // engage — deadlines can tighten the *ordering*, never another
    // waiter's result.
    Job_handle primary = server.submit("taso", g, {}, {.deadline_seconds = 0.01});
    Job_handle relaxed = server.submit("taso", g);
    ASSERT_TRUE(relaxed.coalesced());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.resume();
    const Optimize_result result = relaxed.wait();
    server.drain();
    EXPECT_FALSE(result.cancelled);

    Optimization_service direct(smoke_service());
    const Optimize_result reference = direct.optimize("taso", g);
    EXPECT_EQ(result.best_graph.canonical_hash(), reference.best_graph.canonical_hash());
    EXPECT_EQ(result.final_ms, reference.final_ms);
    EXPECT_EQ(result.steps, reference.steps);
}

TEST(OptimizationServer, ClampedRunningJobAcceptsDeadlineWaitersButNotDeadlineFreeOnes)
{
    Optimization_server server(smoke_server());
    const Graph g = projection_graph();

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    // Unlimited wall budget + a deadline => the dequeue clamp tightens the
    // budget, so the running job is marked budget-clamped.
    Job_handle primary = server.submit("taso", g, gated, {.deadline_seconds = 120.0});
    gate.await_entered();

    // A deadline-carrying duplicate opted into SLA semantics: it attaches.
    const Job_handle sla = server.submit("taso", g, {}, {.deadline_seconds = 60.0});
    EXPECT_TRUE(sla.coalesced());
    // A deadline-free duplicate is owed the full search: it runs its own.
    const Job_handle full = server.submit("taso", g);
    EXPECT_FALSE(full.coalesced());

    gate.release();
    server.drain();
    EXPECT_FALSE(primary.wait().cancelled); // 120 s was generous; nothing truncated
    EXPECT_FALSE(full.wait().cancelled);
}

TEST(OptimizationServer, GenerousDeadlineLeavesResultIdenticalToDirectCall)
{
    Optimization_server server(smoke_server());
    const Graph g = quickstart_graph();
    const Optimize_result served =
        server.submit("taso", g, {}, {.deadline_seconds = 120.0}).wait();
    server.drain();
    EXPECT_FALSE(served.cancelled);

    Optimization_service direct(smoke_service());
    const Optimize_result reference = direct.optimize("taso", g);
    EXPECT_EQ(served.best_graph.canonical_hash(), reference.best_graph.canonical_hash());
    EXPECT_EQ(served.final_ms, reference.final_ms);
    EXPECT_EQ(served.steps, reference.steps);
}

// ---------------------------------------------------------------------------
// Optimization_router
// ---------------------------------------------------------------------------

Router_config two_shard_fleet()
{
    Router_config config;
    Shard_config gtx_shard;
    gtx_shard.server = smoke_server();
    gtx_shard.device_affinity = {"gtx1080-sim"};
    Shard_config a100_shard;
    a100_shard.server = smoke_server();
    a100_shard.device_affinity = {"a100-sim"};
    config.shards = {gtx_shard, a100_shard};
    return config;
}

TEST(OptimizationRouter, RoutesByDeviceAffinity)
{
    Optimization_router router(two_shard_fleet());
    const Graph g = quickstart_graph();

    Optimize_request on_gtx; // default device resolves to gtx1080
    Optimize_request on_a100;
    on_a100.device = "a100-sim";
    EXPECT_EQ(router.route("taso", g, on_gtx), 0u);
    EXPECT_EQ(router.route("taso", g, on_a100), 1u);
    // Deterministic: the same request always lands on the same shard.
    EXPECT_EQ(router.route("taso", g, on_a100), router.route("taso", g, on_a100));

    const Optimize_result gtx = router.submit("taso", g, on_gtx).wait();
    const Optimize_result a100 = router.submit("taso", g, on_a100).wait();
    router.drain();
    EXPECT_EQ(gtx.device, "gtx1080-sim");
    EXPECT_EQ(a100.device, "a100-sim");

    const Router_stats stats = router.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.affinity_routed, 2u);
    EXPECT_EQ(stats.hash_routed, 0u);
    EXPECT_EQ(stats.routed_to, (std::vector<std::uint64_t>{1, 1}));
    EXPECT_EQ(stats.total.completed, 2u);
    EXPECT_EQ(stats.shards.size(), 2u);
    EXPECT_EQ(stats.shards[0].completed, 1u);
    EXPECT_EQ(stats.shards[1].completed, 1u);
}

TEST(OptimizationRouter, UnclaimedDeviceFallsBackToDeterministicHash)
{
    // Neither shard claims the a100: both registries still hold it (the
    // standard pair), so hash fallback spreads — deterministically — across
    // the whole fleet.
    Router_config config = two_shard_fleet();
    config.shards[1].device_affinity = {"gtx1080-sim"};
    Optimization_router router(config);

    Optimize_request on_a100;
    on_a100.device = "a100-sim";
    const std::size_t target = router.route("taso", quickstart_graph(), on_a100);
    EXPECT_LT(target, 2u);
    EXPECT_EQ(router.route("taso", quickstart_graph(), on_a100), target);

    const Optimize_result result = router.submit("taso", quickstart_graph(), on_a100).wait();
    router.drain();
    EXPECT_EQ(result.device, "a100-sim");
    const Router_stats stats = router.stats();
    EXPECT_EQ(stats.hash_routed, 1u);
    EXPECT_EQ(stats.affinity_routed, 0u);
}

TEST(OptimizationRouter, HashFallbackOnlyConsidersShardsThatCanServeTheDevice)
{
    // Heterogeneous fleet: shard 1 never registered the a100. With no
    // affinity anywhere, a100 traffic must hash-spread across *capable*
    // shards only — landing it on shard 1 would reject a servable request.
    Router_config config = two_shard_fleet();
    config.shards[0].device_affinity = {};
    config.shards[1].device_affinity = {};
    config.shards[1].server.service.devices = {gtx1080_profile()};
    Optimization_router router(config);

    Optimize_request on_a100;
    on_a100.device = "a100-sim";
    for (int i = 1; i <= 4; ++i)
        EXPECT_EQ(router.route("taso", variant_graph(i), on_a100), 0u) << i;
    const Optimize_result result = router.submit("taso", quickstart_graph(), on_a100).wait();
    router.drain();
    EXPECT_EQ(result.device, "a100-sim");
    EXPECT_EQ(router.stats().hash_routed, 1u);
}

TEST(OptimizationRouter, DefaultDeviceIsPinnedBeforeHeterogeneousShardsResolveIt)
{
    // Shard 1 claims the gtx1080 but *defaults* to the a100: a
    // default-device request routes as shard 0's default (gtx1080) and
    // must be optimised for that device by whichever shard executes it.
    Router_config config = two_shard_fleet();
    config.shards[0].device_affinity = {};
    config.shards[1].device_affinity = {"gtx1080-sim"};
    config.shards[1].server.service.default_device = "a100-sim";
    Optimization_router router(config);

    const Graph g = quickstart_graph();
    EXPECT_EQ(router.route("taso", g), 1u); // affinity sends it to the a100-defaulting shard
    const Optimize_result result = router.submit("taso", g).wait();
    router.drain();
    EXPECT_EQ(result.device, "gtx1080-sim");
}

TEST(OptimizationRouter, RejectsEmptyFleetAndUnservableAffinity)
{
    EXPECT_THROW(Optimization_router(Router_config{}), std::invalid_argument);

    Router_config config = two_shard_fleet();
    config.shards[0].device_affinity = {"h100-sim"}; // not in that shard's registry
    EXPECT_THROW(Optimization_router(std::move(config)), std::invalid_argument);
}

TEST(OptimizationRouter, RoutedResultsBitIdenticalToDirectPerDeviceServiceCalls)
{
    Optimization_router router(two_shard_fleet());
    Optimization_service direct(smoke_service());
    const Graph g = projection_graph();

    for (const std::string& backend : direct.backends()) {
        for (const std::string& device : {std::string("gtx1080-sim"), std::string("a100-sim")}) {
            Optimize_request request;
            request.device = device;
            const Optimize_result routed = router.submit(backend, g, request).wait();
            const Optimize_result reference = direct.optimize(backend, g, request);
            EXPECT_EQ(routed.best_graph.canonical_hash(), reference.best_graph.canonical_hash())
                << backend << " on " << device;
            EXPECT_EQ(routed.final_ms, reference.final_ms) << backend << " on " << device;
            EXPECT_EQ(routed.initial_ms, reference.initial_ms) << backend << " on " << device;
            EXPECT_EQ(routed.device, device) << backend;
        }
    }
    router.drain();
}

// ---------------------------------------------------------------------------
// Service concurrency hooks
// ---------------------------------------------------------------------------

TEST(Telemetry, PercentileIsNearestRankOnTinyReservoirs)
{
    // Regression pin for the nearest-rank fix: the old `p * (N - 1)`
    // truncation under-read small reservoirs (p95 of {10, 20} returned 10).
    // Exact expected values, no tolerance.
    Telemetry telemetry(/*latency_reservoir=*/8, "percentile-test");

    // Empty reservoir: percentiles are defined as 0.
    Server_stats stats = telemetry.snapshot(0, 0, 0);
    EXPECT_EQ(stats.p50_latency_ms, 0.0);
    EXPECT_EQ(stats.p95_latency_ms, 0.0);

    // One sample: every percentile is that sample.
    telemetry.on_finish("taso", Job_state::done, /*latency_seconds=*/0.005, 0.0, false);
    stats = telemetry.snapshot(0, 0, 0);
    EXPECT_EQ(stats.p50_latency_ms, 5.0);
    EXPECT_EQ(stats.p95_latency_ms, 5.0);

    // Two samples {5, 20}: p50 is the first (rank ceil(0.5*2) = 1), p95 the
    // second (rank ceil(0.95*2) = 2).
    telemetry.on_finish("taso", Job_state::done, /*latency_seconds=*/0.020, 0.0, false);
    stats = telemetry.snapshot(0, 0, 0);
    EXPECT_EQ(stats.p50_latency_ms, 5.0);
    EXPECT_EQ(stats.p95_latency_ms, 20.0);
}

TEST(OptimizationService, ConcurrentSameBackendCallsWidenInstancePool)
{
    Optimization_service service(smoke_service());

    Gate gate;
    Optimize_request gated;
    gated.on_progress = gate.callback();
    std::thread holder([&] { service.optimize("taso", projection_graph(), gated); });
    gate.await_entered();
    // A second concurrent call for the same backend must not block.
    service.optimize("taso", quickstart_graph());
    gate.release();
    holder.join();
    EXPECT_EQ(service.backend_instances("taso"), 2u);

    // Serial calls keep reusing one instance.
    service.optimize("taso", variant_graph(1));
    service.optimize("taso", variant_graph(2));
    EXPECT_EQ(service.backend_instances("taso"), 2u);
}

} // namespace
} // namespace xrl
