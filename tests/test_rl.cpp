#include <gtest/gtest.h>

#include <cmath>

#include "rl/categorical.h"
#include "rl/gae.h"
#include "support/check.h"

namespace xrl {
namespace {

TEST(Gae, SingleStepEpisode)
{
    // One terminal step: delta = r - v, advantage = delta.
    const Gae_config config{0.99, 0.95};
    const auto result = compute_gae({2.0}, {0.5}, {1}, config);
    ASSERT_EQ(result.advantages.size(), 1u);
    EXPECT_NEAR(result.advantages[0], 1.5, 1e-9);
    EXPECT_NEAR(result.returns[0], 2.0, 1e-9);
}

TEST(Gae, TwoStepEpisodeMatchesHandComputation)
{
    const Gae_config config{0.9, 0.8};
    // Step 0: r=1, v=0.5; step 1 (terminal): r=2, v=0.25.
    const auto result = compute_gae({1.0, 2.0}, {0.5, 0.25}, {0, 1}, config);
    const double delta1 = 2.0 - 0.25;
    const double delta0 = 1.0 + 0.9 * 0.25 - 0.5;
    EXPECT_NEAR(result.advantages[1], delta1, 1e-9);
    EXPECT_NEAR(result.advantages[0], delta0 + 0.9 * 0.8 * delta1, 1e-9);
}

TEST(Gae, EpisodeBoundaryResetsAccumulator)
{
    const Gae_config config{0.99, 0.95};
    // Two one-step episodes back to back.
    const auto result = compute_gae({1.0, 3.0}, {0.0, 0.0}, {1, 1}, config);
    EXPECT_NEAR(result.advantages[0], 1.0, 1e-9);
    EXPECT_NEAR(result.advantages[1], 3.0, 1e-9);
}

TEST(Gae, LambdaZeroIsOneStepTd)
{
    const Gae_config config{0.9, 0.0};
    const auto result = compute_gae({1.0, 1.0, 1.0}, {0.2, 0.3, 0.4}, {0, 0, 1}, config);
    EXPECT_NEAR(result.advantages[0], 1.0 + 0.9 * 0.3 - 0.2, 1e-9);
    EXPECT_NEAR(result.advantages[1], 1.0 + 0.9 * 0.4 - 0.3, 1e-9);
}

TEST(Gae, NormaliseAdvantagesZeroMeanUnitVar)
{
    std::vector<double> adv = {1.0, 2.0, 3.0, 4.0};
    normalise_advantages(adv);
    double mean = 0.0;
    for (const double a : adv) mean += a;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    double var = 0.0;
    for (const double a : adv) var += a * a;
    EXPECT_NEAR(var / 4.0, 1.0, 1e-6);
}

TEST(Gae, MismatchedSizesThrow)
{
    EXPECT_THROW(compute_gae({1.0}, {0.0, 0.0}, {1}, {}), Contract_violation);
}

TEST(MaskedCategorical, ProbabilitiesRespectMask)
{
    const Tensor logits(Shape{4, 1}, {1.0F, 2.0F, 3.0F, 0.5F});
    const std::vector<std::uint8_t> mask = {1, 0, 1, 1};
    const auto probs = masked_probabilities(logits, mask);
    EXPECT_EQ(probs[1], 0.0);
    double total = 0.0;
    for (const double p : probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(probs[2], probs[0]); // larger logit wins
}

TEST(MaskedCategorical, SamplingNeverPicksInvalid)
{
    const Tensor logits(Shape{3, 1}, {5.0F, 5.0F, 5.0F});
    const std::vector<std::uint8_t> mask = {0, 1, 0};
    Rng rng(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_masked(logits, mask, rng), 1);
}

TEST(MaskedCategorical, ArgmaxHonoursMask)
{
    const Tensor logits(Shape{3, 1}, {9.0F, 1.0F, 2.0F});
    EXPECT_EQ(argmax_masked(logits, {0, 1, 1}), 2);
    EXPECT_EQ(argmax_masked(logits, {1, 1, 1}), 0);
}

TEST(MaskedCategorical, EntropyOfUniformIsLogN)
{
    Tape tape;
    const Var logits = tape.constant(Tensor(Shape{4, 1}, {0.7F, 0.7F, 0.7F, 0.7F}));
    const auto dist = masked_categorical(tape, logits, {1, 1, 1, 1});
    EXPECT_NEAR(tape.value(dist.entropy).at(0), std::log(4.0F), 1e-4F);
}

TEST(MaskedCategorical, LogProbsAreConsistent)
{
    Tape tape;
    const Var logits = tape.constant(Tensor(Shape{3, 1}, {1.0F, 2.0F, 3.0F}));
    const std::vector<std::uint8_t> mask = {1, 1, 1};
    const auto dist = masked_categorical(tape, logits, mask);
    const auto probs = masked_probabilities(tape.value(logits), mask);
    for (std::int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(std::exp(tape.value(dist.log_probs).at(i)), probs[static_cast<std::size_t>(i)],
                    1e-5F);
}

TEST(MaskedCategorical, InvalidEntriesGetNoGradient)
{
    // The paper's §3.3.2 claim: masking "effectively turns the gradients to
    // zero if they correspond to an invalid action".
    Rng rng(7);
    Parameter logits_param(Tensor::random_uniform({4, 1}, rng));
    const std::vector<std::uint8_t> mask = {1, 1, 0, 1};
    Tape tape;
    const auto dist = masked_categorical(tape, tape.param(logits_param), mask);
    tape.backward(tape.pick(dist.log_probs, 0));
    EXPECT_NEAR(logits_param.grad.at(2), 0.0F, 1e-12F);
    EXPECT_GT(std::abs(logits_param.grad.at(0)), 1e-6F);
}

TEST(MaskedCategorical, AllMaskedThrows)
{
    Tape tape;
    const Var logits = tape.constant(Tensor(Shape{2, 1}, {1.0F, 2.0F}));
    EXPECT_THROW(masked_categorical(tape, logits, {0, 0}), Contract_violation);
}

TEST(MaskedCategorical, GradientMatchesFiniteDifference)
{
    Rng rng(8);
    Parameter p(Tensor::random_uniform({3, 1}, rng));
    const std::vector<std::uint8_t> mask = {1, 1, 1};

    p.zero_grad();
    {
        Tape tape;
        const auto dist = masked_categorical(tape, tape.param(p), mask);
        tape.backward(tape.add(tape.pick(dist.log_probs, 1), dist.entropy));
    }
    const Tensor analytic = p.grad;

    const float eps = 1e-3F;
    for (std::int64_t i = 0; i < 3; ++i) {
        const float saved = p.value.at(i);
        auto eval = [&](float v) {
            p.value.at(i) = v;
            Tape tape;
            const auto dist = masked_categorical(tape, tape.param(p), mask);
            const double out = tape.value(dist.log_probs).at(1) + tape.value(dist.entropy).at(0);
            p.value.at(i) = saved;
            return out;
        };
        const double numeric = (eval(saved + eps) - eval(saved - eps)) / (2.0 * eps);
        EXPECT_NEAR(analytic.at(i), numeric, 2e-2);
    }
}

} // namespace
} // namespace xrl
